//! SHA-256 implemented from the FIPS 180-4 specification.
//!
//! The FileInsurer protocol needs a collision-resistant hash for file Merkle
//! roots, content identifiers, replica commitments, and the random beacon.
//! The allowed dependency set contains no hash crate, so this module
//! implements SHA-256 from scratch. It is a straightforward, portable
//! implementation; test vectors from FIPS 180-4 and NIST CAVP are checked in
//! the unit tests below.

use crate::hash::Hash256;

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Incremental SHA-256 hasher.
///
/// Accepts input in arbitrary chunks via [`Sha256::update`] and produces the
/// digest with [`Sha256::finalize`]. For one-shot hashing prefer the
/// convenience function [`sha256`].
///
/// # Example
///
/// ```
/// use fi_crypto::sha256::{sha256, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), sha256(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total number of message bytes consumed so far.
    len_bytes: u64,
    /// Buffered partial block.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher in the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len_bytes: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        let mut input = data;
        self.len_bytes = self.len_bytes.wrapping_add(data.len() as u64);

        // Fill a partially occupied buffer first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }

        // Whole blocks straight from the input.
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }

        // Stash the tail.
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Consumes the hasher and returns the 32-byte digest.
    pub fn finalize(mut self) -> Hash256 {
        let bit_len = self.len_bytes.wrapping_mul(8);
        // Padding: 0x80, zeros, then 64-bit big-endian bit length.
        self.update_padding(&[0x80]);
        while self.buf_len != 56 {
            self.update_padding(&[0x00]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash256::from_bytes(out)
    }

    /// `update` without advancing the message length counter (used only for
    /// the padding bytes, which are not part of the message).
    fn update_padding(&mut self, data: &[u8]) {
        for &byte in data {
            self.buf[self.buf_len] = byte;
            self.buf_len += 1;
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
///
/// ```
/// use fi_crypto::sha256;
/// assert_eq!(
///     sha256(b"abc").to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
pub fn sha256(data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST CAVP known-answer tests.
    #[test]
    fn fips_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(sha256(input).to_hex(), *expect, "input {input:?}");
        }
    }

    #[test]
    fn million_a() {
        // FIPS 180-4: one million repetitions of 'a'.
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        // Try many split points, including block boundaries.
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn length_boundary_inputs() {
        // Hash inputs of every length near the padding boundary; the digests
        // must all differ (sanity against padding bugs).
        let data = [0xABu8; 130];
        let mut seen = std::collections::HashSet::new();
        for len in 0..=130 {
            assert!(seen.insert(sha256(&data[..len])), "collision at len {len}");
        }
    }
}
