//! Shared substrate for the baseline comparison: network/workload specs,
//! placements, adversaries, and loss evaluation.

use std::collections::HashSet;

use fi_crypto::DetRng;

/// A storage node (sector-level granularity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Capacity in size units.
    pub capacity: u64,
    /// The physical entity operating this node. Distinct logical nodes with
    /// the same entity model a Sybil attack: corrupting the entity corrupts
    /// all of them at the capacity cost of only the largest.
    pub entity: usize,
}

/// The network: a list of nodes.
#[derive(Debug, Clone, Default)]
pub struct NetworkSpec {
    /// All logical nodes.
    pub nodes: Vec<NodeSpec>,
}

impl NetworkSpec {
    /// A network of `n` honest nodes of equal `capacity` (entity == index).
    pub fn uniform(n: usize, capacity: u64) -> Self {
        NetworkSpec {
            nodes: (0..n)
                .map(|i| NodeSpec {
                    capacity,
                    entity: i,
                })
                .collect(),
        }
    }

    /// Total capacity.
    pub fn total_capacity(&self) -> u64 {
        self.nodes.iter().map(|n| n.capacity).sum()
    }
}

/// A file in the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileSpec {
    /// Size in size units.
    pub size: u64,
    /// Declared value (drives replica counts and compensation).
    pub value: f64,
}

/// Where a workload landed.
#[derive(Debug, Clone)]
pub struct Placement {
    /// `locations[f]` — node indices holding pieces of file `f`
    /// (duplicates allowed where a protocol allows them).
    pub locations: Vec<Vec<usize>>,
    /// `survivors_needed[f]` — minimum number of live pieces for file `f`
    /// to survive (1 for replication, `data_shards` for erasure coding).
    pub survivors_needed: Vec<u32>,
}

impl Placement {
    /// Is file `f` still recoverable given the corrupted node set?
    pub fn survives(&self, f: usize, corrupted: &HashSet<usize>) -> bool {
        let live = self.locations[f]
            .iter()
            .filter(|n| !corrupted.contains(n))
            .count() as u32;
        live >= self.survivors_needed[f]
    }
}

/// Adversary corruption strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdversaryStrategy {
    /// Corrupt uniformly random nodes until the capacity budget is spent.
    Random,
    /// Corrupt nodes in decreasing capacity order (biggest first).
    LargestFirst,
    /// Greedy file-killer: repeatedly corrupt the node with the highest
    /// "kill pressure" per unit capacity, where a node's pressure is
    /// `Σ value_f / live_f` over the file pieces it holds (`live_f` = the
    /// file's current live piece surplus). Far stronger than random; probes
    /// the robustness bound from below.
    GreedyKill,
}

impl AdversaryStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [AdversaryStrategy; 3] = [
        AdversaryStrategy::Random,
        AdversaryStrategy::LargestFirst,
        AdversaryStrategy::GreedyKill,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            AdversaryStrategy::Random => "random",
            AdversaryStrategy::LargestFirst => "largest-first",
            AdversaryStrategy::GreedyKill => "greedy-kill",
        }
    }
}

/// Chooses a set of nodes to corrupt whose total capacity does not exceed
/// `lambda` of the network capacity (the adversary ability assumption,
/// §V-A). Sybil structure is honoured: corrupting any node of an entity
/// corrupts all of that entity's nodes, at the capacity cost of the sum of
/// that entity's node capacities **once** (the Sybil cheat: one disk backs
/// them all, so the adversary destroys many logical nodes per physical
/// machine).
pub fn corrupt_nodes(
    net: &NetworkSpec,
    placement: &Placement,
    files: &[FileSpec],
    lambda: f64,
    strategy: AdversaryStrategy,
    sybil_collapse: bool,
    rng: &mut DetRng,
) -> HashSet<usize> {
    let budget = (net.total_capacity() as f64 * lambda) as i128;
    // Entity groups.
    let mut entity_nodes: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, n) in net.nodes.iter().enumerate() {
        entity_nodes.entry(n.entity).or_default().push(i);
    }
    // Cost of corrupting a node: with sybil_collapse, corrupting one node
    // of an entity yields the whole entity for the capacity of one physical
    // store (the max logical node backed by it).
    let entity_cost = |e: usize| -> i128 {
        let nodes = &entity_nodes[&e];
        if sybil_collapse {
            nodes
                .iter()
                .map(|&i| net.nodes[i].capacity as i128)
                .max()
                .unwrap_or(0)
        } else {
            nodes.iter().map(|&i| net.nodes[i].capacity as i128).sum()
        }
    };

    let mut corrupted: HashSet<usize> = HashSet::new();
    let mut spent: i128 = 0;
    let mut entities: Vec<usize> = {
        let mut v: Vec<usize> = entity_nodes.keys().copied().collect();
        v.sort_unstable();
        v
    };

    match strategy {
        AdversaryStrategy::Random => {
            rng.shuffle(&mut entities);
            for e in entities {
                let cost = entity_cost(e);
                if spent + cost <= budget {
                    spent += cost;
                    corrupted.extend(entity_nodes[&e].iter().copied());
                }
            }
        }
        AdversaryStrategy::LargestFirst => {
            entities.sort_by_key(|&e| std::cmp::Reverse(entity_cost(e)));
            for e in entities {
                let cost = entity_cost(e);
                if spent + cost <= budget {
                    spent += cost;
                    corrupted.extend(entity_nodes[&e].iter().copied());
                }
            }
        }
        AdversaryStrategy::GreedyKill => {
            // Track live piece counts per file; recompute entity pressure
            // each round.
            let mut live: Vec<i64> = placement.locations.iter().map(|l| l.len() as i64).collect();
            // files held per node.
            let mut node_files: Vec<Vec<usize>> = vec![Vec::new(); net.nodes.len()];
            for (f, locs) in placement.locations.iter().enumerate() {
                for &n in locs {
                    node_files[n].push(f);
                }
            }
            let mut remaining: HashSet<usize> = entities.iter().copied().collect();
            loop {
                let mut best: Option<(f64, usize)> = None;
                for &e in &remaining {
                    let cost = entity_cost(e);
                    if spent + cost > budget || cost == 0 {
                        continue;
                    }
                    let mut pressure = 0.0;
                    for &n in &entity_nodes[&e] {
                        for &f in &node_files[n] {
                            let surplus = live[f] - placement.survivors_needed[f] as i64 + 1;
                            if surplus > 0 {
                                pressure += files[f].value / surplus as f64;
                            }
                        }
                    }
                    let score = pressure / cost as f64;
                    if best.map(|(s, _)| score > s).unwrap_or(true) {
                        best = Some((score, e));
                    }
                }
                let Some((_, e)) = best else { break };
                remaining.remove(&e);
                spent += entity_cost(e);
                for &n in &entity_nodes[&e] {
                    if corrupted.insert(n) {
                        for &f in &node_files[n] {
                            live[f] -= 1;
                        }
                    }
                }
            }
        }
    }
    corrupted
}

/// The outcome of a corruption event.
#[derive(Debug, Clone, PartialEq)]
pub struct LossReport {
    /// Total workload value.
    pub total_value: f64,
    /// Value of unrecoverable files.
    pub lost_value: f64,
    /// Number of unrecoverable files.
    pub lost_files: usize,
    /// Capacity actually corrupted (≤ λ·total by construction).
    pub corrupted_capacity: u64,
    /// Number of corrupted logical nodes.
    pub corrupted_nodes: usize,
}

impl LossReport {
    /// `γ_lost` — lost value over total value.
    pub fn gamma_lost(&self) -> f64 {
        if self.total_value == 0.0 {
            0.0
        } else {
            self.lost_value / self.total_value
        }
    }
}

/// Evaluates which files die when `corrupted` nodes fail.
pub fn evaluate_loss(
    net: &NetworkSpec,
    placement: &Placement,
    files: &[FileSpec],
    corrupted: &HashSet<usize>,
) -> LossReport {
    let mut lost_value = 0.0;
    let mut lost_files = 0;
    for (f, spec) in files.iter().enumerate() {
        if !placement.survives(f, corrupted) {
            lost_value += spec.value;
            lost_files += 1;
        }
    }
    LossReport {
        total_value: files.iter().map(|f| f.value).sum(),
        lost_value,
        lost_files,
        corrupted_capacity: corrupted.iter().map(|&n| net.nodes[n].capacity).sum(),
        corrupted_nodes: corrupted.len(),
    }
}

/// Samples `count` node indices i.i.d. proportional to capacity (the
/// `RandomSector()` primitive at placement granularity). Shared by the
/// FileInsurer and Arweave models.
pub fn sample_capacity_weighted(net: &NetworkSpec, count: usize, rng: &mut DetRng) -> Vec<usize> {
    // Static prefix-sum table; placement is one-shot so no Fenwick needed.
    let mut prefix: Vec<u64> = Vec::with_capacity(net.nodes.len());
    let mut acc = 0u64;
    for n in &net.nodes {
        acc += n.capacity;
        prefix.push(acc);
    }
    let total = acc;
    (0..count)
        .map(|_| {
            let t = rng.below(total);
            prefix.partition_point(|&p| p <= t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_placement() -> (NetworkSpec, Vec<FileSpec>, Placement) {
        let net = NetworkSpec::uniform(4, 100);
        let files = vec![
            FileSpec {
                size: 1,
                value: 10.0,
            },
            FileSpec {
                size: 1,
                value: 20.0,
            },
        ];
        let placement = Placement {
            locations: vec![vec![0, 1], vec![2, 3]],
            survivors_needed: vec![1, 2],
        };
        (net, files, placement)
    }

    #[test]
    fn survives_thresholds() {
        let (_, _, p) = simple_placement();
        let none: HashSet<usize> = HashSet::new();
        assert!(p.survives(0, &none));
        assert!(p.survives(1, &none));
        // File 0 is replication (needs 1): survives one loss.
        assert!(p.survives(0, &HashSet::from([0])));
        assert!(!p.survives(0, &HashSet::from([0, 1])));
        // File 1 is erasure needing 2 of 2: dies on any loss.
        assert!(!p.survives(1, &HashSet::from([2])));
    }

    #[test]
    fn evaluate_loss_accounting() {
        let (net, files, p) = simple_placement();
        let report = evaluate_loss(&net, &p, &files, &HashSet::from([2]));
        assert_eq!(report.lost_files, 1);
        assert_eq!(report.lost_value, 20.0);
        assert_eq!(report.total_value, 30.0);
        assert!((report.gamma_lost() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.corrupted_capacity, 100);
    }

    #[test]
    fn adversary_respects_budget() {
        let net = NetworkSpec::uniform(100, 64);
        let files: Vec<FileSpec> = (0..50)
            .map(|_| FileSpec {
                size: 4,
                value: 1.0,
            })
            .collect();
        let mut rng = DetRng::from_seed_label(51, "adv");
        let placement = Placement {
            locations: files
                .iter()
                .map(|_| sample_capacity_weighted(&net, 3, &mut rng))
                .collect(),
            survivors_needed: vec![1; files.len()],
        };
        for strategy in AdversaryStrategy::ALL {
            for lambda in [0.1, 0.5, 0.9] {
                let corrupted =
                    corrupt_nodes(&net, &placement, &files, lambda, strategy, false, &mut rng);
                let cap: u64 = corrupted.iter().map(|&n| net.nodes[n].capacity).sum();
                assert!(
                    cap as f64 <= lambda * net.total_capacity() as f64 + 1e-9,
                    "{strategy:?} λ={lambda}: {cap}"
                );
            }
        }
    }

    #[test]
    fn greedy_kills_more_than_random() {
        // Greedy should destroy at least as much value as random at the
        // same budget (statistically; fixed seed makes this deterministic).
        let net = NetworkSpec::uniform(60, 64);
        let mut rng = DetRng::from_seed_label(52, "greedy");
        let files: Vec<FileSpec> = (0..200)
            .map(|_| FileSpec {
                size: 2,
                value: 1.0,
            })
            .collect();
        let placement = Placement {
            locations: files
                .iter()
                .map(|_| sample_capacity_weighted(&net, 3, &mut rng))
                .collect(),
            survivors_needed: vec![1; files.len()],
        };
        let mut rng_a = DetRng::from_seed_label(53, "a");
        let mut rng_b = DetRng::from_seed_label(53, "b");
        let random = corrupt_nodes(
            &net,
            &placement,
            &files,
            0.5,
            AdversaryStrategy::Random,
            false,
            &mut rng_a,
        );
        let greedy = corrupt_nodes(
            &net,
            &placement,
            &files,
            0.5,
            AdversaryStrategy::GreedyKill,
            false,
            &mut rng_b,
        );
        let loss_random = evaluate_loss(&net, &placement, &files, &random);
        let loss_greedy = evaluate_loss(&net, &placement, &files, &greedy);
        assert!(
            loss_greedy.lost_value >= loss_random.lost_value,
            "greedy {} < random {}",
            loss_greedy.lost_value,
            loss_random.lost_value
        );
    }

    #[test]
    fn sybil_collapse_cheapens_corruption() {
        // 10 logical nodes backed by one entity: with collapse, corrupting
        // the entity costs one node's capacity but kills all ten.
        let net = NetworkSpec {
            nodes: (0..10)
                .map(|_| NodeSpec {
                    capacity: 64,
                    entity: 0,
                })
                .collect(),
        };
        let files = vec![FileSpec {
            size: 1,
            value: 1.0,
        }];
        let placement = Placement {
            locations: vec![vec![0, 5, 9]],
            survivors_needed: vec![1],
        };
        let mut rng = DetRng::from_seed_label(54, "sybil");
        // Budget = 0.15 of 640 = 96 ≥ one node (64) but < total (640).
        let corrupted = corrupt_nodes(
            &net,
            &placement,
            &files,
            0.15,
            AdversaryStrategy::LargestFirst,
            true,
            &mut rng,
        );
        assert_eq!(corrupted.len(), 10, "whole entity corrupted");
        assert!(!placement.survives(0, &corrupted));
        // In an honest network (distinct entities) the same budget buys a
        // single node.
        let honest_net = NetworkSpec::uniform(10, 64);
        let honest = corrupt_nodes(
            &honest_net,
            &placement,
            &files,
            0.15,
            AdversaryStrategy::LargestFirst,
            false,
            &mut rng,
        );
        assert_eq!(honest.len(), 1);
    }

    #[test]
    fn capacity_weighted_sampling_is_proportional() {
        let net = NetworkSpec {
            nodes: vec![
                NodeSpec {
                    capacity: 10,
                    entity: 0,
                },
                NodeSpec {
                    capacity: 90,
                    entity: 1,
                },
            ],
        };
        let mut rng = DetRng::from_seed_label(55, "cw");
        let samples = sample_capacity_weighted(&net, 50_000, &mut rng);
        let big = samples.iter().filter(|&&n| n == 1).count();
        let frac = big as f64 / samples.len() as f64;
        assert!((frac - 0.9).abs() < 0.01, "frac {frac}");
    }
}
