//! The `Auto_*` consensus tasks (Figs. 7–9) and the punishment machinery:
//! `Auto_CheckAlloc`, `Auto_CheckProof`, `Auto_Refresh`,
//! `Auto_CheckRefresh`, rent distribution, deposit confiscation, and the
//! adversarial fault-injection ops.
//!
//! These are *not* transactions: they run by consensus when
//! [`Engine::advance_to`] moves time past their deadline, which is exactly
//! why the op log stays replayable — the same `AdvanceTo` op deterministically
//! re-executes the same task sequence.
//!
//! `Auto_CheckProof` is split in two phases. The **verify** phase
//! ([`Engine::verify_bucket`]) cryptographically checks the storage proofs
//! on record for a popped bucket — a modeled Merkle path walk per audited
//! replica, the simulated WindowPoSt verification cost. It reads only the
//! task's shard (files + alloc rows) and the parameters, so a bucket's
//! slices verify concurrently on the engine's persistent worker pool. The
//! **commit** phase (the `auto_*` handlers below) then runs in canonical
//! `(time, schedule-seq)` order, folding each audit digest into the
//! engine's `audit_root` before applying rent, punishments and refreshes —
//! bit-identical to a 1-shard engine.
//!
//! On large multi-shard buckets the commit phase itself is parallelized
//! ([`Engine::commit_bucket_batched`]): a read-only **plan** phase fans
//! the `Auto_CheckProof` tasks across the pool, classifying each as a
//! *fast* plan (the steady-state rent-charge/punish/reschedule path, with
//! every consulted sector recorded) or a *sequential* fallback
//! (discards, confiscations, losses, refresh draws — anything touching
//! rng or cross-shard money). The serial walk then applies fast plans
//! directly when their footprints are disjoint from everything mutated
//! earlier in the bucket — `read_sectors ∩ mutated_sectors = ∅`, the
//! file untouched, and the owner's balance re-checked exactly — and
//! re-executes everything else through the frozen sequential reference.
//! Per-shard `cntdown` write batches are deferred and flushed through the
//! pool (before any sequential fallback, and at bucket end), so the
//! file-table writes of a mostly-fast bucket land concurrently. The
//! differential tests in `tests/parallel_commit.rs` pin both strategies
//! to bit-identical `state_root`/`audit_root`/event streams.
//!
//! Inside one slice, [`verify_slice`] batches the work: every audited
//! replica becomes a *lane*, and all lanes walk their authentication paths
//! in lockstep through the multi-lane SHA-256 backends
//! ([`fi_crypto::KeyedDomain::hash_many`]). A single path walk is an
//! inherently sequential hash chain, but independent paths are not — the
//! batched walk hashes 8 (AVX2) or more lanes per compression sweep. The
//! per-task reference path [`verify_check_proof`] is kept verbatim on plain
//! [`keyed_hash`]; small slices use it directly and the differential test
//! pins the batched pipeline against it bit for bit.

use std::collections::HashSet;

use fi_chain::account::{AccountId, Ledger, TokenAmount};
use fi_chain::tasks::Time;
use fi_crypto::{cached_domain, keyed_hash, DetRng, Hash256};

use crate::params::ProtocolParams;
use crate::types::{
    AllocState, FileId, FileState, ProtocolEvent, RemovalReason, Sector, SectorId, SectorState,
};

use super::pool::JobBatch;
use super::shard::{Shard, ShardSlice, ShardedState};
use super::statemap::TrackedMap;
use super::{tuning, Engine, Task, COMPENSATION_POOL, DEPOSIT_ESCROW, RENT_POOL, TRAFFIC_ESCROW};

/// The read-only verdict of auditing one `Auto_CheckProof` task: a
/// commitment over every verified replica proof, later folded into the
/// engine's `audit_root` by the commit phase, plus how many replicas were
/// checked (surfaced as `EngineStats::proofs_audited`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(super) struct ProofAudit {
    /// Fold of the per-replica verification digests, in replica order.
    pub(super) digest: Hash256,
    /// Replicas whose proof-on-record was verified.
    pub(super) replicas_checked: u64,
}

impl Engine {
    // ------------------------------------------------------------------
    // Verify phase (read-only, parallel across shards)
    // ------------------------------------------------------------------

    /// Audits every `Auto_CheckProof` task in a popped bucket, one verdict
    /// slot per popped task (non-audit tasks get `None`). Each shard's
    /// slice touches only that shard's state, so large buckets fan out
    /// across the persistent worker pool.
    pub(super) fn verify_bucket(
        &self,
        slices: &[ShardSlice],
        now: Time,
    ) -> Vec<Vec<Option<ProofAudit>>> {
        let path_len = self.params.audit_path_len;
        let shards = &self.shards.shards;
        // Count audit tasks only when fan-out is even possible: the
        // single-shard engine (the default) skips this per-bucket scan on
        // the hot `advance_to` path.
        let audit_tasks = || -> usize {
            slices
                .iter()
                .map(|slice| {
                    slice
                        .iter()
                        .filter(|(_, (_, task))| matches!(task, Task::CheckProof(_)))
                        .count()
                })
                .sum()
        };
        if shards.len() > 1 && audit_tasks() >= tuning::parallel_verify_threshold() {
            // Shards are chunked over at most the pool's worker count — a
            // 256-shard engine on a 4-core host gets 4 jobs of 64 shards
            // each, not 256 one-audit jobs. Chunks are contiguous and
            // rejoined in order, so the output is the same per-shard Vec
            // the inline path produces.
            let pairs: Vec<(&Shard, &ShardSlice)> = shards.iter().zip(slices.iter()).collect();
            let pool = self.pool();
            let workers = pool.workers().clamp(1, pairs.len());
            let chunk_len = pairs.len().div_ceil(workers);
            let chunks: Vec<&[(&Shard, &ShardSlice)]> = pairs.chunks(chunk_len).collect();
            let mut chunk_out: Vec<Vec<Vec<Option<ProofAudit>>>> =
                chunks.iter().map(|_| Vec::new()).collect();
            let jobs: JobBatch<'_> = chunks
                .into_iter()
                .zip(chunk_out.iter_mut())
                .map(|(group, slot)| {
                    Box::new(move || {
                        *slot = group
                            .iter()
                            .map(|(shard, slice)| verify_slice(shard, slice, now, path_len))
                            .collect();
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(jobs);
            chunk_out.into_iter().flatten().collect()
        } else {
            shards
                .iter()
                .zip(slices.iter())
                .map(|(shard, slice)| verify_slice(shard, slice, now, path_len))
                .collect()
        }
    }

    // ------------------------------------------------------------------
    // Batched commit phase (plan in parallel, apply validated)
    // ------------------------------------------------------------------

    /// Commits a merged, canonically ordered bucket through the batched
    /// strategy: a read-only plan phase fans the `Auto_CheckProof` tasks
    /// across the worker pool, then a serial walk applies each task in
    /// the exact `(time, schedule-seq)` order the sequential fold uses —
    /// via its fast plan when still valid, via [`Engine::execute`]
    /// otherwise. Bit-identical to folding the same bucket sequentially:
    /// fast plans draw no rng, log the same events in the same order, and
    /// fall back whenever anything they read was mutated earlier in the
    /// bucket.
    ///
    /// The disjointness rule guarding a fast apply:
    ///
    /// * `read_sectors ∩ mutated_sectors = ∅` — every sector the plan
    ///   consulted (each entry's holder, for the punish/confiscate
    ///   decisions) is untouched by earlier punishments, confiscations and
    ///   fallback footprints;
    /// * the plan's file is not in `mutated_files` — no earlier fallback
    ///   ran a task of the same file (`Auto_CheckRefresh` mutates entry
    ///   states, `last` stamps and `cntdown` of its file);
    /// * the owner's balance still covers the cycle cost — re-checked
    ///   exactly at apply time, so cross-file money movement (same owner,
    ///   rent distribution, compensation) can never smuggle a stale
    ///   insolvency decision through.
    ///
    /// Corrupted-sector cascades (`void_sector_content`) are covered by
    /// the first rule: a victim file's plan recorded the corrupted holder
    /// in `read_sectors`, and the confiscating task's footprint put that
    /// sector into `mutated_sectors`. The remaining cascade mutations
    /// (reverting an in-flight move whose *target* died) touch only
    /// `next`/state fields the plan's decisions don't depend on.
    ///
    /// Fast applies defer their `cntdown` decrements into per-shard write
    /// batches, flushed through the pool before any sequential fallback
    /// (which must see the sequential file table) and at bucket end.
    pub(super) fn commit_bucket_batched(
        &mut self,
        now: Time,
        batch: Vec<(Time, u64, Task, Option<ProofAudit>)>,
    ) {
        let plans = self.plan_bucket(now, &batch);
        let shard_count = self.shards.shards.len();
        let mut pending: Vec<Vec<(FileId, i64)>> = vec![Vec::new(); shard_count];
        let mut mutated_sectors: HashSet<SectorId> = HashSet::new();
        let mut mutated_files: HashSet<FileId> = HashSet::new();
        for ((_, _, task, audit), plan) in batch.into_iter().zip(plans) {
            let fast = plan
                .as_ref()
                .is_some_and(|p| self.plan_valid(p, &mutated_sectors, &mutated_files));
            if fast {
                let plan = plan.expect("checked above");
                self.apply_check_proof_plan(now, plan, audit, &mut mutated_sectors, &mut pending);
            } else {
                self.flush_cntdown_writes(&mut pending);
                note_fallback_footprint(
                    &self.shards,
                    &task,
                    &mut mutated_sectors,
                    &mut mutated_files,
                );
                self.execute(task, audit);
            }
        }
        self.flush_cntdown_writes(&mut pending);
    }

    /// The read-only plan phase: one [`CheckProofPlan`] per
    /// `Auto_CheckProof` task (other tasks get `None`), computed across
    /// the worker pool. Each plan touches only its file's shard, the
    /// sector table, the ledger and the parameters — all immutable here.
    fn plan_bucket(
        &self,
        now: Time,
        batch: &[(Time, u64, Task, Option<ProofAudit>)],
    ) -> Vec<Option<CheckProofPlan>> {
        let mut plans: Vec<Option<CheckProofPlan>> = batch.iter().map(|_| None).collect();
        let audits: Vec<usize> = batch
            .iter()
            .enumerate()
            .filter_map(|(i, (_, _, task, _))| matches!(task, Task::CheckProof(_)).then_some(i))
            .collect();
        if audits.is_empty() {
            return plans;
        }
        let pool = self.pool();
        let workers = pool.workers().clamp(1, audits.len());
        let chunk_len = audits.len().div_ceil(workers);
        let shards = &self.shards;
        let sectors = &self.sectors;
        let ledger = &self.ledger;
        let params = &self.params;

        let chunks: Vec<&[usize]> = audits.chunks(chunk_len).collect();
        let mut chunk_out: Vec<Vec<(usize, CheckProofPlan)>> =
            chunks.iter().map(|_| Vec::new()).collect();
        let jobs: JobBatch<'_> = chunks
            .into_iter()
            .zip(chunk_out.iter_mut())
            .map(|(idxs, slot)| {
                Box::new(move || {
                    *slot = idxs
                        .iter()
                        .map(|&i| {
                            let Task::CheckProof(f) = batch[i].2 else {
                                unreachable!("filtered to CheckProof above")
                            };
                            let plan =
                                plan_check_proof(shards.shard(f), sectors, ledger, params, f, now);
                            (i, plan)
                        })
                        .collect();
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        for chunk in chunk_out {
            for (i, plan) in chunk {
                plans[i] = Some(plan);
            }
        }
        plans
    }

    /// Whether a plan's assumptions still hold at its turn in the serial
    /// walk (the disjointness rule; see [`Engine::commit_bucket_batched`]).
    fn plan_valid(
        &self,
        plan: &CheckProofPlan,
        mutated_sectors: &HashSet<SectorId>,
        mutated_files: &HashSet<FileId>,
    ) -> bool {
        if mutated_files.contains(&plan.file) {
            return false;
        }
        if plan
            .read_sectors
            .iter()
            .any(|s| mutated_sectors.contains(s))
        {
            return false;
        }
        match &plan.kind {
            PlanKind::MissingFile => true,
            PlanKind::Fast { owner, cost, .. } => self.ledger.balance(*owner) >= *cost,
            PlanKind::Sequential => false,
        }
    }

    /// Applies one validated fast plan — the exact effect sequence of
    /// [`Engine::auto_check_proof`] on its steady-state path, with the
    /// `cntdown` write deferred into its shard's batch.
    fn apply_check_proof_plan(
        &mut self,
        now: Time,
        plan: CheckProofPlan,
        audit: Option<ProofAudit>,
        mutated_sectors: &mut HashSet<SectorId>,
        pending: &mut [Vec<(FileId, i64)>],
    ) {
        let file = plan.file;
        if let Some(a) = &audit {
            self.audit_root = keyed_hash(
                "fileinsurer/audit-root",
                &[self.audit_root.as_bytes(), a.digest.as_bytes()],
            );
            self.shards.shard_mut(file).stats.proofs_audited += a.replicas_checked;
        }
        match plan.kind {
            PlanKind::MissingFile => {}
            PlanKind::Fast {
                owner,
                rent,
                gas,
                punish,
                new_cntdown,
                ..
            } => {
                self.ledger
                    .transfer(owner, RENT_POOL, rent)
                    .expect("balance re-checked by plan_valid");
                self.ledger.burn(owner, gas).expect("balance re-checked");
                for holder in punish {
                    self.punish(holder);
                    mutated_sectors.insert(holder);
                }
                self.schedule_task(now + self.params.proof_cycle, Task::CheckProof(file));
                pending[self.shards.shard_of(file)].push((file, new_cntdown));
            }
            PlanKind::Sequential => unreachable!("plan_valid rejects Sequential"),
        }
        // `execute`'s per-task increment.
        self.op_counter += 1;
    }

    /// Flushes the deferred per-shard `cntdown` write batches — through
    /// the pool when large enough to pay for the dispatch (each job owns
    /// one shard's file table, so the writes are disjoint by
    /// construction), inline otherwise.
    fn flush_cntdown_writes(&mut self, pending: &mut [Vec<(FileId, i64)>]) {
        let total: usize = pending.iter().map(Vec::len).sum();
        if total == 0 {
            return;
        }
        if total >= tuning::parallel_audit_commit_threshold() {
            let pool = self.pool();
            let mut jobs: JobBatch<'_> = Vec::new();
            for (shard, writes) in self.shards.shards.iter_mut().zip(pending.iter_mut()) {
                if writes.is_empty() {
                    continue;
                }
                let writes = std::mem::take(writes);
                jobs.push(Box::new(move || {
                    for (file, cntdown) in writes {
                        shard
                            .files
                            .get_mut(&file)
                            .expect("deferred cntdown write targets a live file")
                            .cntdown = cntdown;
                    }
                }));
            }
            pool.run(jobs);
        } else {
            for (idx, writes) in pending.iter_mut().enumerate() {
                for (file, cntdown) in std::mem::take(writes) {
                    self.shards.shards[idx]
                        .files
                        .get_mut(&file)
                        .expect("deferred cntdown write targets a live file")
                        .cntdown = cntdown;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Adversary / fault injection
    // ------------------------------------------------------------------

    /// Injects a *silent* physical failure: the provider can no longer
    /// produce storage proofs; the network discovers it via the
    /// `ProofDeadline` machinery (the realistic path).
    ///
    /// # Panics
    ///
    /// Panics on unknown sector.
    pub fn fail_sector_silently(&mut self, sector: SectorId) {
        self.apply(crate::ops::Op::FailSector { sector })
            .expect("fault injection is infallible");
    }

    pub(super) fn fail_sector_op(&mut self, sector: SectorId) {
        self.sectors
            .get_mut(&sector)
            .expect("unknown sector")
            .physically_failed = true;
        self.op_counter += 1;
    }

    /// Corrupts a sector *with immediate detection*: deposit confiscated,
    /// replicas voided, mid-refresh transfers resolved (used by
    /// experiments that don't simulate the proof timeline).
    ///
    /// # Panics
    ///
    /// Panics on unknown sector.
    pub fn corrupt_sector_now(&mut self, sector: SectorId) {
        self.apply(crate::ops::Op::CorruptSector { sector })
            .expect("fault injection is infallible");
    }

    pub(super) fn corrupt_sector_op(&mut self, sector: SectorId) {
        let s = self.sectors.get_mut(&sector).expect("unknown sector");
        if s.state == SectorState::Corrupted {
            return;
        }
        s.state = SectorState::Corrupted;
        s.physically_failed = true;
        let confiscated = s.deposit;
        s.deposit = TokenAmount::ZERO;
        self.sampler.remove(&sector);
        self.ledger
            .transfer(DEPOSIT_ESCROW, COMPENSATION_POOL, confiscated)
            .expect("deposit escrow covers pledged deposits");
        self.stats_global.sectors_corrupted += 1;
        self.log(ProtocolEvent::SectorCorrupted {
            sector,
            confiscated,
        });
        self.void_sector_content(sector);
        self.op_counter += 1;
    }

    // ------------------------------------------------------------------
    // Auto tasks (the sequential commit phase)
    // ------------------------------------------------------------------

    /// `Auto_CheckAlloc` (Fig. 7).
    pub(super) fn auto_check_alloc(&mut self, file: FileId) {
        let Some(desc) = self.shards.file(file) else {
            return;
        };
        let cp = desc.cp;
        let owner = desc.owner;
        let size = desc.size;

        // First pass: all entries must be Confirm or Corrupted.
        let all_ok = (0..cp).all(|i| {
            matches!(
                self.shards.entry(file, i).map(|e| e.state),
                Some(AllocState::Confirm) | Some(AllocState::Corrupted)
            )
        });
        if !all_ok {
            // Upload failed: refund outstanding traffic escrow for
            // unconfirmed replicas, release reservations, drop the file.
            let unconfirmed = (0..cp)
                .filter(|&i| self.shards.entry(file, i).map(|e| e.state) == Some(AllocState::Alloc))
                .count() as u128;
            let refund = TokenAmount(self.params.traffic_fee(size).0 * unconfirmed);
            self.ledger.transfer_up_to(TRAFFIC_ESCROW, owner, refund);
            self.remove_file_completely(file, RemovalReason::UploadFailed);
            return;
        }

        // Second pass: finalise.
        let now = self.now();
        for i in 0..cp {
            let e = self.shards.entry_mut(file, i).expect("entry exists");
            match e.state {
                AllocState::Confirm => {
                    e.prev = e.next.take();
                    e.last = Some(now);
                    e.state = AllocState::Normal;
                }
                AllocState::Corrupted => {
                    e.prev = None;
                    e.next = None;
                    e.last = None;
                }
                _ => unreachable!("checked above"),
            }
        }
        let avg_refresh = self.params.avg_refresh;
        let cntdown = Self::sample_cntdown(&mut self.rng, avg_refresh);
        let desc = self.shards.file_mut(file).expect("file exists");
        // A discard issued during the transfer window (File_Discard, or the
        // file_add_segmented rollback) must survive finalisation: keep the
        // state so the first Auto_CheckProof removes the file instead of it
        // silently reviving as Normal.
        if desc.state != FileState::Discarded {
            desc.state = FileState::Normal;
        }
        desc.cntdown = cntdown;
        self.schedule_task(now + self.params.proof_cycle, Task::CheckProof(file));
        self.log(ProtocolEvent::FileStored { file });
    }

    /// `Auto_CheckProof` (Fig. 8) — the commit half. The cryptographic
    /// verification of the proofs on record already happened in the
    /// read-only phase; its digest arrives as `audit` and is folded into
    /// the engine's audit root first, so the root pins the parallel
    /// verification results in canonical order.
    pub(super) fn auto_check_proof(&mut self, file: FileId, audit: Option<ProofAudit>) {
        if let Some(a) = &audit {
            self.audit_root = keyed_hash(
                "fileinsurer/audit-root",
                &[self.audit_root.as_bytes(), a.digest.as_bytes()],
            );
            self.shards.shard_mut(file).stats.proofs_audited += a.replicas_checked;
        }
        let Some(desc) = self.shards.file(file) else {
            return;
        };
        let owner = desc.owner;
        let size = desc.size;
        let cp = desc.cp;
        let now = self.now();

        // 1. Charge the next cycle (rent + prepaid gas) or force-discard.
        if desc.state == FileState::Normal {
            let cost = self.params.cycle_cost(size, cp);
            if self.ledger.balance(owner) < cost {
                let desc = self.shards.file_mut(file).expect("file exists");
                desc.state = FileState::Discarded;
                self.shards
                    .set_discard_reason(file, RemovalReason::InsufficientFunds);
            } else {
                let rent = TokenAmount(self.params.unit_rent.0 * size as u128 * cp as u128);
                let gas = cost - rent;
                self.ledger
                    .transfer(owner, RENT_POOL, rent)
                    .expect("balance checked");
                self.ledger.burn(owner, gas).expect("balance checked");
            }
        }

        // 2. Late-proof checks per entry.
        for i in 0..cp {
            let Some(e) = self.shards.entry(file, i) else {
                continue;
            };
            if e.state == AllocState::Corrupted {
                continue;
            }
            let Some(holder) = e.prev else { continue };
            let holder_corrupted = self
                .sectors
                .get(&holder)
                .map(|s| s.state == SectorState::Corrupted)
                .unwrap_or(true);
            if holder_corrupted {
                continue;
            }
            let last = e.last.unwrap_or(0);
            if now >= last + self.params.proof_deadline {
                self.confiscate_and_corrupt(holder);
            } else if now >= last + self.params.proof_due {
                self.punish(holder);
            }
        }

        // 3. Removal / loss / reschedule.
        let state = self.shards.file(file).map(|f| f.state);
        if state == Some(FileState::Discarded) {
            let reason = self
                .shards
                .take_discard_reason(file)
                .unwrap_or(RemovalReason::ClientDiscard);
            self.remove_file_completely(file, reason);
            return;
        }
        let all_corrupted = (0..cp)
            .all(|i| self.shards.entry(file, i).map(|e| e.state) == Some(AllocState::Corrupted));
        if all_corrupted {
            self.compensate_loss(file);
            return;
        }
        self.schedule_task(now + self.params.proof_cycle, Task::CheckProof(file));
        let desc = self.shards.file_mut(file).expect("file exists");
        desc.cntdown -= 1;
        if desc.cntdown <= 0 {
            let i = self.rng.below(cp as u64) as u32; // RandomIndex(f)
            self.auto_refresh(file, i);
        }
    }

    /// `Auto_Refresh` (Fig. 9).
    pub(super) fn auto_refresh(&mut self, file: FileId, index: u32) {
        let Some(desc) = self.shards.file(file) else {
            return;
        };
        let size = desc.size;
        let entry_state = self.shards.entry(file, index).map(|e| e.state);
        if entry_state != Some(AllocState::Normal) {
            // The chosen replica is corrupted or already mid-move; re-arm.
            let avg = self.params.avg_refresh;
            let cntdown = Self::sample_cntdown(&mut self.rng, avg);
            if let Some(d) = self.shards.file_mut(file) {
                d.cntdown = cntdown;
            }
            return;
        }

        let target = {
            let mut rng = self.rng.clone();
            let choice = self.sampler.sample(&mut rng).copied();
            self.rng = rng;
            choice
        };
        let fits = target
            .and_then(|s| self.sectors.get(&s))
            .map(|s| s.free_cap >= size)
            .unwrap_or(false);
        if !fits {
            // Collision — "almost never happens" (Fig. 9 else-branch).
            self.shards.shard_mut(file).stats.refresh_collisions += 1;
            self.log(ProtocolEvent::RefreshCollision { file, index });
            let avg = self.params.avg_refresh;
            let cntdown = Self::sample_cntdown(&mut self.rng, avg);
            if let Some(d) = self.shards.file_mut(file) {
                d.cntdown = cntdown;
            }
            return;
        }
        let target = target.expect("fits implies some");
        self.reserve(target, size);
        self.sector_replicas
            .get_mut(&target)
            .expect("sector index")
            .insert((file, index));
        let e = self.shards.entry_mut(file, index).expect("entry exists");
        let from = e.prev;
        e.next = Some(target);
        e.state = AllocState::Alloc;
        let deadline = self.now() + self.params.transfer_window(size);
        self.schedule_task(deadline, Task::CheckRefresh(file, index));
        self.shards.shard_mut(file).stats.refreshes_started += 1;
        self.log(ProtocolEvent::ReplicaSwap {
            file,
            index,
            from,
            to: target,
        });
    }

    /// `Auto_CheckRefresh` (Fig. 9).
    pub(super) fn auto_check_refresh(&mut self, file: FileId, index: u32) {
        let Some(desc) = self.shards.file(file) else {
            return;
        };
        let size = desc.size;
        let cp = desc.cp;
        let avg = self.params.avg_refresh;
        let now = self.now();
        let Some(entry) = self.shards.entry(file, index) else {
            return;
        };
        let (state, prev, next) = (entry.state, entry.prev, entry.next);

        match state {
            AllocState::Confirm => {
                // Transfer succeeded: release the old holder, flip over.
                let e = self.shards.entry_mut(file, index).expect("entry");
                e.prev = next;
                e.next = None;
                e.last = Some(now);
                e.state = AllocState::Normal;
                if let Some(old_sector) = prev {
                    if prev == next {
                        // Self-move: free the transient second copy but keep
                        // the replica's membership in the sector index.
                        self.release_reservation(old_sector, size);
                    } else {
                        self.release_replica(old_sector, file, index, size);
                    }
                }
                self.shards.shard_mut(file).stats.refreshes_completed += 1;
                let cntdown = Self::sample_cntdown(&mut self.rng, avg);
                if let Some(d) = self.shards.file_mut(file) {
                    d.cntdown = cntdown;
                }
            }
            AllocState::Alloc => {
                // Not confirmed in time: punish the tardy target and every
                // current holder (Fig. 9: "punish entry.next; for j ∈ [f.cp]
                // punish allocTable[f,j].prev"), then retry the refresh.
                if let Some(t) = next {
                    self.punish(t);
                    self.release_reservation_indexed(t, file, index, size);
                }
                let e = self.shards.entry_mut(file, index).expect("entry");
                e.next = None;
                e.state = AllocState::Normal;
                let mut holders = Vec::new();
                for j in 0..cp {
                    if let Some(other) = self.shards.entry(file, j) {
                        if other.state != AllocState::Corrupted {
                            if let Some(h) = other.prev {
                                holders.push(h);
                            }
                        }
                    }
                }
                for h in holders {
                    self.punish(h);
                }
                self.auto_refresh(file, index);
            }
            // Resolved by corruption handling in the meantime.
            AllocState::Normal | AllocState::Corrupted => {}
        }
    }

    /// Rent distribution at period end (§IV-A.2): pro rata capacity over
    /// sectors functioning this period.
    pub(super) fn auto_distribute_rent(&mut self) {
        let pool = self.ledger.balance(RENT_POOL);
        let live: Vec<(SectorId, fi_chain::account::AccountId, u64)> = {
            let mut v: Vec<_> = self
                .sectors
                .values()
                .filter(|s| s.state != SectorState::Corrupted)
                .map(|s| (s.id, s.owner, s.capacity))
                .collect();
            v.sort_unstable_by_key(|(id, _, _)| *id);
            v
        };
        let total_capacity: u64 = live.iter().map(|(_, _, c)| c).sum();
        let mut paid = TokenAmount::ZERO;
        if !pool.is_zero() && total_capacity > 0 {
            for (_, owner, capacity) in &live {
                let share = pool.mul_ratio(*capacity as u128, total_capacity as u128);
                if !share.is_zero() {
                    self.ledger
                        .transfer(RENT_POOL, *owner, share)
                        .expect("pool covers shares");
                    paid += share;
                }
            }
        }
        self.log(ProtocolEvent::RentDistributed { total: paid });
        let next = self.now() + self.rent_period();
        self.schedule_task(next, Task::DistributeRent);
    }

    // ------------------------------------------------------------------
    // Punishment & compensation
    // ------------------------------------------------------------------

    pub(super) fn sample_cntdown(rng: &mut DetRng, avg_refresh: f64) -> i64 {
        (rng.sample_exp(avg_refresh).ceil() as i64).max(1)
    }

    pub(super) fn punish(&mut self, sector: SectorId) {
        let Some(s) = self.sectors.get_mut(&sector) else {
            return;
        };
        if s.state == SectorState::Corrupted {
            return;
        }
        let amount = self.params.punishment(s.deposit).min(s.deposit);
        if amount.is_zero() {
            return;
        }
        s.deposit = s.deposit - amount;
        self.ledger
            .transfer(DEPOSIT_ESCROW, COMPENSATION_POOL, amount)
            .expect("escrow covers punishment");
        self.stats_global.punishments += 1;
        self.log(ProtocolEvent::ProviderPunished { sector, amount });
    }

    /// Deadline miss: confiscate the whole deposit and void the sector.
    pub(super) fn confiscate_and_corrupt(&mut self, sector: SectorId) {
        let Some(s) = self.sectors.get_mut(&sector) else {
            return;
        };
        if s.state == SectorState::Corrupted {
            return;
        }
        s.state = SectorState::Corrupted;
        s.physically_failed = true;
        let confiscated = s.deposit;
        s.deposit = TokenAmount::ZERO;
        self.sampler.remove(&sector);
        self.ledger
            .transfer(DEPOSIT_ESCROW, COMPENSATION_POOL, confiscated)
            .expect("escrow covers deposit");
        self.stats_global.sectors_corrupted += 1;
        self.log(ProtocolEvent::SectorCorrupted {
            sector,
            confiscated,
        });
        self.void_sector_content(sector);
    }

    /// Full compensation on loss (Fig. 8, §IV-B).
    pub(super) fn compensate_loss(&mut self, file: FileId) {
        let Some(desc) = self.shards.file(file) else {
            return;
        };
        let owner = desc.owner;
        let value = desc.value;
        let paid = self.ledger.transfer_up_to(COMPENSATION_POOL, owner, value);
        let stats = &mut self.shards.shard_mut(file).stats;
        stats.files_lost += 1;
        stats.value_lost += value;
        stats.compensation_paid += paid;
        stats.compensation_shortfall += value - paid;
        self.log(ProtocolEvent::FileLost {
            file,
            value,
            compensated: paid,
        });
        self.remove_file_completely(file, RemovalReason::Lost);
    }
}

/// The read-only classification of one `Auto_CheckProof` task, computed
/// in parallel by [`Engine::plan_bucket`] and applied (or discarded) by
/// the serial walk in [`Engine::commit_bucket_batched`].
struct CheckProofPlan {
    file: FileId,
    kind: PlanKind,
    /// Every sector whose state the plan consulted (each non-corrupted
    /// entry's holder): the plan is invalid once any of them is mutated
    /// earlier in the bucket.
    read_sectors: Vec<SectorId>,
}

enum PlanKind {
    /// No descriptor: the commit is a no-op beyond the audit fold.
    MissingFile,
    /// The steady-state path — charge rent + prepaid gas, punish the
    /// recorded late holders in entry order, reschedule, decrement
    /// `cntdown` (still positive, so no refresh draw). Draws no rng.
    Fast {
        owner: AccountId,
        /// Full cycle cost, re-checked against the live balance at apply.
        cost: TokenAmount,
        rent: TokenAmount,
        gas: TokenAmount,
        /// Holders past `proof_due`, in entry order (duplicates kept:
        /// sequential punishment recomputes on the reduced deposit).
        punish: Vec<SectorId>,
        new_cntdown: i64,
    },
    /// Anything else — insolvency discard, deadline confiscation, full
    /// loss, refresh draw, non-Normal file state — re-executes through
    /// the frozen sequential reference.
    Sequential,
}

/// Mirrors the read path of [`Engine::auto_check_proof`] without mutating
/// anything, recording every consulted sector. Pure in the engine state
/// it is handed, so a bucket's plans compute concurrently.
fn plan_check_proof(
    shard: &Shard,
    sectors: &TrackedMap<SectorId, Sector>,
    ledger: &Ledger,
    params: &ProtocolParams,
    file: FileId,
    now: Time,
) -> CheckProofPlan {
    let mut read_sectors: Vec<SectorId> = Vec::new();
    let Some(desc) = shard.files.get(&file) else {
        return CheckProofPlan {
            file,
            kind: PlanKind::MissingFile,
            read_sectors,
        };
    };
    let sequential = |read_sectors| CheckProofPlan {
        file,
        kind: PlanKind::Sequential,
        read_sectors,
    };
    if desc.state != FileState::Normal {
        return sequential(read_sectors);
    }
    let cost = params.cycle_cost(desc.size, desc.cp);
    if ledger.balance(desc.owner) < cost {
        // Insolvency discard: removal and refunds go sequential.
        return sequential(read_sectors);
    }
    let rent = TokenAmount(params.unit_rent.0 * desc.size as u128 * desc.cp as u128);
    let gas = cost - rent;

    let mut punish: Vec<SectorId> = Vec::new();
    for i in 0..desc.cp {
        let Some(e) = shard.alloc.get(&(file, i)) else {
            continue;
        };
        if e.state == AllocState::Corrupted {
            continue;
        }
        let Some(holder) = e.prev else { continue };
        read_sectors.push(holder);
        let holder_corrupted = sectors
            .get(&holder)
            .map(|s| s.state == SectorState::Corrupted)
            .unwrap_or(true);
        if holder_corrupted {
            continue;
        }
        let last = e.last.unwrap_or(0);
        if now >= last + params.proof_deadline {
            // Confiscation cascades through void_sector_content.
            return sequential(read_sectors);
        } else if now >= last + params.proof_due {
            punish.push(holder);
        }
    }

    let all_corrupted = (0..desc.cp)
        .all(|i| shard.alloc.get(&(file, i)).map(|e| e.state) == Some(AllocState::Corrupted));
    if all_corrupted {
        // Compensation + removal go sequential.
        return sequential(read_sectors);
    }
    let new_cntdown = desc.cntdown - 1;
    if new_cntdown <= 0 {
        // The refresh draw consumes rng; keep the whole task sequential.
        return sequential(read_sectors);
    }
    CheckProofPlan {
        file,
        kind: PlanKind::Fast {
            owner: desc.owner,
            cost,
            rent,
            gas,
            punish,
            new_cntdown,
        },
        read_sectors,
    }
}

/// Records what a sequential fallback may mutate, *before* it runs: its
/// file (entry states, `last` stamps, `cntdown`, possibly removal) and
/// every sector its entries reference (punishments, confiscations and
/// their `void_sector_content` cascades, replica releases, drained-sector
/// removal all start from an entry's `prev`/`next`). `DistributeRent`
/// moves pool money to sector owners only — fast plans re-check the one
/// balance they depend on exactly, so it needs no footprint.
fn note_fallback_footprint(
    shards: &ShardedState,
    task: &Task,
    mutated_sectors: &mut HashSet<SectorId>,
    mutated_files: &mut HashSet<FileId>,
) {
    let file = match task {
        Task::CheckAlloc(f) | Task::CheckProof(f) | Task::CheckRefresh(f, _) => *f,
        Task::DistributeRent => return,
    };
    mutated_files.insert(file);
    let shard = shards.shard(file);
    if let Some(desc) = shard.files.get(&file) {
        for i in 0..desc.cp {
            if let Some(e) = shard.alloc.get(&(file, i)) {
                if let Some(s) = e.prev {
                    mutated_sectors.insert(s);
                }
                if let Some(s) = e.next {
                    mutated_sectors.insert(s);
                }
            }
        }
    }
}

cached_domain!(fn audit_task_domain, "fileinsurer/audit-task");
cached_domain!(fn audit_leaf_domain, "fileinsurer/audit-leaf");
cached_domain!(fn audit_node_domain, "fileinsurer/audit-node");
cached_domain!(fn audit_fold_domain, "fileinsurer/audit-fold");

/// Verifies the storage proofs on record for every `Auto_CheckProof` task
/// in one shard's slice. Pure and shard-local: it reads the shard's file
/// descriptors and allocation rows, nothing else.
///
/// Slices with at least [`tuning::batch_verify_threshold`] audit tasks run
/// the batched pipeline: per-replica path walks become lockstep SIMD hash
/// lanes, bit-identical to calling [`verify_check_proof`] per task.
fn verify_slice(
    shard: &Shard,
    slice: &ShardSlice,
    now: Time,
    path_len: u32,
) -> Vec<Option<ProofAudit>> {
    let tasks: Vec<(usize, FileId)> = slice
        .iter()
        .enumerate()
        .filter_map(|(slot, (_, (_, task)))| match task {
            Task::CheckProof(f) => Some((slot, *f)),
            _ => None,
        })
        .collect();
    let mut out: Vec<Option<ProofAudit>> = vec![None; slice.len()];
    if tasks.len() < tuning::batch_verify_threshold() {
        for &(slot, file) in &tasks {
            out[slot] = Some(verify_check_proof(shard, file, now, path_len));
        }
        return out;
    }
    let now_be = now.to_be_bytes();

    // Phase 0: the per-task base digest, one lane per audit task.
    let file_bes: Vec<[u8; 8]> = tasks.iter().map(|(_, f)| f.0.to_be_bytes()).collect();
    let task_lanes: Vec<[&[u8]; 2]> = file_bes
        .iter()
        .map(|fb| [fb.as_slice(), now_be.as_slice()])
        .collect();
    let task_refs: Vec<&[&[u8]]> = task_lanes.iter().map(|l| l.as_slice()).collect();
    let mut digests = audit_task_domain().hash_many(&task_refs);

    // Phase 1: collect one lane per replica with a proof on record,
    // task-major so the phase-3 folds replay each task's replicas in
    // replica order — the exact fold sequence of the reference path.
    let mut replicas_checked = vec![0u64; tasks.len()];
    let mut lanes: Vec<(usize, Hash256, [u8; 4], [u8; 8])> = Vec::new();
    for (t, &(_, file)) in tasks.iter().enumerate() {
        let Some(desc) = shard.files.get(&file) else {
            continue;
        };
        for i in 0..desc.cp {
            let Some(e) = shard.alloc.get(&(file, i)) else {
                continue;
            };
            if e.state == AllocState::Corrupted {
                continue;
            }
            let Some(last) = e.last else { continue };
            lanes.push((t, desc.merkle_root, i.to_be_bytes(), last.to_be_bytes()));
            replicas_checked[t] += 1;
        }
    }

    // Phase 2: leaf derivation plus the lockstep authentication-path walk.
    // Each lane's chain is sequential, but the lanes are independent, so
    // every level is one multi-lane sweep across the whole tile.
    let mut nodes: Vec<Hash256> = Vec::with_capacity(lanes.len());
    for tile in lanes.chunks(tuning::lane_tile()) {
        let leaf_lanes: Vec<[&[u8]; 4]> = tile
            .iter()
            .map(|(_, root, i_be, last_be)| {
                [
                    root.as_bytes().as_slice(),
                    i_be.as_slice(),
                    last_be.as_slice(),
                    now_be.as_slice(),
                ]
            })
            .collect();
        let leaf_refs: Vec<&[&[u8]]> = leaf_lanes.iter().map(|l| l.as_slice()).collect();
        let mut walk = audit_leaf_domain().hash_many(&leaf_refs);
        for level in 0..path_len {
            let level_be = level.to_be_bytes();
            let node_lanes: Vec<[&[u8]; 2]> = walk
                .iter()
                .map(|n| [n.as_bytes().as_slice(), level_be.as_slice()])
                .collect();
            let node_refs: Vec<&[&[u8]]> = node_lanes.iter().map(|l| l.as_slice()).collect();
            walk = audit_node_domain().hash_many(&node_refs);
        }
        nodes.extend(walk);
    }

    // Phase 3: fold each walked node into its task digest, in lane order.
    let fold = audit_fold_domain();
    for (&(t, ..), node) in lanes.iter().zip(&nodes) {
        digests[t] = fold.hash(&[digests[t].as_bytes(), node.as_bytes()]);
    }
    for (t, &(slot, _)) in tasks.iter().enumerate() {
        out[slot] = Some(ProofAudit {
            digest: digests[t],
            replicas_checked: replicas_checked[t],
        });
    }
    out
}

/// The modeled WindowPoSt verification for one file: for each replica with
/// a proof on record (a `last` timestamp and a non-corrupted entry), derive
/// the challenged leaf from the file's Merkle commitment and the proof
/// timestamp, then walk a `path_len`-node authentication path. The digests
/// fold in replica order into one per-task commitment.
fn verify_check_proof(shard: &Shard, file: FileId, now: Time, path_len: u32) -> ProofAudit {
    let mut digest = keyed_hash(
        "fileinsurer/audit-task",
        &[&file.0.to_be_bytes(), &now.to_be_bytes()],
    );
    let mut replicas_checked = 0u64;
    let Some(desc) = shard.files.get(&file) else {
        return ProofAudit {
            digest,
            replicas_checked,
        };
    };
    for i in 0..desc.cp {
        let Some(e) = shard.alloc.get(&(file, i)) else {
            continue;
        };
        if e.state == AllocState::Corrupted {
            continue;
        }
        let Some(last) = e.last else { continue };
        let mut node = keyed_hash(
            "fileinsurer/audit-leaf",
            &[
                desc.merkle_root.as_bytes(),
                &i.to_be_bytes(),
                &last.to_be_bytes(),
                &now.to_be_bytes(),
            ],
        );
        for level in 0..path_len {
            node = keyed_hash(
                "fileinsurer/audit-node",
                &[node.as_bytes(), &level.to_be_bytes()],
            );
        }
        digest = keyed_hash(
            "fileinsurer/audit-fold",
            &[digest.as_bytes(), node.as_bytes()],
        );
        replicas_checked += 1;
    }
    ProofAudit {
        digest,
        replicas_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AllocEntry, FileDescriptor, FileState};
    use fi_chain::account::AccountId;
    use fi_chain::tasks::SchedulerKind;

    /// A shard with `files` synthetic descriptors mixing replica counts and
    /// entry states: normal proofs on record, never-proved, corrupted, and
    /// mid-transfer rows — every skip branch of the verifier.
    fn synthetic_shard(files: u64) -> Shard {
        let mut shard = Shard::new(SchedulerKind::Wheel, 1);
        for f in 0..files {
            let file = FileId(f);
            let cp = 1 + (f % 4) as u32;
            shard.files.insert(
                file,
                FileDescriptor {
                    id: file,
                    owner: AccountId(1),
                    size: 4,
                    value: TokenAmount(1_000),
                    merkle_root: keyed_hash("test/root", &[&f.to_be_bytes()]),
                    cp,
                    cntdown: 3,
                    state: FileState::Normal,
                },
            );
            for i in 0..cp {
                let entry = match (f + i as u64) % 4 {
                    0 => AllocEntry {
                        prev: Some(SectorId(1)),
                        next: None,
                        last: Some(10 + f),
                        state: AllocState::Normal,
                    },
                    1 => AllocEntry {
                        prev: Some(SectorId(1)),
                        next: None,
                        last: None,
                        state: AllocState::Normal,
                    },
                    2 => AllocEntry {
                        prev: Some(SectorId(1)),
                        next: None,
                        last: Some(5),
                        state: AllocState::Corrupted,
                    },
                    _ => AllocEntry {
                        prev: None,
                        next: Some(SectorId(2)),
                        last: Some(7 + f),
                        state: AllocState::Alloc,
                    },
                };
                shard.alloc.insert((file, i), entry);
            }
        }
        shard
    }

    #[test]
    fn batched_verify_slice_matches_reference() {
        let shard = synthetic_shard(40);
        let now: Time = 1_000;
        let path_len = 16;
        let slice: ShardSlice = (0..40u64)
            .map(|f| {
                let task = match f % 5 {
                    // Non-audit tasks interleave and must stay `None`.
                    4 => Task::CheckRefresh(FileId(f), 0),
                    // One audited file that does not exist in the shard.
                    _ if f == 33 => Task::CheckProof(FileId(f + 100)),
                    _ => Task::CheckProof(FileId(f)),
                };
                (now, (f, task))
            })
            .collect();
        let got = verify_slice(&shard, &slice, now, path_len);
        assert_eq!(got.len(), slice.len());
        for (slot, (_, (_, task))) in slice.iter().enumerate() {
            match task {
                Task::CheckProof(f) => assert_eq!(
                    got[slot].as_ref(),
                    Some(&verify_check_proof(&shard, *f, now, path_len)),
                    "slot {slot}"
                ),
                _ => assert!(got[slot].is_none(), "slot {slot}"),
            }
        }
    }

    #[test]
    fn small_slice_reference_path_matches_batch_output_shape() {
        // Below the threshold the reference path runs; verdicts must agree
        // with what the batched path produces for the same two tasks.
        let shard = synthetic_shard(8);
        let now: Time = 77;
        let small: ShardSlice = vec![
            (now, (0, Task::CheckProof(FileId(2)))),
            (now, (1, Task::CheckProof(FileId(5)))),
        ];
        let large: ShardSlice = (0..8u64)
            .map(|f| (now, (f, Task::CheckProof(FileId(f)))))
            .collect();
        let small_out = verify_slice(&shard, &small, now, 8);
        let large_out = verify_slice(&shard, &large, now, 8);
        assert_eq!(small_out[0], large_out[2]);
        assert_eq!(small_out[1], large_out[5]);
    }
}
