//! Merkle trees with inclusion proofs.
//!
//! FileInsurer commits to every file with a Merkle root (`f.merkleRoot`,
//! Fig. 1) and the simulated Proof-of-Spacetime answers beacon-derived
//! challenges with Merkle inclusion proofs over sealed replica chunks.
//!
//! Leaves and internal nodes are hashed with distinct domain prefixes so a
//! leaf can never be confused with an internal node (second-preimage
//! hardening). Odd nodes at any level are *promoted* (carried up unchanged),
//! not duplicated, so the tree is well-defined for any leaf count ≥ 1.

use crate::hash::Hash256;
use crate::sha256::Sha256;

/// Hashes a leaf with domain separation.
pub fn leaf_hash(data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

/// Hashes an internal node with domain separation.
pub fn node_hash(left: &Hash256, right: &Hash256) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left.as_ref());
    h.update(right.as_ref());
    h.finalize()
}

/// A Merkle tree over a sequence of byte-string leaves.
///
/// The full level structure is retained so that proofs for any leaf can be
/// produced in O(log n) time without re-hashing.
///
/// # Example
///
/// ```
/// use fi_crypto::merkle::MerkleTree;
///
/// let chunks: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 8]).collect();
/// let tree = MerkleTree::from_leaves(chunks.iter());
/// let proof = tree.prove(7).unwrap();
/// assert!(proof.verify(&tree.root(), &chunks[7]));
/// assert!(!proof.verify(&tree.root(), b"tampered"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes, last level = `[root]`.
    levels: Vec<Vec<Hash256>>,
}

impl MerkleTree {
    /// Builds a tree from leaf payloads.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty; an empty commitment is meaningless
    /// in the protocol (files have at least one chunk).
    pub fn from_leaves<I, T>(leaves: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u8]>,
    {
        let leaf_hashes: Vec<Hash256> = leaves.into_iter().map(|l| leaf_hash(l.as_ref())).collect();
        Self::from_leaf_hashes(leaf_hashes)
    }

    /// Builds a tree over a contiguous buffer, one leaf per `chunk_len`
    /// bytes (the final chunk may be shorter).
    ///
    /// This is the zero-copy commitment path for flat shard buffers
    /// (`fi_erasure::ShardSet`): every leaf is hashed directly from a
    /// borrowed sub-slice of `flat`, with no intermediate `Vec` per chunk.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is empty or `chunk_len == 0`.
    pub fn from_flat_chunks(flat: &[u8], chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk length must be positive");
        assert!(!flat.is_empty(), "a Merkle tree needs >= 1 leaf");
        Self::from_leaves(flat.chunks(chunk_len))
    }

    /// One commitment root per equal-length shard laid out back-to-back in
    /// `flat`, each shard hashed in `chunk_len`-byte leaves straight from
    /// the buffer.
    ///
    /// FileInsurer stores each erasure segment as an individual file with
    /// its own `merkleRoot` (§VI-C); this builds all of those commitments in
    /// one pass over the encoded flat buffer without materialising any
    /// per-segment copy.
    ///
    /// # Panics
    ///
    /// Panics if `shard_len == 0`, `chunk_len == 0`, or `flat.len()` is not
    /// a multiple of `shard_len`.
    pub fn shard_roots(flat: &[u8], shard_len: usize, chunk_len: usize) -> Vec<Hash256> {
        assert!(shard_len > 0, "shard length must be positive");
        assert_eq!(
            flat.len() % shard_len,
            0,
            "flat buffer must divide into shards"
        );
        flat.chunks_exact(shard_len)
            .map(|shard| Self::from_flat_chunks(shard, chunk_len).root())
            .collect()
    }

    /// Builds a tree from already-hashed leaves.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_hashes` is empty.
    pub fn from_leaf_hashes(leaf_hashes: Vec<Hash256>) -> Self {
        assert!(!leaf_hashes.is_empty(), "a Merkle tree needs >= 1 leaf");
        let mut levels = vec![leaf_hashes];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i + 1 < prev.len() {
                next.push(node_hash(&prev[i], &prev[i + 1]));
                i += 2;
            }
            if i < prev.len() {
                // Odd node promoted unchanged.
                next.push(prev[i]);
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root commitment.
    pub fn root(&self) -> Hash256 {
        self.levels.last().unwrap()[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Hash of leaf `index`, if in bounds.
    pub fn leaf(&self, index: usize) -> Option<Hash256> {
        self.levels[0].get(index).copied()
    }

    /// Produces an inclusion proof for leaf `index`.
    ///
    /// Returns `None` if `index` is out of bounds.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            if sibling_idx < level.len() {
                siblings.push(ProofStep {
                    sibling: level[sibling_idx],
                    sibling_on_left: sibling_idx < idx,
                });
            }
            // When the sibling is missing the node was promoted: no step.
            idx /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            steps: siblings,
        })
    }
}

/// One step of a Merkle inclusion proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ProofStep {
    sibling: Hash256,
    sibling_on_left: bool,
}

/// An inclusion proof binding a leaf payload to a Merkle root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    leaf_index: usize,
    steps: Vec<ProofStep>,
}

impl MerkleProof {
    /// Index of the proven leaf.
    pub fn leaf_index(&self) -> usize {
        self.leaf_index
    }

    /// Proof length in hashes (≈ log2 of the leaf count).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the proof has no steps (single-leaf tree).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Verifies the proof for `payload` against `root`.
    pub fn verify(&self, root: &Hash256, payload: &[u8]) -> bool {
        self.verify_leaf_hash(root, leaf_hash(payload))
    }

    /// Verifies the proof for an already-hashed leaf against `root`.
    pub fn verify_leaf_hash(&self, root: &Hash256, leaf: Hash256) -> bool {
        let mut acc = leaf;
        for step in &self.steps {
            acc = if step.sibling_on_left {
                node_hash(&step.sibling, &acc)
            } else {
                node_hash(&acc, &step.sibling)
            };
        }
        acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("chunk-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_tree() {
        let tree = MerkleTree::from_leaves([b"only"]);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        let proof = tree.prove(0).unwrap();
        assert!(proof.is_empty());
        assert!(proof.verify(&tree.root(), b"only"));
        assert!(!proof.verify(&tree.root(), b"other"));
    }

    #[test]
    fn proofs_verify_for_all_leaf_counts() {
        for n in 1..=33 {
            let data = chunks(n);
            let tree = MerkleTree::from_leaves(data.iter());
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(proof.verify(&tree.root(), leaf), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_payload_or_index_rejected() {
        let data = chunks(9);
        let tree = MerkleTree::from_leaves(data.iter());
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(&tree.root(), &data[4]));
        assert!(tree.prove(9).is_none());
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let data = chunks(8);
        let base = MerkleTree::from_leaves(data.iter()).root();
        for i in 0..8 {
            let mut mutated = data.clone();
            mutated[i].push(b'!');
            assert_ne!(MerkleTree::from_leaves(mutated.iter()).root(), base);
        }
    }

    #[test]
    fn leaf_node_domain_separation() {
        // An internal-node preimage must not validate as a leaf.
        let a = leaf_hash(b"a");
        let b = leaf_hash(b"b");
        let n = node_hash(&a, &b);
        let mut preimage = vec![0x01];
        preimage.extend_from_slice(a.as_ref());
        preimage.extend_from_slice(b.as_ref());
        assert_ne!(leaf_hash(&preimage[1..]), n);
    }

    #[test]
    fn order_matters() {
        let t1 = MerkleTree::from_leaves([b"a", b"b"]);
        let t2 = MerkleTree::from_leaves([b"b", b"a"]);
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn flat_chunks_equal_copied_leaves() {
        let flat: Vec<u8> = (0..100u8).collect();
        for chunk in [1usize, 7, 32, 100, 150] {
            let copied: Vec<Vec<u8>> = flat.chunks(chunk).map(|c| c.to_vec()).collect();
            assert_eq!(
                MerkleTree::from_flat_chunks(&flat, chunk).root(),
                MerkleTree::from_leaves(copied.iter()).root(),
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn shard_roots_match_individual_trees() {
        let flat: Vec<u8> = (0..120u8).collect();
        let roots = MerkleTree::shard_roots(&flat, 40, 16);
        assert_eq!(roots.len(), 3);
        for (i, root) in roots.iter().enumerate() {
            let shard = &flat[i * 40..(i + 1) * 40];
            assert_eq!(
                *root,
                MerkleTree::from_flat_chunks(shard, 16).root(),
                "shard {i}"
            );
        }
        // Distinct shards commit to distinct roots.
        assert_ne!(roots[0], roots[1]);
    }
}
