//! Central tuning knobs for the engine's parallel and batched paths.
//!
//! Every constant here is a **performance** knob, never a consensus one:
//! the engine produces bit-identical state (same `state_root`, same
//! `audit_root`, same block hashes) at any setting — the knobs only decide
//! *when* the parallel/batched implementations engage, and how they tile
//! their work. That property is what makes it safe to override them per
//! process for bench sweeps.
//!
//! Each knob reads an environment variable **once** per process (the first
//! call wins; later changes to the environment are ignored) and falls back
//! to its documented default when the variable is unset, unparsable, or
//! zero:
//!
//! | Knob | Env var | Default |
//! |---|---|---|
//! | [`parallel_ingest_threshold`] | `FI_TUNE_PARALLEL_INGEST_THRESHOLD` | 64 |
//! | [`parallel_verify_threshold`] | `FI_TUNE_PARALLEL_VERIFY_THRESHOLD` | 64 |
//! | [`parallel_audit_commit_threshold`] | `FI_TUNE_PARALLEL_AUDIT_COMMIT_THRESHOLD` | 64 |
//! | [`batch_verify_threshold`] | `FI_TUNE_BATCH_VERIFY_THRESHOLD` | 4 |
//! | [`lane_tile`] | `FI_TUNE_LANE_TILE` | 4096 |
//!
//! Example sweep: `FI_TUNE_LANE_TILE=1024 cargo run --release --bin
//! engine_snapshot`.

use std::sync::OnceLock;

fn env_knob(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Segments with fewer shard-local ops than this commit through the plain
/// sequential path in `Engine::apply_batch`: dispatching staging jobs
/// costs more than a handful of map lookups and Merkle walks. The outcome
/// is identical either way.
pub fn parallel_ingest_threshold() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    *V.get_or_init(|| env_knob("FI_TUNE_PARALLEL_INGEST_THRESHOLD", 64))
}

/// Due buckets with fewer `Auto_CheckProof` tasks than this verify inline
/// on the calling thread: fanning a bucket out across the worker pool
/// costs more than walking a handful of Merkle paths. The verify phase is
/// pure, so the outcome is identical either way.
pub fn parallel_verify_threshold() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    *V.get_or_init(|| env_knob("FI_TUNE_PARALLEL_VERIFY_THRESHOLD", 64))
}

/// Due buckets with fewer `Auto_CheckProof` tasks than this commit through
/// the frozen sequential fold; at or above it (on a multi-shard engine)
/// the commit phase plans per-shard write batches in parallel and applies
/// them with validated fast paths. Bit-identical either way — the
/// differential tests in `tests/parallel_commit.rs` pin it.
pub fn parallel_audit_commit_threshold() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    *V.get_or_init(|| env_knob("FI_TUNE_PARALLEL_AUDIT_COMMIT_THRESHOLD", 64))
}

/// Shard slices with fewer audit tasks than this verify through the
/// per-task reference path (`verify_check_proof`): assembling multi-lane
/// buffers costs more than a couple of Merkle walks.
pub fn batch_verify_threshold() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    *V.get_or_init(|| env_knob("FI_TUNE_BATCH_VERIFY_THRESHOLD", 4))
}

/// Lane-tile size for the batched audit path walk. Each level
/// re-materialises ~100 bytes of message buffer per lane, so tiling bounds
/// the working set (a few hundred KiB) and keeps it cache-resident
/// regardless of how many replicas a slice audits.
pub fn lane_tile() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    *V.get_or_init(|| env_knob("FI_TUNE_LANE_TILE", 4096))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_when_env_unset() {
        // The test process does not set FI_TUNE_* variables, so every knob
        // reports its documented default.
        assert_eq!(parallel_ingest_threshold(), 64);
        assert_eq!(parallel_verify_threshold(), 64);
        assert_eq!(parallel_audit_commit_threshold(), 64);
        assert_eq!(batch_verify_threshold(), 4);
        assert_eq!(lane_tile(), 4096);
    }

    #[test]
    fn env_knob_rejects_garbage_and_zero() {
        assert_eq!(env_knob("FI_TUNE_TEST_UNSET_KNOB", 7), 7);
        std::env::set_var("FI_TUNE_TEST_GARBAGE_KNOB", "not-a-number");
        assert_eq!(env_knob("FI_TUNE_TEST_GARBAGE_KNOB", 7), 7);
        std::env::set_var("FI_TUNE_TEST_ZERO_KNOB", "0");
        assert_eq!(env_knob("FI_TUNE_TEST_ZERO_KNOB", 7), 7);
        std::env::set_var("FI_TUNE_TEST_GOOD_KNOB", "128");
        assert_eq!(env_knob("FI_TUNE_TEST_GOOD_KNOB", 7), 128);
    }
}
