//! Spec-driven chaos harness: turns a plain-data
//! [`NetworkRobustnessSpec`] into a running cluster with its fault
//! script scheduled, and digests the run into the recovery metrics the
//! acceptance gate checks (`tests/fault_recovery.rs` asserts on them,
//! `fi-bench` records them into `BENCH_node.json`'s `faults` section).
//!
//! The §V fault model rides along as consensus-side injections:
//! `FailSector` (silent loss, discovered when the audit cycle hits the
//! proof deadline), `CorruptSector` (immediate detection, deposit
//! confiscated) and `ForceDiscard` + re-add repair — plus one *lazy*
//! provider whose proofs the workload withholds, so its sectors lapse
//! the honest way. The genesis capacity is sized so the script is
//! survivable: files must always find `k` distinct live sectors to
//! reschedule onto, or the scenario would measure extinction instead of
//! recovery.

use fi_chain::account::AccountId;
use fi_core::ops::Op;
use fi_core::types::{FileId, SectorId};
use fi_crypto::Hash256;
use fi_net::sim::SimTime;
use fi_net::world::World;
use fi_sim::robustness::{heights_to_reconvergence, NetworkRobustnessSpec};

use crate::chain::ReplayMode;
use crate::cluster::{
    build_cluster, cluster_horizon, genesis_engine, ClusterConfig, ClusterReports,
};
use crate::node::NodeMsg;

/// Sectors owned by `account` at genesis, in deterministic id order
/// (the injection script addresses sectors through this).
pub fn sectors_of(cfg: &ClusterConfig, account: AccountId) -> Vec<SectorId> {
    let (_, sector_owner) = genesis_engine(&cfg.params, &cfg.providers, cfg.client);
    let mut sectors: Vec<SectorId> = sector_owner
        .iter()
        .filter(|(_, owner)| **owner == account)
        .map(|(sector, _)| *sector)
        .collect();
    sectors.sort();
    sectors
}

/// A 5-validator cluster configured from a [`NetworkRobustnessSpec`]:
/// mixed replay modes, the spec's loss rate, a lazy provider (702) whose
/// proofs the workload withholds, and the §V fault injections — mass
/// `FailSector` on provider 703, one `CorruptSector` on 700, and the
/// `ForceDiscard` repair of the two earliest workload files.
pub fn cluster_for_spec(seed: u64, spec: &NetworkRobustnessSpec) -> ClusterConfig {
    let mut cfg = ClusterConfig::small(seed, spec.slots);
    assert_eq!(spec.validators, 5, "the acceptance scenario runs 5");
    cfg.validator_modes = vec![
        ReplayMode::OpByOp,
        ReplayMode::Batch,
        ReplayMode::OpByOp,
        ReplayMode::OpByOp,
        ReplayMode::Batch,
    ];
    // The client's replica view lags the chain by network latency, and
    // under compound faults a confirm can take several slots of failover
    // to commit, so the transfer window (`delay_per_size × file size`)
    // needs generous headroom or uploads fail spuriously.
    cfg.params.delay_per_size = 60;
    cfg.link = fi_net::link::LinkModel {
        base_latency: 5,
        ticks_per_byte: 0.001,
        max_jitter: 8,
        loss: spec.loss,
    };
    // Enough genesis capacity that the fault script is survivable: the
    // lazy provider's sectors get confiscated by the audit, the mass
    // failure kills 703's, and the corruption kills one of 700's.
    cfg.providers = vec![
        (AccountId(700), vec![640, 640, 640]),
        (AccountId(701), vec![1_280, 640]),
        (AccountId(702), vec![640, 640]),
        (AccountId(703), vec![640, 640, 640]),
        (AccountId(704), vec![1_280]),
    ];
    cfg.workload.lazy_providers = vec![AccountId(702)];

    let failed_sectors = sectors_of(&cfg, AccountId(703));
    let honest_sectors = sectors_of(&cfg, AccountId(700));
    assert!(!failed_sectors.is_empty() && !honest_sectors.is_empty());
    let mut injections: Vec<(u64, Op)> = Vec::new();
    for &sector in &failed_sectors {
        injections.push((spec.fail_sectors_at_slot, Op::FailSector { sector }));
    }
    injections.push((
        spec.corrupt_sectors_at_slot,
        Op::CorruptSector {
            sector: honest_sectors[0],
        },
    ));
    // Repair: the earliest workload files are force-discarded so the
    // client can re-add into the surviving capacity (workload file ids
    // allocate sequentially from 0, so these exist well before 2/3 run).
    for file in 0..2 {
        injections.push((spec.repair_at_slot, Op::ForceDiscard { file: FileId(file) }));
    }
    cfg.injections = injections;
    cfg
}

/// When the scheduled faults *clear* — the events recovery latency is
/// measured from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    /// `(crashed validator, restart time)` per scheduled leader crash.
    pub crash_clears: Vec<(usize, SimTime)>,
    /// When the partition heals, if one was scheduled.
    pub heal_at: Option<SimTime>,
}

/// Schedules the spec's crash and partition windows on a built world:
/// every `crash_every` slots the slot's scheduled leader crashes just
/// before its proposal timer fires, and the minority group is cut off
/// for the spec's partition window.
pub fn schedule_fault_script(
    world: &mut World<NodeMsg>,
    cfg: &ClusterConfig,
    spec: &NetworkRobustnessSpec,
) -> FaultSchedule {
    let interval = cfg.params.block_interval;
    let schedule = cfg.schedule();
    let mut crash_clears = Vec::new();
    if spec.crash_every > 0 {
        let mut slot = spec.crash_every;
        while slot < spec.slots {
            let leader = schedule.leader(slot, 0).expect("slot has a leader");
            let at = (slot * interval).saturating_sub(1);
            let until = at + spec.crash_for_slots * interval;
            world.schedule_crash(leader, at, until);
            crash_clears.push((leader, until));
            slot += spec.crash_every;
        }
    }
    let heal_at = if spec.partition_at_slot > 0 && spec.partition_at_slot < spec.heal_at_slot {
        let at = spec.partition_at_slot * interval;
        let until = spec.heal_at_slot * interval;
        world.schedule_partition(&spec.minority, at, until);
        Some(until)
    } else {
        None
    };
    FaultSchedule {
        crash_clears,
        heal_at,
    }
}

/// Everything a chaos run is judged on. Fully deterministic for a given
/// `(seed, spec)` — the determinism test compares two outcomes wholesale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// Every validator ended bit-identical (height, head hash, state
    /// root, receipt root).
    pub converged: bool,
    /// Agreed final height (validator 0's, meaningful when `converged`).
    pub height: u64,
    /// Agreed final head hash.
    pub head: Option<Hash256>,
    /// Agreed final state root.
    pub state_root: Option<Hash256>,
    /// Per crash: `(validator, heights-to-reconvergence after its
    /// restart)` — `None` means its head log never rejoined the
    /// canonical chain (an acceptance failure).
    pub crash_recoveries: Vec<(usize, Option<u64>)>,
    /// Per minority validator: heights-to-reconvergence after the heal.
    pub heal_recoveries: Vec<(usize, Option<u64>)>,
    /// Crash/restart cycles the world executed.
    pub restarts: u64,
    /// Messages dropped by crash/partition windows (not link loss).
    pub fault_drops: u64,
    /// Messages dropped by link loss.
    pub messages_lost: u64,
    /// Fault injections in the script.
    pub injections_scripted: u64,
    /// Injection inclusions across all proposers (≥ scripted once every
    /// injection committed; losing siblings can push it higher).
    pub injections_included: u64,
    /// Live files at the final state — the workload survived the script.
    pub final_files: u64,
    /// Blocks proposed per validator (leadership actually rotated).
    pub blocks_proposed: Vec<u64>,
}

/// Runs the full scenario: build the cluster for the spec, schedule the
/// fault script, run to the drain horizon, digest the reports.
pub fn run_chaos(seed: u64, spec: &NetworkRobustnessSpec) -> ChaosOutcome {
    let cfg = cluster_for_spec(seed, spec);
    let (mut world, reports) = build_cluster(&cfg);
    let schedule = schedule_fault_script(&mut world, &cfg, spec);
    world.run_until(cluster_horizon(&cfg));
    digest_chaos(&cfg, spec, &world, &reports, &schedule)
}

/// Digests a finished run into a [`ChaosOutcome`] (exposed separately so
/// harnesses that build/schedule by hand can reuse the metric).
pub fn digest_chaos(
    cfg: &ClusterConfig,
    spec: &NetworkRobustnessSpec,
    world: &World<NodeMsg>,
    reports: &ClusterReports,
    schedule: &FaultSchedule,
) -> ChaosOutcome {
    let reference = reports.validators[0].borrow();
    let height = reference.final_height;
    let head = reference.final_head;
    let state_root = reference.final_state_root;
    let receipts = reference.final_receipt_root;
    let canonical = reference.final_chain.clone();
    let final_files = reference.final_files;
    drop(reference);
    let converged = reports.validators.iter().all(|r| {
        let r = r.borrow();
        r.final_height == height
            && r.final_head == head
            && r.final_state_root == state_root
            && r.final_receipt_root == receipts
    });

    let latency = |node: usize, event: SimTime| {
        let report = reports.validators[node].borrow();
        heights_to_reconvergence(&report.heads, &canonical, event)
    };
    let crash_recoveries = schedule
        .crash_clears
        .iter()
        .map(|&(node, until)| (node, latency(node, until)))
        .collect();
    let heal_recoveries = schedule
        .heal_at
        .map(|until| {
            spec.minority
                .iter()
                .map(|&node| (node, latency(node, until)))
                .collect()
        })
        .unwrap_or_default();

    ChaosOutcome {
        converged,
        height,
        head,
        state_root,
        crash_recoveries,
        heal_recoveries,
        restarts: world.restarts(),
        fault_drops: world.fault_drops(),
        messages_lost: world.messages_lost(),
        injections_scripted: cfg.injections.len() as u64,
        injections_included: reports
            .validators
            .iter()
            .map(|r| r.borrow().injections_included)
            .sum(),
        final_files,
        blocks_proposed: reports
            .validators
            .iter()
            .map(|r| r.borrow().blocks_proposed)
            .collect(),
    }
}
