//! Weighted-sampler benchmarks + the DESIGN.md §5 ablation:
//! Fenwick tree vs linear scan vs rebuilt alias table.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fi_core::sampler::WeightedSampler;
use fi_crypto::DetRng;

/// Linear-scan baseline: O(n) sample, O(1) update.
struct LinearSampler {
    weights: Vec<u64>,
    total: u64,
}

impl LinearSampler {
    fn new(weights: &[u64]) -> Self {
        LinearSampler {
            weights: weights.to_vec(),
            total: weights.iter().sum(),
        }
    }
    fn sample(&self, rng: &mut DetRng) -> usize {
        let mut t = rng.below(self.total);
        for (i, &w) in self.weights.iter().enumerate() {
            if t < w {
                return i;
            }
            t -= w;
        }
        self.weights.len() - 1
    }
}

/// Alias-table baseline: O(1) sample, O(n) rebuild on any update.
struct AliasSampler {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasSampler {
    fn new(weights: &[u64]) -> Self {
        let n = weights.len();
        let total: u64 = weights.iter().sum();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let scaled: Vec<f64> = weights
            .iter()
            .map(|&w| w as f64 * n as f64 / total as f64)
            .collect();
        let mut small: Vec<usize> = (0..n).filter(|&i| scaled[i] < 1.0).collect();
        let mut large: Vec<usize> = (0..n).filter(|&i| scaled[i] >= 1.0).collect();
        let mut scaled = scaled;
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = scaled[l] + scaled[s] - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for l in large {
            prob[l] = 1.0;
        }
        for s in small {
            prob[s] = 1.0;
        }
        AliasSampler { prob, alias }
    }
    fn sample(&self, rng: &mut DetRng) -> usize {
        let i = rng.index(self.prob.len());
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

fn weights(n: usize) -> Vec<u64> {
    (0..n).map(|i| 64 + (i as u64 % 7) * 64).collect()
}

fn bench_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler/sample");
    for n in [100usize, 1_000, 10_000, 100_000] {
        let w = weights(n);
        let mut fenwick = WeightedSampler::new();
        for (i, &wi) in w.iter().enumerate() {
            fenwick.insert(i, wi);
        }
        let linear = LinearSampler::new(&w);
        let alias = AliasSampler::new(&w);
        group.bench_with_input(BenchmarkId::new("fenwick", n), &n, |b, _| {
            let mut rng = DetRng::from_seed_label(1, "bf");
            b.iter(|| black_box(fenwick.sample(&mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            let mut rng = DetRng::from_seed_label(1, "bl");
            b.iter(|| black_box(linear.sample(&mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("alias", n), &n, |b, _| {
            let mut rng = DetRng::from_seed_label(1, "ba");
            b.iter(|| black_box(alias.sample(&mut rng)))
        });
    }
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    // Dynamic churn: the workload RandomSector actually faces — the alias
    // table must fully rebuild, the Fenwick tree does an O(log n) update.
    let mut group = c.benchmark_group("sampler/update-then-sample");
    for n in [1_000usize, 10_000] {
        let w = weights(n);
        group.bench_with_input(BenchmarkId::new("fenwick", n), &n, |b, _| {
            let mut fenwick = WeightedSampler::new();
            for (i, &wi) in w.iter().enumerate() {
                fenwick.insert(i, wi);
            }
            let mut rng = DetRng::from_seed_label(2, "uf");
            let mut k = 0usize;
            b.iter(|| {
                fenwick.insert(k % n, 64 + (k as u64 % 13) * 64);
                k += 1;
                black_box(fenwick.sample(&mut rng).copied())
            })
        });
        group.bench_with_input(BenchmarkId::new("alias-rebuild", n), &n, |b, _| {
            let mut w = w.clone();
            let mut rng = DetRng::from_seed_label(2, "ua");
            let mut k = 0usize;
            b.iter(|| {
                w[k % n] = 64 + (k as u64 % 13) * 64;
                k += 1;
                let alias = AliasSampler::new(&w);
                black_box(alias.sample(&mut rng))
            })
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_sample, bench_update
}
criterion_main!(benches);
