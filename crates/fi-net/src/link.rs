//! Link models: deterministic latency, bandwidth, jitter and loss.

use fi_crypto::DetRng;

use crate::sim::SimTime;

/// Parameters of a point-to-point link.
///
/// Delivery delay for a `bytes`-sized message is
/// `base_latency + bytes·ticks_per_byte + jitter`, where jitter is uniform
/// in `[0, max_jitter]` drawn from the caller's deterministic RNG. The
/// message is lost entirely with probability `loss`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Propagation delay in ticks.
    pub base_latency: SimTime,
    /// Serialisation delay per byte, in ticks (fixed-point friendly: use
    /// fractional values below 1 via `bytes / bytes_per_tick` semantics).
    pub ticks_per_byte: f64,
    /// Maximum uniform jitter added per message.
    pub max_jitter: SimTime,
    /// Probability a message is silently dropped.
    pub loss: f64,
}

impl LinkModel {
    /// A fast, reliable LAN-ish link.
    pub fn lan() -> Self {
        LinkModel {
            base_latency: 1,
            ticks_per_byte: 0.001,
            max_jitter: 1,
            loss: 0.0,
        }
    }

    /// A WAN-ish link with moderate latency and jitter.
    pub fn wan() -> Self {
        LinkModel {
            base_latency: 20,
            ticks_per_byte: 0.01,
            max_jitter: 10,
            loss: 0.0,
        }
    }

    /// A lossy link for failure-injection experiments.
    pub fn lossy(loss: f64) -> Self {
        LinkModel {
            loss,
            ..LinkModel::wan()
        }
    }

    /// Draws the delivery delay for a message of `bytes`, or `None` when
    /// the message is lost.
    pub fn delivery_delay(&self, rng: &mut DetRng, bytes: u64) -> Option<SimTime> {
        if self.loss > 0.0 && rng.bernoulli(self.loss) {
            return None;
        }
        let jitter = if self.max_jitter > 0 {
            rng.below(self.max_jitter + 1)
        } else {
            0
        };
        let serial = (bytes as f64 * self.ticks_per_byte).ceil() as SimTime;
        Some(self.base_latency + serial + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_monotone_in_size() {
        let link = LinkModel {
            base_latency: 5,
            ticks_per_byte: 0.5,
            max_jitter: 0,
            loss: 0.0,
        };
        let mut rng = DetRng::from_seed_label(41, "link");
        let d_small = link.delivery_delay(&mut rng, 10).unwrap();
        let d_big = link.delivery_delay(&mut rng, 1000).unwrap();
        assert_eq!(d_small, 5 + 5);
        assert_eq!(d_big, 5 + 500);
        assert!(d_big > d_small);
    }

    #[test]
    fn jitter_bounded() {
        let link = LinkModel {
            base_latency: 10,
            ticks_per_byte: 0.0,
            max_jitter: 4,
            loss: 0.0,
        };
        let mut rng = DetRng::from_seed_label(42, "jit");
        for _ in 0..1000 {
            let d = link.delivery_delay(&mut rng, 1).unwrap();
            assert!((10..=14).contains(&d));
        }
    }

    #[test]
    fn loss_rate_approximate() {
        let link = LinkModel::lossy(0.3);
        let mut rng = DetRng::from_seed_label(43, "loss");
        let n = 20_000;
        let lost = (0..n)
            .filter(|_| link.delivery_delay(&mut rng, 100).is_none())
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn reliable_links_never_drop() {
        let link = LinkModel::lan();
        let mut rng = DetRng::from_seed_label(44, "rel");
        assert!((0..1000).all(|_| link.delivery_delay(&mut rng, 64).is_some()));
    }
}
