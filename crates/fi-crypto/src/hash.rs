//! 32-byte digest newtype and domain-separated keyed hashing.

use std::fmt;

use crate::sha256::{self, Backend, Sha256};

/// A 32-byte digest (SHA-256 output).
///
/// Used throughout the workspace as file Merkle roots, content identifiers,
/// replica commitments, beacon outputs, and block hashes.
///
/// # Example
///
/// ```
/// use fi_crypto::{sha256, Hash256};
///
/// let h = sha256(b"file contents");
/// let restored = Hash256::from_hex(&h.to_hex()).unwrap();
/// assert_eq!(h, restored);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Hash256([u8; 32]);

impl Hash256 {
    /// The all-zero digest. Used as a sentinel (e.g. the parent of a genesis
    /// block) — never produced by hashing real data.
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// Wraps raw digest bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Hash256(bytes)
    }

    /// Borrows the digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Consumes the digest, returning its bytes.
    pub fn into_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Lowercase hex encoding (64 characters).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// Parses a 64-character hex string.
    ///
    /// Returns `None` if the string is not exactly 64 hex digits.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        let bytes = s.as_bytes();
        for i in 0..32 {
            let hi = (bytes[2 * i] as char).to_digit(16)?;
            let lo = (bytes[2 * i + 1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Hash256(out))
    }

    /// First 8 bytes interpreted as a big-endian `u64`.
    ///
    /// Handy for deriving integer seeds from digests.
    pub fn to_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().unwrap())
    }

    /// XOR distance between two digests (Kademlia metric), returned as the
    /// number of leading zero bits of the XOR (larger = closer).
    pub fn xor_leading_zeros(&self, other: &Hash256) -> u32 {
        let mut zeros = 0u32;
        for i in 0..32 {
            let x = self.0[i] ^ other.0[i];
            if x == 0 {
                zeros += 8;
            } else {
                zeros += x.leading_zeros();
                break;
            }
        }
        zeros
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash256({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Hash256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Hash256 {
    fn from(bytes: [u8; 32]) -> Self {
        Hash256(bytes)
    }
}

/// Domain-separated keyed hash: `SHA-256(len(domain) || domain || data...)`.
///
/// Each variadic part is length-prefixed so that concatenation ambiguity is
/// impossible (`("ab","c")` never collides with `("a","bc")`).
///
/// # Example
///
/// ```
/// use fi_crypto::keyed_hash;
/// let a = keyed_hash("replica", &[b"file", b"sector-1"]);
/// let b = keyed_hash("replica", &[b"files", b"ector-1"]);
/// assert_ne!(a, b);
/// ```
pub fn keyed_hash(domain: &str, parts: &[&[u8]]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&(domain.len() as u64).to_be_bytes());
    h.update(domain.as_bytes());
    for part in parts {
        h.update(&(part.len() as u64).to_be_bytes());
        h.update(part);
    }
    h.finalize()
}

/// A [`keyed_hash`] domain with its prefix pre-absorbed (midstate caching).
///
/// Hot protocol loops hash millions of messages under a handful of fixed
/// domain strings (`"fileinsurer/audit-node"`, ...). [`keyed_hash`] re-feeds
/// the length-prefixed domain to a fresh hasher on every call; a
/// `KeyedDomain` does that work once, and each [`KeyedDomain::hash`] clones
/// the prepared midstate instead. Callers keep one in a `OnceLock` static
/// per domain.
///
/// [`KeyedDomain::hash_many`] is the batched form: it hashes N independent
/// messages of the same domain through the multi-lane SIMD backends
/// ([`sha256::digest_many`]), one lane per message.
///
/// # Example
///
/// ```
/// use fi_crypto::{keyed_hash, KeyedDomain};
///
/// let domain = KeyedDomain::new("replica");
/// assert_eq!(
///     domain.hash(&[b"file", b"sector-1"]),
///     keyed_hash("replica", &[b"file", b"sector-1"]),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct KeyedDomain {
    /// Hasher with the length-prefixed domain already absorbed.
    midstate: Sha256,
    /// Serialized domain prefix (`len(domain) || domain`), re-used when
    /// assembling batched lane messages.
    prefix: Vec<u8>,
}

impl KeyedDomain {
    /// Prepares the midstate for `domain`.
    pub fn new(domain: &str) -> Self {
        let mut prefix = Vec::with_capacity(8 + domain.len());
        prefix.extend_from_slice(&(domain.len() as u64).to_be_bytes());
        prefix.extend_from_slice(domain.as_bytes());
        let mut midstate = Sha256::new();
        midstate.update(&prefix);
        KeyedDomain { midstate, prefix }
    }

    /// Equivalent to `keyed_hash(domain, parts)` without re-absorbing the
    /// domain prefix.
    pub fn hash(&self, parts: &[&[u8]]) -> Hash256 {
        let mut h = self.midstate.clone();
        for part in parts {
            h.update(&(part.len() as u64).to_be_bytes());
            h.update(part);
        }
        h.finalize()
    }

    /// Hashes one message per lane (`lanes[i]` is the parts list of message
    /// `i`) through the multi-lane backend, returning one digest per lane.
    ///
    /// Bit-identical to calling [`KeyedDomain::hash`] per lane.
    pub fn hash_many(&self, lanes: &[&[&[u8]]]) -> Vec<Hash256> {
        self.hash_many_with(sha256::active_backend(), lanes)
    }

    /// [`KeyedDomain::hash_many`] with an explicit backend (differential
    /// tests).
    pub fn hash_many_with(&self, backend: Backend, lanes: &[&[&[u8]]]) -> Vec<Hash256> {
        let total: usize = lanes
            .iter()
            .map(|parts| self.prefix.len() + parts.iter().map(|p| 8 + p.len()).sum::<usize>())
            .sum();
        let mut buf = Vec::with_capacity(total);
        let mut ranges = Vec::with_capacity(lanes.len());
        for parts in lanes {
            let start = buf.len();
            buf.extend_from_slice(&self.prefix);
            for part in *parts {
                buf.extend_from_slice(&(part.len() as u64).to_be_bytes());
                buf.extend_from_slice(part);
            }
            ranges.push(start..buf.len());
        }
        let messages: Vec<&[u8]> = ranges.iter().map(|r| &buf[r.clone()]).collect();
        sha256::digest_many_with(backend, &messages)
    }
}

/// Defines a zero-argument function returning a process-wide cached
/// [`KeyedDomain`] for a fixed domain string.
///
/// Hot protocol loops keep one prepared midstate per domain; this macro is
/// the one-liner for that pattern (a `OnceLock` static behind an accessor).
///
/// # Example
///
/// ```
/// use fi_crypto::{cached_domain, keyed_hash};
///
/// cached_domain!(fn replica_domain, "replica");
/// assert_eq!(
///     replica_domain().hash(&[b"file"]),
///     keyed_hash("replica", &[b"file"]),
/// );
/// ```
#[macro_export]
macro_rules! cached_domain {
    ($(#[$meta:meta])* $vis:vis fn $name:ident, $domain:expr) => {
        $(#[$meta])*
        $vis fn $name() -> &'static $crate::KeyedDomain {
            static CELL: ::std::sync::OnceLock<$crate::KeyedDomain> =
                ::std::sync::OnceLock::new();
            CELL.get_or_init(|| $crate::KeyedDomain::new($domain))
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256;

    #[test]
    fn hex_round_trip() {
        let h = sha256(b"round trip");
        assert_eq!(Hash256::from_hex(&h.to_hex()), Some(h));
        assert_eq!(Hash256::from_hex("xyz"), None);
        assert_eq!(Hash256::from_hex(&"g".repeat(64)), None);
    }

    #[test]
    fn zero_is_sentinel() {
        assert_eq!(Hash256::ZERO.to_hex(), "0".repeat(64));
        assert_ne!(sha256(b""), Hash256::ZERO);
    }

    #[test]
    fn keyed_hash_domain_separation() {
        assert_ne!(
            keyed_hash("a", &[b"payload"]),
            keyed_hash("b", &[b"payload"])
        );
        // Length prefixing prevents concatenation ambiguity.
        assert_ne!(
            keyed_hash("d", &[b"ab", b"c"]),
            keyed_hash("d", &[b"a", b"bc"])
        );
        assert_ne!(keyed_hash("d", &[b"abc"]), keyed_hash("d", &[b"ab", b"c"]));
    }

    #[test]
    fn xor_leading_zeros_basics() {
        let a = Hash256::from_bytes([0u8; 32]);
        assert_eq!(a.xor_leading_zeros(&a), 256);
        let mut b = [0u8; 32];
        b[0] = 0x80;
        assert_eq!(a.xor_leading_zeros(&Hash256::from_bytes(b)), 0);
        let mut c = [0u8; 32];
        c[1] = 0x01;
        assert_eq!(a.xor_leading_zeros(&Hash256::from_bytes(c)), 15);
    }

    #[test]
    fn keyed_domain_matches_naive_path() {
        // Midstate caching must be invisible: same digests as keyed_hash.
        for domain in ["fileinsurer/audit-task", "x", &"long".repeat(40)] {
            let cached = KeyedDomain::new(domain);
            let cases: &[&[&[u8]]] = &[&[], &[b"a"], &[b"file", b"sector-1"], &[&[0u8; 100]]];
            for parts in cases {
                assert_eq!(cached.hash(parts), keyed_hash(domain, parts), "{domain}");
            }
        }
    }

    #[test]
    fn keyed_domain_hash_many_differential() {
        let domain = KeyedDomain::new("fileinsurer/audit-node");
        let payloads: Vec<(Vec<u8>, Vec<u8>)> = (0..23u8)
            .map(|i| (vec![i; 32], vec![i ^ 0x5A; 1 + i as usize]))
            .collect();
        let lanes_owned: Vec<[&[u8]; 2]> = payloads
            .iter()
            .map(|(a, b)| [a.as_slice(), b.as_slice()])
            .collect();
        let lanes: Vec<&[&[u8]]> = lanes_owned.iter().map(|l| l.as_slice()).collect();
        for &backend in sha256::available_backends() {
            let got = domain.hash_many_with(backend, &lanes);
            for (i, lane) in lanes.iter().enumerate() {
                assert_eq!(
                    got[i],
                    keyed_hash("fileinsurer/audit-node", lane),
                    "backend {} lane {i}",
                    backend.name()
                );
            }
        }
        assert!(domain.hash_many(&[]).is_empty());
    }

    #[test]
    fn to_u64_is_prefix() {
        let mut raw = [0u8; 32];
        raw[..8].copy_from_slice(&0xDEAD_BEEF_CAFE_F00Du64.to_be_bytes());
        assert_eq!(Hash256::from_bytes(raw).to_u64(), 0xDEAD_BEEF_CAFE_F00D);
    }
}
