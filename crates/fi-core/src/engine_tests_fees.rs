//! Engine tests: fee mechanics, gas, error paths, and edge dynamics that
//! the scenario-level tests don't isolate.

use fi_chain::account::{AccountId, TokenAmount};
use fi_chain::gas::GasSchedule;
use fi_crypto::sha256;

use crate::engine::{Engine, EngineError, StateView, RENT_POOL, TRAFFIC_ESCROW};
use crate::params::ProtocolParams;
use crate::types::ProtocolEvent;
use crate::FileId;

const PROVIDER: AccountId = AccountId(100);
const CLIENT: AccountId = AccountId(200);

fn free_gas_engine(k: u32) -> Engine {
    let params = ProtocolParams {
        k,
        delay_per_size: 6,
        avg_refresh: 1e9, // no spontaneous refreshes unless wanted
        ..ProtocolParams::default()
    };
    let mut e = Engine::new(params).unwrap();
    e.set_gas_schedule(GasSchedule::free());
    e.fund(PROVIDER, TokenAmount(1_000_000_000));
    e.fund(CLIENT, TokenAmount(100_000_000));
    e
}

fn stored_file(e: &mut Engine, size: u64) -> FileId {
    let f = e
        .file_add(CLIENT, size, e.params().min_value, sha256(b"fee test"))
        .unwrap();
    e.honest_providers_act();
    let deadline = e.now() + e.params().transfer_window(size);
    e.advance_to(deadline);
    assert!(e.file(f).is_some());
    f
}

#[test]
fn cycle_cost_is_exactly_rent_plus_prepaid_gas() {
    let mut e = free_gas_engine(2);
    e.sector_register(PROVIDER, 640).unwrap();
    let f = stored_file(&mut e, 10);
    let before = e.ledger().balance(CLIENT);
    let rent_pool_before = e.ledger().balance(RENT_POOL);

    // One CheckProof fires.
    e.honest_providers_act();
    e.advance_to(e.now() + e.params().proof_cycle);

    let desc_cost = e.params().cycle_cost(10, e.file(f).unwrap().cp);
    assert_eq!(e.ledger().balance(CLIENT), before - desc_cost);
    // The rent share sits in the pool; the prepaid gas share was burned.
    let rent = TokenAmount(e.params().unit_rent.0 * 10 * 2);
    assert_eq!(e.ledger().balance(RENT_POOL), rent_pool_before + rent);
}

#[test]
fn traffic_escrow_zeroes_out_after_all_confirms() {
    let mut e = free_gas_engine(3);
    e.sector_register(PROVIDER, 640).unwrap();
    let f = e
        .file_add(CLIENT, 8, TokenAmount(1_000), sha256(b"escrow"))
        .unwrap();
    let escrow = e.ledger().balance(TRAFFIC_ESCROW);
    assert_eq!(escrow, TokenAmount(8 * 3)); // fee per size × cp
    for (i, s) in e.pending_confirms(f) {
        e.file_confirm(PROVIDER, f, i, s).unwrap();
    }
    assert_eq!(e.ledger().balance(TRAFFIC_ESCROW), TokenAmount::ZERO);
    assert_eq!(
        e.ledger().balance(PROVIDER),
        TokenAmount(1_000_000_000) - e.params().sector_deposit(640) + TokenAmount(24)
    );
}

#[test]
fn gas_charged_even_on_failed_requests() {
    // With the default (non-free) schedule, a rejected request still burns
    // its gas — consensus space was consumed (§IV-A.3).
    let params = ProtocolParams::default();
    let mut e = Engine::new(params).unwrap();
    e.fund(CLIENT, TokenAmount(1_000));
    let before = e.ledger().balance(CLIENT);
    let err = e.file_discard(CLIENT, FileId(404)).unwrap_err();
    assert_eq!(err, EngineError::UnknownFile(FileId(404)));
    assert!(e.ledger().balance(CLIENT) < before, "gas burned on failure");
}

#[test]
fn broke_caller_cannot_even_submit() {
    let params = ProtocolParams::default();
    let mut e = Engine::new(params).unwrap();
    let pauper = AccountId(999);
    assert_eq!(
        e.file_discard(pauper, FileId(0)).unwrap_err(),
        EngineError::InsufficientFunds
    );
}

#[test]
fn prove_error_paths() {
    let mut e = free_gas_engine(2);
    let s = e.sector_register(PROVIDER, 640).unwrap();
    let f = stored_file(&mut e, 8);

    // Wrong owner.
    let stranger = AccountId(101);
    e.fund(stranger, TokenAmount(1_000_000));
    assert_eq!(
        e.file_prove(stranger, f, 0, s).unwrap_err(),
        EngineError::NotOwner
    );
    // Unknown sector.
    assert!(matches!(
        e.file_prove(PROVIDER, f, 0, crate::SectorId(77)),
        Err(EngineError::UnknownSector(_))
    ));
    // Physically failed sector can't prove.
    e.fail_sector_silently(s);
    assert!(matches!(
        e.file_prove(PROVIDER, f, 0, s),
        Err(EngineError::InvalidState(_))
    ));
}

#[test]
fn confirm_unknown_file_or_entry_rejected() {
    let mut e = free_gas_engine(2);
    let s = e.sector_register(PROVIDER, 640).unwrap();
    assert!(matches!(
        e.file_confirm(PROVIDER, FileId(5), 0, s),
        Err(EngineError::UnknownFile(_))
    ));
    let f = stored_file(&mut e, 8);
    // Entry index out of range behaves as unknown.
    assert!(matches!(
        e.file_confirm(PROVIDER, f, 9, s),
        Err(EngineError::UnknownFile(_))
    ));
}

#[test]
fn file_added_event_carries_replica_count() {
    let mut e = free_gas_engine(4);
    e.sector_register(PROVIDER, 1280).unwrap();
    let f = e
        .file_add(CLIENT, 8, TokenAmount(2_000), sha256(b"cp event"))
        .unwrap();
    // value = 2 × minValue ⇒ cp = 2k = 8.
    assert!(e.events().iter().any(|ev| matches!(
        ev,
        ProtocolEvent::FileAdded { file, cp: 8 } if *file == f
    )));
}

#[test]
fn add_collisions_counted_but_placement_succeeds() {
    // One nearly full sector plus one empty: sampling hits the full one
    // sometimes (counting collisions) but always lands eventually.
    let mut e = free_gas_engine(1);
    e.sector_register(PROVIDER, 64).unwrap();
    e.sector_register(PROVIDER, 640).unwrap();
    stored_file(&mut e, 32);
    stored_file(&mut e, 32); // the small sector is now full
    for _ in 0..20 {
        stored_file(&mut e, 32);
    }
    assert!(
        e.stats().add_collisions > 0,
        "some draws must have hit the full sector: {:?}",
        e.stats()
    );
    // All files placed despite collisions.
    assert_eq!(e.file_ids().len(), 22);
}

#[test]
fn refresh_collision_rearms_countdown() {
    // Two sectors exactly fitting the existing replicas: any refresh
    // target lacks space, so Auto_Refresh takes the else-branch.
    let params = ProtocolParams {
        k: 2,
        delay_per_size: 6,
        avg_refresh: 1.0, // refresh at every cycle
        size_limit: 64,   // allow the 33-unit file used below
        ..ProtocolParams::default()
    };
    let mut e = Engine::new(params).unwrap();
    e.set_gas_schedule(GasSchedule::free());
    e.fund(PROVIDER, TokenAmount(1_000_000_000));
    e.fund(CLIENT, TokenAmount(100_000_000));
    e.sector_register(PROVIDER, 64).unwrap();
    e.sector_register(PROVIDER, 64).unwrap();
    let f = stored_file(&mut e, 33); // 33 > 64-33 ⇒ no sector can take a second copy
    for _ in 0..6 {
        e.honest_providers_act();
        e.advance_to(e.now() + e.params().proof_cycle);
    }
    assert!(e.stats().refresh_collisions > 0, "{:?}", e.stats());
    assert!(e
        .events()
        .iter()
        .any(|ev| matches!(ev, ProtocolEvent::RefreshCollision { file, .. } if *file == f)),);
    assert!(e.file(f).is_some(), "collision is harmless");
}

#[test]
fn rent_distribution_excludes_corrupted_sectors() {
    let mut e = free_gas_engine(2);
    let s1 = e.sector_register(PROVIDER, 640).unwrap();
    let other = AccountId(101);
    e.fund(other, TokenAmount(1_000_000_000));
    let s2 = e.sector_register(other, 640).unwrap();
    stored_file(&mut e, 10);

    e.corrupt_sector_now(s1);
    let provider_after_corruption = e.ledger().balance(PROVIDER);

    // Run a full rent period.
    let period = e.params().proof_cycle * e.params().rent_period_cycles as u64;
    for _ in 0..=e.params().rent_period_cycles {
        e.honest_providers_act();
        e.advance_to(e.now() + e.params().proof_cycle);
    }
    let _ = period;
    assert_eq!(
        e.ledger().balance(PROVIDER),
        provider_after_corruption,
        "corrupted sector earns no rent"
    );
    assert!(
        e.ledger().balance(other) > TokenAmount(1_000_000_000) - e.params().sector_deposit(640),
        "surviving sector collects the rent"
    );
    let _ = s2;
}

#[test]
fn no_capacity_when_no_sectors_at_all() {
    let mut e = free_gas_engine(1);
    assert_eq!(
        e.file_add(CLIENT, 8, TokenAmount(1_000), sha256(b"void"))
            .unwrap_err(),
        EngineError::NoCapacity
    );
    // Escrow fully refunded.
    assert_eq!(e.ledger().balance(TRAFFIC_ESCROW), TokenAmount::ZERO);
    assert_eq!(e.ledger().balance(CLIENT), TokenAmount(100_000_000));
}

#[test]
fn pending_confirms_empty_cases() {
    let mut e = free_gas_engine(2);
    assert!(e.pending_confirms(FileId(3)).is_empty());
    e.sector_register(PROVIDER, 640).unwrap();
    let f = stored_file(&mut e, 8);
    assert!(e.pending_confirms(f).is_empty(), "already confirmed");
}

#[test]
fn alloc_entries_cleaned_up_after_removal() {
    let mut e = free_gas_engine(2);
    e.sector_register(PROVIDER, 640).unwrap();
    let f = stored_file(&mut e, 8);
    e.file_discard(CLIENT, f).unwrap();
    e.honest_providers_act();
    e.advance_to(e.now() + e.params().proof_cycle);
    assert!(e.file(f).is_none());
    assert!(e.alloc_entry(f, 0).is_none());
    assert!(e.alloc_entry(f, 1).is_none());
    // Space returned.
    let sector = e.sector(e.sector_ids()[0]).unwrap();
    assert_eq!(sector.free_cap, sector.capacity);
    assert_eq!(sector.replica_count, 0);
}

#[test]
fn subnet_engine_end_to_end() {
    use crate::subnet::SubnetRouter;

    let base = ProtocolParams {
        k: 2,
        delay_per_size: 6,
        ..ProtocolParams::default()
    };
    let mut router = SubnetRouter::new(base, 3, 10).unwrap();
    let client = AccountId(900);
    // Provision every level.
    for level in 0..router.level_count() {
        let engine = router.level_mut(level);
        engine.set_gas_schedule(GasSchedule::free());
        engine.fund(PROVIDER, TokenAmount(u128::MAX / 8));
        engine.fund(client, TokenAmount(1_000_000_000));
        engine.sector_register(PROVIDER, 1280).unwrap();
    }
    // A cheap file and an expensive one route to different levels with
    // the same replica count.
    let cheap = router
        .file_add(client, 8, TokenAmount(1_000), sha256(b"cheap"))
        .unwrap();
    let dear = router
        .file_add(client, 8, TokenAmount(100_000), sha256(b"dear"))
        .unwrap();
    assert_eq!(cheap.level, 0);
    assert_eq!(dear.level, 2);
    assert_eq!(router.level(0).file(cheap.file).unwrap().cp, 2);
    assert_eq!(router.level(2).file(dear.file).unwrap().cp, 2);

    // Both settle normally.
    for level in 0..router.level_count() {
        router.level_mut(level).honest_providers_act();
    }
    router.advance_to(100);
    assert!(router.level(0).file(cheap.file).is_some());
    assert!(router.level(2).file(dear.file).is_some());
}
