//! Integration: the insurance economics under mass corruption — deposits,
//! confiscation, full compensation, and token conservation (§IV-B,
//! Theorem 4 at engine granularity).

use fi_chain::account::{AccountId, TokenAmount};
use fi_core::engine::{Engine, StateView, COMPENSATION_POOL, DEPOSIT_ESCROW};
use fi_core::params::ProtocolParams;
use fi_crypto::{sha256, DetRng};

const CLIENT: AccountId = AccountId(900);

fn build_network(k: u32, providers: u64, seed: u64) -> (Engine, Vec<fi_core::SectorId>) {
    let params = ProtocolParams {
        k,
        delay_per_size: 4,
        avg_refresh: 50.0,
        seed,
        ..ProtocolParams::default()
    };
    let mut engine = Engine::new(params).unwrap();
    engine.fund(CLIENT, TokenAmount(1_000_000_000));
    let mut sectors = Vec::new();
    for i in 0..providers {
        let account = AccountId(100 + i);
        engine.fund(account, TokenAmount(1_000_000_000));
        sectors.push(engine.sector_register(account, 640).unwrap());
    }
    (engine, sectors)
}

fn store_files(engine: &mut Engine, count: usize, size: u64) -> Vec<fi_core::FileId> {
    let mut out = Vec::new();
    for i in 0..count {
        let root = sha256(format!("file-{i}").as_bytes());
        out.push(
            engine
                .file_add(CLIENT, size, engine.params().min_value, root)
                .unwrap(),
        );
    }
    engine.honest_providers_act();
    let deadline = engine.now() + engine.params().transfer_window(size);
    engine.advance_to(deadline);
    out
}

fn settle(engine: &mut Engine, cycles: u64) {
    for _ in 0..cycles {
        engine.honest_providers_act();
        engine.advance_to(engine.now() + engine.params().proof_cycle);
    }
}

#[test]
fn half_capacity_corruption_fully_compensates_every_loss() {
    let (mut engine, sectors) = build_network(4, 16, 42);
    let files = store_files(&mut engine, 30, 8);
    let total_deposits = engine.total_pledged_deposits();

    // Corrupt half the sectors (deterministically chosen).
    let mut rng = DetRng::from_seed_label(7, "pick");
    let mut order: Vec<usize> = (0..sectors.len()).collect();
    rng.shuffle(&mut order);
    for &i in order.iter().take(sectors.len() / 2) {
        engine.corrupt_sector_now(sectors[i]);
    }
    settle(&mut engine, 6);

    let stats = engine.stats();
    // Every loss fully compensated.
    assert_eq!(stats.compensation_shortfall, TokenAmount::ZERO);
    assert_eq!(stats.compensation_paid, stats.value_lost);
    // Deposits confiscated (half of pledges) exceed losses by a wide
    // margin — the Theorem 4 story at engine scale.
    let confiscated = total_deposits.mul_ratio(1, 2);
    assert!(
        confiscated >= stats.value_lost,
        "confiscated {confiscated} vs lost {}",
        stats.value_lost
    );
    // Conservation.
    assert!(engine.ledger().audit());
    // Files either alive or settled.
    let alive = files.iter().filter(|f| engine.file(**f).is_some()).count();
    assert_eq!(alive + stats.files_lost as usize, files.len());
}

#[test]
fn deposit_escrow_balances_match_pledges() {
    let (mut engine, sectors) = build_network(3, 6, 43);
    let pledged = engine.total_pledged_deposits();
    assert_eq!(engine.ledger().balance(DEPOSIT_ESCROW), pledged);

    // Corrupting one sector moves exactly its deposit to the pool.
    let victim = sectors[0];
    let victim_deposit = engine.sector(victim).unwrap().deposit;
    engine.corrupt_sector_now(victim);
    assert_eq!(engine.ledger().balance(COMPENSATION_POOL), victim_deposit);
    assert_eq!(
        engine.ledger().balance(DEPOSIT_ESCROW),
        pledged - victim_deposit
    );
}

#[test]
fn compensation_comes_from_confiscated_deposits_not_thin_air() {
    let (mut engine, sectors) = build_network(2, 4, 44);
    let supply_before = engine.ledger().total_supply();
    store_files(&mut engine, 10, 8);
    for sid in sectors {
        engine.corrupt_sector_now(sid);
    }
    settle(&mut engine, 6);

    let stats = engine.stats();
    assert!(stats.files_lost > 0, "all sectors died; files must be lost");
    assert_eq!(stats.compensation_shortfall, TokenAmount::ZERO);
    // Supply only decreased (gas burns); compensation minted nothing.
    assert!(engine.ledger().total_supply() <= supply_before);
    assert!(engine.ledger().audit());
}

#[test]
fn survivors_untouched_by_compensation_flows() {
    let (mut engine, sectors) = build_network(6, 12, 45);
    let files = store_files(&mut engine, 20, 8);
    // Kill only a quarter of sectors: with k=6 replicas nothing should die.
    for &sid in sectors.iter().take(3) {
        engine.corrupt_sector_now(sid);
    }
    settle(&mut engine, 6);
    assert_eq!(engine.stats().files_lost, 0, "k=6 survives 25% corruption");
    let alive = files.iter().filter(|f| engine.file(**f).is_some()).count();
    assert_eq!(alive, files.len());
    assert!(engine.ledger().audit());
}

#[test]
fn deterministic_disaster_replay() {
    let run = |seed: u64| {
        let (mut engine, sectors) = build_network(3, 10, seed);
        store_files(&mut engine, 15, 8);
        for &sid in sectors.iter().take(5) {
            engine.corrupt_sector_now(sid);
        }
        settle(&mut engine, 5);
        (
            engine.stats(),
            engine.ledger().total_supply(),
            engine.state_root(),
        )
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77).2, run(78).2, "different seeds, different worlds");
}
