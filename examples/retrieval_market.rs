//! The retrieval path: IPFS addressing + DHT discovery + BitSwap fetch
//! (paper §II-A, §III-E, §VI-F).
//!
//! Run with `cargo run --example retrieval_market`.
//!
//! FileInsurer stores *locations* on chain; the bytes flow off-chain
//! through the IPFS machinery. This example imports a file into two
//! providers' block stores as a Merkle DAG, announces them in a Kademlia
//! DHT, and has a client discover providers and fetch the DAG block by
//! block with integrity verification.

use fi_ipfs::bitswap::fetch_dag;
use fi_ipfs::dag::{dag_cids, export_bytes, import_bytes};
use fi_ipfs::dht::{node_id, Dht};
use fi_ipfs::store::BlockStore;

fn main() {
    // A 64 KiB file chunked into 1 KiB leaves.
    let payload: Vec<u8> = (0..65_536u32).map(|i| (i % 253) as u8).collect();

    // Two providers hold the full DAG.
    let mut provider_a = BlockStore::new();
    let root = import_bytes(&mut provider_a, &payload, 1024);
    let provider_b = provider_a.clone();
    let block_count = dag_cids(&provider_a, root).unwrap().len();
    println!(
        "imported file: {} bytes -> {} dag blocks, root CID {}",
        payload.len(),
        block_count,
        &root.to_hex()[..16]
    );

    // A 64-node DHT; providers announce the root CID.
    let mut dht = Dht::new(16, 3);
    for i in 0..64 {
        dht.join(node_id(i));
    }
    let node_a = node_id(7);
    let node_b = node_id(23);
    dht.provide(node_a, root);
    dht.provide(node_b, root);
    println!("providers announced the CID from nodes 7 and 23");

    // The client resolves providers through the DHT.
    let client_node = node_id(55);
    let found = dht.find_providers(client_node, root);
    println!(
        "client lookup: found {} providers in {} hops (network of {} nodes)",
        found.providers.len(),
        found.hops,
        dht.len()
    );
    assert_eq!(found.providers.len(), 2);

    // BitSwap fetch with per-block verification.
    let mut client_store = BlockStore::new();
    let stats = fetch_dag(&mut client_store, &[&provider_a, &provider_b], root)
        .expect("providers hold the full dag");
    println!(
        "bitswap: received {} blocks / {} bytes ({} duplicates, {} corrupt)",
        stats.blocks_received, stats.bytes_received, stats.duplicate_blocks, stats.corrupt_blocks
    );

    let recovered = export_bytes(&client_store, root).unwrap();
    assert_eq!(recovered, payload);
    println!("file reassembled and verified against the root CID — retrieval complete.");

    // Churn: one provider leaves; the record disappears with it.
    dht.leave(node_a);
    let after = dht.find_providers(client_node, root);
    println!(
        "after provider churn: {} provider(s) remain discoverable",
        after.providers.len()
    );
    assert_eq!(after.providers.len(), 1);
}
