//! Capacity-proportional weighted sampling — the `RandomSector()` primitive.
//!
//! Table I: *"Sample a random sector. The probability of selecting each
//! sector is proportional to its capacity."* The sector set is dynamic
//! (registrations, disables, removals), and `File_Add` plus the continuous
//! refresh stream make sampling the hottest consensus operation, so the
//! implementation must support O(log n) insert / remove / re-weight /
//! sample. We use a Fenwick (binary indexed) tree over weights with slot
//! recycling; sampling descends the tree bit by bit.
//!
//! The ablation benchmark `fi-bench/benches/sampler.rs` compares this
//! against a linear scan and a rebuilt alias table to justify the choice
//! (see DESIGN.md §5).

use std::collections::HashMap;
use std::hash::Hash;

use fi_crypto::DetRng;

/// The sampler's serializable layout, as returned by
/// [`WeightedSampler::snapshot_parts`]: the slot array (`(key, weight)`,
/// free slots as `(None, 0)`), the free-slot stack, and the Fenwick tree
/// length.
pub type SamplerParts<K> = (Vec<(Option<K>, u64)>, Vec<usize>, usize);

/// A dynamic weighted sampler over keys of type `K`.
///
/// # Example
///
/// ```
/// use fi_core::sampler::WeightedSampler;
/// use fi_crypto::DetRng;
///
/// let mut s = WeightedSampler::new();
/// s.insert("small", 1);
/// s.insert("big", 99);
/// let mut rng = DetRng::from_seed_label(1, "doc");
/// let mut bigs = 0;
/// for _ in 0..1000 {
///     if *s.sample(&mut rng).unwrap() == "big" { bigs += 1; }
/// }
/// assert!(bigs > 950); // ∝ weight
/// ```
#[derive(Debug, Clone)]
pub struct WeightedSampler<K> {
    /// Fenwick tree: `tree[i]` covers a range of slots; 1-based internally.
    tree: Vec<u64>,
    /// Per-slot weight (0 for free slots).
    weights: Vec<u64>,
    /// Per-slot key.
    keys: Vec<Option<K>>,
    /// Key → slot.
    index_of: HashMap<K, usize>,
    /// Recycled slots.
    free_slots: Vec<usize>,
    /// Sum of all weights.
    total: u64,
}

impl<K> Default for WeightedSampler<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> WeightedSampler<K> {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        WeightedSampler {
            tree: vec![0; 1],
            weights: Vec::new(),
            keys: Vec::new(),
            index_of: HashMap::new(),
            free_slots: Vec::new(),
            total: 0,
        }
    }
}

impl<K: Copy + Eq + Hash> WeightedSampler<K> {
    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.index_of.len()
    }

    /// `true` when no keys are present.
    pub fn is_empty(&self) -> bool {
        self.index_of.is_empty()
    }

    /// Sum of all weights.
    pub fn total_weight(&self) -> u64 {
        self.total
    }

    /// Current weight of `key`, if present.
    pub fn weight(&self, key: &K) -> Option<u64> {
        self.index_of.get(key).map(|&slot| self.weights[slot])
    }

    /// Inserts `key` with `weight`, or updates its weight if present.
    ///
    /// # Panics
    ///
    /// Panics if `weight == 0`; zero-weight keys are unsampleable — remove
    /// them instead.
    pub fn insert(&mut self, key: K, weight: u64) {
        assert!(weight > 0, "weight must be positive");
        if let Some(&slot) = self.index_of.get(&key) {
            self.set_slot_weight(slot, weight);
            return;
        }
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                self.weights.push(0);
                self.keys.push(None);
                let s = self.weights.len() - 1;
                if self.weights.len() >= self.tree.len() {
                    self.rebuild_tree();
                }
                s
            }
        };
        self.keys[slot] = Some(key);
        self.index_of.insert(key, slot);
        self.set_slot_weight(slot, weight);
    }

    /// Removes `key`, returning its weight if it was present.
    pub fn remove(&mut self, key: &K) -> Option<u64> {
        let slot = self.index_of.remove(key)?;
        let w = self.weights[slot];
        self.set_slot_weight(slot, 0);
        self.keys[slot] = None;
        self.free_slots.push(slot);
        Some(w)
    }

    /// Samples a key with probability proportional to its weight, or `None`
    /// when empty.
    pub fn sample(&self, rng: &mut DetRng) -> Option<&K> {
        if self.total == 0 {
            return None;
        }
        let target = rng.below(self.total);
        let slot = self.find_slot(target);
        self.keys[slot].as_ref()
    }

    /// The sampler's complete internal layout for snapshots: the slot
    /// array as `(key, weight)` pairs (free slots are `(None, 0)`), the
    /// free-slot stack (order matters — it drives future slot reuse), and
    /// the Fenwick tree length (which pins the sampling descend's
    /// geometry). Sampling walks slots, so restoring anything less
    /// than the exact layout would perturb the consensus random stream.
    pub fn snapshot_parts(&self) -> SamplerParts<K> {
        let slots = self
            .keys
            .iter()
            .zip(&self.weights)
            .map(|(k, &w)| (*k, w))
            .collect();
        (slots, self.free_slots.clone(), self.tree.len())
    }

    /// Rebuilds a sampler from [`WeightedSampler::snapshot_parts`] output.
    /// The Fenwick tree is recomputed from the weights (its values are a
    /// pure function of weights and length), so only the length needs to
    /// be carried.
    ///
    /// # Errors
    ///
    /// Returns a description when the parts are inconsistent (free slots
    /// not matching empty slots, occupied slot with zero weight, duplicate
    /// keys, total weight overflowing `u64`, or a tree too short for the
    /// slot count). Never panics: snapshot restoration feeds it untrusted
    /// bytes.
    pub fn from_parts(
        slots: Vec<(Option<K>, u64)>,
        free_slots: Vec<usize>,
        tree_len: usize,
    ) -> Result<Self, &'static str> {
        // 1-based Fenwick indexing needs room for index `slots.len()`.
        if tree_len <= slots.len() {
            return Err("sampler tree shorter than the slot array");
        }
        let mut keys = Vec::with_capacity(slots.len());
        let mut weights = Vec::with_capacity(slots.len());
        let mut index_of = HashMap::with_capacity(slots.len());
        let mut total = 0u64;
        for (slot, (key, weight)) in slots.into_iter().enumerate() {
            match key {
                Some(k) => {
                    if weight == 0 {
                        return Err("sampler slot occupied with zero weight");
                    }
                    if index_of.insert(k, slot).is_some() {
                        return Err("sampler key appears in two slots");
                    }
                }
                None => {
                    if weight != 0 {
                        return Err("free sampler slot with non-zero weight");
                    }
                }
            }
            keys.push(key);
            weights.push(weight);
            // Untrusted input: the weights must fit u64 in aggregate, or
            // the Fenwick partial sums below (all ≤ total) would overflow.
            total = total
                .checked_add(weight)
                .ok_or("sampler weights overflow the total")?;
        }
        let free_ok = free_slots
            .iter()
            .all(|&s| s < keys.len() && keys[s].is_none());
        let free_count = keys.iter().filter(|k| k.is_none()).count();
        if !free_ok || free_slots.len() != free_count {
            return Err("sampler free-slot stack does not match empty slots");
        }
        let mut sampler = WeightedSampler {
            tree: vec![0; tree_len],
            weights,
            keys,
            index_of,
            free_slots,
            total,
        };
        for slot in 0..sampler.weights.len() {
            let w = sampler.weights[slot];
            if w > 0 {
                let mut i = slot + 1;
                while i < sampler.tree.len() {
                    sampler.tree[i] += w;
                    i += i & i.wrapping_neg();
                }
            }
        }
        Ok(sampler)
    }

    /// Iterates over `(key, weight)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.keys
            .iter()
            .zip(&self.weights)
            .filter_map(|(k, &w)| k.as_ref().map(|key| (key, w)))
    }

    /// Sets the weight stored at `slot`, updating the tree and total.
    fn set_slot_weight(&mut self, slot: usize, weight: u64) {
        let old = self.weights[slot];
        self.weights[slot] = weight;
        self.total = self.total - old + weight;
        // Fenwick point update (1-based).
        let mut i = slot + 1;
        let (add, sub) = if weight >= old {
            (weight - old, 0)
        } else {
            (0, old - weight)
        };
        while i < self.tree.len() {
            self.tree[i] = self.tree[i] + add - sub;
            i += i & i.wrapping_neg();
        }
    }

    /// Rebuilds the Fenwick tree with doubled capacity.
    fn rebuild_tree(&mut self) {
        let cap = (self.weights.len() + 1).next_power_of_two().max(2);
        self.tree = vec![0; cap * 2];
        for (slot, &w) in self.weights.iter().enumerate() {
            if w > 0 {
                let mut i = slot + 1;
                while i < self.tree.len() {
                    self.tree[i] += w;
                    i += i & i.wrapping_neg();
                }
            }
        }
    }

    /// Finds the slot holding the `target`-th unit of weight: the smallest
    /// slot whose prefix sum exceeds `target`. Standard Fenwick descend.
    fn find_slot(&self, mut target: u64) -> usize {
        debug_assert!(target < self.total);
        let mut pos = 0usize;
        let mut step = self.tree.len().next_power_of_two() / 2;
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            step /= 2;
        }
        // pos is 1-based index of the last slot with prefix <= target;
        // the answer is the following slot (0-based = pos).
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chi_square_ok(observed: &[u64], expected: &[f64]) -> bool {
        let chi2: f64 = observed
            .iter()
            .zip(expected)
            .filter(|(_, &e)| e > 0.0)
            .map(|(&o, &e)| {
                let d = o as f64 - e;
                d * d / e
            })
            .sum();
        // Generous threshold for <= 20 dof at far-tail significance.
        chi2 < 60.0
    }

    #[test]
    fn sampling_proportional_to_weight() {
        let mut s = WeightedSampler::new();
        let weights = [5u64, 10, 1, 100, 42, 7];
        for (i, &w) in weights.iter().enumerate() {
            s.insert(i, w);
        }
        let total: u64 = weights.iter().sum();
        let mut rng = DetRng::from_seed_label(21, "prop");
        let n = 200_000u64;
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..n {
            counts[*s.sample(&mut rng).unwrap()] += 1;
        }
        let expected: Vec<f64> = weights
            .iter()
            .map(|&w| n as f64 * w as f64 / total as f64)
            .collect();
        assert!(
            chi_square_ok(&counts, &expected),
            "{counts:?} vs {expected:?}"
        );
    }

    #[test]
    fn empty_and_single() {
        let mut s: WeightedSampler<u32> = WeightedSampler::new();
        let mut rng = DetRng::from_seed_label(22, "one");
        assert!(s.sample(&mut rng).is_none());
        s.insert(9, 3);
        for _ in 0..10 {
            assert_eq!(*s.sample(&mut rng).unwrap(), 9);
        }
    }

    #[test]
    fn remove_redirects_mass() {
        let mut s = WeightedSampler::new();
        s.insert("a", 50);
        s.insert("b", 50);
        assert_eq!(s.remove(&"a"), Some(50));
        assert_eq!(s.remove(&"a"), None);
        assert_eq!(s.total_weight(), 50);
        let mut rng = DetRng::from_seed_label(23, "rm");
        for _ in 0..100 {
            assert_eq!(*s.sample(&mut rng).unwrap(), "b");
        }
    }

    #[test]
    fn update_weight_in_place() {
        let mut s = WeightedSampler::new();
        s.insert(1u32, 10);
        s.insert(2u32, 10);
        s.insert(1u32, 1000); // update, not duplicate
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_weight(), 1010);
        assert_eq!(s.weight(&1), Some(1000));
        let mut rng = DetRng::from_seed_label(24, "upd");
        let ones = (0..1000)
            .filter(|_| *s.sample(&mut rng).unwrap() == 1)
            .count();
        assert!(ones > 950, "ones={ones}");
    }

    #[test]
    fn slot_recycling_after_churn() {
        let mut s = WeightedSampler::new();
        for i in 0..100u32 {
            s.insert(i, (i + 1) as u64);
        }
        for i in 0..50u32 {
            s.remove(&i);
        }
        for i in 100..150u32 {
            s.insert(i, 5);
        }
        assert_eq!(s.len(), 100);
        let expect_total: u64 = (51..=100).sum::<u64>() + 50 * 5;
        assert_eq!(s.total_weight(), expect_total);
        // All sampled keys must be live ones.
        let mut rng = DetRng::from_seed_label(25, "churn");
        for _ in 0..2000 {
            let k = *s.sample(&mut rng).unwrap();
            assert!((50..150).contains(&k), "sampled dead key {k}");
        }
    }

    #[test]
    fn growth_across_rebuilds() {
        let mut s = WeightedSampler::new();
        for i in 0..10_000u64 {
            s.insert(i, 1 + i % 7);
        }
        let expect: u64 = (0..10_000u64).map(|i| 1 + i % 7).sum();
        assert_eq!(s.total_weight(), expect);
        // Prefix integrity: sampling never returns a free/invalid slot.
        let mut rng = DetRng::from_seed_label(26, "grow");
        for _ in 0..1000 {
            assert!(s.sample(&mut rng).is_some());
        }
    }

    #[test]
    fn iter_lists_live_entries() {
        let mut s = WeightedSampler::new();
        s.insert("x", 1);
        s.insert("y", 2);
        s.remove(&"x");
        let entries: Vec<_> = s.iter().collect();
        assert_eq!(entries, vec![(&"y", 2)]);
    }

    /// Snapshot round-trip must preserve the exact slot layout: the
    /// restored sampler emits the identical sample stream (same rng) and
    /// reuses slots in the same order on future churn.
    #[test]
    fn snapshot_parts_round_trip_preserves_sampling_stream() {
        let mut s = WeightedSampler::new();
        for i in 0..60u64 {
            s.insert(i, 1 + i % 9);
        }
        for i in (0..60u64).step_by(3) {
            s.remove(&i);
        }
        for i in 100..110u64 {
            s.insert(i, 7);
        }
        let (slots, free, tree_len) = s.snapshot_parts();
        let mut r = WeightedSampler::from_parts(slots, free, tree_len).expect("valid parts");
        assert_eq!(r.total_weight(), s.total_weight());
        assert_eq!(r.len(), s.len());
        let mut rng_a = DetRng::from_seed_label(5, "snap");
        let mut rng_b = rng_a.clone();
        for _ in 0..500 {
            assert_eq!(s.sample(&mut rng_a), r.sample(&mut rng_b));
        }
        // Future churn stays aligned too (free-slot stack order preserved).
        s.insert(200, 3);
        r.insert(200, 3);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng_a), r.sample(&mut rng_b));
        }
    }

    #[test]
    fn from_parts_rejects_inconsistent_layouts() {
        let err = |r: Result<WeightedSampler<u64>, &'static str>| r.unwrap_err();
        // Tree too short for the slot count.
        assert!(err(WeightedSampler::from_parts(vec![(Some(1), 2)], vec![], 1)).contains("tree"));
        // Occupied slot with zero weight.
        assert!(
            err(WeightedSampler::from_parts(vec![(Some(1), 0)], vec![], 4)).contains("zero weight")
        );
        // Free slot carrying weight.
        assert!(err(WeightedSampler::from_parts(vec![(None, 5)], vec![0], 4)).contains("free"));
        // Free stack not matching the empty slots.
        assert!(err(WeightedSampler::from_parts(
            vec![(Some(1), 2), (None, 0)],
            vec![],
            4
        ))
        .contains("free-slot"));
        // Duplicate key.
        assert!(err(WeightedSampler::from_parts(
            vec![(Some(1), 2), (Some(1), 3)],
            vec![],
            4
        ))
        .contains("two slots"));
        // Aggregate weight overflow (reachable from a crafted snapshot
        // with a recomputed self-hash) — typed error, not a panic.
        assert!(err(WeightedSampler::from_parts(
            vec![(Some(1), u64::MAX), (Some(2), u64::MAX)],
            vec![],
            4
        ))
        .contains("overflow"));
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let mut s = WeightedSampler::new();
        s.insert(1u8, 0);
    }

    #[test]
    fn two_key_distribution_exact_bounds() {
        // With weights 1 and 3, P(key=1) = 0.75; check tight empirically.
        let mut s = WeightedSampler::new();
        s.insert(0u8, 1);
        s.insert(1u8, 3);
        let mut rng = DetRng::from_seed_label(27, "twokey");
        let n = 100_000;
        let hits = (0..n).filter(|_| *s.sample(&mut rng).unwrap() == 1).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
    }
}
