//! Verifies Theorem 3: robustness (gamma_lost vs the analytic bound).

use fi_sim::robustness::{render, run_headline, run_sweep, RobustnessConfig};
use fi_sim::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let config = RobustnessConfig::for_scale(scale);
    println!(
        "{}",
        fi_bench::banner(
            "Theorem 3 — provable robustness",
            "FileInsurer (ICDCS'22), Theorem 3 / §V-B.3"
        )
    );
    println!(
        "Ns={} sectors, Nv={} minValue files, capPara={}, gamma_m_v={}\n",
        config.ns, config.nv, config.cap_para, config.gamma_m_v
    );

    println!("headline (paper example): k=20, lambda=0.5 — 'no more than 0.1% of value lost'");
    println!("{}", render(&run_headline(&config)));

    println!("sweep: k x lambda x adversary");
    let rows = run_sweep(&config, &[4, 10, 20], &[0.1, 0.3, 0.5, 0.7]);
    println!("{}", render(&rows));
    println!("expected shape: measured gamma_lost <= bound everywhere; losses only at");
    println!("small k / large lambda; k=20 rows lose nothing at any adversary.");
}
