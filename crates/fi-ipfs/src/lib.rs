//! IPFS-like substrate: content addressing, Merkle DAGs, a Kademlia-style
//! DHT, and a BitSwap-style block exchange.
//!
//! Paper §II-A and §VI-F: FileInsurer *"can run in the top layer of the
//! InterPlanetary File System"* — file hashes and locations live on chain,
//! DHTs and Merkle DAGs let anyone address files through IPFS paths, and
//! retrieval happens through BitSwap. This crate provides those pieces as
//! an in-process simulation:
//!
//! * [`store`] — content-addressed block store (CID = SHA-256 of the block);
//! * [`dag`] — Merkle-DAG file chunking: import a byte stream into linked
//!   blocks, export it back, verify integrity from the root CID alone;
//! * [`dht`] — Kademlia routing: XOR metric, k-buckets, iterative lookup,
//!   provider records (`provide`/`find_providers`);
//! * [`bitswap`] — want-list block exchange between simulated peers, with
//!   per-session transfer statistics.
//!
//! # Example: store a file, retrieve it from another peer
//!
//! ```
//! use fi_ipfs::dag::{import_bytes, export_bytes};
//! use fi_ipfs::store::BlockStore;
//! use fi_ipfs::bitswap::fetch_dag;
//!
//! let mut provider = BlockStore::new();
//! let data = vec![42u8; 10_000];
//! let root = import_bytes(&mut provider, &data, 1024);
//!
//! // A fresh peer fetches the whole DAG block by block.
//! let mut client = BlockStore::new();
//! let stats = fetch_dag(&mut client, &[&provider], root).unwrap();
//! assert!(stats.blocks_received > 0);
//! assert_eq!(export_bytes(&client, root).unwrap(), data);
//! ```

pub mod bitswap;
pub mod dag;
pub mod dht;
pub mod path;
pub mod store;

pub use bitswap::{fetch_dag, BitswapError, BitswapStats};
pub use dag::{export_bytes, import_bytes, DagError, DagNode};
pub use dht::{Dht, NodeId};
pub use path::{resolve_path, Directory, PathError};
pub use store::{BlockStore, Cid};
