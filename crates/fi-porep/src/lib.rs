//! Simulated Proof-of-Replication (PoRep), Capacity Replicas, and
//! Proof-of-Spacetime (PoSt) for the FileInsurer reproduction.
//!
//! # What the real system does
//!
//! In Filecoin (and FileInsurer, which reuses the machinery — paper §II-B,
//! §III-D), a storage provider *seals* data `D` into a replica `R = seal(D,
//! ek)` under an encryption key; sealing is deliberately slow and
//! sequential, while `unseal` recovers `D`. The provider commits to the
//! replica with a Merkle root `comm_r` and proves, via SNARK, that `comm_r`
//! really is a sealing of the data behind `comm_d`. Afterwards,
//! **WindowPoSt** repeatedly proves the replica is still held, by answering
//! beacon-derived chunk challenges with Merkle inclusion proofs.
//!
//! # What we simulate, and why it is faithful
//!
//! A real PoRep needs a SNARK proving stack and hours of sealing per sector
//! — irrelevant to every claim this reproduction measures. We keep the
//! *protocol-visible* behaviour:
//!
//! * sealing is a **keyed, invertible transform** (ChaCha20 stream cipher
//!   keyed by `(replica_id)`), so each `(file, sector, key)` triple yields a
//!   unique replica — Sybil resistance: one stored copy cannot answer
//!   challenges for two replica commitments;
//! * `comm_r`/`comm_d` are binding Merkle commitments; tampering with any
//!   chunk breaks verification;
//! * the SNARK is replaced by re-execution ([`seal::PorepProof::verify`]):
//!   same accept/reject behaviour, different (modelled, not incurred) cost —
//!   see [`cost::CostModel`];
//! * **Capacity Replicas** (paper §III-D, Fig. 2) are sealings of all-zero
//!   data; they are regenerable from nothing but the key, exactly the
//!   property DRep exploits (*"the provider can recover it by PoRep.setup
//!   because the raw data of a CR are zeros"*);
//! * **WindowPoSt** answers per-cycle beacon challenges with inclusion
//!   proofs over the sealed replica ([`post`]).
//!
//! # Example
//!
//! ```
//! use fi_porep::seal::{ReplicaId, SealedReplica};
//! use fi_porep::post::{derive_challenges, WindowPost};
//! use fi_crypto::sha256;
//!
//! let data = b"file payload".to_vec();
//! let rid = ReplicaId::derive(&sha256(b"file"), &sha256(b"sector-7"), 0);
//! let replica = SealedReplica::seal(&data, rid);
//! assert_eq!(replica.unseal(), data);
//!
//! // Prove continued storage against a beacon value:
//! let beacon = sha256(b"round-42");
//! let challenges = derive_challenges(&beacon, &replica.comm_r(), 4, replica.chunk_count());
//! let proof = WindowPost::respond(&replica, &challenges);
//! assert!(proof.verify(&replica.comm_r(), &challenges));
//! ```

pub mod capacity;
pub mod cost;
pub mod election;
pub mod post;
pub mod seal;

pub use capacity::CapacityReplica;
pub use cost::CostModel;
pub use election::{run_election, ElectionWin, MinerPower};
pub use post::{derive_challenges, WindowPost};
pub use seal::{PorepProof, ReplicaId, SealedReplica};
