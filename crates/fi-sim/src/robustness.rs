//! Theorem 3 experiment: measured `γ_lost` versus the analytic bound.
//!
//! Setup mirroring §V-B.3: `Nv` files of value `minValue`, each stored as
//! `k` i.i.d. capacity-proportional replicas over `Ns` equal sectors. An
//! adversary corrupts sectors totalling `λ` of capacity under each
//! strategy of [`fi_baselines::AdversaryStrategy`]; we measure the ratio
//! of lost value and compare against
//! [`fi_analysis::theorems::theorem3_gamma_lost_bound`].
//!
//! The theorem quantifies over *all* corruption patterns; the greedy
//! adversary probes the bound from below. The headline row reproduces the
//! paper's example: `k = 20`, `λ = 0.5` ⇒ measured losses are *zero* at
//! any feasible simulation scale (expected lost files `Nv·2^-20`), far
//! inside the ≤ 0.1% claim.

use fi_analysis::theorems::{theorem3_gamma_lost_bound, RobustnessParams, SECURITY_PARAMETER};
use fi_baselines::fileinsurer::FileInsurerModel;
use fi_baselines::{
    corrupt_nodes, evaluate_loss, AdversaryStrategy, DsnModel, FileSpec, NetworkSpec,
};
use fi_crypto::DetRng;

use crate::report::{sci, TextTable};
use crate::Scale;

/// One experiment row.
#[derive(Debug, Clone)]
pub struct RobustnessRow {
    /// Replication parameter `k`.
    pub k: u32,
    /// Corrupted capacity fraction.
    pub lambda: f64,
    /// Adversary strategy.
    pub strategy: AdversaryStrategy,
    /// Measured lost-value ratio.
    pub gamma_lost: f64,
    /// Theorem 3 bound at these parameters.
    pub bound: f64,
    /// Lost file count.
    pub lost_files: usize,
    /// Total file count.
    pub total_files: usize,
}

/// Experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct RobustnessConfig {
    /// Sector count `Ns`.
    pub ns: usize,
    /// File count `Nv` (all at `minValue`).
    pub nv: usize,
    /// `capPara` used for the bound's third term.
    pub cap_para: f64,
    /// Value fill ratio `γm_v` for the bound.
    pub gamma_m_v: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RobustnessConfig {
    /// Scale-dependent defaults. `Paper` pushes `Ns`/`Nv` an order of
    /// magnitude up; the full 1e6-sector example is analytic-only (the
    /// bound is evaluated, the Monte-Carlo at that scale adds nothing —
    /// measured losses are identically zero long before).
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => RobustnessConfig {
                ns: 5_000,
                nv: 50_000,
                cap_para: 1_000.0,
                gamma_m_v: 0.005,
                seed: 0x0B0B,
            },
            Scale::Default => RobustnessConfig {
                ns: 800,
                nv: 8_000,
                cap_para: 1_000.0,
                gamma_m_v: 0.005,
                seed: 0x0B0B,
            },
        }
    }
}

/// Runs the sweep over `k ∈ ks`, `λ ∈ lambdas`, all adversary strategies.
pub fn run_sweep(config: &RobustnessConfig, ks: &[u32], lambdas: &[f64]) -> Vec<RobustnessRow> {
    let mut rows = Vec::new();
    let net = NetworkSpec::uniform(config.ns, 64);
    let files: Vec<FileSpec> = (0..config.nv)
        .map(|_| FileSpec {
            size: 1,
            value: 1.0,
        })
        .collect();
    for &k in ks {
        let model = FileInsurerModel::new(k, 0.0046);
        let mut rng = DetRng::from_seed_label(config.seed, &format!("place/k{k}"));
        let placement = model.place(&net, &files, &mut rng);
        for &lambda in lambdas {
            for strategy in AdversaryStrategy::ALL {
                let mut adv_rng = DetRng::from_seed_label(
                    config.seed,
                    &format!("adv/k{k}/l{lambda}/{}", strategy.label()),
                );
                let corrupted = corrupt_nodes(
                    &net,
                    &placement,
                    &files,
                    lambda,
                    strategy,
                    false,
                    &mut adv_rng,
                );
                let report = evaluate_loss(&net, &placement, &files, &corrupted);
                let params = RobustnessParams {
                    n_s: config.ns as f64,
                    k: k as f64,
                    cap_para: config.cap_para,
                    lambda,
                    c: SECURITY_PARAMETER,
                };
                rows.push(RobustnessRow {
                    k,
                    lambda,
                    strategy,
                    gamma_lost: report.gamma_lost(),
                    bound: theorem3_gamma_lost_bound(&params, config.gamma_m_v).min(1.0),
                    lost_files: report.lost_files,
                    total_files: files.len(),
                });
            }
        }
    }
    rows
}

/// The paper's §V-B.3 headline: `k=20, λ=0.5` under every adversary.
pub fn run_headline(config: &RobustnessConfig) -> Vec<RobustnessRow> {
    run_sweep(config, &[20], &[0.5])
}

/// Renders sweep rows.
pub fn render(rows: &[RobustnessRow]) -> String {
    let mut table = TextTable::new(vec![
        "k",
        "lambda",
        "adversary",
        "lost files",
        "gamma_lost (measured)",
        "Thm-3 bound",
        "holds",
    ]);
    for r in rows {
        table.row(vec![
            r.k.to_string(),
            format!("{:.2}", r.lambda),
            r.strategy.label().to_string(),
            format!("{}/{}", r.lost_files, r.total_files),
            sci(r.gamma_lost),
            sci(r.bound),
            if r.gamma_lost <= r.bound + 1e-12 {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    table.render()
}

// ----------------------------------------------------------------------
// The networked §V scenario (PR 6): the same fault model — lazy
// providers, mass sector failure, forced repair — driven through the
// `fi-node` cluster pipeline instead of direct engine calls, under
// message loss, a crashed leader every K slots, and one partition/heal
// cycle. This module only carries the *plain-data* contract (the spec
// and the recovery-latency metric); `fi-node` builds the cluster and
// `fi-bench` records the results, so the definition of "recovered" lives
// in exactly one place.
// ----------------------------------------------------------------------

/// The fault script a networked robustness run executes. Times are in
/// slots; the harness converts via its block interval.
#[derive(Debug, Clone)]
pub struct NetworkRobustnessSpec {
    /// Validator count (the paper-level acceptance bar runs 5).
    pub validators: usize,
    /// Slots of block production.
    pub slots: u64,
    /// Per-message loss probability on every link.
    pub loss: f64,
    /// Crash the slot's scheduled leader every this many slots
    /// (0 disables crashes).
    pub crash_every: u64,
    /// Each crash lasts this many slots.
    pub crash_for_slots: u64,
    /// Cut the minority group off at this slot (0 disables the
    /// partition).
    pub partition_at_slot: u64,
    /// Heal the partition at this slot.
    pub heal_at_slot: u64,
    /// Validator indices on the minority side of the partition.
    pub minority: Vec<usize>,
    /// Inject mass `FailSector` faults at this slot.
    pub fail_sectors_at_slot: u64,
    /// Inject `CorruptSector` faults at this slot.
    pub corrupt_sectors_at_slot: u64,
    /// Inject the `ForceDiscard` + re-add repair at this slot.
    pub repair_at_slot: u64,
}

impl NetworkRobustnessSpec {
    /// The acceptance-bar script: 5 validators, 12% loss, a leader crash
    /// every `crash_every` slots, one partition/heal cycle, and the §V
    /// injections spread through the run.
    pub fn acceptance(slots: u64, crash_every: u64) -> Self {
        NetworkRobustnessSpec {
            validators: 5,
            slots,
            loss: 0.12,
            crash_every,
            crash_for_slots: 2,
            partition_at_slot: slots / 3,
            heal_at_slot: slots / 3 + slots / 6,
            minority: vec![3, 4],
            fail_sectors_at_slot: slots / 4,
            corrupt_sectors_at_slot: slots / 2,
            repair_at_slot: 2 * slots / 3,
        }
    }
}

/// Heights-to-reconvergence after a fault clears at virtual time
/// `event`: how many heights past its frozen head a node adopted before
/// it was demonstrably back on the canonical chain.
///
/// `heads` is the node's head-adoption log — `(time, height, hash)` per
/// fork-choice move, chronological; `canonical` is the final best chain
/// as `(height, hash)` pairs (every converged node reports the same
/// one). Let `h₀` be the node's head height at `event` (its last
/// adoption at or before that time). The node has *reconverged* at its
/// first adoption after `event` whose `(height, hash)` lies on
/// `canonical` with `height ≥ h₀`; the metric is that height minus
/// `h₀` — 0 means the frozen head was already canonical and nothing
/// newer existed yet. `None` means the log never shows reconvergence
/// (the acceptance gate fails on it).
pub fn heights_to_reconvergence(
    heads: &[(u64, u64, fi_crypto::Hash256)],
    canonical: &[(u64, fi_crypto::Hash256)],
    event: u64,
) -> Option<u64> {
    let canonical: std::collections::HashSet<&(u64, fi_crypto::Hash256)> =
        canonical.iter().collect();
    let h0 = heads
        .iter()
        .take_while(|(t, _, _)| *t <= event)
        .last()
        .map(|(_, h, _)| *h)
        .unwrap_or(0);
    heads
        .iter()
        .filter(|(t, _, _)| *t >= event)
        .find(|(_, h, hash)| *h >= h0 && canonical.contains(&(*h, *hash)))
        .map(|(_, h, _)| h - h0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RobustnessConfig {
        RobustnessConfig {
            ns: 200,
            nv: 2_000,
            cap_para: 1_000.0,
            gamma_m_v: 0.005,
            seed: 7,
        }
    }

    #[test]
    fn headline_no_losses_at_k20_half_corruption() {
        let rows = run_headline(&tiny());
        assert_eq!(rows.len(), AdversaryStrategy::ALL.len());
        for r in &rows {
            assert_eq!(r.lost_files, 0, "{:?}: {} lost", r.strategy, r.lost_files);
            assert!(r.gamma_lost <= r.bound);
        }
    }

    #[test]
    fn small_k_large_lambda_does_lose_files() {
        // Sanity that the experiment *can* observe losses: k=2, λ=0.6.
        let rows = run_sweep(&tiny(), &[2], &[0.6]);
        let greedy = rows
            .iter()
            .find(|r| r.strategy == AdversaryStrategy::GreedyKill)
            .unwrap();
        assert!(greedy.lost_files > 0, "greedy should kill some k=2 files");
    }

    #[test]
    fn gamma_lost_monotone_in_lambda_for_random() {
        let rows = run_sweep(&tiny(), &[3], &[0.3, 0.6, 0.9]);
        let random: Vec<&RobustnessRow> = rows
            .iter()
            .filter(|r| r.strategy == AdversaryStrategy::Random)
            .collect();
        assert!(random[0].gamma_lost <= random[1].gamma_lost + 1e-9);
        assert!(random[1].gamma_lost <= random[2].gamma_lost + 1e-9);
    }

    #[test]
    fn reconvergence_counts_heights_past_the_frozen_head() {
        let h = |n: u64| fi_crypto::sha256(&n.to_be_bytes());
        // Canonical chain 1..=6; the node froze at height 2 (canonical),
        // came back at t=100, briefly adopted an off-chain block at
        // height 3, then rejoined the canonical chain at height 4.
        let canonical: Vec<(u64, fi_crypto::Hash256)> = (1..=6).map(|i| (i, h(i))).collect();
        let heads = vec![
            (10, 1, h(1)),
            (20, 2, h(2)),
            (100, 3, h(99)), // stale branch, not canonical
            (110, 4, h(4)),
            (120, 5, h(5)),
        ];
        assert_eq!(heights_to_reconvergence(&heads, &canonical, 90), Some(2));
        // An event before any adoption measures from height 0.
        assert_eq!(heights_to_reconvergence(&heads, &canonical, 0), Some(1));
        // A node that never rejoins reports None.
        let lost = vec![(10, 1, h(1)), (100, 2, h(77))];
        assert_eq!(heights_to_reconvergence(&lost, &canonical, 50), None);
    }

    #[test]
    fn acceptance_spec_orders_its_fault_windows() {
        let spec = NetworkRobustnessSpec::acceptance(60, 8);
        assert_eq!(spec.validators, 5);
        assert!(spec.partition_at_slot < spec.heal_at_slot);
        assert!(spec.heal_at_slot < spec.slots);
        assert!(spec.fail_sectors_at_slot < spec.repair_at_slot);
        assert!(spec.minority.len() < spec.validators.div_ceil(2));
    }

    #[test]
    fn render_marks_bound_violations() {
        let rows = vec![RobustnessRow {
            k: 2,
            lambda: 0.5,
            strategy: AdversaryStrategy::Random,
            gamma_lost: 0.9,
            bound: 0.5,
            lost_files: 9,
            total_files: 10,
        }];
        assert!(render(&rows).contains("NO"));
    }
}
