//! The FileInsurer protocol engine: the consensus state machine of §IV,
//! organized as a typed transaction processor.
//!
//! Every state transition is an [`Op`] applied through the
//! single front door [`Engine::apply`], which returns a typed
//! [`Receipt`], commits the `(op, receipt)` pair into
//! the open block's batch, and appends the op to a replayable log
//! ([`Engine::op_log`], [`Engine::replay`]). The familiar method API
//! ([`Engine::file_add`], [`Engine::sector_register`], …) survives as thin
//! wrappers that construct ops.
//!
//! The engine is split by concern:
//!
//! * [`mod@self`] — dispatch, time advancement, gas, the op log,
//!   checkpoints;
//! * `shard` — the sharded per-file core: file descriptors, allocation
//!   rows, discard reasons, per-shard task wheels and stats, routed by
//!   `FileId % shards` (ids are allocated from one global counter, so
//!   shard `s` owns the strided ids `s, s + n, s + 2n, …`);
//! * `lifecycle` — client/provider requests (Figs. 4–6): add, confirm,
//!   prove, get, discard, sector admin, segmented uploads;
//! * `audit` — the `Auto_*` consensus tasks (Figs. 7–9): `CheckAlloc`,
//!   `CheckProof`, `Refresh`, `CheckRefresh`, rent distribution,
//!   punishment and confiscation, fault injection;
//! * `alloc` — allocation bookkeeping: weighted sampling with collision
//!   retry, reservations and rollback, sector draining, the §VI-B Poisson
//!   swap-in.
//!
//! `Auto_` tasks execute from per-shard epoch-bucketed wheels
//! ([`fi_chain::tasks::TaskWheel`]) when [`Engine::advance_to`] moves time
//! past their deadline. Each due bucket runs in two phases: a read-only
//! **verify** phase (the modeled Merkle storage-proof checks of
//! `Auto_CheckProof`, fanned out across the persistent worker pool in
//! `pool` — audits are independent per (file, replica), the heart of the
//! paper's scalability claim) and a **commit** phase that merges the
//! per-shard slices back into global `(time, schedule-seq)` order and
//! applies rent, punishments and refreshes — batched through per-shard
//! write plans on large multi-shard buckets, sequentially otherwise, with
//! bit-identical results either way. The merge key is
//! shard-count-invariant, so consensus state is bit-identical whether the
//! engine runs 1 shard or 8 (see DESIGN.md §9 and §14).
//!
//! Money flows exactly as §IV-A/§IV-B prescribe:
//!
//! * **deposits** — pledged at `Sector_Register` into a deposit escrow;
//!   refunded on safe exit; confiscated into the compensation pool when a
//!   sector misses `ProofDeadline` or is corrupted;
//! * **storage rent + prepaid gas** — deducted from the client every
//!   `ProofCycle` by `Auto_CheckProof`; rent accumulates in a pool paid out
//!   to live sectors pro rata capacity each rent period; the gas share is
//!   burned (consensus space);
//! * **traffic fees** — escrowed at `File_Add`, released to each provider
//!   upon `File_Confirm`;
//! * **compensation** — on loss of all replicas, the client receives the
//!   declared file value from confiscated deposits (Fig. 8).

mod alloc;
mod audit;
mod batch;
mod lifecycle;
mod pool;
mod shard;
mod snapshot;
mod statemap;
pub mod tuning;
mod view;

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use fi_chain::account::{AccountId, Ledger, TokenAmount};
use fi_chain::block::{BlockChain, ChainEvent};
use fi_chain::gas::{GasSchedule, Op as GasOp};
use fi_chain::tasks::Time;
use fi_crypto::{DetRng, Hash256};
use fi_store::{Blockstore, DiskBlockstore, MemoryBlockstore};

use crate::drep::CrAccounting;
use crate::ops::{Op, OpRecord, Receipt};
use crate::params::{ParamError, ProtocolParams};
use crate::sampler::WeightedSampler;
use crate::segment::SegmentedFile;
use crate::types::{FileId, ProtocolEvent, Sector, SectorId};

use self::audit::ProofAudit;
use self::batch::{ledger_steps_match, shard_local_file};
use self::lifecycle::FileAddPrestage;
use self::pool::{PoolHandle, WorkerPool};
use self::shard::ShardedState;
use self::statemap::{CommitCell, TrackedMap};

pub use self::snapshot::SnapshotError;
pub use self::statemap::{StateHeader, StateRoots};
pub use self::view::{PinnedState, StateProof, StateView};

/// Deposit escrow: holds pledged sector deposits.
pub const DEPOSIT_ESCROW: AccountId = AccountId(1);
/// Compensation pool: confiscated deposits awaiting payout.
pub const COMPENSATION_POOL: AccountId = AccountId(2);
/// Rent pool: rent accrued during the current period.
pub const RENT_POOL: AccountId = AccountId(3);
/// Traffic-fee escrow: prepaid transfer fees awaiting confirms.
pub const TRAFFIC_ESCROW: AccountId = AccountId(4);

/// Errors returned by engine request handlers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Unknown file id.
    UnknownFile(FileId),
    /// Unknown sector id.
    UnknownSector(SectorId),
    /// The caller does not own the object it is operating on.
    NotOwner,
    /// The object is in the wrong state for the request.
    InvalidState(&'static str),
    /// Parameter/argument validation failed.
    Param(ParamError),
    /// The caller cannot cover a required payment.
    InsufficientFunds,
    /// No sector with enough free space could be sampled
    /// (`collision_retry_limit` exceeded — "almost never happens").
    NoCapacity,
    /// File exceeds `sizeLimit`; segment it first (§VI-C, [`crate::segment`]).
    FileTooLarge {
        /// Requested size.
        size: u64,
        /// The configured `sizeLimit`.
        limit: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownFile(id) => write!(f, "unknown {id}"),
            EngineError::UnknownSector(id) => write!(f, "unknown {id}"),
            EngineError::NotOwner => write!(f, "caller does not own the target"),
            EngineError::InvalidState(what) => write!(f, "invalid state: {what}"),
            EngineError::Param(e) => write!(f, "{e}"),
            EngineError::InsufficientFunds => write!(f, "insufficient funds"),
            EngineError::NoCapacity => write!(f, "no sector with sufficient free space"),
            EngineError::FileTooLarge { size, limit } => {
                write!(
                    f,
                    "file size {size} exceeds sizeLimit {limit}; erasure-segment it"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParamError> for EngineError {
    fn from(e: ParamError) -> Self {
        EngineError::Param(e)
    }
}

/// The result of [`Engine::file_add_segmented`]: the per-segment file ids
/// (data segments first, parity after — index `i` stores segment `i`) plus
/// the segmentation plan with the encoded flat buffer.
#[derive(Debug, Clone)]
pub struct SegmentedUpload {
    /// One file id per segment, in segment order.
    pub files: Vec<FileId>,
    /// The §VI-C plan: flat segment buffer, per-segment value, geometry.
    pub segmented: SegmentedFile,
}

/// Consensus-scheduled tasks (the `Auto_` protocols).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(super) enum Task {
    CheckAlloc(FileId),
    CheckProof(FileId),
    CheckRefresh(FileId, u32),
    DistributeRent,
}

/// Counters exposed for experiments and tests.
///
/// The engine keeps one instance per shard (for file-attributable
/// counters) plus one global instance (for sector-attributable counters
/// incremented outside any file context); [`Engine::stats`] returns the
/// [`EngineStats::merge`] of all of them, which equals what a 1-shard
/// engine counts on the same workload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// `File_Add` sampling retries that hit an over-full sector.
    pub add_collisions: u64,
    /// `Auto_Refresh` attempts aborted because the target lacked space.
    pub refresh_collisions: u64,
    /// Refresh transfers started.
    pub refreshes_started: u64,
    /// Refresh transfers completed.
    pub refreshes_completed: u64,
    /// Storage proofs accepted.
    pub proofs_accepted: u64,
    /// Late-proof / failed-transfer punishments applied.
    pub punishments: u64,
    /// Sectors corrupted (deadline misses + injected corruption).
    pub sectors_corrupted: u64,
    /// Files lost (all replicas destroyed).
    pub files_lost: u64,
    /// Total declared value of lost files.
    pub value_lost: TokenAmount,
    /// Compensation actually paid out.
    pub compensation_paid: TokenAmount,
    /// Compensation shortfall (pool ran dry) — must stay zero in any run
    /// within Theorem 4's deposit regime.
    pub compensation_shortfall: TokenAmount,
    /// Replica storage proofs cryptographically checked by
    /// `Auto_CheckProof`'s read-only verify phase.
    pub proofs_audited: u64,
    /// Ingest segments staged through the parallel pipeline
    /// (`Engine::apply_batch`). Execution-strategy counter, not a
    /// consensus one — see [`EngineStats::consensus`].
    pub batches_staged_parallel: u64,
    /// Staged ingest segments in which at least one op's ledger
    /// assumptions failed commit-time revalidation and re-executed
    /// sequentially. Makes the fallback path observable instead of
    /// silent. Execution-strategy counter — see
    /// [`EngineStats::consensus`].
    pub batches_fell_back_sequential: u64,
    /// Due audit buckets committed through the parallel per-shard
    /// write-batch path instead of the sequential fold.
    /// Execution-strategy counter — see [`EngineStats::consensus`].
    pub audit_commit_batches: u64,
}

impl EngineStats {
    /// Accumulates `other` into `self`, field by field. Counters are
    /// disjoint across shards (every increment happens on exactly one
    /// shard, or on the engine's global instance), so merging the
    /// per-shard stats reproduces the unsharded totals exactly.
    pub fn merge(&mut self, other: &EngineStats) {
        // Exhaustive destructuring (no `..`): adding a field to
        // EngineStats without merging it is a compile error, not a
        // silently under-reported counter at shards > 1.
        let EngineStats {
            add_collisions,
            refresh_collisions,
            refreshes_started,
            refreshes_completed,
            proofs_accepted,
            punishments,
            sectors_corrupted,
            files_lost,
            value_lost,
            compensation_paid,
            compensation_shortfall,
            proofs_audited,
            batches_staged_parallel,
            batches_fell_back_sequential,
            audit_commit_batches,
        } = other;
        self.add_collisions += add_collisions;
        self.refresh_collisions += refresh_collisions;
        self.refreshes_started += refreshes_started;
        self.refreshes_completed += refreshes_completed;
        self.proofs_accepted += proofs_accepted;
        self.punishments += punishments;
        self.sectors_corrupted += sectors_corrupted;
        self.files_lost += files_lost;
        self.value_lost += *value_lost;
        self.compensation_paid += *compensation_paid;
        self.compensation_shortfall += *compensation_shortfall;
        self.proofs_audited += proofs_audited;
        self.batches_staged_parallel += batches_staged_parallel;
        self.batches_fell_back_sequential += batches_fell_back_sequential;
        self.audit_commit_batches += audit_commit_batches;
    }

    /// This stats object with the execution-strategy counters zeroed,
    /// leaving only the consensus-observable counters.
    ///
    /// The strategy counters (`batches_staged_parallel`,
    /// `batches_fell_back_sequential`, `audit_commit_batches`) record
    /// *which code path* ran, and legitimately differ across
    /// `(shards, ingest_threads)` configurations and between op-by-op
    /// `apply` and `apply_batch` — while the state they produce is
    /// bit-identical. Differential tests comparing engines across
    /// configurations compare `a.stats().consensus()`, not raw stats.
    pub fn consensus(&self) -> EngineStats {
        EngineStats {
            batches_staged_parallel: 0,
            batches_fell_back_sequential: 0,
            audit_commit_batches: 0,
            ..self.clone()
        }
    }
}

/// Cumulative wall-clock seconds the engine spent in its four measured
/// parallel-path phases, accumulated across calls. Observability only:
/// never part of consensus state, snapshots, or replay (a restored or
/// replayed engine starts from zero).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Batch-ingest staging: concurrent shard-overlay execution plus the
    /// barrier `File_Add` prestaging riding in the same pool run.
    pub stage_s: f64,
    /// Batch-ingest commit: in-order ledger revalidation and effect
    /// application (including sequential fallbacks).
    pub commit_s: f64,
    /// Audit verify: the read-only storage-proof checks of a due bucket.
    pub verify_s: f64,
    /// Audit commit: the canonical-order fold plus rent/punishment/
    /// reschedule application and per-shard write-batch flushes.
    pub fold_s: f64,
}

/// The FileInsurer consensus engine.
///
/// # Example
///
/// ```
/// use fi_core::engine::{Engine, StateView};
/// use fi_core::params::ProtocolParams;
/// use fi_chain::account::{AccountId, TokenAmount};
///
/// let mut params = ProtocolParams::default();
/// params.k = 2; // 2 replicas per minValue file in this tiny demo
/// let mut engine = Engine::new(params).unwrap();
///
/// let provider = AccountId(100);
/// let client = AccountId(200);
/// engine.fund(provider, TokenAmount(1_000_000_000));
/// engine.fund(client, TokenAmount(1_000_000));
///
/// let sector = engine.sector_register(provider, 640).unwrap();
/// let root = fi_crypto::sha256(b"my file");
/// let file = engine
///     .file_add(client, 10, engine.params().min_value, root)
///     .unwrap();
///
/// // The provider confirms both replicas, then time advances past the
/// // transfer window and Auto_CheckAlloc finalises the placement.
/// for (idx, s) in engine.pending_confirms(file) {
///     assert_eq!(s, sector);
///     engine.file_confirm(provider, file, idx, s).unwrap();
/// }
/// let deadline = engine.now() + engine.params().transfer_window(10);
/// engine.advance_to(deadline);
/// assert!(engine.file(file).is_some());
///
/// // Every action above went through the typed op layer:
/// assert!(engine.op_log().iter().any(|r| r.op.kind() == "op.file_add"));
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    params: ProtocolParams,
    chain: BlockChain,
    ledger: Ledger,
    gas: GasSchedule,
    /// The per-file core, partitioned by `FileId % shards`: descriptors,
    /// allocation rows, discard reasons, task wheels, per-shard stats.
    shards: ShardedState,
    sectors: TrackedMap<SectorId, Sector>,
    cr: TrackedMap<SectorId, CrAccounting>,
    /// `(file, index)` pairs touching each sector (as holder or as
    /// reservation target). Kept consistent with the shards' alloc tables.
    sector_replicas: HashMap<SectorId, BTreeSet<(FileId, u32)>>,
    sampler: WeightedSampler<SectorId>,
    rng: DetRng,
    next_file_id: u64,
    next_sector_id: u64,
    events: Vec<ProtocolEvent>,
    /// Sector-attributable counters with no file context; merged with the
    /// per-shard stats by [`Engine::stats`].
    stats_global: EngineStats,
    op_counter: u64,
    /// Total ops ever applied — survives [`Engine::checkpoint`] op-log
    /// truncation, so it (not `op_log.len()`) feeds `seq` and the state
    /// root.
    ops_applied: u64,
    /// Global schedule sequence — the shard-count-invariant merge key for
    /// the commit phase (assigned in apply order).
    task_seq: u64,
    /// Running commitment over every verification digest — the
    /// `Auto_CheckProof` verify-phase digests and the `File_Prove`
    /// modeled-WindowPoSt digests — folded in commit order. Part of the
    /// state root: asserting root equality across shard counts and
    /// ingest paths pins the parallel verification results bit-for-bit.
    audit_root: Hash256,
    op_log: Vec<OpRecord>,
    last_checkpoint: Option<Checkpoint>,
    /// Lazily spawned persistent worker pool backing every parallel phase
    /// (ingest staging, audit verify fan-out, audit write-batch flushes).
    /// Shared across engine clones; never part of consensus state or
    /// snapshots.
    pool: PoolHandle,
    /// Per-phase wall-time accumulators ([`Engine::phase_times`]).
    /// Observability only.
    phase: PhaseTimes,
    /// The content-addressed blockstore backing the state commitment.
    /// Shared across engine clones (content addressing makes sharing
    /// harmless: blocks are immutable and keyed by their own hash), and
    /// *never* part of consensus: any backend yields the same roots.
    store: Arc<dyn Blockstore>,
    /// The five state HAMTs ([`statemap::StateMaps`]), synced from the
    /// tracked maps' dirty keys on every [`Engine::state_root`].
    commit: CommitCell,
}

/// A compact commitment to engine state at a block height, taken by
/// [`Engine::checkpoint`] when the op log is truncated. A later
/// [`Engine::replay_from`] validates its base engine against this before
/// replaying the post-checkpoint suffix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Chain height at the checkpoint.
    pub height: u64,
    /// Consensus time at the checkpoint.
    pub at: Time,
    /// `state_root()` at the checkpoint.
    pub state_root: Hash256,
    /// Ops applied up to the checkpoint (the `seq` of the next op).
    pub ops_applied: u64,
}

impl Engine {
    /// Creates an engine with validated parameters at time 0, on the
    /// default blockstore: in-memory, unless the `FI_TEST_STORE=disk`
    /// environment variable selects the process-shared disk backend (the
    /// CI store axis — the backend is deployment configuration, never
    /// consensus; see [`Engine::new_with_store`]).
    ///
    /// # Errors
    ///
    /// Returns the first violated parameter constraint.
    pub fn new(params: ProtocolParams) -> Result<Self, ParamError> {
        Engine::new_with_store(params, default_store())
    }

    /// [`Engine::new`] on an explicit [`Blockstore`]. The backend choice
    /// is invisible to consensus — an engine on a disk store produces
    /// bit-identical roots, receipts and block hashes to one on a memory
    /// store (asserted by the `(store × shards × threads)` differential
    /// matrix in `tests/state_commitment.rs`).
    ///
    /// # Errors
    ///
    /// Returns the first violated parameter constraint.
    pub fn new_with_store(
        params: ProtocolParams,
        store: Arc<dyn Blockstore>,
    ) -> Result<Self, ParamError> {
        params.validate()?;
        let chain = BlockChain::new(params.seed, params.block_interval);
        let rng = chain.beacon().rng_at(0, "fileinsurer/engine");
        let mut engine = Engine {
            chain,
            ledger: Ledger::new(),
            gas: GasSchedule::default(),
            shards: ShardedState::new(params.shards, params.scheduler, params.block_interval),
            sectors: TrackedMap::new(),
            cr: TrackedMap::new(),
            sector_replicas: HashMap::new(),
            sampler: WeightedSampler::new(),
            rng,
            next_file_id: 0,
            next_sector_id: 0,
            events: Vec::new(),
            stats_global: EngineStats::default(),
            op_counter: 0,
            ops_applied: 0,
            task_seq: 0,
            audit_root: Hash256::ZERO,
            op_log: Vec::new(),
            last_checkpoint: None,
            pool: PoolHandle::new(),
            phase: PhaseTimes::default(),
            store,
            commit: CommitCell::new(),
            params,
        };
        let period = engine.rent_period();
        engine.schedule_task(period, Task::DistributeRent);
        Ok(engine)
    }

    /// The content-addressed blockstore backing the state commitment.
    /// Shared by every clone of this engine; a [`PinnedState`] reading one
    /// of this engine's historical roots borrows the same store.
    pub fn store(&self) -> &Arc<dyn Blockstore> {
        &self.store
    }

    // ------------------------------------------------------------------
    // The typed transaction layer
    // ------------------------------------------------------------------

    /// Applies one typed protocol op — the single front door for every
    /// state transition. The op and its receipt are committed into the
    /// open block's batch and the op is appended to the replayable log,
    /// whether it succeeded or not (failed requests still burn gas).
    ///
    /// # Errors
    ///
    /// The same errors the corresponding request handler reports (see each
    /// [`Op`] variant's wrapper method).
    pub fn apply(&mut self, op: Op) -> Result<Receipt, EngineError> {
        let op_digest = op.digest();
        self.apply_prehashed(op, op_digest, None)
    }

    /// [`Engine::apply`] with the op's canonical digest precomputed.
    /// [`Engine::apply_batch`] hashes a block's barrier ops in one
    /// multi-lane sweep ([`Op::digest_many`]) and commits each through
    /// here; the digest MUST be `op.digest()` or the block commitment
    /// diverges from replay. `prestage` optionally carries a `File_Add`'s
    /// precomputed pure half (validation, fees, geometry) — the pipelined
    /// batch path computes it concurrently with segment staging; `None`
    /// computes it inline through the identical pure function.
    fn apply_prehashed(
        &mut self,
        op: Op,
        op_digest: Hash256,
        prestage: Option<FileAddPrestage>,
    ) -> Result<Receipt, EngineError> {
        let at = self.now();
        let result = self.dispatch(&op, prestage);
        let receipt_digest = match &result {
            Ok(receipt) => receipt.digest(),
            Err(err) => Receipt::error_digest(err),
        };
        self.chain.log_op(op_digest, receipt_digest);
        self.op_log.push(OpRecord {
            seq: self.ops_applied,
            at,
            op,
            ok: result.is_ok(),
        });
        self.ops_applied += 1;
        result
    }

    fn dispatch(
        &mut self,
        op: &Op,
        prestage: Option<FileAddPrestage>,
    ) -> Result<Receipt, EngineError> {
        match op {
            Op::SectorRegister { owner, capacity } => self
                .sector_register_op(*owner, *capacity)
                .map(|sector| Receipt::SectorRegistered { sector }),
            Op::SectorDisable { caller, sector } => self
                .sector_disable_op(*caller, *sector)
                .map(|()| Receipt::SectorDisabled { sector: *sector }),
            Op::FileAdd {
                client,
                size,
                value,
                merkle_root,
            } => {
                // One pure function computes the prestage on both paths:
                // pipelined batches hand it in, sequential dispatch
                // computes it here — bit-identical by construction.
                let pre = prestage.unwrap_or_else(|| {
                    FileAddPrestage::compute(&self.params, &self.gas, *size, *value)
                });
                self.file_add_op(*client, *size, *value, *merkle_root, pre)
                    .map(|(file, cp)| Receipt::FileAdded { file, cp })
            }
            // The five shard-local ops share one staged executor with the
            // batch-ingest path (`engine/batch.rs`): sequential dispatch is
            // staging against live state plus an immediate commit.
            Op::FileConfirm { .. }
            | Op::FileProve { .. }
            | Op::FileGet { .. }
            | Op::FileDiscard { .. }
            | Op::ForceDiscard { .. } => self.apply_shard_local(op),
            Op::Fund { account, amount } => {
                self.ledger.mint(*account, *amount);
                Ok(Receipt::Balance {
                    account: *account,
                    balance: self.ledger.balance(*account),
                })
            }
            Op::Burn { account, amount } => {
                self.ledger
                    .burn(*account, *amount)
                    .map_err(|_| EngineError::InsufficientFunds)?;
                Ok(Receipt::Balance {
                    account: *account,
                    balance: self.ledger.balance(*account),
                })
            }
            Op::FailSector { sector } => {
                self.fail_sector_op(*sector);
                Ok(Receipt::Faulted { sector: *sector })
            }
            Op::CorruptSector { sector } => {
                self.corrupt_sector_op(*sector);
                Ok(Receipt::Faulted { sector: *sector })
            }
            Op::AdvanceTo { target } => {
                self.advance_to_op(*target);
                Ok(Receipt::TimeAdvanced {
                    now: self.now(),
                    height: self.chain.height(),
                })
            }
        }
    }

    /// Applies a whole block batch of ops through the pipelined ingest
    /// path, returning one result per op in submission order.
    ///
    /// The batch is split into segments of consecutive **shard-local** ops
    /// (`File_Confirm` / `File_Prove` / `File_Get` / `File_Discard` /
    /// `ForceDiscard`) separated by **barrier** ops (sector admin,
    /// `File_Add`, funds, fault injection, `AdvanceTo` — anything touching
    /// global state beyond the ledger). Segments of at least 64 ops on a
    /// multi-shard, multi-thread engine are *staged* concurrently — up to
    /// [`ProtocolParams::ingest_threads`] scoped workers, one shard's ops
    /// per overlay — and then *committed* sequentially in submission
    /// order; smaller segments and barriers go through [`Engine::apply`]
    /// directly.
    ///
    /// Consensus state after `apply_batch(ops)` is **bit-identical** to
    /// `for op in ops { engine.apply(op); }` at every
    /// `(shards, ingest_threads)` combination: same state root, same
    /// receipts, same block hashes, same op log (see DESIGN.md §10 and the
    /// randomized equivalence tests in `tests/batch_ingest.rs`).
    pub fn apply_batch(&mut self, ops: Vec<Op>) -> Vec<Result<Receipt, EngineError>> {
        // Pre-stage the barrier ops' canonical digests in one multi-lane
        // sweep; the segments' op digests are batched inside the staging
        // workers, and the barriers' `File_Add` prestages ride along in the
        // same pool runs. Consumed in submission order below.
        let barriers: Vec<&Op> = ops
            .iter()
            .filter(|op| shard_local_file(op).is_none())
            .collect();
        let mut barrier_digests = Op::digest_many(&barriers).into_iter();
        let mut results = Vec::with_capacity(ops.len());
        let mut i = 0;
        while i < ops.len() {
            // A (possibly empty) run of shard-local ops …
            let seg_start = i;
            while i < ops.len() && shard_local_file(&ops[i]).is_some() {
                i += 1;
            }
            let seg_end = i;
            // … followed by the (possibly empty) barrier run that ends it.
            let bar_start = i;
            while i < ops.len() && shard_local_file(&ops[i]).is_none() {
                i += 1;
            }
            let bar_end = i;
            // Staging the segment also prestages the upcoming barriers'
            // `File_Add` pure halves, concurrently with the shard workers.
            let mut prestages = self.commit_segment(
                &ops[seg_start..seg_end],
                &ops[bar_start..bar_end],
                &mut results,
            );
            for (k, op) in ops[bar_start..bar_end].iter().enumerate() {
                let digest = barrier_digests
                    .next()
                    .expect("one pre-staged digest per barrier op");
                let pre = prestages.get_mut(k).and_then(Option::take);
                results.push(self.apply_prehashed(op.clone(), digest, pre));
            }
        }
        results
    }

    /// Drains one pipeline segment: stages it in parallel when large
    /// enough to pay for the fan-out, then commits in submission order.
    /// Ops whose staged ledger assumptions no longer hold — or that target
    /// a shard already invalidated this segment — re-execute sequentially,
    /// which preserves bit-identical semantics in every interleaving.
    ///
    /// Returns the prestaged pure halves of the `File_Add` ops among
    /// `upcoming_barriers` (computed inside the staging pool run, i.e.
    /// concurrently with the shard workers), one slot per barrier op;
    /// empty when the segment committed sequentially — the dispatcher then
    /// computes each prestage inline through the same pure function.
    fn commit_segment(
        &mut self,
        segment: &[Op],
        upcoming_barriers: &[Op],
        results: &mut Vec<Result<Receipt, EngineError>>,
    ) -> Vec<Option<FileAddPrestage>> {
        if segment.is_empty() && upcoming_barriers.is_empty() {
            return Vec::new();
        }
        if segment.len() < tuning::parallel_ingest_threshold()
            || self.params.ingest_threads <= 1
            || self.shards.shards.len() <= 1
        {
            for op in segment {
                results.push(self.apply(op.clone()));
            }
            return Vec::new();
        }
        let stage_start = Instant::now();
        let (staged, prestages) = self.stage_segment(segment, upcoming_barriers);
        self.phase.stage_s += stage_start.elapsed().as_secs_f64();
        self.stats_global.batches_staged_parallel += 1;

        let commit_start = Instant::now();
        let mut dirty = vec![false; self.shards.shards.len()];
        let mut fell_back = false;
        for (op, staged_op) in segment.iter().zip(staged) {
            let file = shard_local_file(op).expect("segment holds shard-local ops");
            let shard_idx = self.shards.shard_of(file);
            if !dirty[shard_idx] && ledger_steps_match(&self.ledger, &staged_op.effects.ledger) {
                let at = self.now();
                let outcome = self.apply_effects(shard_idx, staged_op.effects);
                self.chain
                    .log_op(staged_op.op_digest, staged_op.receipt_digest);
                self.op_log.push(OpRecord {
                    seq: self.ops_applied,
                    at,
                    op: op.clone(),
                    ok: outcome.is_ok(),
                });
                self.ops_applied += 1;
                results.push(outcome);
            } else {
                // A same-segment op moved money past a threshold this op's
                // staging assumed; its overlay (and every later staged op
                // on this shard) is stale. Fall back to sequential apply.
                dirty[shard_idx] = true;
                fell_back = true;
                results.push(self.apply(op.clone()));
            }
        }
        if fell_back {
            self.stats_global.batches_fell_back_sequential += 1;
        }
        self.phase.commit_s += commit_start.elapsed().as_secs_f64();
        prestages
    }

    /// The op log: every applied op in order, successes and failures alike.
    pub fn op_log(&self) -> &[OpRecord] {
        &self.op_log
    }

    /// Rebuilds an engine by replaying an op log against fresh state. With
    /// the same `params`, the result matches the original engine exactly —
    /// same `state_root()`, same block hashes at every height (the replay
    /// determinism tests assert this over random workloads).
    ///
    /// # Errors
    ///
    /// Returns the first violated parameter constraint. Individual op
    /// failures are *expected* to recur (failed ops are logged too); in
    /// debug builds a divergence between logged and replayed outcomes
    /// panics.
    pub fn replay(params: ProtocolParams, log: &[OpRecord]) -> Result<Engine, ParamError> {
        let mut engine = Engine::new(params)?;
        engine.replay_records(log);
        Ok(engine)
    }

    /// Bounds op-log growth: records a [`Checkpoint`] of the current
    /// state (height, time, state root, ops applied) and truncates the op
    /// log. `state_root()` is unchanged by checkpointing — it commits to
    /// [`Checkpoint::ops_applied`], not the log length — so checkpoints
    /// are invisible to consensus.
    ///
    /// To later reconstruct state past the checkpoint, keep a clone of
    /// the engine (or a restored snapshot) from this moment and feed it
    /// to [`Engine::replay_from`] together with the post-checkpoint log.
    pub fn checkpoint(&mut self) -> Checkpoint {
        let cp = Checkpoint {
            height: self.chain.height(),
            at: self.now(),
            state_root: self.state_root(),
            ops_applied: self.ops_applied,
        };
        self.op_log.clear();
        self.last_checkpoint = Some(cp.clone());
        cp
    }

    /// The most recent [`Engine::checkpoint`], if any.
    pub fn last_checkpoint(&self) -> Option<&Checkpoint> {
        self.last_checkpoint.as_ref()
    }

    /// Rebuilds an engine from a checkpoint base instead of genesis: clones
    /// `base` (an engine snapshot taken at the checkpoint), verifies it
    /// against the checkpoint commitment, and replays the post-checkpoint
    /// `log` suffix. With the suffix an engine logged after
    /// [`Engine::checkpoint`], the result matches that engine exactly —
    /// same `state_root()`, same chain head (the replay-from-checkpoint
    /// determinism test asserts this over random workloads).
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidState`] when `base` does not match the
    /// checkpoint (wrong state root, height, or op count).
    pub fn replay_from(
        base: &Engine,
        checkpoint: &Checkpoint,
        log: &[OpRecord],
    ) -> Result<Engine, EngineError> {
        if base.state_root() != checkpoint.state_root
            || base.chain.height() != checkpoint.height
            || base.ops_applied != checkpoint.ops_applied
        {
            return Err(EngineError::InvalidState(
                "base engine does not match the checkpoint commitment",
            ));
        }
        let mut engine = base.clone();
        // Mirror the truncation the checkpointing engine performed, so the
        // rebuilt op log equals the original's post-checkpoint log.
        engine.op_log.clear();
        engine.last_checkpoint = Some(checkpoint.clone());
        engine.replay_records(log);
        Ok(engine)
    }

    fn replay_records(&mut self, log: &[OpRecord]) {
        for record in log {
            let outcome = self.apply(record.op.clone());
            debug_assert_eq!(
                outcome.is_ok(),
                record.ok,
                "replay diverged at op #{} ({})",
                record.seq,
                record.op.kind()
            );
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Current consensus time.
    pub fn now(&self) -> Time {
        self.chain.now()
    }

    /// The protocol parameters.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// The token ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The underlying chain.
    pub fn chain(&self) -> &BlockChain {
        &self.chain
    }

    /// Counters for tests and experiments: the merge of the engine's
    /// global (sector-attributable) counters with every shard's slice.
    /// The merged totals are identical at every shard count.
    pub fn stats(&self) -> EngineStats {
        let mut merged = self.stats_global.clone();
        for shard in &self.shards.shards {
            merged.merge(&shard.stats);
        }
        merged
    }

    /// The configured shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.shards.len()
    }

    // State reads — file / sector / alloc_entry / cr_accounting /
    // file_ids / sector_ids / events — live on the [`StateView`] impl,
    // the one read surface shared with the root-pinned historical reader.

    /// Scheduled `Auto_*` tasks across all shard wheels.
    pub fn pending_task_count(&self) -> usize {
        self.shards.pending_len()
    }

    /// Removes and returns the logged protocol events, leaving the log
    /// empty — the single consuming counterpart of the non-destructive
    /// [`StateView::events`] read.
    pub fn take_events(&mut self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut self.events)
    }

    /// Sum of deposits currently pledged by live sectors.
    pub fn total_pledged_deposits(&self) -> TokenAmount {
        self.sectors.values().map(|s| s.deposit).sum()
    }

    /// The audit-root commitment: the canonical-order fold of every
    /// `Auto_CheckProof` verification digest (also folded into
    /// [`Engine::state_root`]). Identical across shard counts, ingest
    /// widths and commit strategies.
    pub fn audit_root(&self) -> Hash256 {
        self.audit_root
    }

    /// A Merkle commitment over the engine state, folded into sealed
    /// blocks: the scalar [`StateHeader`] fields plus the fold of the five
    /// state-map HAMT roots (files, alloc rows, discard reasons, sectors,
    /// DRep accounting) — a root you can prove membership against
    /// ([`Engine::prove_file`]) and read historical state through
    /// ([`Engine::pin_state`]).
    ///
    /// Every input is shard-count-invariant: the maps are committed at
    /// engine level (never per shard), their HAMT layout is canonical
    /// (history-independent), the audit root is folded in canonical commit
    /// order, and the counters follow global apply order. So engines
    /// differing only in `ProtocolParams::shards`, ingest width or store
    /// backend produce identical roots — asserted by the
    /// `(store × shards × threads)` differential matrix. Checkpoint
    /// truncation is likewise invisible: the root commits to the monotonic
    /// ops-applied counter, not the op log's length.
    ///
    /// # Panics
    ///
    /// Panics if the backing blockstore fails to persist HAMT nodes (disk
    /// I/O failure): the engine cannot continue consensus without its
    /// commitment.
    pub fn state_root(&self) -> Hash256 {
        statemap::fold_state_root(
            &self.state_header(),
            statemap::fold_maps_root(&self.sync_commitment()),
        )
    }

    /// The scalar fields [`Engine::state_root`] commits to alongside the
    /// map commitment (what a [`StateProof`] carries).
    pub fn state_header(&self) -> StateHeader {
        StateHeader {
            now: self.chain.now(),
            files_len: self.shards.files_len() as u64,
            sectors_len: self.sectors.len() as u64,
            total_supply: self.ledger.total_supply().0,
            op_counter: self.op_counter,
            ops_applied: self.ops_applied,
            task_seq: self.task_seq,
            audit_root: self.audit_root,
        }
    }

    /// The current per-map HAMT roots plus the resulting
    /// [`Engine::state_root`] — the base identity for
    /// [`Engine::snapshot_delta`] and the pin for [`PinnedState`].
    ///
    /// # Panics
    ///
    /// As [`Engine::state_root`]: on backing-store failure.
    pub fn state_roots(&self) -> StateRoots {
        let map_roots = self.sync_commitment();
        let state_root =
            statemap::fold_state_root(&self.state_header(), statemap::fold_maps_root(&map_roots));
        StateRoots {
            state_root,
            files: map_roots[0],
            alloc: map_roots[1],
            discard: map_roots[2],
            sectors: map_roots[3],
            cr: map_roots[4],
        }
    }

    /// Drains every tracked map's dirty keys into the five state HAMTs,
    /// flushes them into the blockstore, and returns the map roots in
    /// canonical fold order. Keys are applied in drain order — the HAMT
    /// layout is history-independent, so any order yields the same roots.
    fn sync_commitment(&self) -> [Hash256; 5] {
        let store = self.store.as_ref();
        let mut maps = self.commit.lock();
        let ok = "state store write";
        for shard in &self.shards.shards {
            for id in shard.files.take_dirty() {
                let key = statemap::key_file(id);
                match shard.files.get(&id) {
                    Some(f) => maps
                        .files
                        .set(store, &key, &statemap::enc_file(f))
                        .expect(ok),
                    None => drop(maps.files.delete(store, &key).expect(ok)),
                }
            }
            for (file, index) in shard.alloc.take_dirty() {
                let key = statemap::key_alloc(file, index);
                match shard.alloc.get(&(file, index)) {
                    Some(e) => maps
                        .alloc
                        .set(store, &key, &statemap::enc_alloc_entry(e))
                        .expect(ok),
                    None => drop(maps.alloc.delete(store, &key).expect(ok)),
                }
            }
            for id in shard.discard_reasons.take_dirty() {
                let key = statemap::key_file(id);
                match shard.discard_reasons.get(&id) {
                    Some(r) => maps
                        .discard
                        .set(store, &key, &statemap::enc_reason(*r))
                        .expect(ok),
                    None => drop(maps.discard.delete(store, &key).expect(ok)),
                }
            }
        }
        for id in self.sectors.take_dirty() {
            let key = statemap::key_sector(id);
            match self.sectors.get(&id) {
                Some(s) => maps
                    .sectors
                    .set(store, &key, &statemap::enc_sector(s))
                    .expect(ok),
                None => drop(maps.sectors.delete(store, &key).expect(ok)),
            }
        }
        for id in self.cr.take_dirty() {
            let key = statemap::key_sector(id);
            match self.cr.get(&id) {
                Some(acct) => maps.cr.set(store, &key, &statemap::enc_cr(acct)).expect(ok),
                None => drop(maps.cr.delete(store, &key).expect(ok)),
            }
        }
        maps.flush(store).expect("state store flush")
    }

    /// Replaces the gas fee schedule (e.g. [`GasSchedule::free`] for
    /// experiments isolating protocol money flows from gas noise).
    ///
    /// This is deployment configuration, not a transaction: it is not
    /// logged, so replays of an engine with a non-default schedule must
    /// set the same schedule before feeding the log.
    pub fn set_gas_schedule(&mut self, schedule: GasSchedule) {
        self.gas = schedule;
    }

    // ------------------------------------------------------------------
    // Time
    // ------------------------------------------------------------------

    /// Advances consensus time to `target`, executing every `Auto_*` task
    /// that falls due, in timestamp order.
    ///
    /// # Panics
    ///
    /// Panics if `target` is in the past.
    pub fn advance_to(&mut self, target: Time) {
        self.apply(Op::AdvanceTo { target })
            .expect("AdvanceTo is infallible");
    }

    /// Advances by one block interval.
    pub fn tick(&mut self) {
        self.advance_to(self.now() + self.params.block_interval);
    }

    pub(super) fn advance_to_op(&mut self, target: Time) {
        assert!(target >= self.now(), "time cannot rewind");
        while let Some(t) = self.shards.next_task_time() {
            if t > target {
                break;
            }
            let root = self.state_root();
            self.chain.advance_time(t, root);
            self.run_due_bucket(t);
        }
        let root = self.state_root();
        self.chain.advance_time(target, root);
    }

    /// Executes every task due at `now` in two phases:
    ///
    /// 1. **verify** — the read-only `Auto_CheckProof` storage-proof
    ///    checks, computed per shard over its popped slice (each touches
    ///    only that shard's files/alloc rows), fanned out across the
    ///    persistent worker pool when the bucket is large enough to pay
    ///    for the dispatch;
    /// 2. **commit** — the per-shard slices merged back into global
    ///    `(time, schedule-seq)` order — exactly the order a single
    ///    unsharded wheel pops — and applied in that order: large buckets
    ///    on multi-shard engines go through the batched commit path
    ///    (per-shard write batches planned on the pool, applied with
    ///    validated fast paths; see `audit.rs`), everything else through
    ///    the sequential reference fold. Audit digests fold into
    ///    `audit_root`, then punishments, rent, refreshes and reschedules
    ///    run as in the unsharded engine.
    ///
    /// Both phases are deterministic and shard-count-invariant (the
    /// commit-strategy gate reads only consensus state, never the host's
    /// core count), so the resulting state is bit-identical for any
    /// `ProtocolParams::shards` and either commit strategy.
    fn run_due_bucket(&mut self, now: Time) {
        let slices = self.shards.pop_due(now);
        let verify_start = Instant::now();
        let audits = self.verify_bucket(&slices, now);
        self.phase.verify_s += verify_start.elapsed().as_secs_f64();

        let mut batch: Vec<(Time, u64, Task, Option<ProofAudit>)> = Vec::new();
        for (slice, shard_audits) in slices.into_iter().zip(audits) {
            for ((time, (seq, task)), audit) in slice.into_iter().zip(shard_audits) {
                batch.push((time, seq, task, audit));
            }
        }
        batch.sort_by_key(|&(time, seq, _, _)| (time, seq));

        let fold_start = Instant::now();
        let check_proofs = batch
            .iter()
            .filter(|(_, _, task, _)| matches!(task, Task::CheckProof(_)))
            .count();
        if self.shards.shards.len() > 1 && check_proofs >= tuning::parallel_audit_commit_threshold()
        {
            self.commit_bucket_batched(now, batch);
            self.stats_global.audit_commit_batches += 1;
        } else {
            for (_, _, task, audit) in batch {
                self.execute(task, audit);
            }
        }
        self.phase.fold_s += fold_start.elapsed().as_secs_f64();
    }

    fn execute(&mut self, task: Task, audit: Option<ProofAudit>) {
        match task {
            Task::CheckAlloc(f) => self.auto_check_alloc(f),
            Task::CheckProof(f) => self.auto_check_proof(f, audit),
            Task::CheckRefresh(f, i) => self.auto_check_refresh(f, i),
            Task::DistributeRent => self.auto_distribute_rent(),
        }
        self.op_counter += 1;
    }

    // ------------------------------------------------------------------
    // Shared internals
    // ------------------------------------------------------------------

    /// The engine's persistent worker pool, spawned on first use and
    /// shared across engine clones. Sized to the larger of the host's
    /// available parallelism and the configured ingest width, so neither
    /// the staging nor the audit fan-out ever starves for workers.
    pub(super) fn pool(&self) -> Arc<WorkerPool> {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        self.pool.get(cores.max(self.params.ingest_threads))
    }

    /// Cumulative wall-time spent in each engine phase since construction
    /// (or the last [`Engine::reset_phase_times`]). Observability only:
    /// not consensus state, not snapshotted, not compared by replay.
    pub fn phase_times(&self) -> PhaseTimes {
        self.phase
    }

    /// Zeroes the per-phase wall-time accumulators.
    pub fn reset_phase_times(&mut self) {
        self.phase = PhaseTimes::default();
    }

    /// Schedules an `Auto_*` task on its shard's wheel, tagging it with
    /// the global schedule sequence number that later reconstructs the
    /// canonical commit order.
    pub(super) fn schedule_task(&mut self, time: Time, task: Task) {
        let seq = self.task_seq;
        self.task_seq += 1;
        self.shards.schedule(seq, time, task);
    }

    pub(super) fn rent_period(&self) -> Time {
        self.params.proof_cycle * self.params.rent_period_cycles as Time
    }

    pub(super) fn log(&mut self, event: ProtocolEvent) {
        self.chain.log(ChainEvent::new(
            event.kind(),
            format!("{event:?}").into_bytes(),
        ));
        self.events.push(event);
        self.op_counter += 1;
    }

    pub(super) fn charge_gas(
        &mut self,
        account: AccountId,
        ops: &[GasOp],
    ) -> Result<(), EngineError> {
        let gas: u64 = ops.iter().map(|&op| self.gas.price(op)).sum();
        let fee = self.gas.to_tokens(gas);
        self.ledger
            .burn(account, fee)
            .map_err(|_| EngineError::InsufficientFunds)
    }
}

/// The blockstore [`Engine::new`] uses: in-memory, unless
/// `FI_TEST_STORE=disk` selects one process-shared disk log in the temp
/// directory (the CI store axis; content addressing makes sharing one log
/// across every engine in the process harmless). Unusable values — or a
/// disk log that fails to open — fall back to memory, mirroring how
/// `FI_TEST_SHARDS` treats bad input.
fn default_store() -> Arc<dyn Blockstore> {
    static DISK: OnceLock<Option<Arc<DiskBlockstore>>> = OnceLock::new();
    let want_disk = std::env::var("FI_TEST_STORE").is_ok_and(|v| v.trim() == "disk");
    if want_disk {
        let shared = DISK.get_or_init(|| {
            let path = std::env::temp_dir().join(format!("fi-state-{}.log", std::process::id()));
            DiskBlockstore::open(path).ok().map(Arc::new)
        });
        if let Some(store) = shared {
            return Arc::clone(store) as Arc<dyn Blockstore>;
        }
    }
    Arc::new(MemoryBlockstore::new())
}
