//! Storj baseline model.
//!
//! §II-C.1: Storj stores files as **encrypted, erasure-coded shards** —
//! `data` shards suffice to rebuild a file out of `total` stored ones —
//! placed on distinct uniformly chosen nodes. A file is lost when more
//! than `total − data` shards vanish (§III-G: "a file is lost if enough
//! shards of the file are not available beyond what can be recovered by
//! erasure code"). Storage-node audits deter cheating, but lost files are
//! not compensated from collateral.

use fi_crypto::DetRng;

use crate::common::{FileSpec, NetworkSpec, Placement};
use crate::{Compensation, DsnModel};

/// Storj at placement granularity.
#[derive(Debug, Clone)]
pub struct StorjModel {
    /// Data shards needed to rebuild.
    data_shards: u32,
    /// Total shards stored.
    total_shards: u32,
}

impl StorjModel {
    /// Creates the model with a `(data, total)` erasure configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < data < total`.
    pub fn new(data_shards: u32, total_shards: u32) -> Self {
        assert!(data_shards > 0 && data_shards < total_shards);
        StorjModel {
            data_shards,
            total_shards,
        }
    }
}

impl DsnModel for StorjModel {
    fn name(&self) -> &'static str {
        "Storj"
    }

    fn place(&self, net: &NetworkSpec, files: &[FileSpec], rng: &mut DetRng) -> Placement {
        let n = net.nodes.len();
        let shards = (self.total_shards as usize).min(n);
        let locations = files
            .iter()
            .map(|_| rng.sample_distinct(n, shards))
            .collect();
        Placement {
            locations,
            survivors_needed: vec![self.data_shards; files.len()],
        }
    }

    fn sybil_vulnerable(&self) -> bool {
        false // node audits + identity vetting (Table IV credits Storj)
    }

    fn provable_robustness(&self) -> bool {
        false
    }

    fn compensation(&self) -> Compensation {
        Compensation::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{corrupt_nodes, evaluate_loss, AdversaryStrategy};

    #[test]
    fn shards_are_distinct_nodes() {
        let m = StorjModel::new(4, 8);
        let net = NetworkSpec::uniform(50, 64);
        let files = vec![
            FileSpec {
                size: 1,
                value: 1.0
            };
            100
        ];
        let mut rng = DetRng::from_seed_label(81, "storj");
        let p = m.place(&net, &files, &mut rng);
        for locs in &p.locations {
            let set: std::collections::HashSet<_> = locs.iter().collect();
            assert_eq!(set.len(), locs.len(), "shards on distinct nodes");
            assert_eq!(locs.len(), 8);
        }
        assert!(p.survivors_needed.iter().all(|&s| s == 4));
    }

    #[test]
    fn erasure_threshold_behaviour() {
        // Losing exactly total-data shards is survivable; one more kills.
        let m = StorjModel::new(2, 4);
        let net = NetworkSpec::uniform(10, 64);
        let files = vec![FileSpec {
            size: 1,
            value: 1.0,
        }];
        let mut rng = DetRng::from_seed_label(82, "thr");
        let p = m.place(&net, &files, &mut rng);
        let locs = p.locations[0].clone();
        let two: std::collections::HashSet<usize> = locs[..2].iter().copied().collect();
        let three: std::collections::HashSet<usize> = locs[..3].iter().copied().collect();
        assert!(p.survives(0, &two));
        assert!(!p.survives(0, &three));
    }

    #[test]
    fn mass_corruption_loses_files_without_compensation() {
        let m = StorjModel::new(4, 8);
        let net = NetworkSpec::uniform(100, 64);
        let files = vec![
            FileSpec {
                size: 1,
                value: 1.0
            };
            500
        ];
        let mut rng = DetRng::from_seed_label(83, "mass");
        let p = m.place(&net, &files, &mut rng);
        let corrupted = corrupt_nodes(
            &net,
            &p,
            &files,
            0.7,
            AdversaryStrategy::Random,
            false,
            &mut rng,
        );
        let report = evaluate_loss(&net, &p, &files, &corrupted);
        // At λ=0.7 each shard dies wp ~0.7; P(≥5 of 8 dead) is high.
        assert!(report.lost_files > 100, "lost {}", report.lost_files);
        assert_eq!(m.compensate(report.lost_value, 1e9), 0.0);
    }
}
