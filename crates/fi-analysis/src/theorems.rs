//! Theorems 1–4 of the FileInsurer paper as executable formulas.
//!
//! These are the analytic halves of every experiment: the harness measures a
//! quantity by simulation and checks it against these bounds.
//!
//! Notation follows Table II of the paper:
//!
//! * `n_s` — "weighted" number of sectors (`Ns`); total network capacity is
//!   `Ns × minCapacity`.
//! * `n_v` — "weighted" number of files (`Nv`); total stored value is
//!   `Nv × minValue`.
//! * `n_v_max` — the maximum weighted number of files the network is designed
//!   to carry (`Nm_v`).
//! * `cap_para` — `capPara = Nm_v / Ns`.
//! * `gamma_m_v` — `γm_v = Nv / Nm_v`, the fill ratio of value.
//! * `k` — replicas of a `minValue` file.
//! * `lambda` — fraction of total capacity the adversary corrupts.
//! * `c` — security parameter (paper sets `1e-18`).

/// The paper's default security parameter `c = 10^-18` (Table II).
pub const SECURITY_PARAMETER: f64 = 1e-18;

/// Inputs shared by the Theorem 3 / Theorem 4 bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessParams {
    /// Weighted sector count `Ns`.
    pub n_s: f64,
    /// Replicas per `minValue` of file value (`k`).
    pub k: f64,
    /// `capPara = Nm_v / Ns`.
    pub cap_para: f64,
    /// Corrupted capacity fraction `λ`.
    pub lambda: f64,
    /// Security parameter `c`.
    pub c: f64,
}

/// Theorem 1: the maximum total size of raw files storable in the network,
/// `min(Ns·minCapacity / (2·r1·k), Ns·minCapacity / r2)`.
///
/// `r1` and `r2` are workload constants (eqs. (1) and (2)); compute them
/// from a concrete workload with [`workload_r1`] / [`workload_r2`].
pub fn theorem1_max_total_size(n_s: f64, min_capacity: f64, k: f64, r1: f64, r2: f64) -> f64 {
    let by_capacity = n_s * min_capacity / (2.0 * r1 * k);
    let by_value = n_s * min_capacity / r2;
    by_capacity.min(by_value)
}

/// Eq. (1): `r1 = Σ f.size·f.value / (minValue · Σ f.size)` — the
/// size-weighted average value in `minValue` units.
pub fn workload_r1(sizes: &[f64], values: &[f64], min_value: f64) -> f64 {
    let num: f64 = sizes.iter().zip(values).map(|(s, v)| s * v).sum();
    let den: f64 = min_value * sizes.iter().sum::<f64>();
    num / den
}

/// Eq. (2): `r2 = minCapacity · Σ f.value / (minValue · Σ f.size · capPara)`.
pub fn workload_r2(
    sizes: &[f64],
    values: &[f64],
    min_value: f64,
    min_capacity: f64,
    cap_para: f64,
) -> f64 {
    let num: f64 = min_capacity * values.iter().sum::<f64>();
    let den: f64 = min_value * sizes.iter().sum::<f64>() * cap_para;
    num / den
}

/// Theorem 2: `Pr[∃s: freeCap ≤ capacity/8] ≤ Ns · exp(−0.144·capacity/size)`
/// when all files share one size and total replica size ≤ half the capacity.
pub fn theorem2_collision_bound(n_s: f64, capacity_over_size: f64) -> f64 {
    (n_s * (-0.144 * capacity_over_size).exp()).min(1.0)
}

/// Theorem 3: upper bound on `γ_lost`, the ratio of lost file value to total
/// stored value, when `λ·Ns·minCapacity` of capacity is corrupted.
///
/// `gamma_m_v` is the value fill ratio `Nv / Nm_v`. Holds with probability
/// ≥ 1 − c over the storage randomness.
pub fn theorem3_gamma_lost_bound(p: &RobustnessParams, gamma_m_v: f64) -> f64 {
    let t1 = 5.0 * p.lambda.powf(p.k);
    let t2 = p.lambda.powf(p.k / 2.0);
    let t3 = theorem3_third_term(p, gamma_m_v);
    t1.max(t2).max(t3)
}

/// The third (union-bound / Stirling) term of Theorem 3:
///
/// `4·(log(e/2π)/Ns − log c/Ns − log(λ^λ(1−λ)^(1−λ))) / (γm_v·k·log(1/λ)·capPara)`
///
/// Logs are natural (the bound is scale-consistent as long as all logs share
/// a base; the paper's derivation uses `log e` terms indicating ln).
pub fn theorem3_third_term(p: &RobustnessParams, gamma_m_v: f64) -> f64 {
    let lam = p.lambda;
    // log(λ^λ (1-λ)^(1-λ)) = λ·lnλ + (1-λ)·ln(1-λ)  (negative, = −H(λ))
    let entropy_term = if lam <= 0.0 || lam >= 1.0 {
        0.0
    } else {
        lam * lam.ln() + (1.0 - lam) * (1.0 - lam).ln()
    };
    let numerator = 4.0
        * ((std::f64::consts::E / (2.0 * std::f64::consts::PI)).ln() / p.n_s
            - p.c.ln() / p.n_s
            - entropy_term);
    let denominator = gamma_m_v * p.k * (1.0 / lam).ln() * p.cap_para;
    numerator / denominator
}

/// Theorem 4: minimum deposit ratio `γ_deposit` guaranteeing full
/// compensation with probability ≥ 1 − c:
///
/// `max{ 5λ^(k−1), λ^(k/2−1), (4/(k·capPara))·(ln Ns/ln(1/λ) + ln(1/c)/ln Ns) }`
pub fn theorem4_deposit_ratio_bound(p: &RobustnessParams) -> f64 {
    let t1 = 5.0 * p.lambda.powf(p.k - 1.0);
    let t2 = p.lambda.powf(p.k / 2.0 - 1.0);
    let t3 = 4.0 / (p.k * p.cap_para)
        * (p.n_s.ln() / (1.0 / p.lambda).ln() + (1.0 / p.c).ln() / p.n_s.ln());
    t1.max(t2).max(t3)
}

/// The per-sector deposit for a sector of `capacity`, §IV-B:
/// `capacity · γ_deposit · capPara · minValue / minCapacity`.
pub fn sector_deposit(
    capacity: f64,
    gamma_deposit: f64,
    cap_para: f64,
    min_value: f64,
    min_capacity: f64,
) -> f64 {
    capacity * gamma_deposit * cap_para * min_value / min_capacity
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> RobustnessParams {
        RobustnessParams {
            n_s: 1e6,
            k: 20.0,
            cap_para: 1e3,
            lambda: 0.5,
            c: SECURITY_PARAMETER,
        }
    }

    #[test]
    fn theorem3_paper_example() {
        // Paper §V-B.3 example: k=20, Ns=1e6, capPara=1e3, λ=0.5. The first
        // two terms match the paper exactly: 5λ^k ≈ 5e-6 and λ^(k/2) ≈ 1e-3.
        assert!((5.0 * 0.5f64.powi(20) - 4.768e-6).abs() < 1e-8);
        assert!((0.5f64.powi(10) - 9.766e-4).abs() < 1e-6);

        // Reproduction note (recorded in EXPERIMENTS.md): evaluating the
        // *printed* third term at γm_v = 0.005 yields ≈ 0.040, whereas the
        // paper's prose claims (1/γm_v)·5e-6 = 1e-3. Both scale as 1/γm_v;
        // the constants differ. We implement the formula as printed.
        let p = paper_example();
        let t3 = theorem3_third_term(&p, 0.005);
        assert!((t3 - 0.040).abs() < 0.002, "third term {t3}");
        // The bound is the max of the three; here the third term binds.
        let b = theorem3_gamma_lost_bound(&p, 0.005);
        assert!((b - t3).abs() < 1e-12);
        // At full fill (γm_v = 1) the third term is ~2e-4, so the headline
        // "≤ 0.1% lost when half the storage collapses" holds per the
        // printed formula whenever γm_v ≳ 0.2 (and empirically always —
        // see the thm3_robustness experiment).
        let b_full = theorem3_gamma_lost_bound(&p, 1.0);
        assert!(b_full <= 0.001, "bound at full fill {b_full}");
    }

    #[test]
    fn theorem3_third_term_scales_inverse_with_fill() {
        let p = paper_example();
        let lo = theorem3_third_term(&p, 0.001);
        let hi = theorem3_third_term(&p, 0.01);
        assert!(
            (lo / hi - 10.0).abs() < 1e-9,
            "inverse proportional to γm_v"
        );
    }

    #[test]
    fn theorem4_paper_example() {
        // Paper §V-B.4: the same parameters give γ_deposit ≈ 0.0046.
        let p = paper_example();
        let b = theorem4_deposit_ratio_bound(&p);
        assert!(
            (0.003..0.006).contains(&b),
            "expected about 0.0046, got {b}"
        );
        // The binding term is the third one.
        let t3 = 4.0 / (20.0 * 1e3) * (1e6f64.ln() / 2.0f64.ln() + 1e18f64.ln() / 1e6f64.ln());
        assert!((b - t3).abs() < 1e-12);
    }

    #[test]
    fn theorem4_dominates_required_compensation() {
        // The deposit bound must always be at least the loss bound scaled by
        // 1/λ at the design point (full fill, γm_v = 1): deposits collected
        // over λ capacity must cover γ_lost of value.
        for lambda in [0.1, 0.3, 0.5, 0.7] {
            for k in [4.0, 10.0, 20.0] {
                let p = RobustnessParams {
                    n_s: 1e6,
                    k,
                    cap_para: 1e3,
                    lambda,
                    c: SECURITY_PARAMETER,
                };
                let dep = theorem4_deposit_ratio_bound(&p);
                let lost = theorem3_gamma_lost_bound(&p, 1.0);
                assert!(
                    dep * lambda >= lost * 0.99,
                    "λ={lambda} k={k}: dep·λ={} < lost={}",
                    dep * lambda,
                    lost
                );
            }
        }
    }

    #[test]
    fn theorem2_matches_paper_numeric_claim() {
        // Paper: capacity/size ≥ 1000 and Ns ≤ 1e12 ⇒ bound < 1e-50.
        let b = theorem2_collision_bound(1e12, 1000.0);
        assert!(b < 1e-50, "bound {b}");
        // Small ratios give a vacuous bound (capped at 1).
        assert_eq!(theorem2_collision_bound(10.0, 1.0), 1.0);
    }

    #[test]
    fn theorem1_capacity_and_value_restrictions() {
        // Homogeneous workload: every file size 1, value = minValue.
        let sizes = vec![1.0; 100];
        let values = vec![1.0; 100];
        let r1 = workload_r1(&sizes, &values, 1.0);
        assert!((r1 - 1.0).abs() < 1e-12);
        let r2 = workload_r2(&sizes, &values, 1.0, 64.0, 1000.0);
        assert!((r2 - 64.0 / 1000.0).abs() < 1e-12);
        let cap = theorem1_max_total_size(1e6, 64.0, 20.0, r1, r2);
        // capacity-bound term: 64e6/(2·1·20) = 1.6e6; value-bound term:
        // 64e6/0.064 = 1e9 — capacity binds.
        assert!((cap - 1.6e6).abs() < 1.0);
    }

    #[test]
    fn sector_deposit_formula() {
        // §IV-B: deposit depends only on capacity and constants.
        let d = sector_deposit(128.0, 0.0046, 1000.0, 1.0, 64.0);
        assert!((d - 128.0 * 0.0046 * 1000.0 / 64.0).abs() < 1e-9);
    }
}
