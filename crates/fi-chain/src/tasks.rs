//! The pending list: consensus-scheduled future tasks.
//!
//! Paper Fig. 1: `pendingList: {time → [task, task, ...]}` — *"When a new
//! time point t is reached, the tasks in the pending list whose timestamp is
//! t will be automatically executed by the network"*. Tasks are generated
//! only through network consensus and must have a prepaid gas bound
//! (§III-B.4); the gas side lives in [`crate::gas`], the scheduling side
//! here.
//!
//! Two interchangeable implementations share the contract (pop in
//! `(time, insertion)` order, inclusive deadlines):
//!
//! * [`PendingList`] — the original `BTreeMap<Time, Vec<T>>`, one tree key
//!   per distinct timestamp. Simple, but at protocol scale every file
//!   carries its own `Auto_CheckProof` timestamp, so scheduling and popping
//!   churn a tree with one node per live file.
//! * [`TaskWheel`] — an epoch-bucketed wheel: timestamps are grouped into
//!   fixed-width buckets (one per consensus block interval), scheduling is
//!   an O(1) push into the bucket's `Vec`, and advancing time drains whole
//!   per-block buckets instead of rebalancing a global tree.
//!
//! [`Scheduler`] wraps both behind one API so the engine can switch at
//! runtime (and benchmarks can measure them like-for-like).
//!
//! Generic over the task type so `fi-core` can schedule its `Auto_*`
//! variants and tests can schedule plain markers.

use std::collections::{BTreeMap, VecDeque};

/// Discrete consensus time (block timestamp units).
pub type Time = u64;

/// Stable-sorts a drained bucket by timestamp and appends it to `due` —
/// the shared tail of every pop path that drains a *mixed-timestamp*
/// bucket (the wheel's full-bucket and partial-bucket cases). The sort is
/// stable and buckets hold insertion order, so the contract both
/// pending-list implementations promise — `(time, insertion)` order —
/// falls out here. [`PendingList::pop_due`] doesn't need it: a BTreeMap
/// drain is already time-ordered, and re-sorting the benchmark baseline
/// would pad the wheel's measured advantage.
fn append_due<T>(due: &mut Vec<(Time, T)>, mut bucket: Vec<(Time, T)>) {
    bucket.sort_by_key(|(t, _)| *t);
    due.append(&mut bucket);
}

/// A time-ordered task queue with stable FIFO order within a timestamp.
///
/// # Example
///
/// ```
/// use fi_chain::PendingList;
/// let mut pl = PendingList::new();
/// pl.schedule(10, "check-proof");
/// pl.schedule(5, "check-alloc");
/// pl.schedule(10, "refresh");
/// assert_eq!(pl.pop_due(9), vec![(5, "check-alloc")]);
/// assert_eq!(pl.pop_due(10), vec![(10, "check-proof"), (10, "refresh")]);
/// assert!(pl.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PendingList<T> {
    queue: BTreeMap<Time, Vec<T>>,
    len: usize,
}

impl<T> Default for PendingList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PendingList<T> {
    /// Creates an empty pending list.
    pub fn new() -> Self {
        PendingList {
            queue: BTreeMap::new(),
            len: 0,
        }
    }

    /// Schedules `task` for execution at `time`.
    pub fn schedule(&mut self, time: Time, task: T) {
        self.queue.entry(time).or_default().push(task);
        self.len += 1;
    }

    /// Removes and returns every task due at or before `now`, in
    /// `(time, insertion)` order.
    pub fn pop_due(&mut self, now: Time) -> Vec<(Time, T)> {
        // split_off keeps keys > now in the original map. The drain walks
        // keys in ascending time order, so the output is `(time,
        // insertion)`-ordered by construction — no `append_due` sort here.
        let mut later = self.queue.split_off(&(now + 1));
        std::mem::swap(&mut self.queue, &mut later);
        let due: Vec<(Time, T)> = later
            .into_iter()
            .flat_map(|(time, tasks)| tasks.into_iter().map(move |task| (time, task)))
            .collect();
        self.len -= due.len();
        due
    }

    /// Earliest scheduled time, if any.
    pub fn next_time(&self) -> Option<Time> {
        self.queue.keys().next().copied()
    }

    /// Number of scheduled tasks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no tasks are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over `(time, task)` without removing.
    pub fn iter(&self) -> impl Iterator<Item = (Time, &T)> {
        self.queue
            .iter()
            .flat_map(|(t, tasks)| tasks.iter().map(move |task| (*t, task)))
    }
}

/// An epoch-bucketed timing wheel.
///
/// Timestamps are grouped into buckets of `granularity` ticks (epoch `e`
/// covers `[e·g, (e+1)·g)`). Scheduling pushes into the target bucket's
/// `Vec`; popping drains whole buckets front-to-back, stable-sorting each
/// by timestamp so the observable order — `(time, insertion)` — is
/// identical to [`PendingList`]'s (see the equivalence tests).
///
/// Tasks scheduled for a time before the wheel's current base are clamped
/// into the head bucket; they still pop first because the per-bucket sort
/// is by true timestamp.
///
/// # Example
///
/// ```
/// use fi_chain::tasks::TaskWheel;
/// let mut wheel = TaskWheel::new(10);
/// wheel.schedule(25, "check-proof");
/// wheel.schedule(7, "check-alloc");
/// assert_eq!(wheel.pop_due(9), vec![(7, "check-alloc")]);
/// assert_eq!(wheel.pop_due(30), vec![(25, "check-proof")]);
/// assert!(wheel.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TaskWheel<T> {
    granularity: Time,
    /// Epoch index of `buckets[0]`.
    base_epoch: u64,
    /// Ring of per-epoch buckets starting at `base_epoch`.
    buckets: VecDeque<Vec<(Time, T)>>,
    len: usize,
}

impl<T> TaskWheel<T> {
    /// Creates an empty wheel with the given bucket width (typically the
    /// consensus block interval).
    ///
    /// # Panics
    ///
    /// Panics if `granularity == 0`.
    pub fn new(granularity: Time) -> Self {
        assert!(granularity > 0, "wheel granularity must be positive");
        TaskWheel {
            granularity,
            base_epoch: 0,
            buckets: VecDeque::new(),
            len: 0,
        }
    }

    /// The bucket width in ticks.
    pub fn granularity(&self) -> Time {
        self.granularity
    }

    #[inline]
    fn epoch_of(&self, time: Time) -> u64 {
        time / self.granularity
    }

    /// Schedules `task` for execution at `time` — O(1) amortized.
    pub fn schedule(&mut self, time: Time, task: T) {
        // Past-epoch times are clamped into the head bucket; the per-bucket
        // timestamp sort still pops them before everything later.
        let epoch = self.epoch_of(time).max(self.base_epoch);
        let idx = (epoch - self.base_epoch) as usize;
        while self.buckets.len() <= idx {
            self.buckets.push_back(Vec::new());
        }
        self.buckets[idx].push((time, task));
        self.len += 1;
    }

    /// Removes and returns every task due at or before `now`, in
    /// `(time, insertion)` order. Whole buckets strictly before `now`'s
    /// epoch are drained without inspection; only the bucket containing
    /// `now` is filtered element-wise.
    pub fn pop_due(&mut self, now: Time) -> Vec<(Time, T)> {
        let now_epoch = self.epoch_of(now);
        let mut due: Vec<(Time, T)> = Vec::new();
        // Fully-due buckets: every timestamp in epoch e is < (e+1)·g ≤ now.
        while self.base_epoch < now_epoch {
            let Some(bucket) = self.buckets.pop_front() else {
                self.base_epoch = now_epoch;
                break;
            };
            self.base_epoch += 1;
            self.len -= bucket.len();
            append_due(&mut due, bucket);
        }
        // Partial bucket: `now` falls inside it — or before it entirely, in
        // which case only clamped stale tasks (true time ≤ now) can be due,
        // and clamping guarantees those live in the head bucket too.
        if self.base_epoch >= now_epoch {
            if let Some(head) = self.buckets.front_mut() {
                if head.iter().any(|(t, _)| *t <= now) {
                    let mut keep = Vec::with_capacity(head.len());
                    let mut taken = Vec::new();
                    for (t, task) in head.drain(..) {
                        if t <= now {
                            taken.push((t, task));
                        } else {
                            keep.push((t, task));
                        }
                    }
                    *head = keep;
                    self.len -= taken.len();
                    append_due(&mut due, taken);
                }
            }
        }
        due
    }

    /// Earliest scheduled time, if any — O(occupied bucket span).
    pub fn next_time(&self) -> Option<Time> {
        self.buckets
            .iter()
            .find(|b| !b.is_empty())
            .and_then(|b| b.iter().map(|(t, _)| *t).min())
    }

    /// Number of scheduled tasks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no tasks are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over `(time, task)` without removing, in bucket order (not
    /// globally time-sorted — use [`TaskWheel::pop_due`] for ordered
    /// consumption).
    pub fn iter(&self) -> impl Iterator<Item = (Time, &T)> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|(t, task)| (*t, task)))
    }
}

/// Which pending-list implementation an engine should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Epoch-bucketed [`TaskWheel`] (default; scales with live files).
    #[default]
    Wheel,
    /// The original [`PendingList`] `BTreeMap` (kept for like-for-like
    /// benchmarking and differential tests).
    BTree,
}

/// A pending list behind a runtime-selectable implementation.
///
/// Both variants obey the same contract — inclusive deadlines, pops in
/// `(time, insertion)` order — so consensus execution is identical
/// whichever is selected.
#[derive(Debug, Clone)]
pub enum Scheduler<T> {
    /// Epoch-bucketed wheel.
    Wheel(TaskWheel<T>),
    /// `BTreeMap` pending list.
    BTree(PendingList<T>),
}

impl<T> Scheduler<T> {
    /// Creates a scheduler of the given kind; `granularity` is the wheel
    /// bucket width (ignored by the BTree variant).
    pub fn new(kind: SchedulerKind, granularity: Time) -> Self {
        match kind {
            SchedulerKind::Wheel => Scheduler::Wheel(TaskWheel::new(granularity)),
            SchedulerKind::BTree => Scheduler::BTree(PendingList::new()),
        }
    }

    /// Schedules `task` at `time`.
    pub fn schedule(&mut self, time: Time, task: T) {
        match self {
            Scheduler::Wheel(w) => w.schedule(time, task),
            Scheduler::BTree(p) => p.schedule(time, task),
        }
    }

    /// Removes and returns every task due at or before `now`, in
    /// `(time, insertion)` order.
    pub fn pop_due(&mut self, now: Time) -> Vec<(Time, T)> {
        match self {
            Scheduler::Wheel(w) => w.pop_due(now),
            Scheduler::BTree(p) => p.pop_due(now),
        }
    }

    /// Earliest scheduled time, if any.
    pub fn next_time(&self) -> Option<Time> {
        match self {
            Scheduler::Wheel(w) => w.next_time(),
            Scheduler::BTree(p) => p.next_time(),
        }
    }

    /// Number of scheduled tasks.
    pub fn len(&self) -> usize {
        match self {
            Scheduler::Wheel(w) => w.len(),
            Scheduler::BTree(p) => p.len(),
        }
    }

    /// `true` when no tasks are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(time, task)` without removing, in the underlying
    /// implementation's storage order (not globally time-sorted for the
    /// wheel) — callers needing a canonical order sort the collected
    /// pairs. Used by engine snapshots to enumerate pending tasks.
    pub fn iter(&self) -> impl Iterator<Item = (Time, &T)> {
        let (wheel, list) = match self {
            Scheduler::Wheel(w) => (Some(w.iter()), None),
            Scheduler::BTree(p) => (None, Some(p.iter())),
        };
        wheel
            .into_iter()
            .flatten()
            .chain(list.into_iter().flatten())
    }
}

// ----------------------------------------------------------------------
// Sharded drain: one scheduler per shard, popped as per-shard slices
// ----------------------------------------------------------------------

/// Earliest scheduled time across a set of per-shard schedulers — the
/// sharded counterpart of [`Scheduler::next_time`]. Because sharding only
/// partitions the task population, this equals what a single scheduler
/// holding every task would report.
pub fn next_time_across<T>(shards: &[Scheduler<T>]) -> Option<Time> {
    shards.iter().filter_map(Scheduler::next_time).min()
}

/// Pops every task due at or before `now` from each scheduler, yielding
/// one slice per shard (each in that shard's `(time, insertion)` order).
///
/// This is the standalone form of the bucket-drain contract the engine's
/// sharded audit relies on (its shards embed one wheel each and drain
/// them the same way): the slices can be verified concurrently (they
/// partition disjoint state), then merged back into a single
/// deterministic commit order by a shard-independent key the caller
/// embedded in `T` (the engine uses a global schedule sequence number) —
/// the randomized merge-equivalence test below pins that contract.
pub fn pop_due_across<T>(shards: &mut [Scheduler<T>], now: Time) -> Vec<Vec<(Time, T)>> {
    shards.iter_mut().map(|s| s.pop_due(now)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_timestamp() {
        let mut pl = PendingList::new();
        for i in 0..5 {
            pl.schedule(7, i);
        }
        let due: Vec<i32> = pl.pop_due(7).into_iter().map(|(_, t)| t).collect();
        assert_eq!(due, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_due_is_inclusive_and_ordered() {
        let mut pl = PendingList::new();
        pl.schedule(30, "c");
        pl.schedule(10, "a");
        pl.schedule(20, "b");
        let due = pl.pop_due(20);
        assert_eq!(due, vec![(10, "a"), (20, "b")]);
        assert_eq!(pl.len(), 1);
        assert_eq!(pl.next_time(), Some(30));
    }

    #[test]
    fn pop_before_everything_returns_empty() {
        let mut pl = PendingList::new();
        pl.schedule(10, ());
        assert!(pl.pop_due(9).is_empty());
        assert_eq!(pl.len(), 1);
    }

    #[test]
    fn time_zero_tasks() {
        let mut pl = PendingList::new();
        pl.schedule(0, "genesis");
        assert_eq!(pl.pop_due(0), vec![(0, "genesis")]);
    }

    #[test]
    fn iter_does_not_consume() {
        let mut pl = PendingList::new();
        pl.schedule(1, "x");
        pl.schedule(2, "y");
        let seen: Vec<_> = pl.iter().map(|(t, s)| (t, *s)).collect();
        assert_eq!(seen, vec![(1, "x"), (2, "y")]);
        assert_eq!(pl.len(), 2);
    }

    #[test]
    fn property_pop_due_ordered_and_conserving() {
        // Seeded randomized cases (DetRng — no registry deps available).
        for seed in 0..128u64 {
            let mut rng = fi_crypto::DetRng::from_seed_label(seed, "tasks-prop");
            let schedule: Vec<(u64, u32)> = (0..rng.below(80))
                .map(|_| (rng.below(100), rng.below(1000) as u32))
                .collect();
            let mut checkpoints: Vec<u64> = (0..1 + rng.below(9)).map(|_| rng.below(120)).collect();
            let mut pl = PendingList::new();
            for &(t, task) in &schedule {
                pl.schedule(t, task);
            }
            checkpoints.sort_unstable();
            let mut popped = Vec::new();
            for &cp in &checkpoints {
                for (t, task) in pl.pop_due(cp) {
                    assert!(t <= cp, "seed {seed}: late pop");
                    popped.push((t, task));
                }
            }
            // Time-ordered overall.
            for pair in popped.windows(2) {
                assert!(pair[0].0 <= pair[1].0, "seed {seed}");
            }
            // Conservation: popped + remaining = scheduled.
            assert_eq!(popped.len() + pl.len(), schedule.len(), "seed {seed}");
            // Everything still queued is after the last checkpoint.
            let last = *checkpoints.last().unwrap();
            for (t, _) in pl.iter() {
                assert!(t > last, "seed {seed}");
            }
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut pl = PendingList::new();
        pl.schedule(10, 1);
        assert_eq!(pl.pop_due(10), vec![(10, 1)]);
        // Re-arming at a later time after popping (the CheckProof cycle).
        pl.schedule(20, 2);
        pl.schedule(15, 3);
        assert_eq!(pl.pop_due(25), vec![(15, 3), (20, 2)]);
        assert!(pl.is_empty());
    }

    // ------------------------------------------------------------------
    // TaskWheel
    // ------------------------------------------------------------------

    #[test]
    fn wheel_orders_within_and_across_buckets() {
        let mut w = TaskWheel::new(10);
        w.schedule(25, "late");
        w.schedule(3, "early");
        w.schedule(25, "late2");
        w.schedule(11, "mid");
        assert_eq!(w.next_time(), Some(3));
        assert_eq!(
            w.pop_due(30),
            vec![(3, "early"), (11, "mid"), (25, "late"), (25, "late2")]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_partial_bucket_is_filtered_exactly() {
        let mut w = TaskWheel::new(10);
        w.schedule(24, "due");
        w.schedule(26, "not-yet");
        w.schedule(21, "due-too");
        assert_eq!(w.pop_due(24), vec![(21, "due-too"), (24, "due")]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_time(), Some(26));
        assert_eq!(w.pop_due(26), vec![(26, "not-yet")]);
    }

    #[test]
    fn wheel_clamps_past_times_but_pops_them_first() {
        let mut w = TaskWheel::new(10);
        w.schedule(55, "future");
        assert!(w.pop_due(30).is_empty()); // base advances to epoch 3
        w.schedule(5, "stale"); // before the base: clamped into head bucket
        w.schedule(57, "future2");
        assert_eq!(
            w.pop_due(60),
            vec![(5, "stale"), (55, "future"), (57, "future2")]
        );
    }

    /// Regression: a clamped stale task must be poppable at its own (past)
    /// timestamp, even though `now` then lies in an epoch before the
    /// wheel's base — otherwise `pop_due(next_time())` (the engine's
    /// advance loop) would spin forever on it.
    #[test]
    fn wheel_pops_stale_tasks_at_their_own_past_time() {
        let mut w = TaskWheel::new(10);
        w.schedule(55, "future");
        assert!(w.pop_due(30).is_empty()); // base epoch is now 3
        w.schedule(5, "stale");
        assert_eq!(w.next_time(), Some(5));
        assert_eq!(w.pop_due(5), vec![(5, "stale")]); // now-epoch 0 < base
        assert_eq!(w.next_time(), Some(55));
        assert_eq!(w.pop_due(55), vec![(55, "future")]);
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_iter_does_not_consume() {
        let mut w = TaskWheel::new(10);
        w.schedule(1, "x");
        w.schedule(2, "y");
        assert_eq!(w.iter().count(), 2);
        assert_eq!(w.len(), 2);
        assert_eq!(w.granularity(), 10);
    }

    /// The satellite equivalence property: driven by the same randomized
    /// interleaving of schedules and pops, the wheel and the BTreeMap list
    /// fire exactly the same tasks at the same times in the same order.
    #[test]
    fn wheel_matches_pending_list_under_random_interleaving() {
        for seed in 0..96u64 {
            let mut rng = fi_crypto::DetRng::from_seed_label(seed, "wheel-equiv");
            let granularity = 1 + rng.below(16);
            let mut wheel = TaskWheel::new(granularity);
            let mut list = PendingList::new();
            let mut clock = 0u64;
            let mut next_task = 0u32;
            for _ in 0..200 {
                if rng.below(3) < 2 {
                    // Schedule: mostly future, occasionally stale.
                    let t = if rng.below(10) == 0 {
                        clock.saturating_sub(rng.below(20))
                    } else {
                        clock + rng.below(120)
                    };
                    wheel.schedule(t, next_task);
                    list.schedule(t, next_task);
                    next_task += 1;
                } else {
                    // Mostly advance; occasionally probe at a past deadline
                    // (stale clamped tasks must surface identically too).
                    let probe = if rng.below(5) == 0 {
                        clock.saturating_sub(rng.below(25))
                    } else {
                        clock += rng.below(40);
                        clock
                    };
                    assert_eq!(
                        wheel.pop_due(probe),
                        list.pop_due(probe),
                        "seed {seed} at probe {probe}"
                    );
                    assert_eq!(wheel.len(), list.len(), "seed {seed}");
                    assert_eq!(wheel.next_time(), list.next_time(), "seed {seed}");
                }
            }
            // Drain the remainder: still identical.
            assert_eq!(wheel.pop_due(u64::MAX / 2), list.pop_due(u64::MAX / 2));
            assert!(wheel.is_empty() && list.is_empty());
        }
    }

    /// Tasks spread round-robin over per-shard schedulers and tagged with a
    /// global sequence number must, after a sharded drain + merge on
    /// `(time, seq)`, reproduce exactly what one scheduler holding the whole
    /// population pops — the invariant the engine's sharded commit phase
    /// relies on.
    #[test]
    fn sharded_drain_merged_by_seq_matches_single_scheduler() {
        for kind in [SchedulerKind::Wheel, SchedulerKind::BTree] {
            for seed in 0..32u64 {
                let mut rng = fi_crypto::DetRng::from_seed_label(seed, "shard-drain");
                let nshards = 1 + rng.below(7) as usize;
                let mut shards: Vec<Scheduler<(u64, u64)>> =
                    (0..nshards).map(|_| Scheduler::new(kind, 10)).collect();
                let mut single: Scheduler<(u64, u64)> = Scheduler::new(kind, 10);
                let mut clock = 0u64;
                let mut seq = 0u64;
                for _ in 0..150 {
                    if rng.below(3) < 2 {
                        let t = clock + rng.below(90);
                        let task = rng.below(1000);
                        shards[(task % nshards as u64) as usize].schedule(t, (seq, task));
                        single.schedule(t, (seq, task));
                        seq += 1;
                    } else {
                        clock += rng.below(35);
                        assert_eq!(next_time_across(&shards), single.next_time(), "seed {seed}");
                        let slices = pop_due_across(&mut shards, clock);
                        let mut merged: Vec<(Time, (u64, u64))> =
                            slices.into_iter().flatten().collect();
                        merged.sort_by_key(|&(t, (s, _))| (t, s));
                        assert_eq!(merged, single.pop_due(clock), "seed {seed}");
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_drain_empty_set() {
        let mut shards: Vec<Scheduler<u32>> = Vec::new();
        assert_eq!(next_time_across(&shards), None);
        assert!(pop_due_across(&mut shards, 100).is_empty());
    }

    #[test]
    fn scheduler_wrapper_dispatches_both_kinds() {
        for kind in [SchedulerKind::Wheel, SchedulerKind::BTree] {
            let mut s: Scheduler<&str> = Scheduler::new(kind, 10);
            assert!(s.is_empty());
            s.schedule(12, "a");
            s.schedule(5, "b");
            assert_eq!(s.len(), 2);
            assert_eq!(s.next_time(), Some(5));
            assert_eq!(s.pop_due(20), vec![(5, "b"), (12, "a")]);
            assert!(s.is_empty());
        }
        assert_eq!(SchedulerKind::default(), SchedulerKind::Wheel);
    }
}
