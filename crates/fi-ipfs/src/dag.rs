//! Merkle DAG file chunking (the Object Merkle DAG of IPFS, §II-A).
//!
//! A file is imported as leaf chunks plus a tree of branch nodes; every
//! node is a content-addressed block, so the root CID commits to the whole
//! file and any block can be integrity-checked in isolation — which is what
//! lets BitSwap fetch from untrusted peers.
//!
//! Encoding (self-contained, length-prefixed):
//!
//! ```text
//! node   := kind(u8) payload
//! leaf   := 0x00 data...
//! branch := 0x01 count(u32 BE) (cid(32) size(u64 BE)) * count
//! ```

use fi_crypto::Hash256;

use crate::store::{BlockStore, Cid};

/// Errors from DAG traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A referenced block is missing from the store.
    MissingBlock(Cid),
    /// A block failed to decode as a DAG node.
    Malformed(Cid),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::MissingBlock(c) => write!(f, "missing block {c}"),
            DagError::Malformed(c) => write!(f, "malformed dag node {c}"),
        }
    }
}

impl std::error::Error for DagError {}

/// A decoded DAG node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagNode {
    /// A leaf chunk of file bytes.
    Leaf(Vec<u8>),
    /// A branch: ordered children with their subtree payload sizes.
    Branch(Vec<(Cid, u64)>),
}

impl DagNode {
    /// Serialises the node to its block encoding.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            DagNode::Leaf(data) => {
                let mut out = Vec::with_capacity(1 + data.len());
                out.push(0x00);
                out.extend_from_slice(data);
                out
            }
            DagNode::Branch(links) => {
                let mut out = Vec::with_capacity(1 + 4 + links.len() * 40);
                out.push(0x01);
                out.extend_from_slice(&(links.len() as u32).to_be_bytes());
                for (cid, size) in links {
                    out.extend_from_slice(cid.as_ref());
                    out.extend_from_slice(&size.to_be_bytes());
                }
                out
            }
        }
    }

    /// Decodes a block as a DAG node.
    pub fn decode(block: &[u8]) -> Option<DagNode> {
        match block.first()? {
            0x00 => Some(DagNode::Leaf(block[1..].to_vec())),
            0x01 => {
                let count = u32::from_be_bytes(block.get(1..5)?.try_into().ok()?) as usize;
                let body = block.get(5..)?;
                if body.len() != count * 40 {
                    return None;
                }
                let mut links = Vec::with_capacity(count);
                for i in 0..count {
                    let cid_bytes: [u8; 32] = body[i * 40..i * 40 + 32].try_into().ok()?;
                    let size = u64::from_be_bytes(body[i * 40 + 32..i * 40 + 40].try_into().ok()?);
                    links.push((Hash256::from_bytes(cid_bytes), size));
                }
                Some(DagNode::Branch(links))
            }
            _ => None,
        }
    }

    /// Total file bytes under this node.
    pub fn payload_size(&self) -> u64 {
        match self {
            DagNode::Leaf(d) => d.len() as u64,
            DagNode::Branch(links) => links.iter().map(|(_, s)| s).sum(),
        }
    }
}

/// Maximum children per branch node.
const FANOUT: usize = 16;

/// Imports `data` into `store` as a chunked Merkle DAG; returns the root
/// CID. `chunk_size` controls leaf granularity.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn import_bytes(store: &mut BlockStore, data: &[u8], chunk_size: usize) -> Cid {
    assert!(chunk_size > 0, "chunk size must be positive");
    // Leaves.
    let mut level: Vec<(Cid, u64)> = if data.is_empty() {
        let cid = store.put(DagNode::Leaf(Vec::new()).encode());
        vec![(cid, 0)]
    } else {
        data.chunks(chunk_size)
            .map(|chunk| {
                let cid = store.put(DagNode::Leaf(chunk.to_vec()).encode());
                (cid, chunk.len() as u64)
            })
            .collect()
    };
    // Branches, bottom-up.
    while level.len() > 1 {
        level = level
            .chunks(FANOUT)
            .map(|group| {
                let size = group.iter().map(|(_, s)| s).sum();
                let cid = store.put(DagNode::Branch(group.to_vec()).encode());
                (cid, size)
            })
            .collect();
    }
    level[0].0
}

/// Reads a whole file back from its root CID.
///
/// # Errors
///
/// [`DagError::MissingBlock`] / [`DagError::Malformed`] on broken DAGs.
pub fn export_bytes(store: &BlockStore, root: Cid) -> Result<Vec<u8>, DagError> {
    let mut out = Vec::new();
    let mut stack = vec![root];
    // Depth-first, left-to-right: push children reversed.
    while let Some(cid) = stack.pop() {
        let block = store.get(&cid).ok_or(DagError::MissingBlock(cid))?;
        match DagNode::decode(block).ok_or(DagError::Malformed(cid))? {
            DagNode::Leaf(data) => out.extend_from_slice(&data),
            DagNode::Branch(links) => {
                for (child, _) in links.into_iter().rev() {
                    stack.push(child);
                }
            }
        }
    }
    Ok(out)
}

/// Pins every block of the DAG rooted at `root`, protecting the whole file
/// from garbage collection.
///
/// # Errors
///
/// Same failure modes as [`export_bytes`]; on error a prefix of the DAG
/// may already be pinned.
pub fn pin_dag(store: &mut BlockStore, root: Cid) -> Result<usize, DagError> {
    let cids = dag_cids(store, root)?;
    for cid in &cids {
        store.pin(*cid);
    }
    Ok(cids.len())
}

/// Lists every CID in the DAG rooted at `root` (root first, DFS pre-order).
///
/// # Errors
///
/// Same failure modes as [`export_bytes`].
pub fn dag_cids(store: &BlockStore, root: Cid) -> Result<Vec<Cid>, DagError> {
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(cid) = stack.pop() {
        let block = store.get(&cid).ok_or(DagError::MissingBlock(cid))?;
        out.push(cid);
        if let DagNode::Branch(links) = DagNode::decode(block).ok_or(DagError::Malformed(cid))? {
            for (child, _) in links.into_iter().rev() {
                stack.push(child);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 % 256) as u8).collect()
    }

    #[test]
    fn import_export_round_trip() {
        for n in [0usize, 1, 100, 1024, 1025, 100_000] {
            let mut store = BlockStore::new();
            let payload = data(n);
            let root = import_bytes(&mut store, &payload, 1024);
            assert_eq!(export_bytes(&store, root).unwrap(), payload, "n={n}");
        }
    }

    #[test]
    fn deep_dag_structure() {
        // 100_000 / 100 = 1000 leaves -> ceil(1000/16)=63 -> 4 -> 1: depth 4.
        let mut store = BlockStore::new();
        let payload = data(100_000);
        let root = import_bytes(&mut store, &payload, 100);
        let cids = dag_cids(&store, root).unwrap();
        assert!(cids.len() > 1000, "has branch nodes: {}", cids.len());
        assert_eq!(cids[0], root);
        let decoded = DagNode::decode(store.get(&root).unwrap()).unwrap();
        assert_eq!(decoded.payload_size(), 100_000);
    }

    #[test]
    fn identical_content_same_root() {
        let mut s1 = BlockStore::new();
        let mut s2 = BlockStore::new();
        let payload = data(5000);
        assert_eq!(
            import_bytes(&mut s1, &payload, 256),
            import_bytes(&mut s2, &payload, 256)
        );
        // Different chunking yields a different root (addressing includes
        // structure).
        let mut s3 = BlockStore::new();
        assert_ne!(
            import_bytes(&mut s3, &payload, 512),
            import_bytes(&mut s1, &payload, 256)
        );
    }

    #[test]
    fn missing_block_detected() {
        let mut store = BlockStore::new();
        let payload = data(10_000);
        let root = import_bytes(&mut store, &payload, 100);
        // Drop one leaf (no pins -> gc drops everything; rebuild instead).
        let cids = dag_cids(&store, root).unwrap();
        let victim = *cids.last().unwrap();
        let mut broken = BlockStore::new();
        for cid in &cids {
            if *cid != victim {
                broken.put(store.get(cid).unwrap().to_vec());
            }
        }
        assert_eq!(
            export_bytes(&broken, root),
            Err(DagError::MissingBlock(victim))
        );
    }

    #[test]
    fn malformed_node_detected() {
        let mut store = BlockStore::new();
        let cid = store.put(vec![0x02, 1, 2, 3]); // unknown kind tag
        assert_eq!(export_bytes(&store, cid), Err(DagError::Malformed(cid)));
        // Truncated branch.
        let mut bad = vec![0x01];
        bad.extend_from_slice(&2u32.to_be_bytes());
        bad.extend_from_slice(&[0u8; 39]); // one byte short of a link
        let cid = store.put(bad);
        assert_eq!(export_bytes(&store, cid), Err(DagError::Malformed(cid)));
    }

    #[test]
    fn pin_dag_protects_whole_file_from_gc() {
        let mut store = BlockStore::new();
        let payload = data(20_000);
        let root = import_bytes(&mut store, &payload, 500);
        let other = import_bytes(&mut store, &data(3_000), 500);
        let pinned = pin_dag(&mut store, root).unwrap();
        assert!(pinned > 1);
        let collected = store.gc();
        assert!(collected > 0, "unpinned dag collected");
        assert_eq!(export_bytes(&store, root).unwrap(), payload);
        assert!(export_bytes(&store, other).is_err());
    }

    #[test]
    fn encode_decode_inverse() {
        let leaf = DagNode::Leaf(b"xyz".to_vec());
        assert_eq!(DagNode::decode(&leaf.encode()), Some(leaf.clone()));
        let branch = DagNode::Branch(vec![
            (fi_crypto::sha256(b"a"), 3),
            (fi_crypto::sha256(b"b"), 9),
        ]);
        assert_eq!(DagNode::decode(&branch.encode()), Some(branch.clone()));
        assert_eq!(branch.payload_size(), 12);
    }
}
