//! Extremely large files via erasure segmentation — paper §VI-C.
//!
//! Run with `cargo run --example large_file_erasure`.
//!
//! A file larger than `sizeLimit` cannot be stored whole (it would break
//! storage randomness), so it is Reed–Solomon-segmented: each segment is
//! stored as an individual file of value `2·value/segments`, and the
//! original is recoverable from any half of the segments. We store the
//! segments, destroy almost half the network, and reassemble.

use fi_core::segment::{reassemble_file, segment_file};
use fileinsurer::prelude::*;

fn main() {
    let params = ProtocolParams {
        k: 3,
        size_limit: 32,
        delay_per_size: 2,
        ..ProtocolParams::default()
    };
    let size_limit = params.size_limit;

    let mut net = Engine::new(params.clone()).expect("valid parameters");
    let client = AccountId(200);
    net.fund(client, TokenAmount(100_000_000));
    let mut sectors = Vec::new();
    for i in 0..12u64 {
        let provider = AccountId(100 + i);
        net.fund(provider, TokenAmount(1_000_000_000));
        sectors.push(net.sector_register(provider, 640).unwrap());
    }

    // A 300-unit "film archive" — almost 10x the 32-unit size limit.
    let payload: Vec<u8> = (0..300u32).map(|i| (i * 31 % 251) as u8).collect();
    let value = TokenAmount(10_000);
    println!(
        "file of size {} exceeds sizeLimit {} -> the engine refuses it:",
        payload.len(),
        size_limit
    );
    let err = net
        .file_add(client, payload.len() as u64, value, sha256(&payload))
        .unwrap_err();
    println!("  {err}\n");

    // §VI-C: segment it. 300/32 -> 10 data shards + 10 parity shards,
    // encoded in place in one flat buffer.
    let segmented = segment_file(&payload, value, &params).expect("needs segmentation");
    println!(
        "segmented into {} pieces of <= {} units, each insured at {} \
         (2·value/k rounded up to a minValue multiple)",
        segmented.segment_count(),
        size_limit,
        segmented.segment_value
    );

    // Store every segment as an ordinary file (borrowed straight from the
    // flat buffer — no per-segment copies).
    let mut ids = Vec::new();
    for seg in segmented.segments() {
        let id = net
            .file_add(
                client,
                seg.len() as u64,
                segmented.segment_value,
                sha256(seg),
            )
            .unwrap();
        ids.push(id);
    }
    net.honest_providers_act();
    net.advance_to(net.now() + 80);
    let stored = ids.iter().filter(|id| net.file(**id).is_some()).count();
    println!("stored {stored}/{} segments on the network\n", ids.len());

    // Catastrophe: 5 of 12 sectors die.
    println!("!! corrupting 5 of 12 sectors !!");
    for &sid in sectors.iter().take(5) {
        net.corrupt_sector_now(sid);
    }
    for _ in 0..6 {
        net.honest_providers_act();
        net.advance_to(net.now() + net.params().proof_cycle);
    }

    // Which segments survive? (A segment survives while any replica does.)
    let received: Vec<Option<&[u8]>> = ids
        .iter()
        .zip(segmented.segments())
        .map(|(id, seg)| net.file(*id).map(|_| seg))
        .collect();
    let alive = received.iter().filter(|r| r.is_some()).count();
    println!(
        "{alive}/{} segments survive; {} lost and compensated at {} each",
        ids.len(),
        ids.len() - alive,
        segmented.segment_value
    );

    match reassemble_file(&segmented, &received) {
        Ok(recovered) => {
            assert_eq!(recovered, payload);
            println!("\nfile fully reassembled from surviving segments — §VI-C works.");
        }
        Err(e) => {
            let payout = net.stats().compensation_paid;
            println!(
                "\nfile unrecoverable ({e}); insurance paid {payout} >= declared value {value}"
            );
        }
    }
}
