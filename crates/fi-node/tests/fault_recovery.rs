//! §V robustness scenarios re-driven through the networked pipeline:
//! lazy providers withholding proofs, mass `FailSector`/`CorruptSector`
//! injection, and `ForceDiscard` repair — all while the transport drops
//! 12% of messages, the scheduled leader crashes every K slots, and the
//! cluster suffers one partition/heal cycle.
//!
//! The acceptance bar: every surviving node ends bit-identical
//! (`state_root`, head hash, receipt root at the final height), and every
//! fault has a finite recovery latency — measured in heights past the
//! frozen head via [`fi_sim::robustness::heights_to_reconvergence`], the
//! same metric `fi-bench` records into `BENCH_node.json`'s `faults`
//! section. The harness itself lives in `fi_node::chaos`, shared with
//! the bench.
//!
//! Knobs (the CI chaos matrix drives both):
//! - `FI_NODE_TEST_SEED` offsets every world seed.
//! - `FI_CHAOS_CRASH_EVERY` sets K, the leader-crash period in slots
//!   (default 6; `0` disables crashes).

use fi_crypto::Hash256;
use fi_node::{
    build_cluster, cluster_for_spec, cluster_horizon, run_chaos, schedule_fault_script,
    ClusterReports,
};
use fi_sim::robustness::{heights_to_reconvergence, NetworkRobustnessSpec};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default)
}

/// Base seed, offset by the CI matrix's `FI_NODE_TEST_SEED`.
fn seed(base: u64) -> u64 {
    base + 1_000 * env_u64("FI_NODE_TEST_SEED", 0)
}

/// Leader-crash period in slots (0 disables crashes).
fn crash_every() -> u64 {
    env_u64("FI_CHAOS_CRASH_EVERY", 6)
}

/// Asserts every validator ended on one bit-identical chain, returning
/// the agreed `(height, head)`.
fn assert_converged(reports: &ClusterReports) -> (u64, Hash256) {
    let reference = reports.validators[0].borrow();
    let height = reference.final_height;
    let head = reference.final_head.expect("validator 0 has a head");
    let root = reference.final_state_root.expect("validator 0 finished");
    let receipts = reference.final_receipt_root;
    drop(reference);
    for (i, report) in reports.validators.iter().enumerate() {
        let report = report.borrow();
        assert_eq!(report.final_height, height, "validator {i} height");
        assert_eq!(report.final_head, Some(head), "validator {i} head hash");
        assert_eq!(
            report.final_state_root,
            Some(root),
            "validator {i} state root"
        );
        assert_eq!(
            report.final_receipt_root, receipts,
            "validator {i} receipt root"
        );
    }
    (height, head)
}

#[test]
fn five_node_acceptance_scenario_converges_under_compound_faults() {
    let slots = 120;
    let spec = NetworkRobustnessSpec::acceptance(slots, crash_every());
    let outcome = run_chaos(seed(0xFA17), &spec);

    assert!(outcome.converged, "survivors bit-identical: {outcome:?}");
    // Production kept going: compound faults cost skipped slots, not
    // liveness.
    assert!(
        outcome.height >= slots / 2,
        "chain stalled: height {} of {slots}",
        outcome.height
    );
    // Every fault actually happened, and every fault recovered.
    assert!(outcome.fault_drops > 0, "partition/crashes dropped traffic");
    if let Some(scheduled) = (slots - 1).checked_div(spec.crash_every) {
        assert!(
            outcome.restarts >= 1 && outcome.restarts <= scheduled,
            "restarts {} outside 1..={scheduled}",
            outcome.restarts
        );
        assert!(!outcome.crash_recoveries.is_empty());
        for &(node, latency) in &outcome.crash_recoveries {
            assert!(
                latency.is_some(),
                "validator {node} never reconverged after its crash cleared"
            );
        }
    }
    assert!(!outcome.heal_recoveries.is_empty(), "heal was scheduled");
    for &(node, latency) in &outcome.heal_recoveries {
        assert!(
            latency.is_some(),
            "minority validator {node} never reconverged after the heal"
        );
    }
    // The §V injections entered the chain (rotating leaders dedup
    // through `op_committed`, so the sum can exceed the script length
    // only via losing siblings).
    assert!(
        outcome.injections_included >= outcome.injections_scripted,
        "all {} fail/corrupt/repair injections proposed at least once, got {}",
        outcome.injections_scripted,
        outcome.injections_included
    );
    // The workload outlived the repair script: files exist at the end.
    assert!(outcome.final_files > 0, "no live files survived");
    // Leadership rotated through the survivors.
    assert!(
        outcome.blocks_proposed.iter().filter(|&&p| p > 0).count() >= 2,
        "proposals spread across validators: {:?}",
        outcome.blocks_proposed
    );
}

#[test]
fn leader_crash_costs_a_skip_not_liveness() {
    let slots = 60;
    let mut spec = NetworkRobustnessSpec::acceptance(slots, 0);
    spec.loss = 0.05;
    spec.partition_at_slot = 0; // no partition in this scenario
    let cfg = {
        let mut cfg = cluster_for_spec(seed(0xC4A5), &spec);
        cfg.injections.clear();
        cfg.workload.lazy_providers.clear();
        cfg
    };
    let (mut world, reports) = build_cluster(&cfg);
    // One surgical crash: the scheduled leader of slot 10, for 2 slots.
    let interval = cfg.params.block_interval;
    let victim = cfg.schedule().leader(10, 0).expect("slot 10 has a leader");
    let until = (10 * interval - 1) + 2 * interval;
    world.schedule_crash(victim, 10 * interval - 1, until);
    world.run_until(cluster_horizon(&cfg));

    let (height, _) = assert_converged(&reports);
    assert_eq!(world.restarts(), 1);
    assert!(
        height >= slots - 4,
        "a single crash costs at most a few slots: height {height} of {slots}"
    );
    // The victim's own log shows it back on the canonical chain.
    let canonical = reports.validators[0].borrow().final_chain.clone();
    let victim_report = reports.validators[victim].borrow();
    assert!(
        heights_to_reconvergence(&victim_report.heads, &canonical, until).is_some(),
        "crashed leader reconverged"
    );
    // Fallback ranks filled slots while the victim was down, so
    // leadership still spread across the set.
    let others: u64 = reports
        .validators
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != victim)
        .map(|(_, r)| r.borrow().blocks_proposed)
        .sum();
    assert!(others > 0, "someone other than the victim proposed");
}

#[test]
fn partition_minority_rejoins_via_fork_choice() {
    let slots = 90;
    let mut spec = NetworkRobustnessSpec::acceptance(slots, 0); // no crashes
    spec.loss = 0.08;
    let cfg = {
        let mut cfg = cluster_for_spec(seed(0x9A27), &spec);
        cfg.injections.clear();
        cfg
    };
    let (mut world, reports) = build_cluster(&cfg);
    let schedule = schedule_fault_script(&mut world, &cfg, &spec);
    let heal = schedule.heal_at.expect("spec schedules a partition");
    assert!(schedule.crash_clears.is_empty());
    world.run_until(cluster_horizon(&cfg));

    assert_converged(&reports);
    assert!(
        world.fault_drops() > 0,
        "the partition dropped cross-group traffic"
    );
    let canonical = reports.validators[0].borrow().final_chain.clone();
    for &node in &spec.minority {
        let report = reports.validators[node].borrow();
        let latency = heights_to_reconvergence(&report.heads, &canonical, heal);
        assert!(
            latency.is_some(),
            "minority validator {node} reconverged after the heal"
        );
    }
}

#[test]
fn recovery_latency_is_deterministic_for_a_seed() {
    let slots = 60;
    let spec = NetworkRobustnessSpec::acceptance(slots, crash_every());
    let a = run_chaos(seed(0xD27E), &spec);
    let b = run_chaos(seed(0xD27E), &spec);
    assert!(a.converged);
    assert_eq!(a, b, "same seed, same spec, same outcome bit-for-bit");
}
