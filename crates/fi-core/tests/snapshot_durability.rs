//! Snapshot durability: `snapshot_save` → `snapshot_restore` must
//! reproduce the live engine's consensus state exactly — same state root,
//! same future receipts and block hashes — across shard counts, and
//! corrupted bytes (truncated, bit-flipped, wrong version, foreign) must
//! surface as typed `SnapshotError`s, never panics. Together with
//! `Engine::checkpoint` / `Engine::replay_from`, snapshots replace the
//! keep-a-live-clone pattern with bytes on disk.

use fi_chain::account::{AccountId, TokenAmount};
use fi_core::engine::{Engine, SnapshotError, StateView};
use fi_core::params::ProtocolParams;
use fi_core::types::SectorState;
use fi_crypto::{sha256, DetRng};

const CLIENT: AccountId = AccountId(900);
const PROVIDERS: [AccountId; 3] = [AccountId(700), AccountId(701), AccountId(702)];

fn snap_params(shards: usize) -> ProtocolParams {
    ProtocolParams {
        k: 3,
        delay_per_size: 6,
        avg_refresh: 6.0,
        shards,
        ..ProtocolParams::default()
    }
}

/// The same randomized protocol workload the sharding tests use: adds,
/// confirms, proofs, discards, faults, refreshes, punishments, losses —
/// everything a snapshot has to carry.
fn drive_workload(engine: &mut Engine, seed: u64, steps: u64) {
    let mut rng = DetRng::from_seed_label(seed, "snapshot-workload");
    engine.fund(CLIENT, TokenAmount(500_000_000));
    for p in PROVIDERS {
        engine.fund(p, TokenAmount(1_000_000_000_000));
        for _ in 0..2 {
            engine
                .sector_register(p, 640 * (1 + rng.below(3)))
                .expect("registration");
        }
    }
    for step in 0..steps {
        match rng.below(10) {
            0..=3 => {
                let size = 1 + rng.below(40);
                let root = sha256(&(seed ^ step).to_be_bytes());
                let _ = engine.file_add(CLIENT, size, engine.params().min_value, root);
            }
            4..=6 => {
                engine.honest_providers_act();
            }
            7 => {
                let ids = engine.file_ids();
                if !ids.is_empty() {
                    let f = ids[(rng.below(ids.len() as u64)) as usize];
                    let _ = engine.file_discard(CLIENT, f);
                }
            }
            8 => {
                let ids = engine.sector_ids();
                if !ids.is_empty() {
                    let s = ids[(rng.below(ids.len() as u64)) as usize];
                    if engine.sector(s).map(|x| x.state) == Some(SectorState::Normal) {
                        if rng.below(2) == 0 {
                            engine.fail_sector_silently(s);
                        } else {
                            engine.corrupt_sector_now(s);
                        }
                    }
                }
            }
            _ => {
                engine.advance_to(engine.now() + 10 + rng.below(150));
            }
        }
    }
}

/// Drives both engines through the same post-restore future and asserts
/// every consensus observable stays aligned: state roots, sealed block
/// hashes, stats, files.
fn assert_future_identical(live: &mut Engine, restored: &mut Engine, seed: u64) {
    assert_eq!(live.state_root(), restored.state_root(), "roots at restore");
    drive_workload(live, seed, 30);
    drive_workload(restored, seed, 30);
    assert_eq!(live.state_root(), restored.state_root(), "future roots");
    assert_eq!(
        live.chain().head_hash(),
        restored.chain().head_hash(),
        "future chain heads"
    );
    assert_eq!(live.stats(), restored.stats(), "future stats");
    assert_eq!(live.file_ids(), restored.file_ids(), "future files");
    assert!(restored.chain().verify_chain(), "restored suffix verifies");
}

/// Round trip at several shard counts: the restored engine carries the
/// exact consensus state and behaves identically forever after.
#[test]
fn snapshot_round_trip_preserves_state_root_across_shard_counts() {
    for shards in [1usize, 4, 8] {
        let mut live = Engine::new(snap_params(shards)).expect("valid params");
        drive_workload(&mut live, 17, 60);
        let bytes = live.snapshot_save();
        let mut restored = Engine::snapshot_restore(&bytes).expect("restore succeeds");
        assert_eq!(restored.shard_count(), shards);
        assert_future_identical(&mut live, &mut restored, 18);
    }
}

/// The encoding is canonical: saving twice — or saving the restored
/// engine — produces byte-identical snapshots.
#[test]
fn snapshot_encoding_is_deterministic() {
    let mut live = Engine::new(snap_params(4)).expect("valid params");
    drive_workload(&mut live, 23, 50);
    let a = live.snapshot_save();
    let b = live.snapshot_save();
    assert_eq!(a, b, "same state, same bytes");
    let restored = Engine::snapshot_restore(&a).expect("restore succeeds");
    assert_eq!(a, restored.snapshot_save(), "restore then save is identity");
}

/// The durable checkpoint flow the snapshot layer exists for: checkpoint
/// (truncating the op log), persist the snapshot bytes, keep logging ops,
/// then rebuild from bytes + checkpoint + log suffix via `replay_from` —
/// reproducing the live engine's state root and subsequent block hashes.
#[test]
fn snapshot_plus_replay_from_reconstructs_past_the_checkpoint() {
    let mut live = Engine::new(snap_params(4)).expect("valid params");
    drive_workload(&mut live, 29, 50);
    let checkpoint = live.checkpoint();
    let bytes = live.snapshot_save();

    // Life goes on after the checkpoint; the op log accumulates the suffix.
    drive_workload(&mut live, 31, 40);
    let suffix = live.op_log().to_vec();
    assert!(!suffix.is_empty(), "post-checkpoint ops logged");

    let base = Engine::snapshot_restore(&bytes).expect("restore succeeds");
    let rebuilt = Engine::replay_from(&base, &checkpoint, &suffix).expect("base matches");
    assert_eq!(rebuilt.state_root(), live.state_root());
    assert_eq!(rebuilt.chain().head_hash(), live.chain().head_hash());
    assert_eq!(rebuilt.stats(), live.stats());

    // A base that doesn't match the checkpoint is rejected.
    let mut stale = Engine::snapshot_restore(&bytes).expect("restore succeeds");
    stale.advance_to(stale.now() + 1);
    assert!(Engine::replay_from(&stale, &checkpoint, &suffix).is_err());
}

/// Truncation at every prefix length must yield a typed error — the
/// self-hash makes any missing tail detectable before field decoding.
#[test]
fn truncated_snapshots_fail_with_typed_errors() {
    let mut live = Engine::new(snap_params(2)).expect("valid params");
    drive_workload(&mut live, 41, 25);
    let bytes = live.snapshot_save();
    // A sweep of truncation points incl. inside magic, version, payload.
    for cut in [
        0,
        5,
        9,
        10,
        41,
        bytes.len() / 2,
        bytes.len() - 33,
        bytes.len() - 1,
    ] {
        let err = Engine::snapshot_restore(&bytes[..cut]).expect_err("truncated must fail");
        assert!(
            matches!(
                err,
                SnapshotError::Truncated | SnapshotError::CorruptPayload
            ),
            "cut at {cut}: unexpected {err:?}"
        );
    }
}

/// Any single flipped bit must be caught by the self-hash (or the magic
/// check when the flip hits the magic bytes).
#[test]
fn bit_flipped_snapshots_fail_with_typed_errors() {
    let mut live = Engine::new(snap_params(2)).expect("valid params");
    drive_workload(&mut live, 43, 25);
    let bytes = live.snapshot_save();
    let mut rng = DetRng::from_seed_label(44, "bitflip");
    for _ in 0..200 {
        let byte = rng.below(bytes.len() as u64) as usize;
        let bit = rng.below(8) as u8;
        let mut corrupted = bytes.clone();
        corrupted[byte] ^= 1 << bit;
        let err = Engine::snapshot_restore(&corrupted).expect_err("flip must fail");
        assert!(
            matches!(err, SnapshotError::CorruptPayload | SnapshotError::BadMagic),
            "flip at byte {byte} bit {bit}: unexpected {err:?}"
        );
    }
}

/// Version bumps (with a recomputed self-hash, i.e. a well-formed snapshot
/// from a different format era), foreign magic, and trailing garbage each
/// map to their own typed error.
#[test]
fn wrong_version_foreign_magic_and_trailing_bytes_are_typed() {
    let mut live = Engine::new(snap_params(2)).expect("valid params");
    drive_workload(&mut live, 47, 25);
    let bytes = live.snapshot_save();

    // Bump the version past the current format (v3 — v1 predates the
    // PR 5 node/mempool params, v2 the PR 6 tombstone-retention param)
    // and re-seal with a fresh self-hash.
    let mut wrong_version = bytes.clone();
    wrong_version[8..10].copy_from_slice(&99u16.to_be_bytes());
    let body_len = wrong_version.len() - 32;
    let digest = fi_crypto::sha256(&wrong_version[..body_len]);
    wrong_version[body_len..].copy_from_slice(digest.as_bytes());
    assert_eq!(
        Engine::snapshot_restore(&wrong_version).expect_err("wrong version"),
        SnapshotError::UnsupportedVersion(99)
    );
    // A v1 snapshot (the pre-node-params layout) is likewise refused at
    // the version gate rather than mis-decoded.
    let mut old_version = bytes.clone();
    old_version[8..10].copy_from_slice(&1u16.to_be_bytes());
    let digest = fi_crypto::sha256(&old_version[..body_len]);
    old_version[body_len..].copy_from_slice(digest.as_bytes());
    assert_eq!(
        Engine::snapshot_restore(&old_version).expect_err("old version"),
        SnapshotError::UnsupportedVersion(1)
    );

    // Foreign magic.
    let mut foreign = bytes.clone();
    foreign[..8].copy_from_slice(b"NOTFISNP");
    assert_eq!(
        Engine::snapshot_restore(&foreign).expect_err("foreign magic"),
        SnapshotError::BadMagic
    );

    // Trailing garbage breaks the self-hash (the hash must be the tail).
    let mut trailing = bytes.clone();
    trailing.extend_from_slice(b"garbage");
    assert_eq!(
        Engine::snapshot_restore(&trailing).expect_err("trailing bytes"),
        SnapshotError::CorruptPayload
    );

    // And the pristine bytes still restore.
    assert!(Engine::snapshot_restore(&bytes).is_ok());
}
