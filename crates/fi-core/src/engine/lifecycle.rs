//! Client/provider request handlers (Figs. 4–6): sector registration and
//! disabling, file add/confirm/prove/get/discard, and the §VI-C segmented
//! upload front door.
//!
//! Each public method is a thin wrapper that constructs the corresponding
//! [`Op`] and routes it through [`Engine::apply`]; the `*_op` methods hold
//! the actual state transitions and are reached only via dispatch.

use fi_chain::account::{AccountId, TokenAmount};
use fi_chain::gas::{GasSchedule, Op as GasOp};
use fi_chain::tasks::Time;
use fi_crypto::Hash256;

use crate::ops::{Op, Receipt};
use crate::params::ProtocolParams;
use crate::segment::{reassemble_file, segment_file, SegmentError};
use crate::types::{
    AllocEntry, AllocState, FileDescriptor, FileId, FileState, ProtocolEvent, Sector, SectorId,
    SectorState,
};

use super::{Engine, EngineError, SegmentedUpload, Task, DEPOSIT_ESCROW, TRAFFIC_ESCROW};

/// The pure half of `File_Add`, split out so `apply_batch` can pre-stage
/// it on the worker pool concurrently with shard-local segment staging:
/// size/value validation, the replica count, the gas fee, the traffic-fee
/// escrow amount and the transfer window are all functions of
/// `(params, gas, size, value)` alone. Everything stateful — balance
/// checks, sector sampling and its rng draws, id allocation, task
/// scheduling — stays serialized at commit in `Engine::file_add_op`, so a
/// pre-staged `File_Add` is bit-identical to a sequentially dispatched
/// one (the dispatcher computes this same pure function inline when no
/// prestage is supplied).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(super) struct FileAddPrestage {
    /// `(cp, gas_fee, escrow, transfer_window)` on success, or the exact
    /// validation error the sequential path would have returned.
    pub(super) validated: Result<(u32, TokenAmount, TokenAmount, Time), EngineError>,
}

impl FileAddPrestage {
    pub(super) fn compute(
        params: &ProtocolParams,
        gas: &GasSchedule,
        size: u64,
        value: TokenAmount,
    ) -> Self {
        let validated = (|| {
            if size == 0 {
                return Err(EngineError::InvalidState("file size must be positive"));
            }
            if size > params.size_limit {
                return Err(EngineError::FileTooLarge {
                    size,
                    limit: params.size_limit,
                });
            }
            let cp = params.backup_count(value)?;
            let gas_units: u64 = [GasOp::RequestBase, GasOp::AllocWrite, GasOp::TaskSchedule]
                .iter()
                .map(|&op| gas.price(op))
                .sum();
            let gas_fee = gas.to_tokens(gas_units);
            // Traffic fees for all replicas, committed before transmission
            // (§IV-A.1).
            let escrow = TokenAmount(params.traffic_fee(size).0 * cp as u128);
            Ok((cp, gas_fee, escrow, params.transfer_window(size)))
        })();
        FileAddPrestage { validated }
    }
}

impl Engine {
    // ------------------------------------------------------------------
    // Simulation conveniences
    // ------------------------------------------------------------------

    /// Mints tokens into an account (simulation funding).
    pub fn fund(&mut self, account: AccountId, amount: TokenAmount) {
        self.apply(Op::Fund { account, amount })
            .expect("funding is infallible");
    }

    /// Burns tokens from an account (simulation counterpart of [`Engine::fund`],
    /// e.g. to model a client going broke).
    ///
    /// # Panics
    ///
    /// Panics if the account lacks the balance.
    pub fn burn_for_test(&mut self, account: AccountId, amount: TokenAmount) {
        self.apply(Op::Burn { account, amount })
            .expect("burn_for_test within balance");
    }

    /// Replica placements awaiting a `File_Confirm`, as
    /// `(index, target sector)` pairs — what an honest provider would
    /// confirm next for `file`.
    pub fn pending_confirms(&self, file: FileId) -> Vec<(u32, SectorId)> {
        let Some(desc) = self.shards.file(file) else {
            return Vec::new();
        };
        (0..desc.cp)
            .filter_map(|i| {
                let e = self.shards.entry(file, i)?;
                if e.state == AllocState::Alloc {
                    e.next.map(|s| (i, s))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Simulates every honest provider: confirms all pending placements on
    /// non-failed sectors and submits storage proofs for all held replicas.
    /// Returns `(confirms, proofs)` counts.
    pub fn honest_providers_act(&mut self) -> (u64, u64) {
        let mut confirms = 0u64;
        let mut proofs = 0u64;
        // Confirms.
        let pending: Vec<(FileId, u32, SectorId)> = self
            .shards
            .alloc_iter()
            .filter(|(_, e)| e.state == AllocState::Alloc)
            .filter_map(|(&(f, i), e)| e.next.map(|s| (f, i, s)))
            .collect();
        let mut ordered = pending;
        ordered.sort_unstable();
        for (f, i, s) in ordered {
            let Some(sector) = self.sectors.get(&s) else {
                continue;
            };
            if sector.physically_failed {
                continue;
            }
            let owner = sector.owner;
            if self.file_confirm(owner, f, i, s).is_ok() {
                confirms += 1;
            }
        }
        // Proofs.
        let held: Vec<(FileId, u32, SectorId)> = self
            .shards
            .alloc_iter()
            .filter(|(_, e)| {
                matches!(
                    e.state,
                    AllocState::Normal | AllocState::Alloc | AllocState::Confirm
                )
            })
            .filter_map(|(&(f, i), e)| e.prev.map(|s| (f, i, s)))
            .collect();
        let mut ordered = held;
        ordered.sort_unstable();
        for (f, i, s) in ordered {
            let Some(sector) = self.sectors.get(&s) else {
                continue;
            };
            if sector.physically_failed || sector.state == SectorState::Corrupted {
                continue;
            }
            let owner = sector.owner;
            if self.file_prove(owner, f, i, s).is_ok() {
                proofs += 1;
            }
        }
        (confirms, proofs)
    }

    // ------------------------------------------------------------------
    // Sector requests (Fig. 6)
    // ------------------------------------------------------------------

    /// `Sector_Register`: pledges the deposit and registers a sector filled
    /// with Capacity Replicas.
    ///
    /// # Errors
    ///
    /// * [`EngineError::Param`] — capacity not a multiple of `minCapacity`;
    /// * [`EngineError::InsufficientFunds`] — owner cannot cover deposit.
    pub fn sector_register(
        &mut self,
        owner: AccountId,
        capacity: u64,
    ) -> Result<SectorId, EngineError> {
        match self.apply(Op::SectorRegister { owner, capacity })? {
            Receipt::SectorRegistered { sector } => Ok(sector),
            other => unreachable!("SectorRegister yields SectorRegistered, got {other:?}"),
        }
    }

    pub(super) fn sector_register_op(
        &mut self,
        owner: AccountId,
        capacity: u64,
    ) -> Result<SectorId, EngineError> {
        self.params.validate_capacity(capacity)?;
        self.charge_gas(owner, &[GasOp::RequestBase, GasOp::SectorAdmin])?;
        let deposit = self.params.sector_deposit(capacity);
        self.ledger
            .transfer(owner, DEPOSIT_ESCROW, deposit)
            .map_err(|_| EngineError::InsufficientFunds)?;
        let id = SectorId(self.next_sector_id);
        self.next_sector_id += 1;
        self.sectors.insert(
            id,
            Sector {
                owner,
                id,
                capacity,
                free_cap: capacity,
                state: SectorState::Normal,
                deposit,
                replica_count: 0,
                physically_failed: false,
            },
        );
        self.cr.insert(
            id,
            crate::drep::CrAccounting::new(capacity, self.params.min_capacity),
        );
        self.sampler.insert(id, capacity);
        self.sector_replicas
            .insert(id, std::collections::BTreeSet::new());
        self.log(ProtocolEvent::SectorRegistered {
            sector: id,
            owner,
            deposit,
        });
        if self.params.poisson_rebalance {
            self.poisson_swap_in(id);
        }
        Ok(id)
    }

    /// `Sector_Disable`: the sector stops accepting new files and drains
    /// via refreshes; the deposit returns once it is empty.
    ///
    /// # Errors
    ///
    /// * [`EngineError::UnknownSector`] / [`EngineError::NotOwner`];
    /// * [`EngineError::InvalidState`] if already disabled or corrupted.
    pub fn sector_disable(
        &mut self,
        caller: AccountId,
        sector: SectorId,
    ) -> Result<(), EngineError> {
        self.apply(Op::SectorDisable { caller, sector }).map(|_| ())
    }

    pub(super) fn sector_disable_op(
        &mut self,
        caller: AccountId,
        sector: SectorId,
    ) -> Result<(), EngineError> {
        self.charge_gas(caller, &[GasOp::RequestBase, GasOp::SectorAdmin])?;
        let s = self
            .sectors
            .get_mut(&sector)
            .ok_or(EngineError::UnknownSector(sector))?;
        if s.owner != caller {
            return Err(EngineError::NotOwner);
        }
        if s.state != SectorState::Normal {
            return Err(EngineError::InvalidState("sector not in normal state"));
        }
        s.state = SectorState::Disabled;
        self.sampler.remove(&sector);
        self.log(ProtocolEvent::SectorDisabled { sector });
        self.op_counter += 1;
        self.maybe_remove_drained(sector);
        Ok(())
    }

    // ------------------------------------------------------------------
    // File requests (Figs. 4–5)
    // ------------------------------------------------------------------

    /// `File_Add`: samples `cp = k·value/minValue` capacity-weighted
    /// sectors, reserves space, escrows traffic fees, and schedules
    /// `Auto_CheckAlloc` after the transfer window.
    ///
    /// # Errors
    ///
    /// * [`EngineError::FileTooLarge`] — must be erasure-segmented (§VI-C);
    /// * [`EngineError::Param`] — value not a multiple of `minValue`;
    /// * [`EngineError::NoCapacity`] — sampling kept hitting full sectors;
    /// * [`EngineError::InsufficientFunds`] — traffic-fee escrow failed.
    pub fn file_add(
        &mut self,
        client: AccountId,
        size: u64,
        value: TokenAmount,
        merkle_root: Hash256,
    ) -> Result<FileId, EngineError> {
        match self.apply(Op::FileAdd {
            client,
            size,
            value,
            merkle_root,
        })? {
            Receipt::FileAdded { file, .. } => Ok(file),
            other => unreachable!("FileAdd yields FileAdded, got {other:?}"),
        }
    }

    pub(super) fn file_add_op(
        &mut self,
        client: AccountId,
        size: u64,
        value: TokenAmount,
        merkle_root: Hash256,
        pre: FileAddPrestage,
    ) -> Result<(FileId, u32), EngineError> {
        debug_assert_eq!(
            pre.validated,
            FileAddPrestage::compute(&self.params, &self.gas, size, value).validated,
            "a File_Add prestage is a pure function of (params, gas, size, value)"
        );
        let (cp, gas_fee, escrow, transfer_window) = pre.validated?;
        self.ledger
            .burn(client, gas_fee)
            .map_err(|_| EngineError::InsufficientFunds)?;

        // Escrow traffic fees for all replicas up front (§IV-A.1: committed
        // before transmission).
        self.ledger
            .transfer(client, TRAFFIC_ESCROW, escrow)
            .map_err(|_| EngineError::InsufficientFunds)?;

        // Sample cp sectors i.i.d. proportional to capacity, re-sampling on
        // insufficient free space (Fig. 4's "almost never happens" loop).
        let mut targets = Vec::with_capacity(cp as usize);
        for _ in 0..cp {
            match self.sample_sector_with_space(size) {
                Some(s) => {
                    // Reserve immediately so later draws see reduced space.
                    self.reserve(s, size);
                    targets.push(s);
                }
                None => {
                    // Roll back reservations and the escrow.
                    for &s in &targets {
                        self.release_reservation(s, size);
                    }
                    self.ledger
                        .transfer(TRAFFIC_ESCROW, client, escrow)
                        .expect("escrow refund");
                    return Err(EngineError::NoCapacity);
                }
            }
        }

        // Ids come from one global counter, so with n shards the router
        // (`id % n`) hands shard s exactly the strided ids s, s+n, s+2n, …
        // — balanced by construction, and the id sequence (hence every op
        // and receipt digest) is identical at every shard count.
        let id = FileId(self.next_file_id);
        self.next_file_id += 1;
        self.shards.insert_file(FileDescriptor {
            id,
            owner: client,
            size,
            value,
            merkle_root,
            cp,
            cntdown: -1,
            state: FileState::Allocating,
        });
        for (i, &s) in targets.iter().enumerate() {
            self.shards
                .insert_entry(id, i as u32, AllocEntry::allocating(s));
            self.sector_replicas
                .get_mut(&s)
                .expect("sector index")
                .insert((id, i as u32));
        }
        let deadline = self.now() + transfer_window;
        self.schedule_task(deadline, Task::CheckAlloc(id));
        self.log(ProtocolEvent::FileAdded { file: id, cp });
        Ok((id, cp))
    }

    /// §VI-C front door: erasure-segments an oversized `payload` through the
    /// flat-buffer fast path and registers every segment as an individual
    /// file, committing each one to a Merkle root hashed directly from the
    /// shared segment buffer (no per-segment copies).
    ///
    /// On a mid-way failure (`NoCapacity`, funds), already-registered
    /// segments are rolled back through [`crate::ops::Op::ForceDiscard`] —
    /// a consensus-side op with no gas charge, so the rollback cannot
    /// itself fail when the client is out of funds — before the error is
    /// returned.
    ///
    /// # Errors
    ///
    /// * [`EngineError::InvalidState`] — the payload already fits
    ///   `sizeLimit` (use [`Engine::file_add`]) or needs more than 127 data
    ///   shards;
    /// * any [`Engine::file_add`] error for an individual segment.
    pub fn file_add_segmented(
        &mut self,
        client: AccountId,
        payload: &[u8],
        value: TokenAmount,
    ) -> Result<SegmentedUpload, EngineError> {
        let segmented = segment_file(payload, value, &self.params).map_err(|e| match e {
            SegmentError::NotNeeded { .. } => {
                EngineError::InvalidState("payload fits sizeLimit; use file_add")
            }
            SegmentError::TooLarge => {
                EngineError::InvalidState("file exceeds 127 x sizeLimit; cannot segment")
            }
            SegmentError::Erasure(_) => EngineError::InvalidState("erasure coding failed"),
        })?;
        let seg_size = segmented.segment_len() as u64;
        let roots = segmented.segment_roots();
        let mut files = Vec::with_capacity(roots.len());
        for root in roots {
            match self.file_add(client, seg_size, segmented.segment_value, root) {
                Ok(id) => files.push(id),
                Err(e) => {
                    for &id in &files {
                        self.apply(Op::ForceDiscard { file: id })
                            .expect("force discard is infallible");
                    }
                    return Err(e);
                }
            }
        }
        Ok(SegmentedUpload { files, segmented })
    }

    /// Recovery path for a segmented upload: looks up which segments still
    /// have live holders ([`Engine::file_get`] per segment) and reassembles
    /// the original payload from the surviving ones (read straight from the
    /// upload's flat buffer), recomputing only what was lost.
    ///
    /// # Errors
    ///
    /// * [`Engine::file_get`] errors (gas);
    /// * [`EngineError::InvalidState`] when fewer than half the segments
    ///   survive — the insurance case: compensation, not recovery.
    pub fn file_get_segmented(
        &mut self,
        caller: AccountId,
        upload: &SegmentedUpload,
    ) -> Result<Vec<u8>, EngineError> {
        let mut received: Vec<Option<&[u8]>> = Vec::with_capacity(upload.files.len());
        for (i, &file) in upload.files.iter().enumerate() {
            let alive = match self.file_get(caller, file) {
                Ok(holders) => !holders.is_empty(),
                Err(EngineError::UnknownFile(_)) => false,
                Err(e) => return Err(e),
            };
            received.push(alive.then(|| upload.segmented.segment(i)));
        }
        reassemble_file(&upload.segmented, &received)
            .map_err(|_| EngineError::InvalidState("fewer than half the segments survive"))
    }

    /// `File_Discard`: marks the file for removal at its next
    /// `Auto_CheckProof` (Fig. 4).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownFile`] / [`EngineError::NotOwner`].
    pub fn file_discard(&mut self, caller: AccountId, file: FileId) -> Result<(), EngineError> {
        self.apply(Op::FileDiscard { caller, file }).map(|_| ())
    }

    /// `File_Confirm` (Fig. 5): the provider of the target sector
    /// acknowledges receiving replica `index` of `file`; the traffic fee
    /// for this replica is released to the provider.
    ///
    /// # Errors
    ///
    /// Ownership/state violations per Fig. 5's checks.
    pub fn file_confirm(
        &mut self,
        caller: AccountId,
        file: FileId,
        index: u32,
        sector: SectorId,
    ) -> Result<(), EngineError> {
        self.apply(Op::FileConfirm {
            caller,
            file,
            index,
            sector,
        })
        .map(|_| ())
    }

    /// `File_Prove` (Fig. 5): records a storage proof for replica `index`
    /// held by `sector`. The proof itself is the simulated WindowPoSt —
    /// a modeled `audit_path_len`-node Merkle authentication walk whose
    /// digest folds into the engine's audit root — and it is accepted iff
    /// the sector still physically holds its content.
    ///
    /// # Errors
    ///
    /// Ownership/state violations, or [`EngineError::InvalidState`] when
    /// the sector's content is physically gone (a real prover could not
    /// produce a valid proof).
    pub fn file_prove(
        &mut self,
        caller: AccountId,
        file: FileId,
        index: u32,
        sector: SectorId,
    ) -> Result<(), EngineError> {
        self.apply(Op::FileProve {
            caller,
            file,
            index,
            sector,
        })
        .map(|_| ())
    }

    /// `File_Get`: returns the live holders of `file` — the retrieval
    /// market then proceeds off-chain (§III-E).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownFile`] for unknown ids.
    pub fn file_get(
        &mut self,
        caller: AccountId,
        file: FileId,
    ) -> Result<Vec<(SectorId, AccountId)>, EngineError> {
        match self.apply(Op::FileGet { caller, file })? {
            Receipt::Holders { holders } => Ok(holders),
            other => unreachable!("FileGet yields Holders, got {other:?}"),
        }
    }
}
