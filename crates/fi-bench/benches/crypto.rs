//! SHA-256, Merkle tree, and DetRng throughput.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fi_crypto::merkle::MerkleTree;
use fi_crypto::{sha256, DetRng};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto/sha256");
    for size in [64usize, 1_024, 65_536] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(sha256(&data)))
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto/merkle");
    for leaves in [64usize, 1_024] {
        let chunks: Vec<Vec<u8>> = (0..leaves).map(|i| vec![i as u8; 64]).collect();
        group.bench_with_input(BenchmarkId::new("build", leaves), &leaves, |b, _| {
            b.iter(|| black_box(MerkleTree::from_leaves(chunks.iter())))
        });
        let tree = MerkleTree::from_leaves(chunks.iter());
        group.bench_with_input(BenchmarkId::new("prove+verify", leaves), &leaves, |b, _| {
            let root = tree.root();
            let mut i = 0usize;
            b.iter(|| {
                let proof = tree.prove(i % leaves).unwrap();
                i += 1;
                black_box(proof.verify(&root, &chunks[(i - 1) % leaves]))
            })
        });
    }
    group.finish();
}

fn bench_detrng(c: &mut Criterion) {
    c.bench_function("crypto/detrng/next_u64", |b| {
        let mut rng = DetRng::from_seed_label(7, "bench");
        b.iter(|| black_box(rng.next_u64()))
    });
    c.bench_function("crypto/detrng/sample_exp", |b| {
        let mut rng = DetRng::from_seed_label(8, "bench");
        b.iter(|| black_box(rng.sample_exp(10.0)))
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_sha256, bench_merkle, bench_detrng
}
criterion_main!(benches);
