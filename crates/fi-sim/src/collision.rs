//! Theorem 2 experiment: collision probability under equal-size files.
//!
//! Theorem 2 bounds the probability that any sector's free capacity drops
//! to ≤ 1/8 of its capacity when all files share one size and total
//! replica size is half of total capacity:
//!
//! ```text
//! Pr[∃s: freeCap ≤ cap/8] ≤ Ns · exp(−0.144 · cap/size)
//! ```
//!
//! We Monte-Carlo the left side across `cap/size` ratios and compare with
//! the right side. For large ratios the event never fires (the paper's
//! point: at `cap/size ≥ 1000` the bound is below 1e-50); the interesting
//! region is small ratios, where the empirical frequency must stay below
//! the (possibly vacuous) bound.

use fi_analysis::theorems::theorem2_collision_bound;
use fi_crypto::DetRng;

use crate::report::{sci, TextTable};

/// One collision-experiment row.
#[derive(Debug, Clone)]
pub struct CollisionRow {
    /// Sector capacity over file size.
    pub cap_over_size: u64,
    /// Sector count.
    pub ns: usize,
    /// Monte-Carlo trials.
    pub trials: u32,
    /// Trials where some sector's free capacity fell to ≤ capacity/8.
    pub hits: u32,
    /// Empirical probability.
    pub empirical: f64,
    /// Theorem 2 bound.
    pub bound: f64,
}

/// Runs the experiment for several `cap/size` ratios.
///
/// Each trial drops `Ncp = Ns·(cap/size)/2` unit-size backups (half fill)
/// into `Ns` sectors of capacity `cap/size` units and checks the minimum
/// free capacity.
pub fn run(ratios: &[u64], ns: usize, trials: u32, seed: u64) -> Vec<CollisionRow> {
    ratios
        .iter()
        .map(|&ratio| {
            let mut rng = DetRng::from_seed_label(seed, &format!("thm2/{ratio}"));
            let capacity = ratio; // file size = 1
            let ncp = (ns as u64 * capacity / 2) as usize;
            let threshold = capacity - capacity / 8; // used ≥ 7/8·cap ⇒ free ≤ cap/8
            let mut hits = 0u32;
            let mut used = vec![0u64; ns];
            for _ in 0..trials {
                used.iter_mut().for_each(|u| *u = 0);
                let mut hit = false;
                for _ in 0..ncp {
                    let s = rng.index(ns);
                    used[s] += 1;
                    if used[s] >= threshold {
                        hit = true;
                        // Keep allocating: a real network would too; the
                        // indicator is already set.
                    }
                }
                if hit {
                    hits += 1;
                }
            }
            let empirical = hits as f64 / trials as f64;
            CollisionRow {
                cap_over_size: ratio,
                ns,
                trials,
                hits,
                empirical,
                bound: theorem2_collision_bound(ns as f64, ratio as f64),
            }
        })
        .collect()
}

/// Renders rows plus the paper's 1e-50 corollary.
pub fn render(rows: &[CollisionRow]) -> String {
    let mut table = TextTable::new(vec![
        "cap/size",
        "Ns",
        "trials",
        "hits",
        "empirical Pr",
        "Thm-2 bound",
        "holds",
    ]);
    for r in rows {
        table.row(vec![
            r.cap_over_size.to_string(),
            r.ns.to_string(),
            r.trials.to_string(),
            r.hits.to_string(),
            sci(r.empirical),
            sci(r.bound),
            if r.empirical <= r.bound + 1e-12 {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    let mut out = table.render();
    out.push_str(&format!(
        "\npaper corollary: cap/size = 1000, Ns = 1e12  =>  bound = {}  (< 1e-50)\n",
        sci(theorem2_collision_bound(1e12, 1000.0))
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_below_bound_everywhere() {
        let rows = run(&[8, 16, 32, 64, 128], 50, 200, 11);
        for r in &rows {
            // The bound constrains the *true* probability; allow 3σ of
            // binomial sampling noise around it for the empirical estimate.
            let sigma = (r.bound.max(1.0 / r.trials as f64) / r.trials as f64).sqrt();
            assert!(
                r.empirical <= r.bound + 3.0 * sigma,
                "ratio {}: {} > {} (+3σ={})",
                r.cap_over_size,
                r.empirical,
                r.bound,
                3.0 * sigma
            );
        }
    }

    #[test]
    fn collisions_vanish_at_large_ratios() {
        let rows = run(&[16, 256], 50, 100, 12);
        // Small ratio: collisions plausible; large ratio: none.
        let large = rows.iter().find(|r| r.cap_over_size == 256).unwrap();
        assert_eq!(large.hits, 0, "no collisions at cap/size=256");
    }

    #[test]
    fn bound_decreases_with_ratio() {
        let rows = run(&[8, 64], 100, 10, 13);
        assert!(rows[0].bound >= rows[1].bound);
    }
}
