//! Dynamic Replication (DRep) lifecycle — paper Fig. 2, live.
//!
//! Run with `cargo run --example drep_lifecycle`.
//!
//! A sector is registered full of Capacity Replicas (CRs); files displace
//! CRs; removing files regenerates CRs bit-identically; and every byte the
//! sector claims — files *and* CRs — answers WindowPoSt challenges.

use fi_core::drep::MaterializedSector;
use fi_porep::post::{derive_challenges, WindowPost};
use fi_porep::seal::{ReplicaId, SealedReplica};
use fileinsurer::prelude::*;

fn show(sector: &MaterializedSector, label: &str) {
    let acct = sector.accounting();
    println!(
        "{label:<28} CRs={} file-bytes={} unsealed={} (invariant: unsealed < CR size: {})",
        acct.cr_count(),
        acct.file_bytes(),
        acct.unsealed(),
        acct.invariant_holds()
    );
}

fn main() {
    let tag = sha256(b"sector-42");
    // Fig. 2(a): capacity 600, CR size 100 -> six CRs.
    let mut sector = MaterializedSector::register(tag, 600, 100);
    show(&sector, "registered (Fig. 2a)");
    println!(
        "  on-chain CR commitments: {}",
        sector
            .cr_commitments()
            .iter()
            .map(|c| c.to_hex()[..8].to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );

    // Fig. 2(b): two files arrive (200 + 170 bytes).
    let file_a: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
    let file_b: Vec<u8> = (0..170u32).map(|i| (i % 13) as u8).collect();
    let rid_a = ReplicaId::derive(&sha256(&file_a), &tag, 0);
    let rid_b = ReplicaId::derive(&sha256(&file_b), &tag, 1);
    let handle_a = sector.store_file(SealedReplica::seal(&file_a, rid_a));
    let handle_b = sector.store_file(SealedReplica::seal(&file_b, rid_b));
    show(&sector, "two files stored (Fig. 2b)");

    // Every claimed byte is provable: beacon challenges against all CRs
    // and both file replicas.
    let beacon = sha256(b"round-7");
    let mut proven = 0;
    for cr in sector.crs() {
        let ch = derive_challenges(&beacon, &cr.comm_r(), 2, cr.replica().chunk_count());
        assert!(WindowPost::respond(cr.replica(), &ch).verify(&cr.comm_r(), &ch));
        proven += 1;
    }
    for handle in [handle_a, handle_b] {
        let rep = sector.file(handle).unwrap();
        let ch = derive_challenges(&beacon, &rep.comm_r(), 2, rep.chunk_count());
        assert!(WindowPost::respond(rep, &ch).verify(&rep.comm_r(), &ch));
        proven += 1;
    }
    println!("  WindowPoSt: {proven} commitments answered beacon challenges");

    // Fig. 2(c): the 170-byte file leaves; CRs regenerate from nothing.
    let removed = sector.remove_file(handle_b);
    assert_eq!(removed.unseal(), file_b);
    show(&sector, "file removed (Fig. 2c)");
    println!(
        "  CRs regenerated so far: {}",
        sector.accounting().total_regenerated()
    );

    // The headline economics of DRep: moving a file costs transfer +
    // re-seal, NOT a full sector re-proof.
    let costs = fi_porep::CostModel::default();
    println!(
        "\nDRep vs naive re-sealing for a 1 MiB file in a 64 GiB sector:\n  \
         drep move: {:>14.0} cost units\n  naive re-seal: {:>10.0} cost units ({}x)",
        costs.drep_move(1 << 20),
        costs.naive_sector_reseal(64 << 30),
        (costs.naive_sector_reseal(64 << 30) / costs.drep_move(1 << 20)) as u64
    );
}
