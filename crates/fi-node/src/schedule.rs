//! Beacon-driven proposer rotation.
//!
//! Every validator derives the identical proposer order for every slot
//! from [`RandomBeacon::permutation`] over the registered validator set —
//! no messages, no view changes: the beacon *is* the agreement (§III-F
//! treats the beacon as given; rotation is the standard way chains turn
//! one into a leader schedule).
//!
//! Position 0 of a slot's order is the scheduled leader; positions
//! `1..max_ranks` are fallback ranks. A rank-`r` proposer only speaks
//! after `r` skip timeouts pass without a block for the slot, so under
//! normal operation exactly one block per slot exists, and when the leader
//! is crashed or partitioned away the next rank takes over
//! deterministically (the fork-choice in [`crate::chain`] prefers the
//! lowest rank if several raced).

use fi_crypto::RandomBeacon;
use fi_net::world::NodeIdx;

/// The deterministic proposer order for every slot.
#[derive(Debug, Clone)]
pub struct ProposerSchedule {
    beacon: RandomBeacon,
    validators: Vec<NodeIdx>,
    max_ranks: usize,
}

impl ProposerSchedule {
    /// A schedule over `validators` (the registered node set; order is
    /// part of consensus, so every node must pass the same vector), with
    /// up to `max_ranks` fallback ranks per slot.
    ///
    /// # Panics
    ///
    /// Panics on an empty validator set or `max_ranks == 0`.
    pub fn new(beacon: RandomBeacon, validators: Vec<NodeIdx>, max_ranks: usize) -> Self {
        assert!(!validators.is_empty(), "a schedule needs validators");
        assert!(max_ranks >= 1, "at least the scheduled leader must exist");
        let max_ranks = max_ranks.min(validators.len());
        ProposerSchedule {
            beacon,
            validators,
            max_ranks,
        }
    }

    /// The registered validator set, in consensus order.
    pub fn validators(&self) -> &[NodeIdx] {
        &self.validators
    }

    /// Fallback ranks per slot (clamped to the validator count).
    pub fn max_ranks(&self) -> usize {
        self.max_ranks
    }

    /// The full proposer order for `slot`: index 0 is the scheduled
    /// leader, later entries the fallback ranks.
    pub fn order(&self, slot: u64) -> Vec<NodeIdx> {
        self.beacon
            .permutation(slot, "proposer", self.validators.len())
            .into_iter()
            .map(|i| self.validators[i])
            .collect()
    }

    /// The validator scheduled at `rank` for `slot`, or `None` when the
    /// rank is beyond [`ProposerSchedule::max_ranks`].
    pub fn leader(&self, slot: u64, rank: usize) -> Option<NodeIdx> {
        if rank >= self.max_ranks {
            return None;
        }
        Some(self.order(slot)[rank])
    }

    /// `node`'s rank for `slot`, or `None` when the node is outside the
    /// slot's first [`ProposerSchedule::max_ranks`] positions (it stays
    /// silent for the slot).
    pub fn rank_of(&self, slot: u64, node: NodeIdx) -> Option<usize> {
        self.order(slot)
            .into_iter()
            .take(self.max_ranks)
            .position(|v| v == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64, max_ranks: usize) -> ProposerSchedule {
        ProposerSchedule::new(RandomBeacon::new(seed), vec![0, 1, 2, 3, 4], max_ranks)
    }

    #[test]
    fn every_node_derives_the_same_schedule() {
        let a = schedule(7, 3);
        let b = schedule(7, 3);
        for slot in 0..64 {
            assert_eq!(a.order(slot), b.order(slot));
        }
    }

    #[test]
    fn rotation_covers_every_validator() {
        let s = schedule(7, 3);
        let leaders: std::collections::HashSet<NodeIdx> =
            (1..=64).filter_map(|slot| s.leader(slot, 0)).collect();
        assert_eq!(leaders.len(), 5, "every validator leads some slot");
        // And slots differ: a fixed leader would defeat rotation.
        assert!((2..=64).any(|slot| s.leader(slot, 0) != s.leader(1, 0)));
    }

    #[test]
    fn ranks_are_consistent_with_leaders() {
        let s = schedule(11, 3);
        for slot in 1..=32 {
            let order = s.order(slot);
            assert_eq!(order.len(), 5, "order covers the full set");
            for (rank, &expected) in order.iter().enumerate().take(3) {
                let node = s.leader(slot, rank).expect("rank within max_ranks");
                assert_eq!(expected, node);
                assert_eq!(s.rank_of(slot, node), Some(rank));
            }
            assert_eq!(s.leader(slot, 3), None, "beyond max_ranks");
            assert_eq!(s.rank_of(slot, order[4]), None, "silent this slot");
        }
    }

    #[test]
    fn max_ranks_clamps_to_validator_count() {
        let s = ProposerSchedule::new(RandomBeacon::new(1), vec![0, 1], 10);
        assert_eq!(s.max_ranks(), 2);
    }
}
