//! The five file-backup size distributions of Table III.
//!
//! The paper evaluates storage randomness under: `[1]` Uniform on `[0,1]`,
//! `[2]` Uniform on `[1,2]`, `[3]` Exponential, `[4]` Normal with `µ = σ²`,
//! `[5]` Normal with `µ = 2σ²`.
//!
//! The paper does not pin the scale parameters; scale cancels in the
//! capacity-usage ratio (capacity is set to 2× total backup size), so we fix
//! every distribution to mean 1: Exp(mean=1), `[4]` = N(1, 1), `[5]` =
//! N(1, 0.5). Normal deviates are truncated below at a small positive ε
//! (a size must be positive); this affects ~16% of draws for `[4]` in the
//! left tail the same way any practical implementation must, and is recorded
//! in EXPERIMENTS.md.

use fi_crypto::DetRng;

/// Smallest admissible backup size for truncated distributions.
pub const MIN_SIZE: f64 = 1e-6;

/// A file-backup size distribution from Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeDistribution {
    /// `[1]` Uniform on `[0, 1]` (truncated at [`MIN_SIZE`]).
    Uniform01,
    /// `[2]` Uniform on `[1, 2]`.
    Uniform12,
    /// `[3]` Exponential with mean 1.
    Exponential,
    /// `[4]` Normal with `µ = σ²` (mean 1, variance 1), truncated positive.
    NormalMuEqVar,
    /// `[5]` Normal with `µ = 2σ²` (mean 1, variance 0.5), truncated positive.
    NormalMuEq2Var,
}

impl SizeDistribution {
    /// All five distributions in the order of the Table III columns.
    pub const ALL: [SizeDistribution; 5] = [
        SizeDistribution::Uniform01,
        SizeDistribution::Uniform12,
        SizeDistribution::Exponential,
        SizeDistribution::NormalMuEqVar,
        SizeDistribution::NormalMuEq2Var,
    ];

    /// The paper's column label.
    pub fn label(&self) -> &'static str {
        match self {
            SizeDistribution::Uniform01 => "[1]",
            SizeDistribution::Uniform12 => "[2]",
            SizeDistribution::Exponential => "[3]",
            SizeDistribution::NormalMuEqVar => "[4]",
            SizeDistribution::NormalMuEq2Var => "[5]",
        }
    }

    /// Human-readable description matching the Table III footnotes.
    pub fn description(&self) -> &'static str {
        match self {
            SizeDistribution::Uniform01 => "Uniform distribution in interval [0,1]",
            SizeDistribution::Uniform12 => "Uniform distribution in interval [1,2]",
            SizeDistribution::Exponential => "Exponential distribution",
            SizeDistribution::NormalMuEqVar => "Normal distribution with mu = sigma^2",
            SizeDistribution::NormalMuEq2Var => "Normal distribution with mu = 2 sigma^2",
        }
    }

    /// Draws one backup size.
    pub fn sample(&self, rng: &mut DetRng) -> f64 {
        let raw = match self {
            SizeDistribution::Uniform01 => rng.f64(),
            SizeDistribution::Uniform12 => 1.0 + rng.f64(),
            SizeDistribution::Exponential => rng.sample_exp(1.0),
            SizeDistribution::NormalMuEqVar => rng.sample_normal(1.0, 1.0),
            SizeDistribution::NormalMuEq2Var => rng.sample_normal(1.0, (0.5f64).sqrt()),
        };
        raw.max(MIN_SIZE)
    }

    /// Draws `n` backup sizes.
    pub fn sample_many(&self, rng: &mut DetRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(dist: SizeDistribution, n: usize) -> f64 {
        let mut rng = DetRng::from_seed_label(11, dist.label());
        dist.sample_many(&mut rng, n).iter().sum::<f64>() / n as f64
    }

    #[test]
    fn all_samples_positive() {
        for dist in SizeDistribution::ALL {
            let mut rng = DetRng::from_seed_label(12, "pos");
            for _ in 0..10_000 {
                assert!(dist.sample(&mut rng) >= MIN_SIZE, "{dist:?}");
            }
        }
    }

    #[test]
    fn means_near_design_point() {
        // Uniform01 mean 0.5, Uniform12 mean 1.5, Exp mean 1; truncated
        // normals have means slightly above 1 (mass reflected from the
        // negative tail is clamped at ε, raising nothing—truncation to a
        // point only raises tiny values, so mean stays within a few %).
        assert!((mean_of(SizeDistribution::Uniform01, 100_000) - 0.5).abs() < 0.01);
        assert!((mean_of(SizeDistribution::Uniform12, 100_000) - 1.5).abs() < 0.01);
        assert!((mean_of(SizeDistribution::Exponential, 100_000) - 1.0).abs() < 0.02);
        let m4 = mean_of(SizeDistribution::NormalMuEqVar, 100_000);
        assert!((1.0..1.15).contains(&m4), "m4={m4}");
        let m5 = mean_of(SizeDistribution::NormalMuEq2Var, 100_000);
        assert!((1.0..1.06).contains(&m5), "m5={m5}");
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = DetRng::from_seed_label(13, "u");
        for _ in 0..10_000 {
            let x = SizeDistribution::Uniform12.sample(&mut rng);
            assert!((1.0..2.0).contains(&x));
        }
    }

    #[test]
    fn labels_cover_all() {
        let labels: Vec<_> = SizeDistribution::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(labels, vec!["[1]", "[2]", "[3]", "[4]", "[5]"]);
        for d in SizeDistribution::ALL {
            assert!(!d.description().is_empty());
        }
    }
}
