//! Reed–Solomon encode/reconstruct throughput (§VI-C machinery).
//!
//! Every group measures the flat-buffer fast path (`*_flat` /
//! `*_into`) next to the frozen seed implementation
//! (`fi_erasure::reference`) so the speedup is measured, not asserted:
//! `erasure/encode` vs `erasure/encode-seed`, `erasure/reconstruct` vs
//! `erasure/reconstruct-seed`.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fi_erasure::reference::RefReedSolomon;
use fi_erasure::{ReedSolomon, ShardSet};

const KIB: usize = 1024;
const MIB: usize = 1024 * 1024;

fn payload(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 131 % 256) as u8).collect()
}

/// Geometry × payload grid: the paper's half-loss (8,8) point at 64 KiB is
/// the acceptance-criteria configuration; 1 MiB / 16 MiB probe cache-miss
/// behaviour on segment-scale payloads.
const ENCODE_GRID: &[(usize, usize, usize)] = &[
    (4, 2, 64 * KIB),
    (8, 8, 64 * KIB),
    (16, 16, 64 * KIB),
    (8, 8, MIB),
    (16, 16, MIB),
    (8, 8, 16 * MIB),
];

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/encode");
    for &(data, parity, bytes) in ENCODE_GRID {
        let rs = ReedSolomon::new(data, parity).unwrap();
        let buf = payload(bytes);
        group.throughput(Throughput::Bytes(bytes as u64));
        // Steady-state shape: reuse one flat ShardSet, re-encode in place.
        let mut set = ShardSet::from_payload(&buf, data, data + parity);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{data}+{parity}/{}KiB", bytes / KIB)),
            &data,
            |b, _| b.iter(|| rs.encode_into(black_box(&mut set)).unwrap()),
        );
    }
    group.finish();
}

fn bench_encode_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/encode-seed");
    group.sample_size(10);
    for &(data, parity, bytes) in ENCODE_GRID {
        if bytes > MIB {
            continue; // the seed path is too slow to sample at 16 MiB
        }
        let rs = RefReedSolomon::new(data, parity);
        let buf = payload(bytes);
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{data}+{parity}/{}KiB", bytes / KIB)),
            &data,
            |b, _| b.iter(|| black_box(rs.encode_bytes(&buf))),
        );
    }
    group.finish();
}

/// Erasure patterns for the reconstruct benches: (label, erased indices).
fn patterns(data: usize, parity: usize) -> Vec<(String, Vec<usize>)> {
    let total = data + parity;
    vec![
        ("single-data".into(), vec![0]),
        ("single-parity".into(), vec![data]),
        (
            format!("quarter-{}", total / 4),
            (0..total / 4).map(|i| i * 2 % total).collect(),
        ),
        ("all-data".into(), (0..data).collect()),
    ]
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/reconstruct");
    for (data, parity, bytes) in [(8usize, 8usize, 64 * KIB), (16, 16, 64 * KIB), (8, 8, MIB)] {
        let rs = ReedSolomon::new(data, parity).unwrap();
        let encoded = rs.encode_bytes_flat(&payload(bytes));
        group.throughput(Throughput::Bytes(bytes as u64));
        for (label, erased) in patterns(data, parity) {
            let mut present = vec![true; data + parity];
            for &i in &erased {
                present[i] = false;
            }
            let mut set = encoded.clone();
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{data}+{parity}/{}KiB/{label}", bytes / KIB)),
                &data,
                |b, _| {
                    b.iter(|| {
                        // In-place: only the erased rows are recomputed, so
                        // no reset is needed between iterations.
                        rs.reconstruct_into(black_box(&mut set), &present).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_reconstruct_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/reconstruct-seed");
    group.sample_size(10);
    for (data, parity, bytes) in [(8usize, 8usize, 64 * KIB), (16, 16, 64 * KIB)] {
        let rs = RefReedSolomon::new(data, parity);
        let encoded = rs.encode_bytes(&payload(bytes));
        group.throughput(Throughput::Bytes(bytes as u64));
        for (label, erased) in patterns(data, parity) {
            let mut got: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
            for &i in &erased {
                got[i] = None;
            }
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{data}+{parity}/{}KiB/{label}", bytes / KIB)),
                &data,
                |b, _| b.iter(|| black_box(rs.reconstruct(&got))),
            );
        }
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_encode, bench_encode_seed, bench_reconstruct, bench_reconstruct_seed
}
criterion_main!(benches);
