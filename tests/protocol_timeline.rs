//! Integration: the Fig. 3 protocol timeline over the scenario harness —
//! storing, proving, refreshing, disabling, failing — with event-order
//! assertions.

use fi_chain::account::{AccountId, TokenAmount};
use fi_core::engine::StateView;
use fi_core::params::ProtocolParams;
use fi_core::types::{ProtocolEvent, RemovalReason, SectorState};
use fi_sim::harness::{ProviderBehavior, ProviderSpec, Scenario};

const CLIENT: AccountId = AccountId(900);

fn params(k: u32) -> ProtocolParams {
    ProtocolParams {
        k,
        delay_per_size: 6,
        avg_refresh: 5.0,
        ..ProtocolParams::default()
    }
}

#[test]
fn fig3_happy_path_event_order() {
    let mut scenario = Scenario::new(
        params(3),
        vec![ProviderSpec {
            account: AccountId(700),
            sectors: vec![640, 640, 640],
            behavior: ProviderBehavior::Honest,
        }],
        CLIENT,
    );
    let file = scenario.add_file(CLIENT, 16, TokenAmount(1_000));
    scenario.run_until(3_000);

    let events = scenario.engine.events();
    let pos = |pred: &dyn Fn(&ProtocolEvent) -> bool| events.iter().position(pred);

    // Register happens before the file is added, which precedes storage
    // confirmation, which precedes the first replica swap.
    let registered = pos(&|e| matches!(e, ProtocolEvent::SectorRegistered { .. })).unwrap();
    let added =
        pos(&|e| matches!(e, ProtocolEvent::FileAdded { file: f, .. } if *f == file)).unwrap();
    let stored =
        pos(&|e| matches!(e, ProtocolEvent::FileStored { file: f } if *f == file)).unwrap();
    assert!(registered < added && added < stored);

    if let Some(swap) =
        pos(&|e| matches!(e, ProtocolEvent::ReplicaSwap { file: f, .. } if *f == file))
    {
        assert!(swap > stored, "refreshes only after storage");
    }
    assert!(scenario.engine.file(file).is_some());
    assert!(scenario.engine.ledger().audit());
}

#[test]
fn rent_flows_from_client_to_providers_over_time() {
    let provider = AccountId(700);
    let mut scenario = Scenario::new(
        params(2),
        vec![ProviderSpec {
            account: provider,
            sectors: vec![1280],
            behavior: ProviderBehavior::Honest,
        }],
        CLIENT,
    );
    scenario.add_file(CLIENT, 16, TokenAmount(1_000));
    scenario.run_until(100);
    let client_start = scenario.engine.ledger().balance(CLIENT);
    let period =
        scenario.engine.params().proof_cycle * scenario.engine.params().rent_period_cycles as u64;
    scenario.run_until(100 + 3 * period);

    assert!(
        scenario.engine.ledger().balance(CLIENT) < client_start,
        "client pays rent continuously"
    );
    let distributed = scenario
        .engine
        .events()
        .iter()
        .filter(|e| matches!(e, ProtocolEvent::RentDistributed { total } if !total.is_zero()))
        .count();
    assert!(distributed >= 2, "rent distributed every period");
}

#[test]
fn provider_failure_timeline_punish_then_corrupt_then_compensate() {
    let mut scenario = Scenario::new(
        params(2),
        vec![ProviderSpec {
            account: AccountId(700),
            sectors: vec![640, 640],
            behavior: ProviderBehavior::FailsAt { at: 450 },
        }],
        CLIENT,
    );
    let file = scenario.add_file(CLIENT, 16, TokenAmount(1_000));
    scenario.run_until(3_000);

    let events = scenario.engine.events();
    let punished = events
        .iter()
        .position(|e| matches!(e, ProtocolEvent::ProviderPunished { .. }));
    let corrupted = events
        .iter()
        .position(|e| matches!(e, ProtocolEvent::SectorCorrupted { .. }))
        .expect("sector corrupted after deadline");
    let lost = events
        .iter()
        .position(|e| matches!(e, ProtocolEvent::FileLost { file: f, .. } if *f == file))
        .expect("file lost after all replicas gone");

    // Punishment (ProofDue) precedes corruption (ProofDeadline) precedes
    // loss settlement.
    if let Some(p) = punished {
        assert!(p < corrupted, "punish before confiscation");
    }
    assert!(corrupted < lost);
    assert_eq!(
        scenario.engine.stats().compensation_paid,
        TokenAmount(1_000)
    );
    assert!(scenario.engine.ledger().audit());
}

#[test]
fn disabled_sector_drains_through_refreshes() {
    let mut scenario = Scenario::new(
        ProtocolParams {
            k: 2,
            delay_per_size: 6,
            avg_refresh: 1.5,
            ..ProtocolParams::default()
        },
        vec![
            ProviderSpec {
                account: AccountId(700),
                sectors: vec![640],
                behavior: ProviderBehavior::Honest,
            },
            ProviderSpec {
                account: AccountId(701),
                sectors: vec![640, 640],
                behavior: ProviderBehavior::Honest,
            },
        ],
        CLIENT,
    );
    let file = scenario.add_file(CLIENT, 16, TokenAmount(1_000));
    scenario.run_until(200);

    let retiring = scenario.sectors_of(0)[0];
    scenario
        .engine
        .sector_disable(AccountId(700), retiring)
        .unwrap();
    scenario.run_until(12_000);

    assert!(
        scenario.engine.sector(retiring).is_none(),
        "disabled sector drained and removed"
    );
    assert!(
        scenario.engine.file(file).is_some(),
        "file survived the drain"
    );
    // No losses, no compensation.
    assert_eq!(scenario.engine.stats().files_lost, 0);
}

#[test]
fn mixed_behaviors_network_stays_consistent() {
    let mut scenario = Scenario::new(
        params(3),
        vec![
            ProviderSpec {
                account: AccountId(700),
                sectors: vec![640, 640],
                behavior: ProviderBehavior::Honest,
            },
            ProviderSpec {
                account: AccountId(701),
                sectors: vec![640],
                behavior: ProviderBehavior::Lazy { skip_prob: 0.5 },
            },
            ProviderSpec {
                account: AccountId(702),
                sectors: vec![1280],
                behavior: ProviderBehavior::FailsAt { at: 1_500 },
            },
        ],
        CLIENT,
    );
    let mut files = Vec::new();
    for _ in 0..5 {
        files.push(scenario.add_file(CLIENT, 8, TokenAmount(1_000)));
        scenario.run_until(scenario.engine.now() + 60);
    }
    scenario.run_until(6_000);

    // Conservation always holds; every lost file was fully compensated.
    assert!(scenario.engine.ledger().audit());
    let stats = scenario.engine.stats();
    assert_eq!(stats.compensation_shortfall, TokenAmount::ZERO, "{stats:?}");
    // The failed provider's sectors are corrupted.
    let failed = scenario.sectors_of(2)[0];
    if let Some(s) = scenario.engine.sector(failed) {
        assert_eq!(s.state, SectorState::Corrupted);
    }
    // Files either live or were compensated.
    for f in files {
        if scenario.engine.file(f).is_none() {
            let lost_event = scenario.engine.events().iter().any(|e| {
                matches!(e, ProtocolEvent::FileRemoved { file, reason } if *file == f
                    && matches!(reason, RemovalReason::Lost | RemovalReason::UploadFailed))
            });
            assert!(lost_event, "{f} vanished without settlement");
        }
    }
}
