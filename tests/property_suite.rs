//! Cross-crate randomized property tests: the invariants the system rests
//! on, under arbitrary (seeded, deterministic) inputs.
//!
//! The seed version of this suite used `proptest`; the build environment has
//! no registry access, so each property is now driven by the workspace's own
//! `DetRng` over many seeded cases — same invariants, reproducible failures
//! (the failing seed is in the assertion message).

use fi_chain::account::{AccountId, Ledger, TokenAmount};
use fi_core::engine::StateView;
use fi_core::params::ProtocolParams;
use fi_core::sampler::WeightedSampler;
use fi_core::segment::{reassemble_file, segment_file};
use fi_crypto::merkle::MerkleTree;
use fi_crypto::DetRng;
use fi_erasure::reference::RefReedSolomon;
use fi_erasure::ReedSolomon;
use fi_ipfs::dag::{export_bytes, import_bytes};
use fi_ipfs::store::BlockStore;
use fi_porep::seal::{ReplicaId, SealedReplica};

fn random_bytes(rng: &mut DetRng, max_len: u64) -> Vec<u8> {
    let len = rng.below(max_len + 1) as usize;
    (0..len).map(|_| rng.below(256) as u8).collect()
}

/// Merkle proofs verify exactly for their own (index, payload) pair.
#[test]
fn merkle_proofs_sound_and_complete() {
    for seed in 0..64u64 {
        let mut rng = DetRng::from_seed_label(seed, "prop-merkle");
        let n = 1 + rng.below(40) as usize;
        let leaves: Vec<Vec<u8>> = (0..n).map(|_| random_bytes(&mut rng, 31)).collect();
        let tree = MerkleTree::from_leaves(leaves.iter());
        let idx = rng.index(n);
        let proof = tree.prove(idx).unwrap();
        assert!(proof.verify(&tree.root(), &leaves[idx]), "seed {seed}");
        // Tampered payload fails (a different byte string at the same
        // index cannot share the leaf hash).
        let mut tampered = leaves[idx].clone();
        tampered.push(0xFF);
        assert!(!proof.verify(&tree.root(), &tampered), "seed {seed}");
    }
}

/// Reed–Solomon: decode ∘ encode = identity for every erasure pattern
/// within the parity budget — and the fast path agrees with the frozen
/// scalar reference end to end.
#[test]
fn reed_solomon_round_trip() {
    for seed in 0..64u64 {
        let mut rng = DetRng::from_seed_label(seed, "prop-rs");
        let payload = random_bytes(&mut rng, 300);
        let data = 1 + rng.below(7) as usize;
        let parity = 1 + rng.below(7) as usize;
        let rs = ReedSolomon::new(data, parity).unwrap();
        let shards = rs.encode_bytes(&payload);
        assert_eq!(
            shards,
            RefReedSolomon::new(data, parity).encode_bytes(&payload),
            "seed {seed}: fast encode diverges from scalar reference"
        );
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        // Drop up to `parity` shards selected by random bits.
        let pattern = rng.next_u64();
        let mut dropped = 0;
        for (i, slot) in received.iter_mut().enumerate() {
            if dropped < parity && (pattern >> i) & 1 == 1 {
                *slot = None;
                dropped += 1;
            }
        }
        let recovered = rs.decode_bytes(&received, payload.len()).unwrap();
        assert_eq!(recovered, payload, "seed {seed}");
    }
}

/// Sealing is a bijection: unseal(seal(x)) = x; distinct replica ids give
/// distinct sealings.
#[test]
fn seal_unseal_bijection() {
    for seed in 0..64u64 {
        let mut rng = DetRng::from_seed_label(seed, "prop-seal");
        let payload = random_bytes(&mut rng, 500);
        let salt_a = rng.next_u64() as u32;
        let salt_b = rng.next_u64() as u32;
        let comm = fi_crypto::sha256(&payload);
        let tag = fi_crypto::sha256(b"prop-sector");
        let rid_a = ReplicaId::derive(&comm, &tag, salt_a);
        let rep_a = SealedReplica::seal(&payload, rid_a);
        assert_eq!(rep_a.unseal(), payload, "seed {seed}");
        if salt_a != salt_b && !payload.is_empty() {
            let rid_b = ReplicaId::derive(&comm, &tag, salt_b);
            let rep_b = SealedReplica::seal(&payload, rid_b);
            assert_ne!(rep_a.comm_r(), rep_b.comm_r(), "seed {seed}");
        }
    }
}

/// The ledger conserves tokens under arbitrary operation sequences.
#[test]
fn ledger_conservation() {
    for seed in 0..64u64 {
        let mut rng = DetRng::from_seed_label(seed, "prop-ledger");
        let mut ledger = Ledger::new();
        let mut minted: u128 = 0;
        let mut burned: u128 = 0;
        for _ in 0..rng.below(100) {
            let op = rng.below(4);
            let from = AccountId(rng.below(8));
            let to = AccountId(rng.below(8));
            let amount = TokenAmount(rng.below(1000) as u128);
            match op {
                0 => {
                    ledger.mint(from, amount);
                    minted += amount.0;
                }
                1 => {
                    if ledger.burn(from, amount).is_ok() {
                        burned += amount.0;
                    }
                }
                2 => {
                    let _ = ledger.transfer(from, to, amount);
                }
                _ => {
                    let moved = ledger.transfer_up_to(from, to, amount);
                    assert!(moved <= amount, "seed {seed}");
                }
            }
            assert!(ledger.audit(), "seed {seed}");
        }
        assert_eq!(ledger.total_supply().0, minted - burned, "seed {seed}");
        assert_eq!(ledger.total_burned().0, burned, "seed {seed}");
    }
}

/// The weighted sampler returns only live keys and tracks total weight
/// through inserts and removals.
#[test]
fn sampler_respects_membership() {
    for seed in 0..64u64 {
        let mut rng = DetRng::from_seed_label(seed, "prop-sampler-setup");
        let mut sampler = WeightedSampler::new();
        let mut live = std::collections::HashMap::new();
        for _ in 0..1 + rng.below(60) {
            let key = rng.below(50) as u32;
            let weight = 1 + rng.below(99);
            sampler.insert(key, weight);
            live.insert(key, weight);
        }
        for _ in 0..rng.below(30) {
            let key = rng.below(50) as u32;
            sampler.remove(&key);
            live.remove(&key);
        }
        assert_eq!(sampler.len(), live.len(), "seed {seed}");
        let expect_total: u64 = live.values().sum();
        assert_eq!(sampler.total_weight(), expect_total, "seed {seed}");
        let mut draw_rng = DetRng::from_seed_label(seed, "prop-sampler");
        for _ in 0..50 {
            match sampler.sample(&mut draw_rng) {
                Some(k) => assert!(live.contains_key(k), "seed {seed}"),
                None => assert!(live.is_empty(), "seed {seed}"),
            }
        }
    }
}

/// DAG import/export round-trips for arbitrary payloads and chunk sizes.
#[test]
fn dag_round_trip() {
    for seed in 0..32u64 {
        let mut rng = DetRng::from_seed_label(seed, "prop-dag");
        let payload = random_bytes(&mut rng, 5000);
        let chunk = 1 + rng.below(599) as usize;
        let mut store = BlockStore::new();
        let root = import_bytes(&mut store, &payload, chunk);
        assert_eq!(export_bytes(&store, root).unwrap(), payload, "seed {seed}");
        assert!(store.verify_integrity(), "seed {seed}");
    }
}

/// §VI-C segmentation: the insured payout of any lost half covers the
/// declared value, and reassembly works from any surviving half.
#[test]
fn segmentation_insurance_invariant() {
    for seed in 0..64u64 {
        let mut rng = DetRng::from_seed_label(seed, "prop-segment");
        let params = ProtocolParams {
            size_limit: 32,
            ..ProtocolParams::default()
        };
        let payload_len = 33 + rng.below(368) as usize;
        let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        let value = TokenAmount(params.min_value.0 * (1 + rng.below(19) as u128));
        let seg = segment_file(&payload, value, &params).unwrap();
        let n = seg.segment_count();
        let half = n / 2;
        // Payout when lost (≥ half the segments gone) covers the value.
        assert!(half as u128 * seg.segment_value.0 >= value.0, "seed {seed}");
        // Drop exactly `half` segments chosen at random.
        let mut received: Vec<Option<&[u8]>> = seg.segments().map(Some).collect();
        let mut dropped = 0;
        while dropped < half {
            let idx = rng.index(n);
            if received[idx].is_some() {
                received[idx] = None;
                dropped += 1;
            }
        }
        let recovered = reassemble_file(&seg, &received).unwrap();
        assert_eq!(recovered, payload, "seed {seed}");
    }
}

/// Engine-level property: random request interleavings never break space
/// accounting, money conservation, or compensation completeness.
#[test]
fn engine_random_interleavings_hold_invariants() {
    use fi_core::engine::Engine;

    for seed in 0..8u64 {
        let params = ProtocolParams {
            k: 2,
            delay_per_size: 4,
            avg_refresh: 3.0,
            seed,
            ..ProtocolParams::default()
        };
        let mut engine = Engine::new(params).unwrap();
        let client = AccountId(900);
        engine.fund(client, TokenAmount(1_000_000_000));
        let mut rng = DetRng::from_seed_label(seed, "interleave");
        let mut sectors = Vec::new();
        let mut files: Vec<fi_core::FileId> = Vec::new();
        for step in 0..120 {
            match rng.below(10) {
                0 | 1 => {
                    let provider = AccountId(100 + rng.below(5));
                    engine.fund(provider, TokenAmount(10_000_000));
                    if let Ok(s) = engine.sector_register(provider, 640) {
                        sectors.push(s);
                    }
                }
                2..=4 => {
                    let root = fi_crypto::sha256(&(step as u64).to_le_bytes());
                    if let Ok(f) =
                        engine.file_add(client, 1 + rng.below(16), TokenAmount(1_000), root)
                    {
                        files.push(f);
                    }
                }
                5 => {
                    if !files.is_empty() {
                        let f = files[rng.index(files.len())];
                        let _ = engine.file_discard(client, f);
                    }
                }
                6 => {
                    if !sectors.is_empty() {
                        let s = sectors[rng.index(sectors.len())];
                        if let Some(sector) = engine.sector(s) {
                            let owner = sector.owner;
                            let _ = engine.sector_disable(owner, s);
                        }
                    }
                }
                7 => {
                    if !sectors.is_empty() && rng.bernoulli(0.3) {
                        let s = sectors[rng.index(sectors.len())];
                        if engine.sector(s).is_some() {
                            engine.corrupt_sector_now(s);
                        }
                    }
                }
                _ => {
                    engine.honest_providers_act();
                    engine.advance_to(engine.now() + 25 + rng.below(100));
                }
            }
        }
        // Settle outstanding cycles and audit.
        for _ in 0..5 {
            engine.honest_providers_act();
            engine.advance_to(engine.now() + engine.params().proof_cycle);
        }
        assert!(engine.ledger().audit(), "seed {seed}: conservation broken");
        assert_eq!(
            engine.stats().compensation_shortfall,
            TokenAmount::ZERO,
            "seed {seed}: shortfall"
        );
    }
}
