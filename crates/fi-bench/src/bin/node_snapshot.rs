//! Writes a `BENCH_node.json` end-to-end node-pipeline snapshot: whole
//! simulated clusters (mempool → beacon-rotated proposers →
//! `apply_batch` → sealed blocks over a lossy `fi-net` link →
//! fork-choice adoption) measured wall-clock, plus mempool
//! admission/selection throughput, follower catch-up time from a durable
//! snapshot, and the chaos scenario's recovery latencies.
//!
//! Usage: `cargo run --release -p fi-bench --bin node_snapshot [out.json]`
//!
//! Four sections:
//!
//! * **node** — one full rotating-validator cluster run (3 validators on
//!   mixed replay modes, a chain-watching workload driver, 10% message
//!   loss + jitter) per `(shards, ingest_threads)` configuration in the
//!   {1,8} × {1,4} cross. Blocks/s are end-to-end: mempool selection,
//!   engine commit, link simulation and every replica's verification.
//!   The two knobs are performance-only, so all four configurations must
//!   produce **bit-identical consensus** — the same final chain of
//!   `(height, block hash)` — which is asserted, making this bench the
//!   node-level instance of the DESIGN.md §9–10 invariance argument.
//! * **mempool** — admission throughput (100k transactions across 64
//!   accounts into one pool) and fee-ordered, gas-bounded selection
//!   throughput draining that pool block by block.
//! * **catchup** — a cold-starting replica's sync cost: restore a
//!   checkpointed engine from `snapshot_save` bytes and `replay_from`
//!   the post-checkpoint op-log suffix to a bit-identical root.
//! * **faults** — the §V chaos scenario (`fi_node::chaos::run_chaos`):
//!   5 validators under 12% loss, the scheduled leader crashed every
//!   `FI_CHAOS_CRASH_EVERY` slots, one partition/heal cycle, lazy
//!   providers and mass sector failure/corruption/repair injections.
//!   Records heights-to-reconvergence after every crash and after the
//!   heal; convergence and finite recovery are asserted, so the snapshot
//!   CI gate fails if recovery regresses into `null`s.

use std::time::Instant;

use fi_chain::account::{AccountId, TokenAmount};
use fi_chain::gas::GasSchedule;
use fi_core::engine::{Engine, StateView};
use fi_core::ops::Op;
use fi_core::params::ProtocolParams;
use fi_crypto::sha256;
use fi_net::link::LinkModel;
use fi_node::{run_chaos, run_cluster, ClusterConfig, Mempool, Tx, WorkloadConfig};
use fi_sim::robustness::NetworkRobustnessSpec;

/// Slots per measured cluster run (≥200: the multi-node determinism bar).
const SLOTS: u64 = 240;
/// Slots of the chaos scenario (matches the acceptance test).
const FAULT_SLOTS: u64 = 120;
/// The `(shards, ingest_threads)` cross; all rows must agree bit-for-bit.
const NODE_CONFIGS: [(usize, usize); 4] = [(1, 1), (1, 4), (8, 1), (8, 4)];
/// Transactions for the mempool throughput section.
const MEMPOOL_TXS: u64 = 100_000;
/// Accounts the mempool transactions spread across.
const MEMPOOL_ACCOUNTS: u64 = 64;

struct NodeRun {
    shards: usize,
    threads: usize,
    wall_s: f64,
    height: u64,
    txs_submitted: u64,
    blocks_proposed: Vec<u64>,
    chain: Vec<(u64, fi_crypto::Hash256)>,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default)
}

/// World seed: a fixed base offset by `FI_NODE_TEST_SEED` (the node-sim
/// CI matrix), so each CI cell measures — and consensus-checks — the
/// cluster under a different loss/jitter/reorder pattern. The committed
/// snapshot is generated with the variable unset (offset 0).
fn world_seed() -> u64 {
    0xBE9C4 + 1_000 * env_u64("FI_NODE_TEST_SEED", 0)
}

fn cluster_config(shards: usize, threads: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::small(world_seed(), SLOTS);
    cfg.params.shards = shards;
    cfg.params.ingest_threads = threads;
    cfg.params.delay_per_size = 25;
    cfg.link = LinkModel {
        base_latency: 5,
        ticks_per_byte: 0.001,
        max_jitter: 8,
        loss: 0.1,
    };
    cfg.workload = WorkloadConfig {
        add_every_slots: 2,
        max_files: 120,
        file_size: 4,
        prove_every_slots: 10,
        get_prob: 0.5,
        discard_prob: 0.02,
        lazy_providers: Vec::new(),
    };
    cfg
}

fn run_node(shards: usize, threads: usize) -> NodeRun {
    let cfg = cluster_config(shards, threads);
    let t = Instant::now();
    let (_world, reports) = run_cluster(&cfg);
    let wall_s = t.elapsed().as_secs_f64();
    let reference = reports.validators[0].borrow();
    let height = reference.final_height;
    let chain = reference.final_chain.clone();
    drop(reference);
    for (i, report) in reports.validators.iter().enumerate() {
        let report = report.borrow();
        assert_eq!(
            report.final_chain, chain,
            "({shards},{threads}): validator {i} diverged"
        );
    }
    assert!(
        height >= SLOTS - 10,
        "({shards},{threads}): chain stalled at {height} of {SLOTS}"
    );
    let client = reports.client.borrow();
    NodeRun {
        shards,
        threads,
        wall_s,
        height,
        txs_submitted: client.txs_submitted,
        blocks_proposed: reports
            .validators
            .iter()
            .map(|r| r.borrow().blocks_proposed)
            .collect(),
        chain,
    }
}

struct MempoolRun {
    admit_s: f64,
    select_s: f64,
    admitted: u64,
    selected: u64,
    blocks: u64,
}

fn run_mempool() -> MempoolRun {
    let params = ProtocolParams {
        k: 1,
        block_ops_limit: 1_024,
        block_gas_limit: 200_000,
        mempool_cap: MEMPOOL_TXS as usize,
        ..ProtocolParams::default()
    };
    let mut ledger = fi_chain::account::Ledger::new();
    for a in 0..MEMPOOL_ACCOUNTS {
        ledger.mint(AccountId(a), TokenAmount(u128::MAX / 1_000));
    }
    let mut pool = Mempool::new(params, GasSchedule::default());
    let t_admit = Instant::now();
    for i in 0..MEMPOOL_TXS {
        let from = AccountId(i % MEMPOOL_ACCOUNTS);
        let tx = Tx {
            from,
            nonce: i / MEMPOOL_ACCOUNTS,
            fee: TokenAmount((i % 97) as u128),
            op: Op::FileProve {
                caller: from,
                file: fi_core::types::FileId(i),
                index: 0,
                sector: fi_core::types::SectorId(i % 512),
            },
        };
        pool.admit(tx, &ledger).expect("admission succeeds");
    }
    let admit_s = t_admit.elapsed().as_secs_f64();
    let admitted = pool.stats().admitted;
    assert_eq!(admitted, MEMPOOL_TXS);

    let t_select = Instant::now();
    let mut selected = 0u64;
    let mut blocks = 0u64;
    while !pool.is_empty() {
        let (txs, gas) = pool.select_block();
        assert!(!txs.is_empty(), "pool drains monotonically");
        assert!(gas <= 200_000, "gas bound respected");
        selected += txs.len() as u64;
        blocks += 1;
    }
    let select_s = t_select.elapsed().as_secs_f64();
    assert_eq!(selected, MEMPOOL_TXS, "every admitted tx selected");

    MempoolRun {
        admit_s,
        select_s,
        admitted,
        selected,
        blocks,
    }
}

struct CatchupRun {
    snapshot_bytes: usize,
    suffix_ops: usize,
    restore_s: f64,
    replay_s: f64,
}

/// Builds a loaded engine, checkpoints + snapshots it, keeps running, then
/// measures a cold joiner's restore + suffix replay to the live root.
fn run_catchup() -> CatchupRun {
    let params = ProtocolParams {
        k: 2,
        delay_per_size: 25,
        ..ProtocolParams::default()
    };
    let provider = AccountId(700);
    let client = AccountId(900);
    let mut engine = Engine::new(params).expect("valid params");
    engine.fund(provider, TokenAmount(1_000_000_000_000));
    engine.fund(client, TokenAmount(1_000_000_000));
    for _ in 0..8 {
        engine.sector_register(provider, 1_280).expect("sector");
    }
    // Load: files + confirms + a few proof cycles of Auto_* traffic.
    for i in 0..500u64 {
        let file = engine
            .file_add(
                client,
                4,
                engine.params().min_value,
                sha256(&i.to_be_bytes()),
            )
            .expect("add");
        for (idx, s) in engine.pending_confirms(file) {
            engine
                .file_confirm(provider, file, idx, s)
                .expect("confirm");
        }
        if i.is_multiple_of(50) {
            engine.advance_to(engine.now() + 10);
        }
    }
    engine.advance_to(engine.now() + 200);

    // The proposer's maintenance step: checkpoint (truncate) + snapshot.
    let checkpoint = engine.checkpoint();
    let snapshot = engine.snapshot_save();

    // The chain keeps moving while the joiner is cold.
    for i in 0..2_000u64 {
        let files = engine.file_ids();
        let file = files[(i % files.len() as u64) as usize];
        let _ = engine.file_get(client, file);
        if i.is_multiple_of(100) {
            engine.advance_to(engine.now() + 10);
        }
    }
    engine.advance_to(engine.now() + 100);
    let suffix = engine.op_log().to_vec();
    let live_root = engine.state_root();

    // The joiner's bill: restore bytes, replay the suffix, verify.
    let t_restore = Instant::now();
    let restored = Engine::snapshot_restore(&snapshot).expect("snapshot restores");
    let restore_s = t_restore.elapsed().as_secs_f64();
    let t_replay = Instant::now();
    let caught_up = Engine::replay_from(&restored, &checkpoint, &suffix).expect("suffix replays");
    let replay_s = t_replay.elapsed().as_secs_f64();
    assert_eq!(
        caught_up.state_root(),
        live_root,
        "caught-up joiner matches the live engine bit-for-bit"
    );
    assert_eq!(caught_up.chain().head_hash(), engine.chain().head_hash());

    CatchupRun {
        snapshot_bytes: snapshot.len(),
        suffix_ops: suffix.len(),
        restore_s,
        replay_s,
    }
}

struct FaultsRun {
    spec: NetworkRobustnessSpec,
    wall_s: f64,
    outcome: fi_node::ChaosOutcome,
}

/// The chaos scenario, asserted converged with finite recovery — a
/// regression here fails the bench (and therefore the CI gate) outright.
fn run_faults() -> FaultsRun {
    let spec = NetworkRobustnessSpec::acceptance(FAULT_SLOTS, env_u64("FI_CHAOS_CRASH_EVERY", 6));
    let t = Instant::now();
    let outcome = run_chaos(world_seed(), &spec);
    let wall_s = t.elapsed().as_secs_f64();
    assert!(outcome.converged, "chaos survivors diverged: {outcome:?}");
    for &(node, latency) in outcome
        .crash_recoveries
        .iter()
        .chain(&outcome.heal_recoveries)
    {
        assert!(latency.is_some(), "validator {node} never reconverged");
    }
    assert!(
        outcome.injections_included >= outcome.injections_scripted,
        "fault injections missing from the chain"
    );
    FaultsRun {
        spec,
        wall_s,
        outcome,
    }
}

fn recovery_json(recoveries: &[(usize, Option<u64>)]) -> String {
    let rows: Vec<String> = recoveries
        .iter()
        .map(|(node, latency)| {
            format!(
                "{{\"validator\": {node}, \"heights\": {}}}",
                latency.expect("asserted Some in run_faults")
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

fn max_recovery(recoveries: &[(usize, Option<u64>)]) -> u64 {
    recoveries
        .iter()
        .filter_map(|(_, latency)| *latency)
        .max()
        .unwrap_or(0)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_node.json".into());
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let runs: Vec<NodeRun> = NODE_CONFIGS.iter().map(|&(s, t)| run_node(s, t)).collect();
    // Shards and ingest threads are performance knobs: every configuration
    // must reproduce the identical block-by-block consensus history.
    for run in &runs[1..] {
        assert_eq!(
            run.chain, runs[0].chain,
            "({}, {}) diverged from the (1,1) cluster history",
            run.shards, run.threads
        );
    }
    for run in &runs {
        println!(
            "node shards={} threads={}: height {} in {:.2}s = {:.1} blocks/s ({} txs submitted, proposals {:?})",
            run.shards,
            run.threads,
            run.height,
            run.wall_s,
            run.height as f64 / run.wall_s,
            run.txs_submitted,
            run.blocks_proposed,
        );
    }

    let mempool = run_mempool();
    println!(
        "mempool: {} admits in {:.3}s = {:.0}/s; {} selected over {} blocks in {:.3}s = {:.0}/s",
        mempool.admitted,
        mempool.admit_s,
        mempool.admitted as f64 / mempool.admit_s,
        mempool.selected,
        mempool.blocks,
        mempool.select_s,
        mempool.selected as f64 / mempool.select_s,
    );

    let catchup = run_catchup();
    println!(
        "catchup: {} snapshot bytes restored in {:.1}ms, {} suffix ops replayed in {:.1}ms",
        catchup.snapshot_bytes,
        catchup.restore_s * 1e3,
        catchup.suffix_ops,
        catchup.replay_s * 1e3,
    );

    let faults = run_faults();
    println!(
        "faults: {} slots, crash every {} slots, {} restarts, {} fault drops; max crash recovery {} heights, max heal recovery {} heights ({:.2}s)",
        faults.spec.slots,
        faults.spec.crash_every,
        faults.outcome.restarts,
        faults.outcome.fault_drops,
        max_recovery(&faults.outcome.crash_recoveries),
        max_recovery(&faults.outcome.heal_recoveries),
        faults.wall_s,
    );

    let node_rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"shards\": {}, \"ingest_threads\": {}, \"height\": {}, \"wall_s\": {:.3}, \"blocks_per_sec\": {:.1}, \"txs_submitted\": {}}}",
                r.shards,
                r.threads,
                r.height,
                r.wall_s,
                r.height as f64 / r.wall_s,
                r.txs_submitted,
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"suite\": \"fi-node end-to-end pipeline: mempool -> rotating proposers -> apply_batch -> fi-net broadcast -> fork-choice adoption\",\n  \
           \"unit_note\": \"node runs: one whole simulated cluster (3 beacon-rotated validators on mixed replay modes + workload driver, 10% loss, jittered link) per (shards, ingest_threads) config; wall-clock covers mempool selection, engine commit, link simulation and every replica's verification; all configs asserted bit-identical on the final chain. mempool: admission + fee-ordered gas-bounded selection on one pool. catchup: snapshot_restore + replay_from to the live root. faults: the 5-validator chaos scenario (12% loss, leader crash every K slots, one partition/heal, lazy provider + mass FailSector/CorruptSector + ForceDiscard repair); recovery latency is heights-to-reconvergence past the frozen head\",\n  \
           \"available_parallelism\": {parallelism},\n  \
           \"node\": {{\n    \"slots\": {SLOTS},\n    \"runs\": [\n{}\n    ]\n  }},\n  \
           \"mempool\": {{\"txs\": {}, \"accounts\": {MEMPOOL_ACCOUNTS}, \"admit_per_sec\": {:.0}, \"select_per_sec\": {:.0}, \"blocks_selected\": {}}},\n  \
           \"catchup\": {{\"snapshot_bytes\": {}, \"suffix_ops\": {}, \"restore_ms\": {:.3}, \"replay_ms\": {:.3}, \"total_ms\": {:.3}}},\n  \
           \"faults\": {{\n    \"slots\": {}, \"validators\": {}, \"loss\": {:.2}, \"crash_every\": {}, \"crash_for_slots\": {},\n    \"converged\": {}, \"final_height\": {}, \"restarts\": {}, \"fault_drops\": {}, \"messages_lost\": {},\n    \"injections_scripted\": {}, \"injections_included\": {}, \"final_files\": {},\n    \"crash_recoveries\": {}, \"heal_recoveries\": {},\n    \"crash_recovery_max_heights\": {}, \"heal_recovery_max_heights\": {}, \"wall_s\": {:.3}\n  }}\n}}\n",
        node_rows.join(",\n"),
        mempool.admitted,
        mempool.admitted as f64 / mempool.admit_s,
        mempool.selected as f64 / mempool.select_s,
        mempool.blocks,
        catchup.snapshot_bytes,
        catchup.suffix_ops,
        catchup.restore_s * 1e3,
        catchup.replay_s * 1e3,
        (catchup.restore_s + catchup.replay_s) * 1e3,
        faults.spec.slots,
        faults.spec.validators,
        faults.spec.loss,
        faults.spec.crash_every,
        faults.spec.crash_for_slots,
        faults.outcome.converged,
        faults.outcome.height,
        faults.outcome.restarts,
        faults.outcome.fault_drops,
        faults.outcome.messages_lost,
        faults.outcome.injections_scripted,
        faults.outcome.injections_included,
        faults.outcome.final_files,
        recovery_json(&faults.outcome.crash_recoveries),
        recovery_json(&faults.outcome.heal_recoveries),
        max_recovery(&faults.outcome.crash_recoveries),
        max_recovery(&faults.outcome.heal_recoveries),
        faults.wall_s,
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("wrote {out_path}");
}
