//! Theorem 4 experiment: the deposit ratio needed for full compensation.
//!
//! §IV-B / §V-B.4: deposits are pledged per unit capacity; when sectors
//! totalling `λ'` of capacity are corrupted, the confiscated deposits are
//! `λ' · γ_deposit · Nm_v · minValue` and must cover the lost value. The
//! *empirically required* ratio for a corruption event is therefore
//!
//! ```text
//! γ_required = Vlost / (λ' · Nm_v · minValue)
//! ```
//!
//! maximised over the observed events. We sweep adversaries and λ values,
//! report the worst `γ_required`, and compare with the Theorem 4 bound
//! (which evaluates to ≈ 0.0046 at the paper's parameters).

use fi_analysis::theorems::{theorem4_deposit_ratio_bound, RobustnessParams, SECURITY_PARAMETER};
use fi_baselines::fileinsurer::FileInsurerModel;
use fi_baselines::{
    corrupt_nodes, evaluate_loss, AdversaryStrategy, DsnModel, FileSpec, NetworkSpec,
};
use fi_crypto::DetRng;

use crate::report::{sci, TextTable};
use crate::robustness::RobustnessConfig;

/// One deposit-experiment row.
#[derive(Debug, Clone)]
pub struct DepositRow {
    /// Replication parameter `k`.
    pub k: u32,
    /// Adversary budget λ.
    pub lambda: f64,
    /// Adversary strategy.
    pub strategy: AdversaryStrategy,
    /// Actually corrupted capacity fraction λ'.
    pub lambda_effective: f64,
    /// Lost value (minValue units).
    pub lost_value: f64,
    /// Empirically required deposit ratio for this event.
    pub gamma_required: f64,
    /// Theorem 4 bound at (k, λ).
    pub bound: f64,
    /// Whether the bound suffices (`γ_required ≤ bound`).
    pub covered: bool,
}

/// Runs the deposit sweep.
pub fn run_sweep(config: &RobustnessConfig, ks: &[u32], lambdas: &[f64]) -> Vec<DepositRow> {
    let net = NetworkSpec::uniform(config.ns, 64);
    let files: Vec<FileSpec> = (0..config.nv)
        .map(|_| FileSpec {
            size: 1,
            value: 1.0,
        })
        .collect();
    // Nm_v · minValue in the file-value unit system (minValue = 1):
    let max_value = config.cap_para * config.ns as f64;
    let mut rows = Vec::new();
    for &k in ks {
        let model = FileInsurerModel::new(k, 0.0046);
        let mut rng = DetRng::from_seed_label(config.seed, &format!("dep-place/k{k}"));
        let placement = model.place(&net, &files, &mut rng);
        for &lambda in lambdas {
            for strategy in AdversaryStrategy::ALL {
                let mut adv_rng = DetRng::from_seed_label(
                    config.seed,
                    &format!("dep-adv/k{k}/l{lambda}/{}", strategy.label()),
                );
                let corrupted = corrupt_nodes(
                    &net,
                    &placement,
                    &files,
                    lambda,
                    strategy,
                    false,
                    &mut adv_rng,
                );
                let report = evaluate_loss(&net, &placement, &files, &corrupted);
                let lambda_eff = report.corrupted_capacity as f64 / net.total_capacity() as f64;
                let gamma_required = if lambda_eff > 0.0 {
                    report.lost_value / (lambda_eff * max_value)
                } else {
                    0.0
                };
                let params = RobustnessParams {
                    n_s: config.ns as f64,
                    k: k as f64,
                    cap_para: config.cap_para,
                    lambda: lambda.max(1e-9),
                    c: SECURITY_PARAMETER,
                };
                let bound = theorem4_deposit_ratio_bound(&params);
                rows.push(DepositRow {
                    k,
                    lambda,
                    strategy,
                    lambda_effective: lambda_eff,
                    lost_value: report.lost_value,
                    gamma_required,
                    bound,
                    covered: gamma_required <= bound + 1e-12,
                });
            }
        }
    }
    rows
}

/// The paper's example: `k = 20, Ns = 1e6, capPara = 1e3, λ = 0.5` gives
/// `γ_deposit ≈ 0.0046`. Returns the analytic value.
pub fn paper_example_bound() -> f64 {
    theorem4_deposit_ratio_bound(&RobustnessParams {
        n_s: 1e6,
        k: 20.0,
        cap_para: 1e3,
        lambda: 0.5,
        c: SECURITY_PARAMETER,
    })
}

/// Renders deposit rows.
pub fn render(rows: &[DepositRow]) -> String {
    let mut table = TextTable::new(vec![
        "k",
        "lambda",
        "adversary",
        "lambda'",
        "lost value",
        "gamma required",
        "Thm-4 bound",
        "covered",
    ]);
    for r in rows {
        table.row(vec![
            r.k.to_string(),
            format!("{:.2}", r.lambda),
            r.strategy.label().to_string(),
            format!("{:.3}", r.lambda_effective),
            format!("{:.0}", r.lost_value),
            sci(r.gamma_required),
            sci(r.bound),
            if r.covered { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn paper_example_value() {
        let b = paper_example_bound();
        assert!((b - 0.0046).abs() < 0.0004, "bound {b}");
    }

    #[test]
    fn bound_covers_measured_requirement() {
        let mut config = RobustnessConfig::for_scale(Scale::Default);
        config.ns = 300;
        config.nv = 3_000;
        let rows = run_sweep(&config, &[6, 20], &[0.3, 0.5]);
        for r in &rows {
            assert!(
                r.covered,
                "k={} λ={} {}: required {} > bound {}",
                r.k,
                r.lambda,
                r.strategy.label(),
                r.gamma_required,
                r.bound
            );
        }
    }

    #[test]
    fn required_ratio_positive_when_losses_occur() {
        let mut config = RobustnessConfig::for_scale(Scale::Default);
        config.ns = 200;
        config.nv = 2_000;
        let rows = run_sweep(&config, &[2], &[0.7]);
        assert!(
            rows.iter()
                .any(|r| r.lost_value > 0.0 && r.gamma_required > 0.0),
            "k=2 λ=0.7 should produce measurable losses"
        );
    }
}
