//! SHA-256 implemented from the FIPS 180-4 specification.
//!
//! The FileInsurer protocol needs a collision-resistant hash for file Merkle
//! roots, content identifiers, replica commitments, and the random beacon.
//! The allowed dependency set contains no hash crate, so this module
//! implements SHA-256 from scratch. Test vectors from FIPS 180-4 and NIST
//! CAVP are checked in the unit tests below, against every backend the host
//! supports.
//!
//! Two interfaces are exposed:
//!
//! * the streaming [`Sha256`] hasher (and one-shot [`sha256`]) for single
//!   messages — accelerated transparently by SHA-NI when available, and
//! * the multi-lane [`digest_many`]/[`compress_many`] entry points, which
//!   hash batches of *independent* messages in lockstep so the 8-wide AVX2
//!   kernel (or back-to-back SHA-NI) can be applied. The audit pipeline
//!   feeds 100k+ independent Merkle path walks per bucket through this.
//!
//! Backend selection is runtime-dispatched ([`active_backend`]): x86 SHA-NI
//! when detected, else the 8-wide AVX2 kernel, else portable scalar code.
//! The scalar implementation is the frozen differential-test reference and
//! `FI_FORCE_SCALAR_SHA=1` pins it.

use crate::hash::Hash256;

mod simd;

pub use simd::{active_backend, available_backends, force_backend, select_backend, Backend};

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Incremental SHA-256 hasher.
///
/// Accepts input in arbitrary chunks via [`Sha256::update`] and produces the
/// digest with [`Sha256::finalize`]. For one-shot hashing prefer the
/// convenience function [`sha256`].
///
/// # Example
///
/// ```
/// use fi_crypto::sha256::{sha256, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), sha256(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total number of message bytes consumed so far.
    len_bytes: u64,
    /// Buffered partial block.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher in the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len_bytes: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        let mut input = data;
        self.len_bytes = self.len_bytes.wrapping_add(data.len() as u64);

        // Fill a partially occupied buffer first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                simd::compress_blocks(&mut self.state, &block);
                self.buf_len = 0;
            }
        }

        // Whole blocks straight from the input, in one multi-block call so
        // the SHA-NI backend keeps its state in registers across blocks.
        let whole = input.len() - input.len() % 64;
        if whole > 0 {
            simd::compress_blocks(&mut self.state, &input[..whole]);
            input = &input[whole..];
        }

        // Stash the tail.
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Consumes the hasher and returns the 32-byte digest.
    pub fn finalize(mut self) -> Hash256 {
        let bit_len = self.len_bytes.wrapping_mul(8);
        // Padding: 0x80, zeros, then 64-bit big-endian bit length.
        let mut block = [0u8; 64];
        block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        block[self.buf_len] = 0x80;
        if self.buf_len < 56 {
            block[56..].copy_from_slice(&bit_len.to_be_bytes());
            simd::compress_blocks(&mut self.state, &block);
        } else {
            // No room for the length after the 0x80 marker: one extra block.
            simd::compress_blocks(&mut self.state, &block);
            let mut last = [0u8; 64];
            last[56..].copy_from_slice(&bit_len.to_be_bytes());
            simd::compress_blocks(&mut self.state, &last);
        }

        Hash256::from_bytes(state_to_bytes(&self.state))
    }
}

/// Serializes a SHA-256 state as the big-endian digest bytes.
fn state_to_bytes(state: &[u32; 8]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// One-shot SHA-256 of `data`.
///
/// ```
/// use fi_crypto::sha256;
/// assert_eq!(
///     sha256(b"abc").to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
pub fn sha256(data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// The FIPS 180-4 initial hash state, exposed for [`compress_many`] callers
/// and benchmarks that drive the compression function directly.
pub const INITIAL_STATE: [u32; 8] = H0;

/// Runs the SHA-256 compression function on `blocks[i]` into `states[i]`
/// for every lane, using the active backend.
///
/// This is the raw multi-lane primitive: no padding or finalization is
/// applied. Most callers want [`digest_many`] instead.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn compress_many(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    simd::compress_many_impl(simd::active_backend(), states, blocks);
}

/// [`compress_many`] with an explicit backend (differential tests).
///
/// # Panics
///
/// Panics if the slices differ in length or `backend` is unavailable here.
pub fn compress_many_with(backend: Backend, states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    simd::compress_many_impl(backend, states, blocks);
}

/// Hashes a batch of independent messages in lockstep, one SIMD lane per
/// message, and returns one digest per message (same order).
///
/// Equivalent to `messages.iter().map(|m| sha256(m)).collect()` but batched:
/// lane `i`'s `b`-th block is fed to the multi-lane compression backend
/// alongside every other lane's `b`-th block. Messages may have unequal
/// lengths; lanes that run out of blocks simply drop out of later rounds.
///
/// ```
/// use fi_crypto::sha256::{digest_many, sha256};
///
/// let msgs: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 3 + i as usize * 31]).collect();
/// let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
/// let batch = digest_many(&refs);
/// for (m, d) in msgs.iter().zip(&batch) {
///     assert_eq!(*d, sha256(m));
/// }
/// ```
pub fn digest_many(messages: &[&[u8]]) -> Vec<Hash256> {
    digest_many_with(simd::active_backend(), messages)
}

/// [`digest_many`] with an explicit backend (differential tests).
///
/// # Panics
///
/// Panics if `backend` is not available on this host.
pub fn digest_many_with(backend: Backend, messages: &[&[u8]]) -> Vec<Hash256> {
    let n = messages.len();
    if n == 0 {
        return Vec::new();
    }
    // Padded block count per lane: message + 0x80 marker + 64-bit length.
    let nblocks: Vec<usize> = messages
        .iter()
        .map(|m| (m.len() + 9).div_ceil(64))
        .collect();
    let max_blocks = *nblocks.iter().max().unwrap();
    let mut states = vec![H0; n];
    let mut blocks: Vec<[u8; 64]> = Vec::with_capacity(n);

    if nblocks.iter().all(|&b| b == max_blocks) {
        // Uniform-length fast path (the audit pipeline's shape): every lane
        // is live in every round, no gather/scatter needed.
        for round in 0..max_blocks {
            blocks.clear();
            blocks.extend(messages.iter().map(|m| round_block(m, round, max_blocks)));
            simd::compress_many_impl(backend, &mut states, &blocks);
        }
    } else {
        let mut gathered: Vec<[u32; 8]> = Vec::with_capacity(n);
        let mut active: Vec<usize> = Vec::with_capacity(n);
        for round in 0..max_blocks {
            blocks.clear();
            gathered.clear();
            active.clear();
            for (i, m) in messages.iter().enumerate() {
                if nblocks[i] > round {
                    active.push(i);
                    gathered.push(states[i]);
                    blocks.push(round_block(m, round, nblocks[i]));
                }
            }
            simd::compress_many_impl(backend, &mut gathered, &blocks);
            for (k, &i) in active.iter().enumerate() {
                states[i] = gathered[k];
            }
        }
    }

    states
        .iter()
        .map(|s| Hash256::from_bytes(state_to_bytes(s)))
        .collect()
}

/// Block `round` of the padded form of `msg`, given its total padded block
/// count. Full data blocks are copied verbatim; the tail block(s) get the
/// 0x80 marker and (in the final block) the big-endian bit length.
fn round_block(msg: &[u8], round: usize, nblocks: usize) -> [u8; 64] {
    let start = round * 64;
    if start + 64 <= msg.len() {
        return msg[start..start + 64].try_into().unwrap();
    }
    let mut block = [0u8; 64];
    if start <= msg.len() {
        let take = msg.len() - start;
        block[..take].copy_from_slice(&msg[start..]);
        block[take] = 0x80;
    }
    if round == nblocks - 1 {
        block[56..].copy_from_slice(&(msg.len() as u64).wrapping_mul(8).to_be_bytes());
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST CAVP known-answer tests.
    #[test]
    fn fips_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(sha256(input).to_hex(), *expect, "input {input:?}");
        }
    }

    #[test]
    fn million_a() {
        // FIPS 180-4: one million repetitions of 'a'.
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        // Try many split points, including block boundaries.
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn length_boundary_inputs() {
        // Hash inputs of every length near the padding boundary; the digests
        // must all differ (sanity against padding bugs).
        let data = [0xABu8; 130];
        let mut seen = std::collections::HashSet::new();
        for len in 0..=130 {
            assert!(seen.insert(sha256(&data[..len])), "collision at len {len}");
        }
    }

    /// Deterministic pseudo-random bytes for differential tests (no rand
    /// crate; splitmix64 over a seed).
    fn prng_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        while out.len() < len {
            let mut z = x;
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            out.extend_from_slice(&z.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    /// NIST CAVP vectors through every backend the host supports, with
    /// enough lanes (9) that the AVX2 kernel's 8-wide body *and* its scalar
    /// tail both run.
    #[test]
    fn cavp_vectors_every_backend() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for &backend in available_backends() {
            for (input, expect) in cases {
                let lanes: Vec<&[u8]> = vec![input; 9];
                for (lane, digest) in digest_many_with(backend, &lanes).iter().enumerate() {
                    assert_eq!(
                        digest.to_hex(),
                        *expect,
                        "backend {} lane {lane} input {input:?}",
                        backend.name()
                    );
                }
            }
        }
    }

    /// Randomized differential test: every backend must agree with the
    /// streaming scalar-reference hasher for odd lane counts, unequal
    /// lengths, and padding-boundary tails.
    #[test]
    fn digest_many_differential() {
        let lane_counts = [1usize, 3, 7, 8, 9, 17, 33];
        let tricky_lens = [0usize, 1, 55, 56, 63, 64, 65, 119, 127, 128, 200];
        for &backend in available_backends() {
            for (case, &lanes) in lane_counts.iter().enumerate() {
                let msgs: Vec<Vec<u8>> = (0..lanes)
                    .map(|i| {
                        let len = tricky_lens[(i + case) % tricky_lens.len()] + 13 * case;
                        prng_bytes((case * 1000 + i) as u64, len)
                    })
                    .collect();
                let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
                let got = digest_many_with(backend, &refs);
                for (i, m) in msgs.iter().enumerate() {
                    assert_eq!(
                        got[i],
                        sha256(m),
                        "backend {} lanes {lanes} lane {i} len {}",
                        backend.name(),
                        m.len()
                    );
                }
            }
        }
    }

    /// Raw compression-function differential: random states and blocks
    /// through every backend vs the scalar reference.
    #[test]
    fn compress_many_differential() {
        for &backend in available_backends() {
            for lanes in [1usize, 5, 8, 16, 19] {
                let mut states: Vec<[u32; 8]> = (0..lanes)
                    .map(|i| {
                        let b = prng_bytes(7000 + i as u64, 32);
                        std::array::from_fn(|j| {
                            u32::from_le_bytes(b[4 * j..4 * j + 4].try_into().unwrap())
                        })
                    })
                    .collect();
                let blocks: Vec<[u8; 64]> = (0..lanes)
                    .map(|i| prng_bytes(9000 + i as u64, 64).try_into().unwrap())
                    .collect();
                let mut expect = states.clone();
                compress_many_with(Backend::Scalar, &mut expect, &blocks);
                compress_many_with(backend, &mut states, &blocks);
                assert_eq!(states, expect, "backend {} lanes {lanes}", backend.name());
            }
        }
    }

    #[test]
    fn select_backend_rules() {
        use Backend::*;
        // Priority order with everything available.
        assert_eq!(select_backend(&[Scalar, Avx2, ShaNi], false), ShaNi);
        assert_eq!(select_backend(&[Scalar, ShaNi, Avx2], false), ShaNi);
        assert_eq!(select_backend(&[Scalar, Avx2], false), Avx2);
        assert_eq!(select_backend(&[Scalar], false), Scalar);
        // FI_FORCE_SCALAR_SHA pins the portable fallback regardless.
        assert_eq!(select_backend(&[Scalar, Avx2, ShaNi], true), Scalar);
        assert_eq!(select_backend(&[Scalar], true), Scalar);
    }

    #[test]
    fn available_backends_always_has_scalar() {
        assert!(available_backends().contains(&Backend::Scalar));
        // The active backend must be one of the available ones.
        assert!(available_backends().contains(&active_backend()));
    }

    /// The global override redirects `active_backend`. Safe to run alongside
    /// other tests: all backends produce identical digests, so concurrent
    /// tests observing the temporary override still pass.
    #[test]
    fn force_backend_overrides_selection() {
        force_backend(Some(Backend::Scalar));
        assert_eq!(active_backend(), Backend::Scalar);
        force_backend(None);
        assert!(available_backends().contains(&active_backend()));
    }

    #[test]
    #[should_panic(expected = "one message block per state lane")]
    fn compress_many_length_mismatch_panics() {
        let mut states = vec![INITIAL_STATE; 2];
        compress_many(&mut states, &[[0u8; 64]]);
    }
}
