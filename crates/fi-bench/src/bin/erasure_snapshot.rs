//! Writes a `BENCH_erasure.json` throughput snapshot: the flat-buffer fast
//! path measured against the frozen seed implementation
//! (`fi_erasure::reference`) on the acceptance-criteria cases.
//!
//! Usage: `cargo run --release -p fi-bench --bin erasure_snapshot [out.json]`
//!
//! The snapshot seeds the perf trajectory: CI runs it on every push so later
//! PRs can compare against recorded numbers instead of folklore.
//!
//! Payloads and case geometry are shared with the criterion bench via
//! [`fi_bench::erasure_cases`], so both report on identical inputs.

use std::hint::black_box;
use std::time::Instant;

use fi_bench::erasure_cases::{pattern, payload, KIB, MIB};
use fi_erasure::reference::RefReedSolomon;
use fi_erasure::ReedSolomon;

/// Median seconds per call over `reps` timed calls (after one warm-up).
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

struct Case {
    name: String,
    bytes: usize,
    /// `(median seconds, reps used)` for the frozen seed path, if measured.
    seed: Option<(f64, usize)>,
    /// `(median seconds, reps used)` for the fast path.
    fast: (f64, usize),
}

impl Case {
    fn json(&self) -> String {
        let (fast_s, fast_reps) = self.fast;
        let fast_mib_s = self.bytes as f64 / MIB as f64 / fast_s;
        let (seed_field, speedup_field) = match self.seed {
            Some((s, seed_reps)) => (
                format!("\"seed_ms\": {:.4}, \"seed_reps\": {seed_reps}, ", s * 1e3),
                format!("\"speedup\": {:.2}, ", s / fast_s),
            ),
            None => (String::new(), String::new()),
        };
        format!(
            "    {{\"case\": \"{}\", \"bytes\": {}, {}\"fast_ms\": {:.4}, \"fast_reps\": {}, {}\"fast_throughput_mib_s\": {:.1}}}",
            self.name,
            self.bytes,
            seed_field,
            fast_s * 1e3,
            fast_reps,
            speedup_field,
            fast_mib_s
        )
    }
}

fn encode_case(data: usize, parity: usize, bytes: usize, reps: usize, with_seed: bool) -> Case {
    let rs = ReedSolomon::new(data, parity).unwrap();
    let buf = payload(bytes);
    // Like-for-like with the seed's encode_bytes: the fast side also pays
    // the payload split and the shard-buffer allocation, not just the
    // parity kernel.
    let fast_s = time_median(reps, || {
        black_box(rs.encode_bytes_flat(&buf));
    });
    let seed_reps = reps.min(10); // the seed path is too slow for full reps
    let seed = with_seed.then(|| {
        let seed_rs = RefReedSolomon::new(data, parity);
        (
            time_median(seed_reps, || {
                black_box(seed_rs.encode_bytes(&buf));
            }),
            seed_reps,
        )
    });
    Case {
        name: format!("encode/{data}+{parity}/{}KiB", bytes / KIB),
        bytes,
        seed,
        fast: (fast_s, reps),
    }
}

fn reconstruct_case(data: usize, parity: usize, bytes: usize, label: &str, reps: usize) -> Case {
    let erased = pattern(data, parity, label);
    let rs = ReedSolomon::new(data, parity).unwrap();
    let encoded = rs.encode_bytes_flat(&payload(bytes));
    let mut present = vec![true; data + parity];
    for &i in &erased {
        present[i] = false;
    }

    let mut set = encoded.clone();
    let fast_s = time_median(reps, || {
        rs.reconstruct_into(black_box(&mut set), &present).unwrap()
    });

    let seed_rs = RefReedSolomon::new(data, parity);
    let got: Vec<Option<Vec<u8>>> = encoded
        .iter()
        .enumerate()
        .map(|(i, s)| present[i].then(|| s.to_vec()))
        .collect();
    let seed_reps = reps.min(10);
    let seed_s = time_median(seed_reps, || {
        black_box(seed_rs.reconstruct(&got));
    });

    Case {
        name: format!("reconstruct/{data}+{parity}/{}KiB/{label}", bytes / KIB),
        bytes,
        seed: Some((seed_s, seed_reps)),
        fast: (fast_s, reps),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_erasure.json".into());
    let reps = 30;

    let cases = vec![
        // Acceptance criterion: >= 5x encode at (8,8)/64 KiB.
        encode_case(8, 8, 64 * KIB, reps, true),
        encode_case(4, 2, 64 * KIB, reps, true),
        encode_case(16, 16, 64 * KIB, reps, true),
        encode_case(8, 8, MIB, reps, true),
        encode_case(8, 8, 16 * MIB, 5, false),
        // Acceptance criterion: >= 10x single-erasure reconstruct.
        reconstruct_case(8, 8, 64 * KIB, "single-data", reps),
        reconstruct_case(8, 8, 64 * KIB, "single-parity", reps),
        reconstruct_case(8, 8, 64 * KIB, "all-data", reps),
        reconstruct_case(16, 16, 64 * KIB, "single-data", reps),
    ];

    let rows: Vec<String> = cases.iter().map(Case::json).collect();
    let json = format!(
        "{{\n  \"suite\": \"fi-erasure flat-buffer fast path vs seed scalar reference\",\n  \
           \"unit_note\": \"per-case medians; rep counts recorded per result (seed = frozen pre-overhaul implementation; encode compared end-to-end incl. payload split and allocation)\",\n  \
           \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("wrote {out_path}");

    // Fail loudly if the headline numbers regress below the PR-1 acceptance
    // bar, so CI catches erasure-path regressions without parsing JSON.
    let by_name = |n: &str| {
        cases
            .iter()
            .find(|c| c.name.contains(n))
            .expect("case exists")
    };
    let enc = by_name("encode/8+8/64KiB");
    let rec = by_name("reconstruct/8+8/64KiB/single-data");
    let enc_speedup = enc.seed.unwrap().0 / enc.fast.0;
    let rec_speedup = rec.seed.unwrap().0 / rec.fast.0;
    println!("headline: encode(8,8)/64KiB {enc_speedup:.1}x, single-erasure reconstruct {rec_speedup:.1}x");
    assert!(
        enc_speedup >= 5.0,
        "encode speedup {enc_speedup:.2}x fell below the 5x acceptance bar"
    );
    assert!(
        rec_speedup >= 10.0,
        "reconstruct speedup {rec_speedup:.2}x fell below the 10x acceptance bar"
    );
}
