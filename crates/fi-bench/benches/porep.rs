//! Simulated PoRep seal/verify and WindowPoSt respond/verify.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fi_crypto::sha256;
use fi_porep::post::{derive_challenges, WindowPost};
use fi_porep::seal::{PorepProof, ReplicaId, SealedReplica};
use fi_porep::CapacityReplica;

fn rid() -> ReplicaId {
    ReplicaId::derive(&sha256(b"data"), &sha256(b"sector"), 0)
}

fn bench_seal(c: &mut Criterion) {
    let mut group = c.benchmark_group("porep/seal");
    for size in [1_024usize, 65_536] {
        let data = vec![0x11u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(SealedReplica::seal(&data, rid())))
        });
    }
    group.finish();
}

fn bench_porep_proof(c: &mut Criterion) {
    let data = vec![0x22u8; 16_384];
    c.bench_function("porep/proof/create", |b| {
        b.iter(|| black_box(PorepProof::create(&data, rid())))
    });
    let (_, proof) = PorepProof::create(&data, rid());
    c.bench_function("porep/proof/verify", |b| {
        b.iter(|| black_box(proof.verify()))
    });
}

fn bench_window_post(c: &mut Criterion) {
    let data = vec![0x33u8; 65_536];
    let replica = SealedReplica::seal(&data, rid());
    let beacon = sha256(b"round");
    for challenges in [4usize, 16] {
        let ch = derive_challenges(
            &beacon,
            &replica.comm_r(),
            challenges,
            replica.chunk_count(),
        );
        c.bench_function(format!("porep/post/respond/{challenges}"), |b| {
            b.iter(|| black_box(WindowPost::respond(&replica, &ch)))
        });
        let post = WindowPost::respond(&replica, &ch);
        c.bench_function(format!("porep/post/verify/{challenges}"), |b| {
            b.iter(|| black_box(post.verify(&replica.comm_r(), &ch)))
        });
    }
}

fn bench_capacity_replica(c: &mut Criterion) {
    c.bench_function("porep/cr/generate-16KiB", |b| {
        let tag = sha256(b"sector-tag");
        let mut slot = 0u32;
        b.iter(|| {
            slot += 1;
            black_box(CapacityReplica::generate(&tag, slot, 16_384))
        })
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_seal,
    bench_porep_proof,
    bench_window_post,
    bench_capacity_replica
}
criterion_main!(benches);
