//! Theorem 3 experiment: measured `γ_lost` versus the analytic bound.
//!
//! Setup mirroring §V-B.3: `Nv` files of value `minValue`, each stored as
//! `k` i.i.d. capacity-proportional replicas over `Ns` equal sectors. An
//! adversary corrupts sectors totalling `λ` of capacity under each
//! strategy of [`fi_baselines::AdversaryStrategy`]; we measure the ratio
//! of lost value and compare against
//! [`fi_analysis::theorems::theorem3_gamma_lost_bound`].
//!
//! The theorem quantifies over *all* corruption patterns; the greedy
//! adversary probes the bound from below. The headline row reproduces the
//! paper's example: `k = 20`, `λ = 0.5` ⇒ measured losses are *zero* at
//! any feasible simulation scale (expected lost files `Nv·2^-20`), far
//! inside the ≤ 0.1% claim.

use fi_analysis::theorems::{theorem3_gamma_lost_bound, RobustnessParams, SECURITY_PARAMETER};
use fi_baselines::fileinsurer::FileInsurerModel;
use fi_baselines::{
    corrupt_nodes, evaluate_loss, AdversaryStrategy, DsnModel, FileSpec, NetworkSpec,
};
use fi_crypto::DetRng;

use crate::report::{sci, TextTable};
use crate::Scale;

/// One experiment row.
#[derive(Debug, Clone)]
pub struct RobustnessRow {
    /// Replication parameter `k`.
    pub k: u32,
    /// Corrupted capacity fraction.
    pub lambda: f64,
    /// Adversary strategy.
    pub strategy: AdversaryStrategy,
    /// Measured lost-value ratio.
    pub gamma_lost: f64,
    /// Theorem 3 bound at these parameters.
    pub bound: f64,
    /// Lost file count.
    pub lost_files: usize,
    /// Total file count.
    pub total_files: usize,
}

/// Experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct RobustnessConfig {
    /// Sector count `Ns`.
    pub ns: usize,
    /// File count `Nv` (all at `minValue`).
    pub nv: usize,
    /// `capPara` used for the bound's third term.
    pub cap_para: f64,
    /// Value fill ratio `γm_v` for the bound.
    pub gamma_m_v: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RobustnessConfig {
    /// Scale-dependent defaults. `Paper` pushes `Ns`/`Nv` an order of
    /// magnitude up; the full 1e6-sector example is analytic-only (the
    /// bound is evaluated, the Monte-Carlo at that scale adds nothing —
    /// measured losses are identically zero long before).
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => RobustnessConfig {
                ns: 5_000,
                nv: 50_000,
                cap_para: 1_000.0,
                gamma_m_v: 0.005,
                seed: 0x0B0B,
            },
            Scale::Default => RobustnessConfig {
                ns: 800,
                nv: 8_000,
                cap_para: 1_000.0,
                gamma_m_v: 0.005,
                seed: 0x0B0B,
            },
        }
    }
}

/// Runs the sweep over `k ∈ ks`, `λ ∈ lambdas`, all adversary strategies.
pub fn run_sweep(config: &RobustnessConfig, ks: &[u32], lambdas: &[f64]) -> Vec<RobustnessRow> {
    let mut rows = Vec::new();
    let net = NetworkSpec::uniform(config.ns, 64);
    let files: Vec<FileSpec> = (0..config.nv)
        .map(|_| FileSpec {
            size: 1,
            value: 1.0,
        })
        .collect();
    for &k in ks {
        let model = FileInsurerModel::new(k, 0.0046);
        let mut rng = DetRng::from_seed_label(config.seed, &format!("place/k{k}"));
        let placement = model.place(&net, &files, &mut rng);
        for &lambda in lambdas {
            for strategy in AdversaryStrategy::ALL {
                let mut adv_rng = DetRng::from_seed_label(
                    config.seed,
                    &format!("adv/k{k}/l{lambda}/{}", strategy.label()),
                );
                let corrupted = corrupt_nodes(
                    &net,
                    &placement,
                    &files,
                    lambda,
                    strategy,
                    false,
                    &mut adv_rng,
                );
                let report = evaluate_loss(&net, &placement, &files, &corrupted);
                let params = RobustnessParams {
                    n_s: config.ns as f64,
                    k: k as f64,
                    cap_para: config.cap_para,
                    lambda,
                    c: SECURITY_PARAMETER,
                };
                rows.push(RobustnessRow {
                    k,
                    lambda,
                    strategy,
                    gamma_lost: report.gamma_lost(),
                    bound: theorem3_gamma_lost_bound(&params, config.gamma_m_v).min(1.0),
                    lost_files: report.lost_files,
                    total_files: files.len(),
                });
            }
        }
    }
    rows
}

/// The paper's §V-B.3 headline: `k=20, λ=0.5` under every adversary.
pub fn run_headline(config: &RobustnessConfig) -> Vec<RobustnessRow> {
    run_sweep(config, &[20], &[0.5])
}

/// Renders sweep rows.
pub fn render(rows: &[RobustnessRow]) -> String {
    let mut table = TextTable::new(vec![
        "k",
        "lambda",
        "adversary",
        "lost files",
        "gamma_lost (measured)",
        "Thm-3 bound",
        "holds",
    ]);
    for r in rows {
        table.row(vec![
            r.k.to_string(),
            format!("{:.2}", r.lambda),
            r.strategy.label().to_string(),
            format!("{}/{}", r.lost_files, r.total_files),
            sci(r.gamma_lost),
            sci(r.bound),
            if r.gamma_lost <= r.bound + 1e-12 {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RobustnessConfig {
        RobustnessConfig {
            ns: 200,
            nv: 2_000,
            cap_para: 1_000.0,
            gamma_m_v: 0.005,
            seed: 7,
        }
    }

    #[test]
    fn headline_no_losses_at_k20_half_corruption() {
        let rows = run_headline(&tiny());
        assert_eq!(rows.len(), AdversaryStrategy::ALL.len());
        for r in &rows {
            assert_eq!(r.lost_files, 0, "{:?}: {} lost", r.strategy, r.lost_files);
            assert!(r.gamma_lost <= r.bound);
        }
    }

    #[test]
    fn small_k_large_lambda_does_lose_files() {
        // Sanity that the experiment *can* observe losses: k=2, λ=0.6.
        let rows = run_sweep(&tiny(), &[2], &[0.6]);
        let greedy = rows
            .iter()
            .find(|r| r.strategy == AdversaryStrategy::GreedyKill)
            .unwrap();
        assert!(greedy.lost_files > 0, "greedy should kill some k=2 files");
    }

    #[test]
    fn gamma_lost_monotone_in_lambda_for_random() {
        let rows = run_sweep(&tiny(), &[3], &[0.3, 0.6, 0.9]);
        let random: Vec<&RobustnessRow> = rows
            .iter()
            .filter(|r| r.strategy == AdversaryStrategy::Random)
            .collect();
        assert!(random[0].gamma_lost <= random[1].gamma_lost + 1e-9);
        assert!(random[1].gamma_lost <= random[2].gamma_lost + 1e-9);
    }

    #[test]
    fn render_marks_bound_violations() {
        let rows = vec![RobustnessRow {
            k: 2,
            lambda: 0.5,
            strategy: AdversaryStrategy::Random,
            gamma_lost: 0.9,
            bound: 0.5,
            lost_files: 9,
            total_files: 10,
        }];
        assert!(render(&rows).contains("NO"));
    }
}
