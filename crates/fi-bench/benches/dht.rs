//! DHT lookup cost as the network grows (expect ~log n hops).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fi_crypto::sha256;
use fi_ipfs::dht::{node_id, Dht};

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht/lookup");
    group.sample_size(20);
    for n in [64u64, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut dht = Dht::new(16, 3);
            for i in 0..n {
                dht.join(node_id(i));
            }
            let mut k = 0u64;
            b.iter(|| {
                k += 1;
                black_box(dht.lookup(node_id(k % n), sha256(&k.to_be_bytes())))
            })
        });
    }
    group.finish();
}

fn bench_provide_find(c: &mut Criterion) {
    c.bench_function("dht/provide+find/256", |b| {
        let mut dht = Dht::new(16, 3);
        for i in 0..256 {
            dht.join(node_id(i));
        }
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            let cid = sha256(&k.to_be_bytes());
            dht.provide(node_id(k % 256), cid);
            black_box(dht.find_providers(node_id((k + 7) % 256), cid))
        })
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_lookup, bench_provide_find
}
criterion_main!(benches);
