//! The content-addressed state commitment, end to end (DESIGN.md §15):
//!
//! * **Consensus rule** — `state_root()` is bit-identical across every
//!   `(store backend × shards × ingest threads)` combination: the
//!   blockstore is deployment configuration, sharding partitions only
//!   per-file state, and ingest width only schedules work.
//! * **Pinned reads** — [`Engine::pin_state`] keeps a historical version
//!   readable through [`StateView`] after the live engine moves on.
//! * **Incremental snapshots** — `base + snapshot_delta == full restore`,
//!   byte-deterministic, with typed rejection of tampered deltas.
//! * **Light-client proofs** — [`Engine::prove_file`] verifies against
//!   the bare `state_root` and rejects every tampering mode.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fi_chain::account::{AccountId, TokenAmount};
use fi_core::engine::{Engine, PinnedState, StateView};
use fi_core::params::ProtocolParams;
use fi_core::types::SectorState;
use fi_core::Error;
use fi_crypto::{sha256, DetRng};
use fi_store::{Blockstore, DiskBlockstore, MemoryBlockstore, StoreError};

const CLIENT: AccountId = AccountId(900);
const PROVIDERS: [AccountId; 3] = [AccountId(700), AccountId(701), AccountId(702)];

fn params(shards: usize, ingest_threads: usize) -> ProtocolParams {
    ProtocolParams {
        k: 3,
        delay_per_size: 6,
        avg_refresh: 6.0,
        shards,
        ingest_threads,
        ..ProtocolParams::default()
    }
}

/// A unique scratch path for a disk store (no tempfile dependency).
fn scratch(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "fi-state-commitment-{}-{tag}-{n}.log",
        std::process::id()
    ))
}

/// Deletes the scratch file when the test is done with it.
struct DropFile(std::path::PathBuf);
impl Drop for DropFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// The same seeded workload as the sharding differential suite: every
/// stochastic choice comes from the caller's rng, so engines differing
/// only in configuration receive byte-identical op sequences.
fn drive(engine: &mut Engine, seed: u64, steps: u64) {
    let mut rng = DetRng::from_seed_label(seed, "state-commitment");
    engine.fund(CLIENT, TokenAmount(500_000_000));
    for p in PROVIDERS {
        engine.fund(p, TokenAmount(1_000_000_000_000));
        for _ in 0..2 {
            engine
                .sector_register(p, 640 * (1 + rng.below(3)))
                .expect("registration");
        }
    }
    for step in 0..steps {
        match rng.below(10) {
            0..=3 => {
                let size = 1 + rng.below(40);
                let root = sha256(&(seed ^ step).to_be_bytes());
                let _ = engine.file_add(CLIENT, size, engine.params().min_value, root);
            }
            4..=6 => {
                engine.honest_providers_act();
            }
            7 => {
                let ids = engine.file_ids();
                if !ids.is_empty() {
                    let f = ids[(rng.below(ids.len() as u64)) as usize];
                    let _ = engine.file_discard(CLIENT, f);
                }
            }
            8 => {
                let ids = engine.sector_ids();
                if !ids.is_empty() {
                    let s = ids[(rng.below(ids.len() as u64)) as usize];
                    if engine.sector(s).map(|x| x.state) == Some(SectorState::Normal) {
                        engine.corrupt_sector_now(s);
                    }
                }
            }
            _ => engine.advance_to(engine.now() + 10 + rng.below(150)),
        }
    }
    engine.honest_providers_act();
    engine.advance_to(engine.now() + engine.params().proof_cycle * 2);
}

/// The consensus rule: identical roots at every point of the
/// `(store backend × shards × ingest threads)` matrix.
#[test]
fn state_root_invariant_across_store_shards_threads() {
    let mut reference = None;
    for disk in [false, true] {
        for shards in [1usize, 4] {
            for threads in [1usize, 2] {
                let (store, _guard): (Arc<dyn Blockstore>, Option<DropFile>) = if disk {
                    let path = scratch(&format!("matrix-{shards}-{threads}"));
                    (
                        Arc::new(DiskBlockstore::open(&path).expect("disk store")),
                        Some(DropFile(path)),
                    )
                } else {
                    (Arc::new(MemoryBlockstore::new()), None)
                };
                let mut engine =
                    Engine::new_with_store(params(shards, threads), store).expect("params");
                drive(&mut engine, 42, 160);
                let cell = (engine.state_root(), engine.chain().head_hash());
                match &reference {
                    None => reference = Some(cell),
                    Some(want) => assert_eq!(
                        want, &cell,
                        "consensus diverged at disk={disk} shards={shards} threads={threads}"
                    ),
                }
            }
        }
    }
}

/// Pinned views freeze a version: reads through the pin keep answering
/// from the pinned roots while the live engine mutates past them, and a
/// fresh pin tracks the live state again.
#[test]
fn pinned_state_reads_a_frozen_version() {
    let mut engine = Engine::new(params(4, 1)).expect("params");
    drive(&mut engine, 7, 120);

    let pin = engine.pin_state();
    let files_then = engine.file_ids();
    let sectors_then = engine.sector_ids();
    assert_eq!(pin.file_ids(), files_then, "pin sees the live file set");
    assert_eq!(pin.sector_ids(), sectors_then);
    for &f in &files_then {
        assert_eq!(pin.file(f), engine.file(f), "descriptor mismatch at {f}");
        // Allocation rows for every configured replica index.
        let cp = engine.file(f).expect("live file").cp;
        for i in 0..cp {
            assert_eq!(pin.alloc_entry(f, i), engine.alloc_entry(f, i));
        }
    }
    for &s in &sectors_then {
        assert_eq!(pin.sector(s), engine.sector(s));
        assert_eq!(pin.cr_accounting(s), engine.cr_accounting(s));
    }
    assert!(pin.events().is_empty(), "pins never expose live events");

    // Move the live engine on; the pin must not move with it.
    let root_then = pin.roots().state_root;
    drive(&mut engine, 8, 60);
    assert_ne!(engine.state_root(), root_then, "workload changed state");
    assert_eq!(pin.file_ids(), files_then, "pin is frozen at its version");
    assert_eq!(
        engine.pin_state().file_ids(),
        engine.file_ids(),
        "a new pin tracks the new version"
    );

    // A pin over an empty store can't resolve its roots: typed error on
    // the try_* surface, graceful default through the trait.
    let stale = PinnedState::new(Arc::new(MemoryBlockstore::new()), *pin.roots());
    assert!(matches!(
        stale.try_file_ids(),
        Err(Error::Store(StoreError::NotFound(_)))
    ));
    assert_eq!(stale.file_ids(), Vec::new());
}

/// The incremental-snapshot contract: restoring `base + delta` equals
/// restoring a full snapshot of the new state, bit for bit — and both
/// ends of the transport are deterministic.
#[test]
fn delta_snapshot_round_trips_against_a_base() {
    // A map-heavy base: hundreds of confirmed files, so the five state
    // trees dominate the snapshot (the scenario deltas target).
    let mut engine = Engine::new(params(4, 2)).expect("params");
    engine.fund(CLIENT, TokenAmount(u128::MAX / 4));
    engine.fund(PROVIDERS[0], TokenAmount(u128::MAX / 4));
    for _ in 0..6 {
        engine
            .sector_register(PROVIDERS[0], 64_000)
            .expect("register");
    }
    let fill = |engine: &mut Engine, ids: std::ops::Range<u64>| {
        for i in ids {
            let root = sha256(&i.to_be_bytes());
            let f = engine
                .file_add(CLIENT, 1, engine.params().min_value, root)
                .expect("add");
            for (idx, s) in engine.pending_confirms(f) {
                engine
                    .file_confirm(PROVIDERS[0], f, idx, s)
                    .expect("confirm");
            }
        }
    };
    fill(&mut engine, 0..300);
    engine.advance_to(engine.now() + engine.params().proof_cycle);
    engine.honest_providers_act();
    let full_base = engine.snapshot_save();
    let base_roots = engine.state_roots();

    // A small targeted change on top of that base. (No proof-cycle
    // advance: that would touch every descriptor's cntdown and dirty the
    // whole files tree.)
    fill(&mut engine, 1_000..1_003);
    engine.honest_providers_act();
    assert_ne!(engine.state_root(), base_roots.state_root);

    let delta = engine.snapshot_delta(&base_roots).expect("delta");
    let delta_again = engine.snapshot_delta(&base_roots).expect("delta");
    assert_eq!(delta, delta_again, "delta encoding is deterministic");
    let full_new = engine.snapshot_save();

    // The delta must actually be incremental: only the trie nodes on the
    // changed paths ship, not the whole state.
    assert!(
        delta.len() < full_new.len(),
        "delta ({}) not smaller than full ({})",
        delta.len(),
        full_new.len()
    );

    let base = Engine::snapshot_restore(&full_base).expect("base restore");
    assert_eq!(base.state_root(), base_roots.state_root);
    let via_delta = Engine::snapshot_restore_delta(&delta, &base).expect("delta restore");
    let via_full = Engine::snapshot_restore(&full_new).expect("full restore");

    assert_eq!(via_delta.state_root(), engine.state_root());
    assert_eq!(via_delta.state_root(), via_full.state_root());
    assert_eq!(via_delta.chain().head_hash(), via_full.chain().head_hash());
    assert_eq!(via_delta.file_ids(), via_full.file_ids());
    assert_eq!(via_delta.sector_ids(), via_full.sector_ids());
    assert_eq!(
        via_delta.ledger().total_supply(),
        via_full.ledger().total_supply()
    );

    // Both reconstructions stay in consensus under further load.
    let (mut a, mut b) = (via_delta, via_full);
    drive(&mut a, 23, 40);
    drive(&mut b, 23, 40);
    assert_eq!(a.state_root(), b.state_root(), "divergence after restore");
    assert_eq!(a.chain().head_hash(), b.chain().head_hash());
}

/// Tampered or misapplied deltas fail with typed errors, never a panic
/// and never a silently wrong engine.
#[test]
fn delta_snapshot_rejects_tampering_and_wrong_bases() {
    let mut engine = Engine::new(params(2, 1)).expect("params");
    drive(&mut engine, 31, 80);
    let full_base = engine.snapshot_save();
    let base_roots = engine.state_roots();
    drive(&mut engine, 32, 40);
    let delta = engine.snapshot_delta(&base_roots).expect("delta");

    let base = Engine::snapshot_restore(&full_base).expect("base restore");

    // Applying the delta to the wrong base is caught by the recorded
    // base root before anything is decoded.
    let mut wrong_base = Engine::new(params(2, 1)).expect("params");
    drive(&mut wrong_base, 99, 40);
    assert!(matches!(
        Engine::snapshot_restore_delta(&delta, &wrong_base),
        Err(Error::Snapshot(_))
    ));

    // Truncation and bit flips anywhere in the envelope are rejected.
    assert!(Engine::snapshot_restore_delta(&delta[..delta.len() - 40], &base).is_err());
    for pos in (0..delta.len()).step_by(delta.len() / 37 + 1) {
        let mut bad = delta.clone();
        bad[pos] ^= 0x40;
        assert!(
            Engine::snapshot_restore_delta(&bad, &base).is_err(),
            "bit flip at {pos} must not restore"
        );
    }

    // The unmodified delta still applies after all that.
    let restored = Engine::snapshot_restore_delta(&delta, &base).expect("delta restore");
    assert_eq!(restored.state_root(), engine.state_root());
}

/// Light-client proofs: a file descriptor verifies offline against the
/// bare `state_root`; every tampering mode is rejected.
#[test]
fn state_proofs_verify_and_reject_tampering() {
    let mut engine = Engine::new(params(4, 1)).expect("params");
    drive(&mut engine, 51, 120);
    let root = engine.state_root();
    let files = engine.file_ids();
    assert!(!files.is_empty(), "workload must leave live files");

    for &f in &files {
        let proof = engine.prove_file(f).expect("prove");
        let desc = proof.verify(root).expect("verify");
        assert_eq!(desc.id, f);
        assert_eq!(Some(desc), engine.file(f), "proven descriptor is live");
    }

    // Absent files are not provable.
    let absent = fi_core::types::FileId(u64::MAX);
    assert!(matches!(
        engine.prove_file(absent),
        Err(Error::Engine(fi_core::EngineError::UnknownFile(_)))
    ));

    let proof = engine.prove_file(files[0]).expect("prove");

    // Wrong trusted root.
    assert!(proof.verify(sha256(b"not the root")).is_err());

    // Header tampering: every scalar is committed.
    let mut bad = proof.clone();
    bad.header.total_supply ^= 1;
    assert!(bad.verify(root).is_err());
    let mut bad = proof.clone();
    bad.header.audit_root = sha256(b"forged audit root");
    assert!(bad.verify(root).is_err());

    // Map-root tampering (swap the files root for the sectors root).
    let mut bad = proof.clone();
    bad.map_roots.swap(0, 3);
    assert!(bad.verify(root).is_err());

    // Claiming a different file id fails even with an honest path.
    let mut bad = proof.clone();
    bad.file = fi_core::types::FileId(files[0].0 + 1_000_000);
    assert!(bad.verify(root).is_err());

    // Path tampering: truncation, padding, bit flips in every node.
    let mut bad = proof.clone();
    bad.path.pop();
    assert!(bad.verify(root).is_err() || bad.path.is_empty());
    let mut bad = proof.clone();
    bad.path.push(vec![0u8; 4]);
    assert!(bad.verify(root).is_err());
    for node in 0..proof.path.len() {
        for pos in (0..proof.path[node].len()).step_by(11) {
            let mut bad = proof.clone();
            bad.path[node][pos] ^= 0x01;
            assert!(
                bad.verify(root).is_err(),
                "flip in path node {node} byte {pos} must not verify"
            );
        }
    }
}
