//! Arweave baseline model.
//!
//! §II-C.3: Arweave's Proof of Access makes miners store as many files as
//! possible — effectively a high, miner-driven replication factor paid by
//! a single upfront fee. We model each file replicated onto
//! `replication_factor` capacity-weighted miners (Proof of Access rewards
//! scale with stored data, so bigger miners hold more). Files are
//! "permanent": no deletion, no refresh, and no compensation if every
//! replica-holding miner disappears.

use fi_crypto::DetRng;

use crate::common::{sample_capacity_weighted, FileSpec, NetworkSpec, Placement};
use crate::{Compensation, DsnModel};

/// Arweave at placement granularity.
#[derive(Debug, Clone)]
pub struct ArweaveModel {
    /// Replicas per file (miner-driven; higher than deal-based systems).
    replication_factor: u32,
}

impl ArweaveModel {
    /// Creates the model with the given replication factor.
    pub fn new(replication_factor: u32) -> Self {
        assert!(replication_factor > 0);
        ArweaveModel { replication_factor }
    }
}

impl DsnModel for ArweaveModel {
    fn name(&self) -> &'static str {
        "Arweave"
    }

    fn place(&self, net: &NetworkSpec, files: &[FileSpec], rng: &mut DetRng) -> Placement {
        let locations = files
            .iter()
            .map(|_| sample_capacity_weighted(net, self.replication_factor as usize, rng))
            .collect();
        Placement {
            locations,
            survivors_needed: vec![1; files.len()],
        }
    }

    fn sybil_vulnerable(&self) -> bool {
        false // Proof of Access ties rewards to actually held data
    }

    fn provable_robustness(&self) -> bool {
        false // no adversary-capacity loss bound is proven
    }

    fn compensation(&self) -> Compensation {
        Compensation::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{corrupt_nodes, evaluate_loss, AdversaryStrategy};

    #[test]
    fn placement_matches_replication_factor() {
        let m = ArweaveModel::new(6);
        let net = NetworkSpec::uniform(30, 64);
        let files = vec![
            FileSpec {
                size: 1,
                value: 1.0
            };
            10
        ];
        let mut rng = DetRng::from_seed_label(95, "ar");
        let p = m.place(&net, &files, &mut rng);
        assert!(p.locations.iter().all(|l| l.len() == 6));
        assert!(p.survivors_needed.iter().all(|&s| s == 1));
    }

    #[test]
    fn loss_possible_without_compensation() {
        let m = ArweaveModel::new(3);
        let net = NetworkSpec::uniform(40, 64);
        let files = vec![
            FileSpec {
                size: 1,
                value: 1.0
            };
            300
        ];
        let mut rng = DetRng::from_seed_label(96, "ar-loss");
        let p = m.place(&net, &files, &mut rng);
        let corrupted = corrupt_nodes(
            &net,
            &p,
            &files,
            0.8,
            AdversaryStrategy::Random,
            false,
            &mut rng,
        );
        let report = evaluate_loss(&net, &p, &files, &corrupted);
        assert!(report.lost_files > 0);
        assert_eq!(m.compensate(report.lost_value, 1e9), 0.0);
    }
}
