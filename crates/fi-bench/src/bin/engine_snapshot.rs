//! Writes a `BENCH_engine.json` op-layer throughput snapshot: `Engine::apply`
//! ops/sec and `advance_to` cost at 1k/10k/100k live files, measured
//! like-for-like under the epoch-bucketed [`fi_chain::tasks::TaskWheel`]
//! and the pre-refactor per-file `BTreeMap` scheduler
//! ([`fi_chain::tasks::PendingList`]).
//!
//! Usage: `cargo run --release -p fi-bench --bin engine_snapshot [out.json]`
//!
//! The workload is the per-file scheduling regime the refactor targets:
//! one file added per tick over a proof cycle of `n` ticks, so every one
//! of the `n` live files carries its own distinct `Auto_CheckProof`
//! timestamp. Two `advance_to` measurements per scale:
//!
//! * **full engine** — one whole `ProofCycle` advance: every file's
//!   `Auto_CheckProof` executes (rent, late checks, reschedule), so the
//!   scheduler's share is diluted by protocol work;
//! * **scheduler churn** — the same task population (`n` tasks, one per
//!   timestamp across the cycle) popped in engine order (`next_time` →
//!   `pop_due`) and rescheduled one cycle out, three cycles long, against
//!   the bare scheduler. This isolates the scheduling cost the full-engine
//!   number dilutes and is what the ≥3x acceptance bar applies to.
//!
//! Both engines must agree on every state root — asserted, which doubles
//! as a wheel-vs-BTreeMap consensus-equivalence test at 100k-file scale.
//!
//! A third section measures the **sharded audit pipeline**: 100k files
//! whose `Auto_CheckProof`s land in one wheel bucket (the batch regime a
//! real chain sees — many ops per block), advanced through a full proof
//! cycle at 1, 4 and 8 shards. The verify phase (modeled Merkle storage
//! proof checks) fans out across the persistent worker pool; the commit
//! phase runs through the batched per-shard write path (planned fast
//! applies plus deferred cntdown flushes) whenever the bucket crosses the
//! threshold. All engines must agree on the state *and audit* roots — the
//! 100k-file instance of the sharding equivalence tests — and on hosts
//! with ≥ 4 cores the 8-shard engine must complete the full-cycle
//! `advance_to` ≥ 4x faster than the 1-shard engine (the CI acceptance
//! bar; on smaller hosts the number is recorded but not gated, since a
//! 1-core box has no parallelism to win).
//!
//! A fourth section measures the **pipelined batch ingest**: 50k
//! `File_Prove` ops (each a modeled WindowPoSt verification) fed through
//! the op-by-op `Engine::apply` loop versus one `Engine::apply_batch`
//! call, at every `(shards, ingest_threads)` configuration in
//! `INGEST_CONFIGS`. State roots and block hashes must agree between both
//! paths and across configurations, and on ≥ 4-core hosts the 8-shard /
//! 4-thread batch path must ingest ≥ 4x faster than the sequential loop
//! (CI-gated; recorded only on smaller hosts).
//!
//! A fifth axis records the **multi-lane SHA-256** work: every sharded
//! advance is the median of three fresh-engine runs, shard counts are
//! asserted noise-neutral (≤ 2x median spread) on 1-core hosts, the
//! 1-shard advance is re-run with the backend forced to the frozen scalar
//! reference (state root asserted bit-identical; ≥ 3x speedup gated when
//! a SIMD backend is detected), and a `hash` section captures raw
//! `digest_many` MB/s plus lockstep Merkle authentication-path
//! verification rates, scalar vs best detected backend.
//!
//! A sixth (`parallel`) section records the end-to-end parallel engine:
//! the same 100k-file one-bucket full-cycle advance at `(1 shard, 1
//! thread)` vs `(8 shards, 4 threads)`, with the per-phase wall-clock
//! breakdown ([`Engine::phase_times`]: stage / commit / verify / fold)
//! and the `audit_commit_batches` strategy counter for each cell. State
//! and audit roots are asserted bit-identical, and on ≥ 4-core hosts the
//! 8x4 cell must clear a ≥ 4x full-cycle speedup over 1x1.
//!
//! A seventh (`store`) section measures the content-addressed state
//! commitment (DESIGN.md §15): a 100k-file fill with the five HAMT state
//! trees on the in-memory versus the append-only disk blockstore, plus
//! both snapshot transports — the full `FISNAPSH` save/restore and the
//! incremental `FIDELTA1` delta cut against a base 1k files back. State
//! roots are asserted bit-identical across backends and after both
//! round-trips, and the delta must be strictly smaller than the full
//! snapshot it replaces.

use std::time::Instant;

use fi_chain::account::{AccountId, TokenAmount};
use fi_chain::tasks::{Scheduler, SchedulerKind};
use fi_core::engine::{Engine, StateView};
use fi_core::ops::Op;
use fi_core::params::ProtocolParams;
use fi_crypto::merkle::{MerklePathBatch, MerkleProof, MerkleTree};
use fi_crypto::sha256::{self, Backend};

const PROVIDER: AccountId = AccountId(42);
const CLIENT: AccountId = AccountId(43);
const SECTORS: u64 = 64;
/// The shard counts every sharded section measures (and asserts consensus
/// equality across) — the single source for both the audit-pipeline and
/// the batch-ingest geometry.
const SHARD_COUNTS: [usize; 3] = [1, 4, 8];
/// Live files in the sharded-audit batch regime.
const SHARD_N: u64 = 100_000;
/// Ops per measured ingest batch.
const INGEST_N: u64 = 50_000;
/// The `(shards, ingest_threads)` ingest configurations, sequential-apply
/// baseline first; the last entry is the CI-gated one.
const INGEST_CONFIGS: [(usize, usize); 3] = [(1, 1), (SHARD_COUNTS[2], 1), (SHARD_COUNTS[2], 4)];

/// One tick per file: `n` files spread over a cycle of `n` ticks gives
/// every file a distinct deadline (at least 1k ticks so the protocol's
/// relative windows stay sane at small scales).
fn proof_cycle_for(n: u64) -> u64 {
    n.max(1_000)
}

fn bench_params(n: u64, kind: SchedulerKind) -> ProtocolParams {
    let cycle = proof_cycle_for(n);
    ProtocolParams {
        // One replica per file: the scheduling layer is what varies with
        // scale here, not replica fan-out.
        k: 1,
        proof_cycle: cycle,
        proof_due: 2 * cycle,
        proof_deadline: 4 * cycle,
        // Refreshes are rare enough to not fire within the measured cycle
        // (identical on both sides either way, but this keeps the numbers
        // about scheduling + proof accounting).
        avg_refresh: 1_000_000.0,
        delay_per_size: 1,
        scheduler: kind,
        // The wheel-vs-btree sections measure scheduling, not sharding:
        // pin one shard regardless of any FI_TEST_SHARDS in the env.
        shards: 1,
        ..ProtocolParams::default()
    }
}

struct EngineRun {
    ops_per_sec: f64,
    /// Seconds for `advance_to(now + ProofCycle)` over `n` live files.
    advance_s: f64,
    state_root: fi_crypto::Hash256,
}

/// Builds an engine with `n` live files, one added (and confirmed) per
/// tick so every `Auto_CheckProof` lands on its own timestamp, then
/// measures a whole-cycle `advance_to`. All actions go through the public
/// wrappers, i.e. through `Engine::apply` — ops/sec is counted off the op
/// log itself.
fn run_engine(n: u64, kind: SchedulerKind) -> EngineRun {
    let params = bench_params(n, kind);
    let cycle = params.proof_cycle;
    let min_value = params.min_value;
    let mut engine = Engine::new(params).expect("valid parameters");
    engine.fund(PROVIDER, TokenAmount(u128::MAX / 4));
    engine.fund(CLIENT, TokenAmount(u128::MAX / 4));
    // Capacity for n size-1 files plus slack, multiple of minCapacity.
    let per_sector = (2 * n / SECTORS).div_ceil(64).max(1) * 64;
    for _ in 0..SECTORS {
        engine
            .sector_register(PROVIDER, per_sector)
            .expect("register sector");
    }

    let ops_before = engine.op_log().len();
    let t_add = Instant::now();
    for i in 0..n {
        let root = fi_crypto::sha256(&i.to_be_bytes());
        let file = engine
            .file_add(CLIENT, 1, min_value, root)
            .expect("file add");
        for (index, sector) in engine.pending_confirms(file) {
            engine
                .file_confirm(PROVIDER, file, index, sector)
                .expect("confirm");
        }
        engine.advance_to(engine.now() + 1);
    }
    // Let the trailing CheckAllocs finalise so every file is live.
    engine.advance_to(engine.now() + 2);
    let applied = (engine.op_log().len() - ops_before) as u64;
    let ops_per_sec = applied as f64 / t_add.elapsed().as_secs_f64();
    assert_eq!(engine.file_ids().len() as u64, n, "all files live");

    // The measured advance: one full proof cycle, n CheckProofs on n
    // distinct timestamps.
    let target = engine.now() + cycle;
    let t_adv = Instant::now();
    engine.advance_to(target);
    let advance_s = t_adv.elapsed().as_secs_f64();
    assert_eq!(engine.file_ids().len() as u64, n, "no file lost mid-bench");

    EngineRun {
        ops_per_sec,
        advance_s,
        state_root: engine.state_root(),
    }
}

/// The scheduler-isolated trace: the same task population the engine run
/// carries — `n` per-file tasks, one per timestamp across a `cycle`-tick
/// proof cycle — popped in engine order (`next_time` → `pop_due`) and
/// rescheduled one cycle out, for `cycles` cycles. Exactly the churn
/// `advance_to` inflicts on the pending list, minus protocol work.
fn run_scheduler_churn(n: u64, kind: SchedulerKind, cycles: u64) -> f64 {
    let spread = proof_cycle_for(n); // one task per timestamp, like the engine
    let mut sched: Scheduler<u64> = Scheduler::new(kind, 10);
    for i in 0..n {
        sched.schedule(i % spread, i);
    }
    let t = Instant::now();
    let mut popped_total = 0u64;
    for c in 1..=cycles {
        let target = c * spread - 1; // covers timestamps [(c-1)·spread, c·spread)
        while let Some(ts) = sched.next_time() {
            if ts > target {
                break;
            }
            for (time, task) in sched.pop_due(ts) {
                sched.schedule(time + spread, task);
                popped_total += 1;
            }
        }
    }
    let elapsed = t.elapsed().as_secs_f64();
    assert_eq!(popped_total, n * cycles, "every task fires every cycle");
    elapsed
}

/// One sharded-audit measurement: a full-cycle `advance_to` over `n`
/// files whose `Auto_CheckProof`s share a single wheel bucket.
struct ShardedRun {
    shards: usize,
    threads: usize,
    /// Seconds for the measured one-bucket proof-cycle advance.
    advance_s: f64,
    state_root: fi_crypto::Hash256,
    audit_root: fi_crypto::Hash256,
    proofs_audited: u64,
    /// Per-phase wall-clock breakdown of the last sampled advance.
    phase: fi_core::engine::PhaseTimes,
    /// Batched-commit buckets during one sampled advance (> 0 exactly
    /// when the engine is sharded — the bucket is far past threshold).
    audit_commit_batches: u64,
}

/// Builds the batch regime: `n` size-1 files all added (and confirmed) at
/// time 0, so every `Auto_CheckProof` lands on the same timestamp — one
/// bucket of `n` audit tasks per proof cycle — and every file can carry a
/// same-bucket `File_Prove`. Shared by the sharded-audit and batch-ingest
/// sections, parameterized on the two performance knobs.
fn batch_engine(n: u64, shards: usize, ingest_threads: usize) -> Engine {
    let cycle = 1_000;
    let params = ProtocolParams {
        k: 1,
        proof_cycle: cycle,
        proof_due: 2 * cycle,
        proof_deadline: 4 * cycle,
        avg_refresh: 1_000_000.0,
        delay_per_size: 1,
        shards,
        ingest_threads,
        // A WindowPoSt-scale verification: 64 path nodes per replica —
        // the read-only work the shards verify (audit) and stage (ingest)
        // concurrently. At this depth the parallel phase dominates the
        // measured time, so by Amdahl the 8-shard runs clear their 2x bars
        // with margin even on a shared 4-vCPU runner
        // (ideal 4-way speedup ≈ 1/(0.05 + 0.95/4) ≈ 3.5x).
        audit_path_len: 64,
        ..ProtocolParams::default()
    };
    let min_value = params.min_value;
    let mut engine = Engine::new(params).expect("valid parameters");
    engine.fund(PROVIDER, TokenAmount(u128::MAX / 4));
    engine.fund(CLIENT, TokenAmount(u128::MAX / 4));
    let per_sector = (2 * n / SECTORS).div_ceil(64).max(1) * 64;
    for _ in 0..SECTORS {
        engine
            .sector_register(PROVIDER, per_sector)
            .expect("register sector");
    }
    for i in 0..n {
        let root = fi_crypto::sha256(&i.to_be_bytes());
        let file = engine
            .file_add(CLIENT, 1, min_value, root)
            .expect("file add");
        for (index, sector) in engine.pending_confirms(file) {
            engine
                .file_confirm(PROVIDER, file, index, sector)
                .expect("confirm");
        }
    }
    // One bucket of n CheckAllocs finalises every placement.
    engine.advance_to(engine.now() + 2);
    assert_eq!(engine.file_ids().len() as u64, n, "all files live");
    engine
}

/// Median of three samples — single measurements on a shared host carry
/// ±20% noise, which is more than the shard-count differences measured
/// below.
fn median3(mut sample: impl FnMut() -> f64) -> f64 {
    let mut xs: Vec<f64> = (0..3).map(|_| sample()).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[1]
}

/// One sharded-audit measurement over a [`batch_engine`]: a full-cycle
/// `advance_to` whose single bucket holds every file's `Auto_CheckProof`.
/// The advance is sampled three times on fresh engines (median reported),
/// and every repetition must land on the same state root.
fn run_sharded_audit(n: u64, shards: usize, threads: usize) -> ShardedRun {
    let cycle = 1_000;
    let mut state_root = None;
    let mut audit_root = None;
    let mut proofs_audited = 0u64;
    let mut phase = fi_core::engine::PhaseTimes::default();
    let mut audit_commit_batches = 0u64;
    let advance_s = median3(|| {
        let mut engine = batch_engine(n, shards, threads);
        // The measured advance: one bucket of n CheckProofs — verify fans
        // out across the pool, commit merges back into canonical order
        // (through the batched per-shard write path when sharded).
        let audited_before = engine.stats().proofs_audited;
        let batches_before = engine.stats().audit_commit_batches;
        engine.reset_phase_times();
        let target = engine.now() + cycle;
        let t_adv = Instant::now();
        engine.advance_to(target);
        let elapsed = t_adv.elapsed().as_secs_f64();
        proofs_audited = engine.stats().proofs_audited - audited_before;
        assert_eq!(proofs_audited, n, "every live replica audited once");
        phase = engine.phase_times();
        audit_commit_batches = engine.stats().audit_commit_batches - batches_before;
        assert_eq!(
            audit_commit_batches > 0,
            shards > 1,
            "the batched commit path engages exactly on sharded engines"
        );
        let root = engine.state_root();
        assert!(
            state_root.is_none() || state_root == Some(root),
            "advance_to must be deterministic across repetitions"
        );
        state_root = Some(root);
        audit_root = Some(engine.audit_root());
        elapsed
    });

    ShardedRun {
        shards,
        threads,
        advance_s,
        state_root: state_root.expect("three repetitions ran"),
        audit_root: audit_root.expect("three repetitions ran"),
        proofs_audited,
        phase,
        audit_commit_batches,
    }
}

/// Multi-lane SHA-256 microbenchmarks: bulk `digest_many` throughput and
/// lockstep Merkle-path verification rate, frozen scalar reference vs the
/// best detected backend. Digests are asserted identical between the two
/// before anything is timed.
struct HashMicro {
    backends: Vec<&'static str>,
    best: &'static str,
    scalar_mb_s: f64,
    best_mb_s: f64,
    scalar_paths_s: f64,
    best_paths_s: f64,
}

fn run_hash_micro() -> HashMicro {
    const LANES: usize = 8_192;
    const MSG_LEN: usize = 1_024;
    const PATHS: usize = 4_096;
    let best = sha256::active_backend();

    let buf: Vec<u8> = (0..LANES * MSG_LEN).map(|i| (i % 251) as u8).collect();
    let msgs: Vec<&[u8]> = buf.chunks(MSG_LEN).collect();
    let mb = buf.len() as f64 / (1024.0 * 1024.0);
    assert_eq!(
        sha256::digest_many_with(Backend::Scalar, &msgs),
        sha256::digest_many_with(best, &msgs),
        "scalar and {} digests diverged",
        best.name()
    );
    let mb_s = |backend: Backend| {
        mb / median3(|| {
            let t = Instant::now();
            std::hint::black_box(sha256::digest_many_with(backend, &msgs));
            t.elapsed().as_secs_f64()
        })
    };

    let payloads: Vec<Vec<u8>> = (0..PATHS)
        .map(|i| (i as u64).to_be_bytes().repeat(8))
        .collect();
    let payload_refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
    let tree = MerkleTree::from_leaves(payloads.iter());
    let root = tree.root();
    let proofs: Vec<MerkleProof> = (0..PATHS)
        .map(|i| tree.prove(i).expect("leaf proven"))
        .collect();
    let paths_s = |backend: Backend| {
        PATHS as f64
            / median3(|| {
                let t = Instant::now();
                let leaves = fi_crypto::merkle::leaf_hash_many_with(backend, &payload_refs);
                let mut batch = MerklePathBatch::new();
                for (proof, leaf) in proofs.iter().zip(leaves) {
                    batch.push(proof, leaf, root);
                }
                let verdicts = batch.verify_with(backend);
                assert!(verdicts.into_iter().all(|ok| ok), "honest proofs verify");
                t.elapsed().as_secs_f64()
            })
    };

    HashMicro {
        backends: sha256::available_backends()
            .iter()
            .map(|b| b.name())
            .collect(),
        best: best.name(),
        scalar_mb_s: mb_s(Backend::Scalar),
        best_mb_s: mb_s(best),
        scalar_paths_s: paths_s(Backend::Scalar),
        best_paths_s: paths_s(best),
    }
}

/// One batch-ingest measurement: the same `File_Prove` batch through the
/// sequential `apply` loop and through the pipelined `apply_batch` path on
/// clones of one [`batch_engine`].
struct IngestRun {
    shards: usize,
    threads: usize,
    /// Seconds for the op-by-op `apply` loop.
    apply_s: f64,
    /// Seconds for the single `apply_batch` call.
    batch_s: f64,
    state_root: fi_crypto::Hash256,
}

/// Builds the batch regime at `(shards, threads)`, constructs one
/// `File_Prove` op per live file (a single ≥-threshold shard-local
/// segment), and measures both ingest paths. Their state roots must agree
/// — the bench doubles as the at-scale instance of the batch-ingest
/// equivalence tests.
fn run_ingest(n: u64, shards: usize, threads: usize) -> IngestRun {
    let engine = batch_engine(n, shards, threads);
    let ops: Vec<Op> = engine
        .file_ids()
        .into_iter()
        .map(|f| {
            let sector = engine
                .alloc_entry(f, 0)
                .and_then(|e| e.prev)
                .expect("live replica has a holder");
            Op::FileProve {
                caller: PROVIDER,
                file: f,
                index: 0,
                sector,
            }
        })
        .collect();

    let mut sequential = engine.clone();
    let seq_ops = ops.clone();
    let t_apply = Instant::now();
    for op in seq_ops {
        sequential.apply(op).expect("prove accepted");
    }
    let apply_s = t_apply.elapsed().as_secs_f64();

    let mut batched = engine;
    let t_batch = Instant::now();
    let results = batched.apply_batch(ops);
    let batch_s = t_batch.elapsed().as_secs_f64();
    assert!(
        results.iter().all(|r| r.is_ok()),
        "every prove in the batch accepted"
    );
    assert_eq!(
        sequential.state_root(),
        batched.state_root(),
        "apply vs apply_batch diverged at {shards} shards / {threads} threads"
    );
    assert_eq!(
        sequential.chain().head_hash(),
        batched.chain().head_hash(),
        "block hashes diverged at {shards} shards / {threads} threads"
    );

    IngestRun {
        shards,
        threads,
        apply_s,
        batch_s,
        state_root: batched.state_root(),
    }
}

/// One blockstore-backend measurement (DESIGN.md §15): fill `STORE_N`
/// files with the state commitment on the given backend, then measure the
/// snapshot transports — the full `FISNAPSH` save/restore and the
/// `FIDELTA1` delta against a base `STORE_DELTA_GAP` files back.
struct StoreRun {
    backend: &'static str,
    fill_s: f64,
    commit_s: f64,
    full_bytes: usize,
    full_save_s: f64,
    full_restore_s: f64,
    delta_bytes: usize,
    delta_save_s: f64,
    delta_restore_s: f64,
    state_root: fi_crypto::Hash256,
}

/// Live files in the blockstore fill (the delta base).
const STORE_N: u64 = 100_000;
/// Files added on top of the base before the delta is cut.
const STORE_DELTA_GAP: u64 = 1_000;

fn run_store(disk: bool) -> StoreRun {
    use fi_store::{Blockstore, DiskBlockstore, MemoryBlockstore};

    let scratch = std::env::temp_dir().join(format!(
        "fi-bench-store-{}-{}.log",
        std::process::id(),
        if disk { "disk" } else { "memory" }
    ));
    let (backend, store): (&'static str, std::sync::Arc<dyn Blockstore>) = if disk {
        let _ = std::fs::remove_file(&scratch);
        (
            "disk",
            std::sync::Arc::new(DiskBlockstore::open(&scratch).expect("open disk store")),
        )
    } else {
        ("memory", std::sync::Arc::new(MemoryBlockstore::new()))
    };

    let cycle = 1_000;
    let params = ProtocolParams {
        k: 1,
        proof_cycle: cycle,
        proof_due: 2 * cycle,
        proof_deadline: 4 * cycle,
        avg_refresh: 1_000_000.0,
        delay_per_size: 1,
        ..ProtocolParams::default()
    };
    let min_value = params.min_value;
    let mut engine = Engine::new_with_store(params, store).expect("valid parameters");
    engine.fund(PROVIDER, TokenAmount(u128::MAX / 4));
    engine.fund(CLIENT, TokenAmount(u128::MAX / 4));
    let total = STORE_N + STORE_DELTA_GAP;
    let per_sector = (2 * total / SECTORS).div_ceil(64).max(1) * 64;
    for _ in 0..SECTORS {
        engine
            .sector_register(PROVIDER, per_sector)
            .expect("register sector");
    }
    let fill = |engine: &mut Engine, ids: std::ops::Range<u64>| {
        for i in ids {
            let root = fi_crypto::sha256(&i.to_be_bytes());
            let file = engine
                .file_add(CLIENT, 1, min_value, root)
                .expect("file add");
            for (index, sector) in engine.pending_confirms(file) {
                engine
                    .file_confirm(PROVIDER, file, index, sector)
                    .expect("confirm");
            }
        }
    };
    let t_fill = Instant::now();
    fill(&mut engine, 0..STORE_N);
    engine.advance_to(engine.now() + 2);
    let fill_s = t_fill.elapsed().as_secs_f64();

    // The commitment flush: drain every dirty key into the five HAMTs and
    // fold the root (this is where the backend's write path is paid).
    let t_commit = Instant::now();
    let base_roots = engine.state_roots();
    let commit_s = t_commit.elapsed().as_secs_f64();
    let full_base = engine.snapshot_save();

    // A small change on top of the base, then both transports. (No
    // proof-cycle advance: that touches every cntdown and would dirty the
    // whole files tree — deltas measure the incremental regime.)
    fill(&mut engine, STORE_N..total);
    engine.advance_to(engine.now() + 2);

    let t_delta = Instant::now();
    let delta = engine.snapshot_delta(&base_roots).expect("delta save");
    let delta_save_s = t_delta.elapsed().as_secs_f64();

    let t_full = Instant::now();
    let full = engine.snapshot_save();
    let full_save_s = t_full.elapsed().as_secs_f64();

    let t_restore = Instant::now();
    let via_full = Engine::snapshot_restore(&full).expect("full restore");
    let full_restore_s = t_restore.elapsed().as_secs_f64();

    let base = Engine::snapshot_restore(&full_base).expect("base restore");
    let t_delta_restore = Instant::now();
    let via_delta = Engine::snapshot_restore_delta(&delta, &base).expect("delta restore");
    let delta_restore_s = t_delta_restore.elapsed().as_secs_f64();

    let state_root = engine.state_root();
    assert_eq!(via_full.state_root(), state_root, "full round-trip root");
    assert_eq!(via_delta.state_root(), state_root, "delta round-trip root");
    assert!(
        delta.len() < full.len(),
        "{backend}: delta ({}) must undercut the full snapshot ({})",
        delta.len(),
        full.len()
    );
    if disk {
        let _ = std::fs::remove_file(&scratch);
    }

    StoreRun {
        backend,
        fill_s,
        commit_s,
        full_bytes: full.len(),
        full_save_s,
        full_restore_s,
        delta_bytes: delta.len(),
        delta_save_s,
        delta_restore_s,
        state_root,
    }
}

struct ScaleResult {
    n: u64,
    wheel: EngineRun,
    btree: EngineRun,
    churn_wheel_s: f64,
    churn_btree_s: f64,
}

impl ScaleResult {
    fn advance_speedup(&self) -> f64 {
        self.btree.advance_s / self.wheel.advance_s
    }

    fn churn_speedup(&self) -> f64 {
        self.churn_btree_s / self.churn_wheel_s
    }

    fn json(&self) -> String {
        format!(
            "    {{\"live_files\": {}, \"apply_ops_per_sec_wheel\": {:.0}, \"apply_ops_per_sec_btree\": {:.0}, \
             \"advance_full_cycle_ms_wheel\": {:.3}, \"advance_full_cycle_ms_btree\": {:.3}, \"advance_full_cycle_speedup\": {:.2}, \
             \"scheduler_churn_ms_wheel\": {:.3}, \"scheduler_churn_ms_btree\": {:.3}, \"scheduler_churn_speedup\": {:.2}}}",
            self.n,
            self.wheel.ops_per_sec,
            self.btree.ops_per_sec,
            self.wheel.advance_s * 1e3,
            self.btree.advance_s * 1e3,
            self.advance_speedup(),
            self.churn_wheel_s * 1e3,
            self.churn_btree_s * 1e3,
            self.churn_speedup(),
        )
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".into());

    let mut results = Vec::new();
    for n in [1_000u64, 10_000, 100_000] {
        let wheel = run_engine(n, SchedulerKind::Wheel);
        let btree = run_engine(n, SchedulerKind::BTree);
        assert_eq!(
            wheel.state_root, btree.state_root,
            "wheel and BTreeMap schedulers must drive identical consensus at n={n}"
        );
        // Median of three for the bare-scheduler churn (it's fast).
        let med = |kind: SchedulerKind| -> f64 {
            let mut xs: Vec<f64> = (0..3).map(|_| run_scheduler_churn(n, kind, 3)).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            xs[1]
        };
        let churn_wheel_s = med(SchedulerKind::Wheel);
        let churn_btree_s = med(SchedulerKind::BTree);
        let r = ScaleResult {
            n,
            wheel,
            btree,
            churn_wheel_s,
            churn_btree_s,
        };
        println!(
            "n={n}: apply {:.0} ops/s, advance_to full-cycle {:.1} ms (wheel) vs {:.1} ms (btree) = {:.2}x, scheduler churn {:.2}x",
            r.wheel.ops_per_sec,
            r.wheel.advance_s * 1e3,
            r.btree.advance_s * 1e3,
            r.advance_speedup(),
            r.churn_speedup()
        );
        results.push(r);
    }

    // ------------------------------------------------------------------
    // Sharded audit pipeline: SHARD_N files, one CheckProof bucket, every
    // shard count in SHARD_COUNTS. State roots must be identical — the
    // 100k-file instance of the sharding equivalence tests.
    // ------------------------------------------------------------------
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let sharded: Vec<ShardedRun> = SHARD_COUNTS
        .iter()
        .map(|&s| run_sharded_audit(SHARD_N, s, 1))
        .collect();
    for run in &sharded[1..] {
        assert_eq!(
            run.state_root, sharded[0].state_root,
            "{}-shard engine diverged from the 1-shard engine at n={SHARD_N}",
            run.shards
        );
        assert_eq!(
            run.audit_root, sharded[0].audit_root,
            "{}-shard audit root diverged from the 1-shard engine at n={SHARD_N}",
            run.shards
        );
    }
    let sharded_speedup = sharded[0].advance_s / sharded.last().expect("runs").advance_s;
    for run in &sharded {
        println!(
            "sharded audit n={SHARD_N}: shards={} advance_to full-cycle {:.1} ms ({} proofs audited)",
            run.shards,
            run.advance_s * 1e3,
            run.proofs_audited
        );
    }
    println!(
        "sharded audit speedup 8v1: {sharded_speedup:.2}x (available parallelism: {parallelism})"
    );

    // Shard-count neutrality on serial hosts: with the batched multi-lane
    // verify, per-bucket overhead (slice scans, lane collection, the
    // one-worker scope) must not make shard count matter on 1 core —
    // medians across shard counts have to stay within 2x of each other.
    let shard_spread = {
        let max = sharded.iter().map(|r| r.advance_s).fold(f64::MIN, f64::max);
        let min = sharded.iter().map(|r| r.advance_s).fold(f64::MAX, f64::min);
        max / min
    };
    println!("sharded audit shard-count spread (max/min median advance): {shard_spread:.2}x");
    if parallelism == 1 {
        assert!(
            shard_spread <= 2.0,
            "shard count must be noise-neutral on a 1-core host (<= 2x spread); got {shard_spread:.2}x"
        );
    }

    // Scalar-vs-SIMD: the same 1-shard full-cycle advance with SHA-256
    // forced onto the frozen scalar reference. The state root must be
    // bit-identical, and on hosts with a SIMD backend the batched verify
    // pipeline must win >= 3x.
    let best_backend = sha256::active_backend();
    sha256::force_backend(Some(Backend::Scalar));
    let scalar_run = run_sharded_audit(SHARD_N, 1, 1);
    sha256::force_backend(None);
    assert_eq!(
        scalar_run.state_root,
        sharded[0].state_root,
        "scalar SHA-256 backend diverged from {} at n={SHARD_N}",
        best_backend.name()
    );
    let simd_speedup = scalar_run.advance_s / sharded[0].advance_s;
    println!(
        "sharded audit scalar-SHA advance {:.1} ms vs {} {:.1} ms = {simd_speedup:.2}x",
        scalar_run.advance_s * 1e3,
        best_backend.name(),
        sharded[0].advance_s * 1e3,
    );
    if best_backend != Backend::Scalar {
        assert!(
            simd_speedup >= 3.0,
            "batched {} audit pipeline speedup {simd_speedup:.2}x over scalar fell below the 3x acceptance bar",
            best_backend.name()
        );
    }

    // ------------------------------------------------------------------
    // End-to-end parallel engine: the full-cycle advance at the widest
    // configuration (8 shards, 4 ingest threads — verify fan-out, batched
    // audit commit, per-shard write flushes all engaged) against the
    // sequential 1x1 cell, with the per-phase breakdown for both.
    // ------------------------------------------------------------------
    let parallel_run = run_sharded_audit(SHARD_N, SHARD_COUNTS[2], 4);
    assert_eq!(
        parallel_run.state_root, sharded[0].state_root,
        "8-shard/4-thread engine diverged from the 1x1 engine at n={SHARD_N}"
    );
    assert_eq!(
        parallel_run.audit_root, sharded[0].audit_root,
        "8-shard/4-thread audit root diverged from the 1x1 engine at n={SHARD_N}"
    );
    let parallel_speedup = sharded[0].advance_s / parallel_run.advance_s;
    let parallel_cells = [&sharded[0], &parallel_run];
    for run in parallel_cells {
        println!(
            "parallel n={SHARD_N}: shards={} threads={} advance {:.1} ms \
             (verify {:.1} ms, fold {:.1} ms, {} commit batches)",
            run.shards,
            run.threads,
            run.advance_s * 1e3,
            run.phase.verify_s * 1e3,
            run.phase.fold_s * 1e3,
            run.audit_commit_batches,
        );
    }
    println!(
        "parallel full-cycle speedup 8x4 vs 1x1: {parallel_speedup:.2}x (available parallelism: {parallelism})"
    );

    // ------------------------------------------------------------------
    // Multi-lane SHA-256 microbenchmarks: raw digest_many throughput and
    // lockstep Merkle-path verification, scalar vs best detected backend.
    // ------------------------------------------------------------------
    let hash = run_hash_micro();
    println!(
        "hash micro: digest_many {:.0} MB/s (scalar) vs {:.0} MB/s ({}) = {:.2}x; \
         merkle paths {:.0}/s (scalar) vs {:.0}/s ({}) = {:.2}x [backends: {}]",
        hash.scalar_mb_s,
        hash.best_mb_s,
        hash.best,
        hash.best_mb_s / hash.scalar_mb_s,
        hash.scalar_paths_s,
        hash.best_paths_s,
        hash.best,
        hash.best_paths_s / hash.scalar_paths_s,
        hash.backends.join(", "),
    );

    // ------------------------------------------------------------------
    // Blockstore backends: the 100k-file fill and both snapshot
    // transports on the in-memory and append-only disk stores
    // (DESIGN.md §15). Roots must be backend-identical — the blockstore
    // is deployment configuration, not consensus input.
    // ------------------------------------------------------------------
    let store_runs = [run_store(false), run_store(true)];
    assert_eq!(
        store_runs[0].state_root, store_runs[1].state_root,
        "state root must not depend on the blockstore backend"
    );
    for r in &store_runs {
        println!(
            "store {}: fill {:.0} ms, commit {:.0} ms, full {:.1} KiB (save {:.1} ms, restore {:.1} ms), \
             delta {:.1} KiB (save {:.1} ms, restore {:.1} ms)",
            r.backend,
            r.fill_s * 1e3,
            r.commit_s * 1e3,
            r.full_bytes as f64 / 1024.0,
            r.full_save_s * 1e3,
            r.full_restore_s * 1e3,
            r.delta_bytes as f64 / 1024.0,
            r.delta_save_s * 1e3,
            r.delta_restore_s * 1e3,
        );
    }

    let store_rows: Vec<String> = store_runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"backend\": \"{}\", \"live_files\": {STORE_N}, \"delta_gap_files\": {STORE_DELTA_GAP}, \
                 \"fill_ms\": {:.3}, \"commit_ms\": {:.3}, \"full_snapshot_bytes\": {}, \"full_save_ms\": {:.3}, \
                 \"full_restore_ms\": {:.3}, \"delta_bytes\": {}, \"delta_save_ms\": {:.3}, \
                 \"delta_restore_ms\": {:.3}, \"delta_over_full_bytes\": {:.4}}}",
                r.backend,
                r.fill_s * 1e3,
                r.commit_s * 1e3,
                r.full_bytes,
                r.full_save_s * 1e3,
                r.full_restore_s * 1e3,
                r.delta_bytes,
                r.delta_save_s * 1e3,
                r.delta_restore_s * 1e3,
                r.delta_bytes as f64 / r.full_bytes as f64,
            )
        })
        .collect();

    let sharded_rows: Vec<String> = sharded
        .iter()
        .map(|r| {
            format!(
                "    {{\"shards\": {}, \"advance_full_cycle_ms\": {:.3}, \"proofs_audited\": {}, \"speedup_vs_1_shard\": {:.2}}}",
                r.shards,
                r.advance_s * 1e3,
                r.proofs_audited,
                sharded[0].advance_s / r.advance_s
            )
        })
        .collect();

    let parallel_rows: Vec<String> = parallel_cells
        .iter()
        .map(|r| {
            format!(
                "    {{\"shards\": {}, \"ingest_threads\": {}, \"advance_full_cycle_ms\": {:.3}, \
                 \"phase_verify_ms\": {:.3}, \"phase_fold_ms\": {:.3}, \"audit_commit_batches\": {}}}",
                r.shards,
                r.threads,
                r.advance_s * 1e3,
                r.phase.verify_s * 1e3,
                r.phase.fold_s * 1e3,
                r.audit_commit_batches,
            )
        })
        .collect();

    // ------------------------------------------------------------------
    // Batch ingest: INGEST_N File_Prove ops (each a modeled WindowPoSt
    // verification) through `apply` vs `apply_batch` at every
    // INGEST_CONFIGS combination. All roots must agree — sequential vs
    // pipelined at each config, and across shard/thread counts.
    // ------------------------------------------------------------------
    let ingest: Vec<IngestRun> = INGEST_CONFIGS
        .iter()
        .map(|&(shards, threads)| run_ingest(INGEST_N, shards, threads))
        .collect();
    for run in &ingest[1..] {
        assert_eq!(
            run.state_root, ingest[0].state_root,
            "({} shards, {} threads) ingest diverged from the baseline",
            run.shards, run.threads
        );
    }
    let gated = ingest.last().expect("configs measured");
    let ingest_speedup = gated.apply_s / gated.batch_s;
    for run in &ingest {
        println!(
            "ingest n={INGEST_N}: shards={} threads={} apply {:.1} ms vs apply_batch {:.1} ms = {:.2}x ({:.0} ops/s batched)",
            run.shards,
            run.threads,
            run.apply_s * 1e3,
            run.batch_s * 1e3,
            run.apply_s / run.batch_s,
            INGEST_N as f64 / run.batch_s,
        );
    }
    println!(
        "batch ingest speedup at {} shards/{} threads: {ingest_speedup:.2}x (available parallelism: {parallelism})",
        gated.shards, gated.threads
    );

    let ingest_rows: Vec<String> = ingest
        .iter()
        .map(|r| {
            format!(
                "    {{\"shards\": {}, \"ingest_threads\": {}, \"ops\": {}, \"apply_ms\": {:.3}, \"apply_batch_ms\": {:.3}, \"batch_ops_per_sec\": {:.0}, \"speedup\": {:.2}}}",
                r.shards,
                r.threads,
                INGEST_N,
                r.apply_s * 1e3,
                r.batch_s * 1e3,
                INGEST_N as f64 / r.batch_s,
                r.apply_s / r.batch_s,
            )
        })
        .collect();

    let rows: Vec<String> = results.iter().map(ScaleResult::json).collect();
    let backend_list = hash
        .backends
        .iter()
        .map(|b| format!("\"{b}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"suite\": \"fi-core op-layer throughput: Engine::apply + advance_to, epoch wheel vs BTreeMap pending list, sharded audit pipeline, pipelined batch ingest, multi-lane SHA-256\",\n  \
           \"unit_note\": \"per-file regime: n live files, one Auto_CheckProof per timestamp across an n-tick proof cycle; advance_full_cycle = one ProofCycle advance executing every file's Auto_CheckProof (protocol work included); scheduler_churn = same task population against the bare scheduler (3 cycles, median of 3 runs) — the isolated like-for-like scheduling cost\",\n  \
           \"available_parallelism\": {parallelism},\n  \
           \"results\": [\n{}\n  ],\n  \
           \"sharded_audit\": {{\n    \"note\": \"batch regime: 100k size-1 files, every Auto_CheckProof in one wheel bucket; advance = one full proof cycle (batched multi-lane Merkle verify at audit_path_len 64 + batched per-shard audit commit when sharded), median of 3 fresh-engine runs per shard count; state and audit roots asserted identical across shard counts and vs the forced-scalar run; shard count is asserted noise-neutral (<= 2x median spread) on 1-core hosts, the >=4x 8v1 bar is gated when >=4 cores are available, and the >=3x scalar-vs-SIMD bar is gated when a SIMD backend is detected\",\n    \"available_parallelism\": {parallelism},\n    \"sha_backend\": \"{}\",\n    \"shard_spread_max_over_min\": {:.2},\n    \"scalar_sha_advance_full_cycle_ms\": {:.3},\n    \"simd_speedup_vs_scalar\": {:.2},\n    \"runs\": [\n{}\n    ]\n  }},\n  \
           \"hash\": {{\n    \"note\": \"multi-lane SHA-256 micro: digest_many over 8192 x 1KiB messages (MB/s) and lockstep Merkle authentication-path verification over 4096 proofs against a 4096-leaf tree (paths/s), frozen scalar reference vs best detected backend, median of 3; digests asserted identical before timing\",\n    \"backends_available\": [{backend_list}],\n    \"best_backend\": \"{}\",\n    \"digest_many_scalar_mb_s\": {:.1},\n    \"digest_many_best_mb_s\": {:.1},\n    \"digest_many_speedup\": {:.2},\n    \"merkle_paths_scalar_per_sec\": {:.0},\n    \"merkle_paths_best_per_sec\": {:.0},\n    \"merkle_paths_speedup\": {:.2}\n  }},\n  \
           \"ingest\": {{\n    \"note\": \"batch ingest: 50k File_Prove ops (modeled WindowPoSt verification, audit_path_len 64) as one shard-local segment; apply = op-by-op sequential loop, apply_batch = parallel staging + sequential in-order commit; state roots and block hashes asserted identical between both paths and across all configs; the >=4x bar on the last (8-shard/4-thread) row is gated when >=4 cores are available\",\n    \"available_parallelism\": {parallelism},\n    \"runs\": [\n{}\n    ]\n  }},\n  \
           \"parallel\": {{\n    \"note\": \"end-to-end parallel engine: the 100k-file one-bucket full-cycle advance at (1 shard, 1 ingest thread) vs (8 shards, 4 ingest threads) on the persistent worker pool — verify fan-out plus batched per-shard audit commit; phase_* are Engine::phase_times wall-clock ms for one sampled advance; state and audit roots asserted bit-identical between the cells; the >=4x speedup bar is gated when >=4 cores are available\",\n    \"available_parallelism\": {parallelism},\n    \"speedup_8x4_vs_1x1\": {parallel_speedup:.2},\n    \"runs\": [\n{}\n    ]\n  }},\n  \
           \"store\": {{\n    \"note\": \"content-addressed state commitment (DESIGN.md \\u00a715): 100k size-1 files filled with the five HAMT state trees on each blockstore backend; commit = the state_roots() flush that drains every dirty key and folds the root; full = FISNAPSH save/restore, delta = FIDELTA1 against a base 1k files back (only the trie nodes on changed paths ship); state roots asserted bit-identical across backends and after both round-trips, and the delta asserted strictly smaller than the full snapshot\",\n    \"roots_identical\": true,\n    \"runs\": [\n{}\n    ]\n  }}\n}}\n",
        rows.join(",\n"),
        best_backend.name(),
        shard_spread,
        scalar_run.advance_s * 1e3,
        simd_speedup,
        sharded_rows.join(",\n"),
        hash.best,
        hash.scalar_mb_s,
        hash.best_mb_s,
        hash.best_mb_s / hash.scalar_mb_s,
        hash.scalar_paths_s,
        hash.best_paths_s,
        hash.best_paths_s / hash.scalar_paths_s,
        ingest_rows.join(",\n"),
        parallel_rows.join(",\n"),
        store_rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("wrote {out_path}");

    // Acceptance bar: at 100k live files the epoch wheel must beat the
    // pre-refactor per-file BTreeMap scheduler by >= 3x like-for-like.
    let top = results.last().expect("scales measured");
    let churn = top.churn_speedup();
    assert!(
        churn >= 3.0,
        "scheduler churn speedup {churn:.2}x at {}k files fell below the 3x acceptance bar",
        top.n / 1_000
    );

    // Acceptance bar: the 8-shard engine must finish the full-cycle
    // advance >= 4x faster than the 1-shard engine at 100k files (the bar
    // tightened from 2x once the audit commit fold joined the verify
    // fan-out on the worker pool). Parallelism needs real cores to win,
    // so the bar applies where CI runs (>= 4 cores); elsewhere the
    // measurement is recorded above.
    if parallelism >= 4 {
        assert!(
            sharded_speedup >= 4.0,
            "sharded audit speedup {sharded_speedup:.2}x at 8 shards fell below the 4x acceptance bar"
        );
    } else {
        println!(
            "note: {parallelism} core(s) available — the >=4x sharded-audit bar is gated on >=4-core hosts (CI)"
        );
    }

    // Acceptance bar: pipelined batch ingest at 8 shards / 4 ingest
    // threads must beat the op-by-op apply loop >= 4x on the same batch
    // (tightened from 2x with the persistent pool replacing per-segment
    // thread spawns). Like the audit bar, it needs real cores; elsewhere
    // the measurement is recorded above (available_parallelism makes
    // 1-core runs self-explanatory).
    if parallelism >= 4 {
        assert!(
            ingest_speedup >= 4.0,
            "batch ingest speedup {ingest_speedup:.2}x at {} shards/{} threads fell below the 4x acceptance bar",
            gated.shards,
            gated.threads
        );
    } else {
        println!(
            "note: {parallelism} core(s) available — the >=4x batch-ingest bar is gated on >=4-core hosts (CI)"
        );
    }

    // Acceptance bar: the fully parallel cell (8 shards, 4 ingest
    // threads, verify fan-out + batched audit commit) must complete the
    // full-cycle advance >= 4x faster than the sequential 1x1 cell on
    // >= 4-core hosts; on smaller hosts the cells are still asserted
    // bit-identical above and the numbers recorded.
    if parallelism >= 4 {
        assert!(
            parallel_speedup >= 4.0,
            "parallel full-cycle speedup {parallel_speedup:.2}x at 8 shards/4 threads fell below the 4x acceptance bar"
        );
    } else {
        println!(
            "note: {parallelism} core(s) available — the >=4x parallel full-cycle bar is gated on >=4-core hosts (CI)"
        );
    }
}
