//! Benchmark and experiment-binary crate.
//!
//! * `src/bin/` — one binary per paper table/figure; each prints the
//!   regenerated rows next to the paper's claims:
//!   * `table3` — Table III (max sector capacity usage; `--full` = paper
//!     scale),
//!   * `table4` — Table IV (protocol comparison, measured),
//!   * `thm1_scalability` — Theorem 1 capacity formula vs fill simulation,
//!   * `thm2_collision` — Theorem 2 collision probabilities,
//!   * `thm3_robustness` — Theorem 3 γ_lost sweep (the §V-B.3 headline),
//!   * `thm4_deposit` — Theorem 4 deposit-ratio sufficiency.
//! * `benches/` — criterion micro-benchmarks for the hot paths: weighted
//!   sampling (with a Fenwick vs linear vs alias ablation), engine
//!   allocation/refresh throughput, SHA-256/Merkle, Reed–Solomon, PoRep
//!   seal/prove/verify, chain block production, and DHT lookups.

pub mod erasure_cases;

/// Shared banner printed by the experiment binaries.
pub fn banner(title: &str, paper_ref: &str) -> String {
    format!(
        "== {title} ==\nreproduces: {paper_ref}\n(seeded, deterministic; pass --full for paper-scale grids)\n"
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_contains_title() {
        let b = super::banner("Table III", "FileInsurer Table III");
        assert!(b.contains("Table III"));
        assert!(b.contains("--full"));
    }
}
