//! Cross-crate property-based tests (proptest): the invariants the system
//! rests on, under arbitrary inputs.

use fi_chain::account::{AccountId, Ledger, TokenAmount};
use fi_core::sampler::WeightedSampler;
use fi_core::segment::{reassemble_file, segment_file};
use fi_core::params::ProtocolParams;
use fi_crypto::merkle::MerkleTree;
use fi_crypto::DetRng;
use fi_erasure::ReedSolomon;
use fi_ipfs::dag::{export_bytes, import_bytes};
use fi_ipfs::store::BlockStore;
use fi_porep::seal::{ReplicaId, SealedReplica};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merkle proofs verify exactly for their own (index, payload) pair.
    #[test]
    fn merkle_proofs_sound_and_complete(
        leaves in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..40),
        probe in any::<usize>(),
    ) {
        let tree = MerkleTree::from_leaves(leaves.iter());
        let idx = probe % leaves.len();
        let proof = tree.prove(idx).unwrap();
        prop_assert!(proof.verify(&tree.root(), &leaves[idx]));
        // Tampered payload fails (unless an identical leaf exists at a
        // position with the same path, which can't happen for a different
        // byte string at the same index).
        let mut tampered = leaves[idx].clone();
        tampered.push(0xFF);
        prop_assert!(!proof.verify(&tree.root(), &tampered));
    }

    /// Reed–Solomon: decode ∘ encode = identity for every erasure pattern
    /// within the parity budget.
    #[test]
    fn reed_solomon_round_trip(
        payload in prop::collection::vec(any::<u8>(), 0..300),
        data in 1usize..8,
        parity in 1usize..8,
        pattern in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(data, parity).unwrap();
        let shards = rs.encode_bytes(&payload);
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        // Drop up to `parity` shards selected by the pattern bits.
        let mut dropped = 0;
        for i in 0..received.len() {
            if dropped < parity && (pattern >> i) & 1 == 1 {
                received[i] = None;
                dropped += 1;
            }
        }
        let recovered = rs.decode_bytes(&received, payload.len()).unwrap();
        prop_assert_eq!(recovered, payload);
    }

    /// Sealing is a bijection: unseal(seal(x)) = x; distinct replica ids
    /// give distinct sealings.
    #[test]
    fn seal_unseal_bijection(
        payload in prop::collection::vec(any::<u8>(), 0..500),
        salt_a in any::<u32>(),
        salt_b in any::<u32>(),
    ) {
        let comm = fi_crypto::sha256(&payload);
        let tag = fi_crypto::sha256(b"prop-sector");
        let rid_a = ReplicaId::derive(&comm, &tag, salt_a);
        let rep_a = SealedReplica::seal(&payload, rid_a);
        prop_assert_eq!(rep_a.unseal(), payload.clone());
        if salt_a != salt_b && !payload.is_empty() {
            let rid_b = ReplicaId::derive(&comm, &tag, salt_b);
            let rep_b = SealedReplica::seal(&payload, rid_b);
            prop_assert_ne!(rep_a.comm_r(), rep_b.comm_r());
        }
    }

    /// The ledger conserves tokens under arbitrary operation sequences.
    #[test]
    fn ledger_conservation(ops in prop::collection::vec((0u8..4, 0u64..8, 0u64..8, 0u128..1000), 0..100)) {
        let mut ledger = Ledger::new();
        let mut minted: u128 = 0;
        let mut burned: u128 = 0;
        for (op, from, to, amount) in ops {
            let from = AccountId(from);
            let to = AccountId(to);
            let amount = TokenAmount(amount);
            match op {
                0 => { ledger.mint(from, amount); minted += amount.0; }
                1 => { if ledger.burn(from, amount).is_ok() { burned += amount.0; } }
                2 => { let _ = ledger.transfer(from, to, amount); }
                _ => { let moved = ledger.transfer_up_to(from, to, amount); prop_assert!(moved <= amount); }
            }
            prop_assert!(ledger.audit());
        }
        prop_assert_eq!(ledger.total_supply().0, minted - burned);
        prop_assert_eq!(ledger.total_burned().0, burned);
    }

    /// The weighted sampler returns only live keys and empirically matches
    /// the weight ratio of a two-key distribution.
    #[test]
    fn sampler_respects_membership(
        inserts in prop::collection::vec((0u32..50, 1u64..100), 1..60),
        removals in prop::collection::vec(0u32..50, 0..30),
        seed in any::<u64>(),
    ) {
        let mut sampler = WeightedSampler::new();
        let mut live = std::collections::HashMap::new();
        for (key, weight) in inserts {
            sampler.insert(key, weight);
            live.insert(key, weight);
        }
        for key in removals {
            sampler.remove(&key);
            live.remove(&key);
        }
        prop_assert_eq!(sampler.len(), live.len());
        let expect_total: u64 = live.values().sum();
        prop_assert_eq!(sampler.total_weight(), expect_total);
        let mut rng = DetRng::from_seed_label(seed, "prop-sampler");
        for _ in 0..50 {
            match sampler.sample(&mut rng) {
                Some(k) => prop_assert!(live.contains_key(k)),
                None => prop_assert!(live.is_empty()),
            }
        }
    }

    /// DAG import/export round-trips for arbitrary payloads and chunk
    /// sizes.
    #[test]
    fn dag_round_trip(
        payload in prop::collection::vec(any::<u8>(), 0..5000),
        chunk in 1usize..600,
    ) {
        let mut store = BlockStore::new();
        let root = import_bytes(&mut store, &payload, chunk);
        prop_assert_eq!(export_bytes(&store, root).unwrap(), payload);
        prop_assert!(store.verify_integrity());
    }

    /// §VI-C segmentation: the insured payout of any lost half covers the
    /// declared value, and reassembly works from any surviving half.
    #[test]
    fn segmentation_insurance_invariant(
        payload_len in 33usize..400,
        value_units in 1u128..20,
        pattern in any::<u64>(),
    ) {
        let params = ProtocolParams { size_limit: 32, ..ProtocolParams::default() };
        let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        let value = TokenAmount(params.min_value.0 * value_units);
        let seg = segment_file(&payload, value, &params).unwrap();
        let n = seg.segments.len();
        let half = n / 2;
        // Payout when lost (≥ half the segments gone) covers the value.
        prop_assert!(half as u128 * seg.segment_value.0 >= value.0);
        // Drop exactly `half` segments chosen by pattern bits (cycled).
        let mut received: Vec<Option<Vec<u8>>> =
            seg.segments.iter().cloned().map(Some).collect();
        let mut dropped = 0;
        let mut i = 0;
        while dropped < half {
            let idx = ((pattern >> (i % 64)) as usize + i) % n;
            if received[idx].is_some() {
                received[idx] = None;
                dropped += 1;
            }
            i += 1;
        }
        let recovered = reassemble_file(&seg, &received).unwrap();
        prop_assert_eq!(recovered, payload);
    }
}

/// Engine-level property: random request interleavings never break space
/// accounting, money conservation, or compensation completeness.
#[test]
fn engine_random_interleavings_hold_invariants() {
    use fi_core::engine::Engine;

    for seed in 0..8u64 {
        let params = ProtocolParams {
            k: 2,
            delay_per_size: 4,
            avg_refresh: 3.0,
            seed,
            ..ProtocolParams::default()
        };
        let mut engine = Engine::new(params).unwrap();
        let client = AccountId(900);
        engine.fund(client, TokenAmount(1_000_000_000));
        let mut rng = DetRng::from_seed_label(seed, "interleave");
        let mut sectors = Vec::new();
        let mut files: Vec<fi_core::FileId> = Vec::new();
        for step in 0..120 {
            match rng.below(10) {
                0 | 1 => {
                    let provider = AccountId(100 + rng.below(5));
                    engine.fund(provider, TokenAmount(10_000_000));
                    if let Ok(s) = engine.sector_register(provider, 640) {
                        sectors.push(s);
                    }
                }
                2 | 3 | 4 => {
                    let root = fi_crypto::sha256(&(step as u64).to_le_bytes());
                    if let Ok(f) =
                        engine.file_add(client, 1 + rng.below(16), TokenAmount(1_000), root)
                    {
                        files.push(f);
                    }
                }
                5 => {
                    if !files.is_empty() {
                        let f = files[rng.index(files.len())];
                        let _ = engine.file_discard(client, f);
                    }
                }
                6 => {
                    if !sectors.is_empty() {
                        let s = sectors[rng.index(sectors.len())];
                        if let Some(sector) = engine.sector(s) {
                            let owner = sector.owner;
                            let _ = engine.sector_disable(owner, s);
                        }
                    }
                }
                7 => {
                    if !sectors.is_empty() && rng.bernoulli(0.3) {
                        let s = sectors[rng.index(sectors.len())];
                        if engine.sector(s).is_some() {
                            engine.corrupt_sector_now(s);
                        }
                    }
                }
                _ => {
                    engine.honest_providers_act();
                    engine.advance_to(engine.now() + 25 + rng.below(100));
                }
            }
        }
        // Settle outstanding cycles and audit.
        for _ in 0..5 {
            engine.honest_providers_act();
            engine.advance_to(engine.now() + engine.params().proof_cycle);
        }
        assert!(engine.ledger().audit(), "seed {seed}: conservation broken");
        assert_eq!(
            engine.stats().compensation_shortfall,
            TokenAmount::ZERO,
            "seed {seed}: shortfall"
        );
    }
}
