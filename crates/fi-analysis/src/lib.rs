//! Analytic companion to the FileInsurer paper: closed-form theorem bounds,
//! probability helpers, distribution samplers and summary statistics.
//!
//! Every experiment in `fi-sim` compares a *measured* quantity against the
//! paper's *analytic* bound; this crate hosts the analytic side:
//!
//! * [`theorems`] — Theorems 1–4 as executable formulas,
//! * [`prob`] — KL divergence, Chernoff tail bounds, log-binomial (Stirling),
//! * [`dist`] — the five Table III file-size distributions,
//! * [`stats`] — mean/variance/quantiles/histograms for result reporting.

pub mod dist;
pub mod prob;
pub mod stats;
pub mod theorems;

pub use dist::SizeDistribution;
pub use stats::Summary;
