//! The content-addressed block space: immutable byte blocks keyed by
//! their SHA-256 hash, with an in-memory and a disk-backed implementation.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

use fi_crypto::{sha256, Hash256};

/// Typed failures of the store layer. Corrupted or truncated bytes —
/// whether a damaged disk log or adversarial HAMT nodes handed to a
/// decoder — always surface as one of these, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A block referenced by hash is not present in the store (a broken
    /// link: the map root points at nodes the store never received).
    NotFound(Hash256),
    /// An I/O failure of the disk backend (message from [`std::io::Error`],
    /// kept as a string so the error stays `Clone`/`Eq`).
    Io(String),
    /// Bytes that violate a structural invariant: a truncated node, an
    /// unsorted bucket, a link cycle, a block whose bytes don't match the
    /// hash it is filed under.
    Corrupt(&'static str),
    /// An inclusion proof that does not verify against the claimed root:
    /// a broken hash chain, a missing key, extra or missing path nodes.
    Proof(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(h) => write!(f, "block {} not found", h.to_hex()),
            StoreError::Io(msg) => write!(f, "store I/O failure: {msg}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store block: {what}"),
            StoreError::Proof(what) => write!(f, "state proof rejected: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// The address of a block: the SHA-256 hash of its bytes. Every
/// [`Blockstore::put`] files bytes under exactly this key, so a block can
/// never be silently substituted — readers re-derive the address.
pub fn block_hash(bytes: &[u8]) -> Hash256 {
    sha256(bytes)
}

/// An abstract content-addressed block space.
///
/// Blocks are immutable and keyed by [`block_hash`] of their bytes, which
/// gives every implementation the same three properties: writes are
/// idempotent (putting the same bytes twice is a no-op), sharing a store
/// between readers and writers is race-free (no block is ever mutated),
/// and the *choice of backend is invisible to consensus* — a map flushed
/// into any store produces the same root hash.
pub trait Blockstore: Send + Sync + std::fmt::Debug {
    /// The block filed under `hash`, or `None` if absent.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on backend failure; [`StoreError::Corrupt`] when
    /// the backend detects its copy no longer matches the hash.
    fn get(&self, hash: &Hash256) -> Result<Option<Arc<[u8]>>, StoreError>;

    /// Files `bytes` under their [`block_hash`] and returns that hash.
    /// Idempotent: re-putting existing bytes is a cheap no-op.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on backend failure.
    fn put(&self, bytes: &[u8]) -> Result<Hash256, StoreError>;

    /// Whether a block with this hash is present.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on backend failure.
    fn has(&self, hash: &Hash256) -> Result<bool, StoreError> {
        Ok(self.get(hash)?.is_some())
    }
}

/// Forwarding impl so `Arc<dyn Blockstore>` (how the engine holds its
/// store) satisfies `&dyn Blockstore` parameters directly.
impl<T: Blockstore + ?Sized> Blockstore for Arc<T> {
    fn get(&self, hash: &Hash256) -> Result<Option<Arc<[u8]>>, StoreError> {
        (**self).get(hash)
    }

    fn put(&self, bytes: &[u8]) -> Result<Hash256, StoreError> {
        (**self).put(bytes)
    }

    fn has(&self, hash: &Hash256) -> Result<bool, StoreError> {
        (**self).has(hash)
    }
}

/// A heap-backed [`Blockstore`]: a hash → bytes table behind an `RwLock`.
///
/// The default backend. Blocks are handed out as cheap [`Arc`] clones, so
/// concurrent readers never copy block bytes.
#[derive(Debug, Default)]
pub struct MemoryBlockstore {
    blocks: RwLock<HashMap<Hash256, Arc<[u8]>>>,
}

impl MemoryBlockstore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct blocks held.
    pub fn len(&self) -> usize {
        self.blocks.read().expect("store lock").len()
    }

    /// Whether the store holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes across all blocks (for benchmarks and tests).
    pub fn total_bytes(&self) -> u64 {
        self.blocks
            .read()
            .expect("store lock")
            .values()
            .map(|b| b.len() as u64)
            .sum()
    }
}

impl Blockstore for MemoryBlockstore {
    fn get(&self, hash: &Hash256) -> Result<Option<Arc<[u8]>>, StoreError> {
        Ok(self.blocks.read().expect("store lock").get(hash).cloned())
    }

    fn put(&self, bytes: &[u8]) -> Result<Hash256, StoreError> {
        let hash = block_hash(bytes);
        self.blocks
            .write()
            .expect("store lock")
            .entry(hash)
            .or_insert_with(|| bytes.into());
        Ok(hash)
    }

    fn has(&self, hash: &Hash256) -> Result<bool, StoreError> {
        Ok(self.blocks.read().expect("store lock").contains_key(hash))
    }
}

/// One record in the disk log: `[hash 32B][len u32 BE][bytes]`.
const REC_HEADER: usize = 32 + 4;

/// A disk-backed [`Blockstore`]: an append-only log file plus an
/// in-memory hash → offset index.
///
/// The layout is deliberately minimal — this is the "state spills past
/// RAM and survives the process" backend, not a database. Each block is
/// appended as `[hash][len][bytes]`; [`DiskBlockstore::open`] rebuilds
/// the index by scanning the log, validating every record header, and
/// truncating a torn tail write (anything after the last complete record)
/// rather than failing. Reads verify the bytes against their hash, so a
/// bit flip on disk surfaces as [`StoreError::Corrupt`] instead of
/// silently feeding a decoder.
#[derive(Debug)]
pub struct DiskBlockstore {
    /// The append-only log, positioned at its end for writes.
    file: Mutex<File>,
    /// hash → (payload offset, payload length).
    index: RwLock<HashMap<Hash256, (u64, u32)>>,
    path: PathBuf,
}

impl DiskBlockstore {
    /// Opens (or creates) the log at `path` and rebuilds the index.
    ///
    /// A torn final record — a crash mid-append — is truncated away; any
    /// earlier structural damage is reported as [`StoreError::Corrupt`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, [`StoreError::Corrupt`]
    /// when an interior record header is malformed.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        let mut data = Vec::with_capacity(len as usize);
        file.read_to_end(&mut data)?;

        let mut index = HashMap::new();
        let mut pos = 0usize;
        let mut valid_end = 0u64;
        while pos + REC_HEADER <= data.len() {
            let hash = Hash256::from_bytes(data[pos..pos + 32].try_into().expect("32 bytes"));
            let blen =
                u32::from_be_bytes(data[pos + 32..pos + 36].try_into().expect("4 bytes")) as usize;
            let payload_start = pos + REC_HEADER;
            if payload_start + blen > data.len() {
                break; // torn tail: truncate below
            }
            let payload = &data[payload_start..payload_start + blen];
            if block_hash(payload) != hash {
                // Interior records are sealed by every later append; a
                // mismatch is real corruption, not a torn write.
                return Err(StoreError::Corrupt("disk record bytes mismatch its hash"));
            }
            index.insert(hash, (payload_start as u64, blen as u32));
            pos = payload_start + blen;
            valid_end = pos as u64;
        }
        if valid_end < len {
            file.set_len(valid_end)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(DiskBlockstore {
            file: Mutex::new(file),
            index: RwLock::new(index),
            path,
        })
    }

    /// The log file backing this store.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of distinct blocks held.
    pub fn len(&self) -> usize {
        self.index.read().expect("store lock").len()
    }

    /// Whether the store holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Blockstore for DiskBlockstore {
    fn get(&self, hash: &Hash256) -> Result<Option<Arc<[u8]>>, StoreError> {
        let Some(&(offset, len)) = self.index.read().expect("store lock").get(hash) else {
            return Ok(None);
        };
        let mut buf = vec![0u8; len as usize];
        {
            let mut file = self.file.lock().expect("store lock");
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(&mut buf)?;
            file.seek(SeekFrom::End(0))?;
        }
        if block_hash(&buf) != *hash {
            return Err(StoreError::Corrupt("disk block bytes mismatch its hash"));
        }
        Ok(Some(buf.into()))
    }

    fn put(&self, bytes: &[u8]) -> Result<Hash256, StoreError> {
        let hash = block_hash(bytes);
        if self.index.read().expect("store lock").contains_key(&hash) {
            return Ok(hash);
        }
        let mut file = self.file.lock().expect("store lock");
        // Re-check under the write lock: a racing put may have landed.
        if self.index.read().expect("store lock").contains_key(&hash) {
            return Ok(hash);
        }
        let offset = file.stream_position()?;
        let mut rec = Vec::with_capacity(REC_HEADER + bytes.len());
        rec.extend_from_slice(hash.as_bytes());
        rec.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        rec.extend_from_slice(bytes);
        file.write_all(&rec)?;
        self.index
            .write()
            .expect("store lock")
            .insert(hash, (offset + REC_HEADER as u64, bytes.len() as u32));
        Ok(hash)
    }

    fn has(&self, hash: &Hash256) -> Result<bool, StoreError> {
        Ok(self.index.read().expect("store lock").contains_key(hash))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique scratch log path (no tempfile crate in the build image).
    fn scratch(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "fi-store-test-{}-{}-{}.log",
            std::process::id(),
            tag,
            n
        ))
    }

    struct DropFile(PathBuf);
    impl Drop for DropFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn memory_store_roundtrip_and_idempotence() {
        let store = MemoryBlockstore::new();
        assert!(store.is_empty());
        let h = store.put(b"hello").unwrap();
        assert_eq!(h, block_hash(b"hello"));
        assert_eq!(store.put(b"hello").unwrap(), h);
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_bytes(), 5);
        assert_eq!(store.get(&h).unwrap().as_deref(), Some(&b"hello"[..]));
        assert!(store.has(&h).unwrap());
        assert!(!store.has(&block_hash(b"other")).unwrap());
        assert!(store.get(&block_hash(b"other")).unwrap().is_none());
    }

    #[test]
    fn disk_store_roundtrip_and_reopen() {
        let path = scratch("reopen");
        let _guard = DropFile(path.clone());
        let blocks: Vec<Vec<u8>> = (0u32..50)
            .map(|i| vec![i as u8; (i as usize) + 1])
            .collect();
        let mut hashes = Vec::new();
        {
            let store = DiskBlockstore::open(&path).unwrap();
            for b in &blocks {
                hashes.push(store.put(b).unwrap());
                // Idempotent re-put must not grow the log.
                store.put(b).unwrap();
            }
            assert_eq!(store.len(), blocks.len());
        }
        // Reopen rebuilds the index from the log alone.
        let store = DiskBlockstore::open(&path).unwrap();
        assert_eq!(store.len(), blocks.len());
        assert_eq!(store.path(), path.as_path());
        for (h, b) in hashes.iter().zip(&blocks) {
            assert_eq!(store.get(h).unwrap().as_deref(), Some(b.as_slice()));
        }
        // Writes still append correctly after a reopen.
        let h = store.put(b"post-reopen").unwrap();
        assert_eq!(store.get(&h).unwrap().as_deref(), Some(&b"post-reopen"[..]));
    }

    #[test]
    fn disk_store_truncates_torn_tail() {
        let path = scratch("torn");
        let _guard = DropFile(path.clone());
        let h1;
        {
            let store = DiskBlockstore::open(&path).unwrap();
            h1 = store.put(b"complete record").unwrap();
            store.put(b"the victim").unwrap();
        }
        // Chop mid-way through the second record, simulating a crash.
        let full = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 4).unwrap();
        drop(file);

        let store = DiskBlockstore::open(&path).unwrap();
        assert_eq!(store.len(), 1, "torn tail record dropped");
        assert_eq!(
            store.get(&h1).unwrap().as_deref(),
            Some(&b"complete record"[..])
        );
        // The torn bytes are gone from disk; appending works again.
        let h3 = store.put(b"after recovery").unwrap();
        drop(store);
        let store = DiskBlockstore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(
            store.get(&h3).unwrap().as_deref(),
            Some(&b"after recovery"[..])
        );
    }

    #[test]
    fn disk_store_detects_bit_flips() {
        let path = scratch("flip");
        let _guard = DropFile(path.clone());
        let h;
        {
            let store = DiskBlockstore::open(&path).unwrap();
            h = store.put(b"precious bytes").unwrap();
        }
        // Flip one payload bit on disk.
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x01;
        std::fs::write(&path, &data).unwrap();

        // A full reopen scan refuses the interior corruption...
        assert_eq!(
            DiskBlockstore::open(&path).unwrap_err(),
            StoreError::Corrupt("disk record bytes mismatch its hash")
        );
        // ...and a live handle's read path re-verifies too: rebuild a
        // store whose index predates the flip by writing the clean bytes
        // back, opening, then flipping behind its back.
        data[last] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        let store = DiskBlockstore::open(&path).unwrap();
        data[last] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        assert_eq!(
            store.get(&h).unwrap_err(),
            StoreError::Corrupt("disk block bytes mismatch its hash")
        );
    }
}
