//! End-to-end node-pipeline tests: mempool → beacon-rotated proposers →
//! `apply_batch` → sealed blocks over a lossy, jittery `fi-net` world →
//! fork-choice adoption on every node.
//!
//! The acceptance bar this file carries: a cluster of rotating validators
//! stays bit-identical (`state_root`, head hash and receipt root at the
//! final height) across ≥200 slots under nonzero loss and jitter, with
//! leadership actually spread across the set; and a watcher that
//! cold-starts mid-run from a validator's on-demand snapshot converges to
//! the same root. What used to be this file's divergence-only checks
//! (competing histories under different randomness) now *converge*: the
//! fork-choice resolves every race to one chain per run.
//!
//! `FI_NODE_TEST_SEED` (CI's loss/jitter seed matrix) offsets every world
//! seed, so each CI cell exercises a different loss/reorder pattern.

use fi_chain::account::{AccountId, TokenAmount};
use fi_chain::gas::GasSchedule;
use fi_core::engine::{Engine, StateView};
use fi_core::ops::Op;
use fi_core::params::ProtocolParams;
use fi_net::link::LinkModel;
use fi_node::{genesis_engine, run_cluster, AdmitError, ClusterConfig, Mempool, Tx};

/// Base seed, offset by the CI matrix's `FI_NODE_TEST_SEED`.
fn seed(base: u64) -> u64 {
    let offset = std::env::var("FI_NODE_TEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    base + 1_000 * offset
}

/// A lossy, jittery link fast enough that blocks land within a slot or
/// two (confirm windows stay satisfiable while reordering still happens).
fn chaos_link(loss: f64) -> LinkModel {
    LinkModel {
        base_latency: 5,
        ticks_per_byte: 0.001,
        max_jitter: 8,
        loss,
    }
}

fn chaos_cluster(base_seed: u64, slots: u64, loss: f64) -> ClusterConfig {
    let mut cfg = ClusterConfig::small(seed(base_seed), slots);
    // Generous transfer windows: the client's replica view lags the chain
    // by network latency, so confirms land several slots after the add.
    cfg.params.delay_per_size = 25;
    cfg.link = chaos_link(loss);
    cfg
}

/// Asserts every validator (and optionally the watcher) ended on one
/// bit-identical chain, returning the agreed `(height, state_root)`.
fn assert_converged(reports: &fi_node::ClusterReports) -> (u64, fi_crypto::Hash256) {
    let reference = reports.validators[0].borrow();
    let height = reference.final_height;
    let root = reference.final_state_root.expect("validator 0 finished");
    let head = reference.final_head.expect("validator 0 has a head");
    let receipts = reference.final_receipt_root;
    drop(reference);
    for (i, report) in reports.validators.iter().enumerate() {
        let report = report.borrow();
        assert_eq!(report.final_height, height, "validator {i} height");
        assert_eq!(report.final_head, Some(head), "validator {i} head hash");
        assert_eq!(
            report.final_state_root,
            Some(root),
            "validator {i} state root"
        );
        assert_eq!(
            report.final_receipt_root, receipts,
            "validator {i} receipt root"
        );
    }
    (height, root)
}

#[test]
fn rotating_validators_stay_bit_identical_across_200_slots_under_loss() {
    let slots = 220;
    let cfg = chaos_cluster(0xB10C, slots, 0.12);
    let (world, reports) = run_cluster(&cfg);

    assert!(
        world.messages_lost() > 0,
        "the link actually dropped messages"
    );
    let (height, root) = assert_converged(&reports);
    assert!(
        height >= slots - 5,
        "nearly every slot filled: height {height} of {slots}"
    );

    // Leadership genuinely rotated: several validators proposed, and
    // together they produced at least one block per adopted height.
    let proposed: Vec<u64> = reports
        .validators
        .iter()
        .map(|r| r.borrow().blocks_proposed)
        .collect();
    assert!(
        proposed.iter().filter(|&&p| p > 0).count() >= 2,
        "proposals spread across validators: {proposed:?}"
    );
    assert!(proposed.iter().sum::<u64>() >= height);

    // The workload driver's replica reached the same state.
    let client = reports.client.borrow();
    assert!(client.txs_submitted > slots, "the workload actually ran");
    assert_eq!(client.final_height, height, "client replica height");
    assert_eq!(
        client.final_state_root,
        Some(root),
        "client replica state root"
    );
}

#[test]
fn replay_modes_agree_per_height() {
    // ClusterConfig::small mixes one apply_batch replayer among op-by-op
    // validators: convergence across them transitively proves
    // apply-vs-apply_batch equality on every adopted block, heavy loss,
    // retransmits and duplicate deliveries included.
    let cfg = chaos_cluster(0xA11B, 60, 0.2);
    let (world, reports) = run_cluster(&cfg);
    let (height, _root) = assert_converged(&reports);
    assert!(height >= 50, "production survived 20% loss: {height}");
    assert!(world.messages_lost() > 0);
}

#[test]
fn cold_start_watcher_converges_from_snapshot() {
    let slots = 200;
    let mut cfg = chaos_cluster(0x1013, slots, 0.1);
    cfg.cold_join_at = Some(slots / 2 * cfg.params.block_interval);
    let (_world, reports) = run_cluster(&cfg);

    let (height, root) = assert_converged(&reports);
    let serves: u64 = reports
        .validators
        .iter()
        .map(|r| r.borrow().joins_served)
        .sum();
    assert!(serves >= 1, "some validator served the join");

    let watcher = reports.watcher.as_ref().expect("watcher configured");
    let watcher = watcher.borrow();
    let joined_at = watcher.joined_at_height.expect("watcher synced");
    assert!(
        joined_at >= 1 && joined_at < slots,
        "joined mid-run at height {joined_at}"
    );
    assert_eq!(watcher.final_height, height, "watcher caught up");
    assert_eq!(
        watcher.final_state_root,
        Some(root),
        "watcher converged to the cluster root"
    );
    assert_eq!(
        watcher.blocks_proposed, 0,
        "a watcher never proposes (the schedule does not rank it)"
    );
}

#[test]
fn same_seed_runs_reproduce_identical_consensus() {
    let run = || {
        let cfg = chaos_cluster(0xDE7, 50, 0.15);
        let (_world, reports) = run_cluster(&cfg);
        let v0 = reports.validators[0].borrow();
        (
            v0.heads.clone(),
            v0.final_state_root,
            v0.final_chain.clone(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_diverge_across_runs_but_converge_within_each() {
    // The PR 5 version of this test could only show different seeds
    // producing different histories; with rotation and fork-choice the
    // interesting half is that *within* every run, whatever races the
    // randomness produces resolve to one chain on every node.
    let run = |base: u64| {
        let cfg = chaos_cluster(base, 50, 0.15);
        let (_world, reports) = run_cluster(&cfg);
        let (_height, root) = assert_converged(&reports);
        root
    };
    let a = run(0x5EED_0001);
    let b = run(0x5EED_0002);
    // Different beacons rotate different leaders over different losses…
    assert_ne!(a, b, "independent seeds diverge in history");
    // …while assert_converged above proved each run resolved via
    // fork-choice to a single bit-identical chain.
}

#[test]
fn replaying_the_op_log_reproduces_the_networked_run() {
    // The whole networked run is just an op sequence: replaying one
    // validator's head-engine log (genesis included; no watcher, so no
    // join-serving checkpoint truncates it) on a fresh engine reproduces
    // the final consensus state.
    let mut cfg = chaos_cluster(0x4EB1A4, 40, 0.1);
    cfg.record_op_log = true;
    let (_world, reports) = run_cluster(&cfg);
    let (_height, root) = assert_converged(&reports);
    let v0 = reports.validators[0].borrow();
    let replayed = Engine::replay(cfg.params.clone(), &v0.final_op_log).expect("params valid");
    assert_eq!(replayed.state_root(), root);
    // And an independently rebuilt genesis is the same starting point the
    // whole cluster shared.
    let (genesis, _) = genesis_engine(&cfg.params, &cfg.providers, cfg.client);
    assert_eq!(
        genesis.state_root(),
        Engine::replay(
            cfg.params.clone(),
            &v0.final_op_log[..genesis.op_log().len()]
        )
        .expect("params valid")
        .state_root()
    );
}

// ----------------------------------------------------------------------
// Mempool ↔ engine edge cases (the admission-vs-commit satellite).
// ----------------------------------------------------------------------

const PROVIDER: AccountId = AccountId(50);
const SPENDER: AccountId = AccountId(60);

/// An engine + mempool pair in the parallel-ingest configuration, with a
/// provider sector and a funded spender holding `n` live files.
fn ingest_fixture(n: u64) -> (Engine, Mempool, Vec<fi_core::types::FileId>) {
    let params = ProtocolParams {
        k: 1,
        shards: 8,
        ingest_threads: 4,
        ..ProtocolParams::default()
    };
    let mut engine = Engine::new(params.clone()).expect("valid params");
    engine.fund(PROVIDER, TokenAmount(1_000_000_000));
    engine.fund(SPENDER, TokenAmount(1_000_000_000));
    let capacity = (2 * n).div_ceil(64).max(1) * 64;
    engine.sector_register(PROVIDER, capacity).expect("sector");
    let mut files = Vec::new();
    for i in 0..n {
        let file = engine
            .file_add(
                SPENDER,
                1,
                params.min_value,
                fi_crypto::sha256(format!("edge-{i}").as_bytes()),
            )
            .expect("file added");
        for (idx, s) in engine.pending_confirms(file) {
            engine
                .file_confirm(PROVIDER, file, idx, s)
                .expect("confirm");
        }
        files.push(file);
    }
    engine.advance_to(engine.now() + 2);
    assert_eq!(engine.file_ids().len() as u64, n);
    let mempool = Mempool::new(params, GasSchedule::default());
    (engine, mempool, files)
}

#[test]
fn mid_block_insolvency_falls_back_like_sequential_apply() {
    let (engine, mut mempool, files) = ingest_fixture(100);

    // 100 gas-charged File_Get reads pass admission against the current
    // balance…
    for (nonce, &file) in files.iter().enumerate() {
        mempool
            .admit(
                Tx {
                    from: SPENDER,
                    nonce: nonce as u64,
                    fee: TokenAmount(1),
                    op: Op::FileGet {
                        caller: SPENDER,
                        file,
                    },
                },
                engine.ledger(),
            )
            .expect("admission against the funded balance");
    }

    // …then the account is drained on-chain before the block commits:
    // admission was a snapshot-in-time heuristic, commit is authoritative.
    let mut proposer_engine = engine.clone();
    proposer_engine.burn_for_test(SPENDER, proposer_engine.ledger().balance(SPENDER));

    let (txs, _gas) = mempool.select_block();
    assert_eq!(txs.len(), 100);
    let mut ops: Vec<Op> = txs.into_iter().map(|tx| tx.op).collect();
    ops.push(Op::AdvanceTo {
        target: proposer_engine.now() + proposer_engine.params().block_interval,
    });

    // The staged parallel ingest (≥64-op shard-local segment at 8 shards /
    // 4 threads) must fall back exactly like the sequential path.
    let mut sequential = proposer_engine.clone();
    for op in ops.clone() {
        let _ = sequential.apply(op);
    }
    let results = proposer_engine.apply_batch(ops);
    let failed = results.iter().filter(|r| r.is_err()).count();
    assert_eq!(failed, 100, "every drained read failed at commit");
    assert_eq!(proposer_engine.state_root(), sequential.state_root());
    assert_eq!(
        proposer_engine.chain().head_hash(),
        sequential.chain().head_hash()
    );
    assert_eq!(proposer_engine.op_log(), sequential.op_log());
}

#[test]
fn insolvency_at_admission_rejects_what_commit_would_reject() {
    let (mut engine, mut mempool, files) = ingest_fixture(1);
    let file = files[0];
    engine.burn_for_test(SPENDER, engine.ledger().balance(SPENDER));
    // Now the same submission is refused up front.
    let err = mempool
        .admit(
            Tx {
                from: SPENDER,
                nonce: 0,
                fee: TokenAmount(1),
                op: Op::FileGet {
                    caller: SPENDER,
                    file,
                },
            },
            engine.ledger(),
        )
        .unwrap_err();
    assert!(matches!(err, AdmitError::InsufficientFunds { .. }));
    assert_eq!(mempool.stats().rejected_funds, 1);
}

#[test]
fn duplicate_op_rejected_in_pool_but_committed_duplicate_fails_on_chain() {
    let (mut engine, mut mempool, _files) = ingest_fixture(1);
    // A fresh add so there is a pending confirm to duplicate.
    let file = engine
        .file_add(
            SPENDER,
            1,
            engine.params().min_value,
            fi_crypto::sha256(b"dup"),
        )
        .expect("added");
    let (index, sector) = engine.pending_confirms(file)[0];
    let confirm = Op::FileConfirm {
        caller: PROVIDER,
        file,
        index,
        sector,
    };
    let tx = |nonce| Tx {
        from: PROVIDER,
        nonce,
        fee: TokenAmount(1),
        op: confirm.clone(),
    };
    mempool.admit(tx(0), engine.ledger()).expect("first admit");
    // While queued, the identical op is a pool-level duplicate.
    assert_eq!(
        mempool.admit(tx(1), engine.ledger()),
        Err(AdmitError::DuplicateOp)
    );
    let (txs, _) = mempool.select_block();
    assert_eq!(txs.len(), 1);
    assert!(engine.apply(txs[0].op.clone()).is_ok());
    // Once committed the pool no longer knows it: the duplicate admits
    // (under a fresh nonce — the rejected submission burned nonce 1) —
    // and fails at commit like any stale request, burning its gas.
    mempool.admit(tx(2), engine.ledger()).expect("re-admitted");
    let (txs, _) = mempool.select_block();
    let result = engine.apply(txs[0].op.clone());
    assert!(result.is_err(), "double confirm rejected by the engine");
    assert!(!engine.op_log().last().expect("logged").ok);
}
