//! The block-production pipeline over `fi-net`: a [`Proposer`] drains its
//! [`Mempool`](crate::mempool) every block interval, commits the
//! batch through `Engine::apply_batch`, and broadcasts the sealed block to
//! [`Follower`]s, which replay it on their own engines and verify
//! `state_root` / chain head / receipt-root equality at every height.
//!
//! Delivery is lossy and jittery ([`fi_net::LinkModel`]), so:
//!
//! * blocks go out through a bounded [`Retransmitter`] and are
//!   acknowledged per round; followers dedup duplicates and buffer
//!   out-of-order rounds, applying strictly in sequence;
//! * a follower can **cold-start mid-run**: it wakes at a configured time,
//!   requests state, and the proposer answers with its latest durable
//!   snapshot ([`Engine::snapshot_save`] bytes), the matching
//!   [`Checkpoint`], and the post-checkpoint op-log suffix; the joiner
//!   rebuilds via [`Engine::snapshot_restore`] + [`Engine::replay_from`]
//!   and then verifies every subsequent block like any other follower.
//!
//! The proposer also runs the checkpoint→snapshot→truncate maintenance
//! timer: every `checkpoint_every` rounds it checkpoints (truncating the
//! op log, keeping memory bounded) and saves a snapshot — the artifact
//! mid-run joiners sync from.
//!
//! Followers replay **op by op** through `Engine::apply` by default: a
//! verifier wants the simplest possible execution path, and PR 4
//! guarantees `apply_batch` is bit-identical to it. [`ReplayMode::Batch`]
//! runs the pipelined path instead; the node tests run followers in both
//! modes side by side and assert they agree at every height (DESIGN.md
//! §11).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use fi_core::engine::{Checkpoint, Engine};
use fi_core::ops::{Op, OpRecord};
use fi_crypto::Hash256;
use fi_net::sim::SimTime;
use fi_net::world::{Ctx, NodeIdx, Process, Retransmitter, RetryEvent};

use crate::mempool::{Mempool, Tx};

/// Timer tag: the proposer's per-round block production tick.
pub const TAG_ROUND: u64 = 0;
/// Timer tag: a cold-start follower's wake-up.
pub const TAG_WAKE: u64 = 1;
/// Timer tag: a joining follower re-sends its unanswered `JoinRequest`.
pub const TAG_JOIN_RETRY: u64 = 2;
/// First timer tag owned by a node's [`Retransmitter`]; all protocol tags
/// stay below it.
pub const RETX_TAG_BASE: u64 = 1 << 48;

/// Retransmitter key for a block: destination node and round.
fn block_key(to: NodeIdx, round: u64) -> u64 {
    ((to as u64) << 32) | round
}

/// A block as broadcast on the wire: the round, the exact op sequence the
/// proposer committed (ending in the round's `AdvanceTo` barrier), and the
/// proposer's resulting commitments for followers to verify against.
#[derive(Debug, Clone)]
pub struct SealedBlock {
    /// Production round; round `r` seals chain height `r`.
    pub round: u64,
    /// The committed ops in submission order (mempool selection plus the
    /// trailing `AdvanceTo`).
    pub ops: Vec<Op>,
    /// `Engine::state_root()` after the batch.
    pub state_root: Hash256,
    /// Chain head hash after the batch.
    pub head_hash: Hash256,
    /// Receipt root of the block sealed this round.
    pub receipt_root: Hash256,
}

impl SealedBlock {
    /// Approximate wire size, for link-delay modeling.
    pub fn wire_bytes(&self) -> u64 {
        128 + self.ops.len() as u64 * 80
    }
}

/// Every message of the node protocol.
#[derive(Debug, Clone)]
pub enum NodeMsg {
    /// Client → proposer: submit a transaction. `key` is the client's
    /// retransmit key, echoed in the ack.
    SubmitTx {
        /// Sender-chosen retransmit key.
        key: u64,
        /// The transaction.
        tx: Tx,
    },
    /// Proposer → client: the submission was received (admitted *or*
    /// rejected — the ack only stops the client's retransmit timer).
    TxAck {
        /// The submission's key.
        key: u64,
    },
    /// Proposer → follower: a sealed block.
    Block(SealedBlock),
    /// Follower → proposer: block received (possibly a duplicate).
    BlockAck {
        /// The acknowledged round.
        round: u64,
    },
    /// Cold-start follower → proposer: send me your state.
    JoinRequest,
    /// Proposer → joiner: durable snapshot bytes, the checkpoint they
    /// commit to, the post-checkpoint op-log suffix, and the round the
    /// suffix runs through.
    SnapshotReply {
        /// `Engine::snapshot_save` bytes at the checkpoint.
        snapshot: Vec<u8>,
        /// The checkpoint the snapshot was taken at.
        checkpoint: Checkpoint,
        /// Ops applied after the checkpoint, through `round`.
        suffix: Vec<OpRecord>,
        /// Last round covered by snapshot + suffix.
        round: u64,
    },
}

/// Follower execution path for sealed blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// One `Engine::apply` per op — the canonical verifier path.
    OpByOp,
    /// One `Engine::apply_batch` per block — must agree bit-for-bit
    /// (asserted by the node tests; DESIGN.md §10–11).
    Batch,
}

/// What the proposer did, readable after a run (the world owns the boxed
/// nodes, so results surface through shared handles).
#[derive(Debug, Default)]
pub struct ProposerReport {
    /// `(round, state_root, head_hash)` per produced block.
    pub roots: Vec<(u64, Hash256, Hash256)>,
    /// Ops committed across all rounds (mempool selections plus barriers).
    pub ops_committed: u64,
    /// Ops whose commit failed (still logged and replayed; their receipts
    /// commit the failure).
    pub ops_failed: u64,
    /// Checkpoint→snapshot→truncate maintenance runs.
    pub snapshots_taken: u64,
    /// Join requests answered with a snapshot.
    pub joins_served: u64,
    /// Block retransmissions that exhausted their budget.
    pub blocks_given_up: u64,
    /// The proposer's state root after its last round.
    pub final_state_root: Option<Hash256>,
    /// The proposer's op log after its last round. Complete history only
    /// when no checkpoint was ever taken (`checkpoint_every` 0 **and** no
    /// join request — serving a joiner snapshots on demand, which
    /// truncates); the post-checkpoint suffix otherwise (check
    /// [`ProposerReport::snapshots_taken`]).
    pub final_op_log: Vec<OpRecord>,
    /// The mempool's admission/selection counters after the last round.
    pub final_mempool: Option<crate::mempool::MempoolStats>,
}

/// The block producer: owns the consensus engine and the mempool.
pub struct Proposer {
    engine: Engine,
    mempool: Mempool,
    followers: Vec<NodeIdx>,
    retx: Retransmitter<NodeMsg>,
    round: u64,
    rounds_total: u64,
    /// Rounds between checkpoint→snapshot→truncate maintenance runs
    /// (0 disables the timer; a join request then snapshots on demand).
    checkpoint_every: u64,
    /// Latest durable snapshot and its checkpoint.
    snapshot: Option<(Vec<u8>, Checkpoint)>,
    report: Rc<RefCell<ProposerReport>>,
}

impl Proposer {
    /// A proposer over `engine`, broadcasting to `followers`, producing
    /// `rounds_total` blocks, checkpointing every `checkpoint_every`
    /// rounds. `report` receives the per-round commitments.
    pub fn new(
        engine: Engine,
        mempool: Mempool,
        followers: Vec<NodeIdx>,
        rounds_total: u64,
        checkpoint_every: u64,
        report: Rc<RefCell<ProposerReport>>,
    ) -> Self {
        let interval = engine.params().block_interval;
        Proposer {
            engine,
            mempool,
            followers,
            // Retry fast relative to the round length; give up only after
            // a generous budget (a permanently lost block stalls replay).
            retx: Retransmitter::new(interval.max(2), 24, RETX_TAG_BASE),
            round: 0,
            rounds_total,
            checkpoint_every,
            snapshot: None,
            report,
        }
    }

    /// The engine, for post-run inspection.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    fn produce_block(&mut self, ctx: &mut Ctx<'_, NodeMsg>) {
        self.round += 1;
        let target = self.round * self.engine.params().block_interval;
        let (txs, _gas) = self.mempool.select_block();
        let mut ops: Vec<Op> = txs.into_iter().map(|tx| tx.op).collect();
        ops.push(Op::AdvanceTo { target });
        let results = self.engine.apply_batch(ops.clone());
        let failed = results.iter().filter(|r| r.is_err()).count() as u64;
        let block = SealedBlock {
            round: self.round,
            ops,
            state_root: self.engine.state_root(),
            head_hash: self.engine.chain().head_hash(),
            receipt_root: self
                .engine
                .chain()
                .blocks()
                .last()
                .expect("round sealed a block")
                .receipt_root,
        };
        {
            let mut report = self.report.borrow_mut();
            report.ops_committed += block.ops.len() as u64;
            report.ops_failed += failed;
            report
                .roots
                .push((self.round, block.state_root, block.head_hash));
        }
        let bytes = block.wire_bytes();
        for &f in &self.followers.clone() {
            self.retx.send(
                ctx,
                f,
                block_key(f, self.round),
                NodeMsg::Block(block.clone()),
                bytes,
            );
        }
        // Maintenance: checkpoint (truncating the op log) and save a
        // durable snapshot for mid-run joiners.
        if self.checkpoint_every > 0 && self.round.is_multiple_of(self.checkpoint_every) {
            self.take_snapshot();
        }
        if self.round < self.rounds_total {
            ctx.set_timer(self.engine.params().block_interval, TAG_ROUND);
        } else {
            let mut report = self.report.borrow_mut();
            report.final_state_root = Some(self.engine.state_root());
            report.final_op_log = self.engine.op_log().to_vec();
            report.final_mempool = Some(self.mempool.stats().clone());
        }
    }

    fn take_snapshot(&mut self) {
        let checkpoint = self.engine.checkpoint();
        let bytes = self.engine.snapshot_save();
        self.snapshot = Some((bytes, checkpoint));
        self.report.borrow_mut().snapshots_taken += 1;
    }
}

impl Process<NodeMsg> for Proposer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NodeMsg>) {
        if self.rounds_total > 0 {
            ctx.set_timer(self.engine.params().block_interval, TAG_ROUND);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, NodeMsg>, from: NodeIdx, msg: NodeMsg) {
        match msg {
            NodeMsg::SubmitTx { key, tx } => {
                // Admission result is node-local; the ack only confirms
                // receipt so the client stops retransmitting.
                let _ = self.mempool.admit(tx, self.engine.ledger());
                ctx.send(from, NodeMsg::TxAck { key }, 24);
            }
            NodeMsg::BlockAck { round } => {
                self.retx.ack(block_key(from, round));
            }
            NodeMsg::JoinRequest => {
                if self.snapshot.is_none() {
                    // No maintenance snapshot yet: take one on demand.
                    self.take_snapshot();
                }
                let (snapshot, checkpoint) = self.snapshot.clone().expect("snapshot present");
                let suffix = self.engine.op_log().to_vec();
                let reply = NodeMsg::SnapshotReply {
                    snapshot: snapshot.clone(),
                    checkpoint,
                    suffix,
                    round: self.round,
                };
                let bytes = snapshot.len() as u64 + 128;
                ctx.send(from, reply, bytes);
                self.report.borrow_mut().joins_served += 1;
                // Future blocks flow to the joiner like to any follower.
                if !self.followers.contains(&from) {
                    self.followers.push(from);
                }
            }
            NodeMsg::Block(_) | NodeMsg::TxAck { .. } | NodeMsg::SnapshotReply { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, NodeMsg>, tag: u64) {
        if tag == TAG_ROUND {
            self.produce_block(ctx);
            return;
        }
        if let Some(RetryEvent::Exhausted { .. }) = self.retx.handle_timer(ctx, tag) {
            self.report.borrow_mut().blocks_given_up += 1;
        }
    }
}

/// A follower's verification record, readable after a run.
#[derive(Debug, Default)]
pub struct FollowerReport {
    /// Rounds applied and verified against the proposer's commitments.
    pub verified_rounds: u64,
    /// Rounds whose state root / head hash / receipt root mismatched.
    pub mismatched_rounds: Vec<u64>,
    /// Duplicate block deliveries dropped (retransmits whose ack lost).
    pub duplicates: u64,
    /// For a cold-start joiner: the round its snapshot+suffix sync covered
    /// (verification starts at the next round).
    pub joined_at_round: Option<u64>,
    /// Final engine state root after the run.
    pub final_state_root: Option<Hash256>,
    /// Final chain head after the run.
    pub final_head_hash: Option<Hash256>,
}

/// How a [`Follower`] comes to life.
pub enum FollowerStart {
    /// Online from genesis with its own copy of the genesis engine.
    Genesis(Box<Engine>),
    /// Offline until `wake_at`, then syncs from the proposer's snapshot.
    ColdJoin {
        /// Virtual time at which the node boots and requests state.
        wake_at: SimTime,
    },
}

/// A replaying verifier node.
pub struct Follower {
    engine: Option<Engine>,
    mode: ReplayMode,
    proposer: NodeIdx,
    next_round: u64,
    buffer: BTreeMap<u64, SealedBlock>,
    start: Option<FollowerStart>,
    syncing: bool,
    join_retry: SimTime,
    report: Rc<RefCell<FollowerReport>>,
}

impl Follower {
    /// A follower verifying against `proposer`, replaying in `mode`.
    pub fn new(
        start: FollowerStart,
        mode: ReplayMode,
        proposer: NodeIdx,
        report: Rc<RefCell<FollowerReport>>,
    ) -> Self {
        Follower {
            engine: None,
            mode,
            proposer,
            next_round: 1,
            buffer: BTreeMap::new(),
            start: Some(start),
            syncing: false,
            join_retry: 20,
            report,
        }
    }

    /// The follower's engine (absent until a cold-start node has synced).
    pub fn engine(&self) -> Option<&Engine> {
        self.engine.as_ref()
    }

    fn apply_ready(&mut self) {
        let Some(engine) = self.engine.as_mut() else {
            return;
        };
        while let Some(block) = self.buffer.remove(&self.next_round) {
            match self.mode {
                ReplayMode::OpByOp => {
                    for op in block.ops.iter().cloned() {
                        // Failed ops are part of history (they burn gas and
                        // carry failure receipts); outcomes are verified in
                        // aggregate through the roots below.
                        let _ = engine.apply(op);
                    }
                }
                ReplayMode::Batch => {
                    let _ = engine.apply_batch(block.ops.clone());
                }
            }
            let sealed_receipt_root = engine
                .chain()
                .blocks()
                .last()
                .map(|b| b.receipt_root)
                .unwrap_or(Hash256::ZERO);
            let ok = engine.state_root() == block.state_root
                && engine.chain().head_hash() == block.head_hash
                && sealed_receipt_root == block.receipt_root;
            let mut report = self.report.borrow_mut();
            if ok {
                report.verified_rounds += 1;
            } else {
                report.mismatched_rounds.push(block.round);
            }
            report.final_state_root = Some(engine.state_root());
            report.final_head_hash = Some(engine.chain().head_hash());
            self.next_round += 1;
        }
    }
}

impl Process<NodeMsg> for Follower {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NodeMsg>) {
        match self.start.take().expect("started once") {
            FollowerStart::Genesis(engine) => self.engine = Some(*engine),
            FollowerStart::ColdJoin { wake_at } => {
                ctx.set_timer(wake_at.max(1), TAG_WAKE);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, NodeMsg>, from: NodeIdx, msg: NodeMsg) {
        match msg {
            NodeMsg::Block(block) => {
                ctx.send(self.proposer, NodeMsg::BlockAck { round: block.round }, 24);
                if block.round < self.next_round || self.buffer.contains_key(&block.round) {
                    self.report.borrow_mut().duplicates += 1;
                    return;
                }
                self.buffer.insert(block.round, block);
                self.apply_ready();
            }
            NodeMsg::SnapshotReply {
                snapshot,
                checkpoint,
                suffix,
                round,
            } => {
                if self.engine.is_some() || !self.syncing {
                    return; // duplicate reply, or not a joiner
                }
                let _ = from;
                let restored =
                    Engine::snapshot_restore(&snapshot).expect("proposer snapshot restores");
                let engine = Engine::replay_from(&restored, &checkpoint, &suffix)
                    .expect("suffix replays onto the snapshot");
                self.engine = Some(engine);
                self.syncing = false;
                self.next_round = round + 1;
                // Anything buffered at or below the sync point is covered
                // by the snapshot.
                self.buffer.retain(|&r, _| r > round);
                self.report.borrow_mut().joined_at_round = Some(round);
                self.apply_ready();
            }
            NodeMsg::SubmitTx { .. }
            | NodeMsg::TxAck { .. }
            | NodeMsg::BlockAck { .. }
            | NodeMsg::JoinRequest => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, NodeMsg>, tag: u64) {
        if (tag == TAG_WAKE || tag == TAG_JOIN_RETRY) && self.engine.is_none() {
            // Request (or re-request) state until a snapshot lands; the
            // request itself can be lost, so keep a plain retry timer.
            self.syncing = true;
            ctx.send(self.proposer, NodeMsg::JoinRequest, 24);
            ctx.set_timer(self.join_retry, TAG_JOIN_RETRY);
        }
    }
}
