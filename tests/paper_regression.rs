//! Golden regression suite: pins the *shape* of every reproduced result so
//! refactors cannot silently drift away from the paper. Runs scaled-down
//! versions of each experiment (seconds, not minutes).

use fi_analysis::theorems::{
    theorem2_collision_bound, theorem4_deposit_ratio_bound, RobustnessParams, SECURITY_PARAMETER,
};
use fi_analysis::SizeDistribution;
use fi_baselines::AdversaryStrategy;
use fi_sim::robustness::{run_sweep, RobustnessConfig};
use fi_sim::table3::{realloc_max_usage, refresh_max_usage, GridPoint, Table3Config};
use fi_sim::table4::{run as run_table4, Table4Config};

fn quick_t3() -> Table3Config {
    Table3Config {
        realloc_rounds: 10,
        refresh_multiplier: 5,
        ncp_cap: 100_000,
        seed: 0x7A_B1E3,
    }
}

#[test]
fn table3_first_rows_match_paper_band() {
    // Paper row (1e5, 20): 0.524–0.536 across distributions;
    // row (1e5, 100): 0.558–0.599. Allow ±0.03 for the reduced rounds.
    for dist in SizeDistribution::ALL {
        let tight = realloc_max_usage(
            GridPoint {
                ncp: 100_000,
                ns: 20,
            },
            dist,
            &quick_t3(),
        );
        assert!(
            (0.50..0.57).contains(&tight.max_usage),
            "{dist:?} ns=20: {}",
            tight.max_usage
        );
        let loose = realloc_max_usage(
            GridPoint {
                ncp: 100_000,
                ns: 100,
            },
            dist,
            &quick_t3(),
        );
        assert!(
            (0.53..0.63).contains(&loose.max_usage),
            "{dist:?} ns=100: {}",
            loose.max_usage
        );
        assert!(loose.max_usage > tight.max_usage, "{dist:?} ordering");
    }
}

#[test]
fn table3_refresh_setting_same_band() {
    let r = refresh_max_usage(
        GridPoint {
            ncp: 50_000,
            ns: 20,
        },
        SizeDistribution::Exponential,
        &quick_t3(),
    );
    assert!((0.50..0.60).contains(&r.max_usage), "{}", r.max_usage);
}

#[test]
fn table4_qualitative_rows_locked() {
    let rows = run_table4(&Table4Config {
        ns: 150,
        nv: 1_500,
        k: 6,
        sybil_factor: 6,
        lambda: 0.5,
        seed: 0x7A_B1E4,
    });
    let get = |name: &str| rows.iter().find(|r| r.name == name).unwrap();

    // Row 1: everyone scales.
    for r in &rows {
        assert!(r.per_node_share.1 < r.per_node_share.0 * 0.7, "{}", r.name);
    }
    // Row 2: only Sia is Sybil-vulnerable (loss amplifies under Sybil).
    assert!(get("Sia").gamma_lost_sybil > get("Sia").gamma_lost_honest);
    for name in ["FileInsurer", "Filecoin", "Arweave", "Storj"] {
        assert_eq!(get(name).gamma_lost_sybil, get(name).gamma_lost_honest);
    }
    // Row 3: FileInsurer's loss is within its bound; Filecoin/Storj blow
    // far past it under the same adversary (no provable robustness).
    let fi = get("FileInsurer");
    let bound = fi.bound.unwrap();
    assert!(fi.gamma_lost_honest <= bound);
    assert!(get("Filecoin").gamma_lost_honest > bound * 2.0);
    assert!(get("Storj").gamma_lost_honest > bound * 2.0);
    // Row 4: compensation — full / limited / none.
    assert!(fi.compensation_ratio >= 0.999);
    let fc = get("Filecoin").compensation_ratio;
    assert!(fc > 0.0 && fc < 0.2);
    assert_eq!(get("Storj").compensation_ratio, 0.0);
    assert_eq!(get("Sia").compensation_ratio, 0.0);
    assert_eq!(get("Arweave").compensation_ratio, 0.0);
}

#[test]
fn headline_robustness_within_tenth_of_percent() {
    // The abstract's claim at experiment scale: k=20, λ=0.5, any adversary
    // ⇒ γ_lost ≤ 0.1%.
    let config = RobustnessConfig {
        ns: 400,
        nv: 4_000,
        cap_para: 1_000.0,
        gamma_m_v: 0.005,
        seed: 0x0B0B,
    };
    for row in run_sweep(&config, &[20], &[0.5]) {
        assert!(
            row.gamma_lost <= 0.001,
            "{}: γ_lost {}",
            row.strategy.label(),
            row.gamma_lost
        );
        assert!(row.gamma_lost <= row.bound);
    }
}

#[test]
fn greedy_dominates_random_losses() {
    let config = RobustnessConfig {
        ns: 300,
        nv: 3_000,
        cap_para: 1_000.0,
        gamma_m_v: 0.005,
        seed: 0x0B0C,
    };
    let rows = run_sweep(&config, &[3], &[0.5]);
    let of = |s: AdversaryStrategy| rows.iter().find(|r| r.strategy == s).unwrap().gamma_lost;
    assert!(
        of(AdversaryStrategy::GreedyKill) >= of(AdversaryStrategy::Random),
        "greedy must probe the bound harder"
    );
}

#[test]
fn paper_constants_locked() {
    // γ_deposit example (§V-B.4): 0.0046 at k=20, Ns=1e6, capPara=1e3, λ=0.5.
    let dep = theorem4_deposit_ratio_bound(&RobustnessParams {
        n_s: 1e6,
        k: 20.0,
        cap_para: 1e3,
        lambda: 0.5,
        c: SECURITY_PARAMETER,
    });
    assert!((dep - 0.0046).abs() < 0.0004, "γ_deposit {dep}");
    // Theorem 2 corollary: < 1e-50 at cap/size = 1000, Ns = 1e12.
    assert!(theorem2_collision_bound(1e12, 1000.0) < 1e-50);
    // 5λ^k at the headline parameters ≈ 5e-6 (the paper's first term).
    assert!((5.0 * 0.5f64.powi(20) - 4.768e-6).abs() < 1e-8);
}
