//! Engine throughput: File_Add, proof checking, refresh cycles.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fi_chain::account::{AccountId, TokenAmount};
use fi_core::engine::Engine;
use fi_core::params::ProtocolParams;
use fi_crypto::sha256;

const PROVIDER: AccountId = AccountId(100);
const CLIENT: AccountId = AccountId(200);

fn engine_with_sectors(sectors: usize) -> Engine {
    let params = ProtocolParams {
        k: 3,
        avg_refresh: 1e9, // no spontaneous refresh during the bench
        ..ProtocolParams::default()
    };
    let mut e = Engine::new(params).unwrap();
    e.fund(PROVIDER, TokenAmount(u128::MAX / 4));
    e.fund(CLIENT, TokenAmount(u128::MAX / 4));
    for _ in 0..sectors {
        e.sector_register(PROVIDER, 64 * 1024).unwrap();
    }
    e
}

fn bench_file_add(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/file_add");
    for sectors in [10usize, 100, 1_000] {
        group.bench_with_input(BenchmarkId::from_parameter(sectors), &sectors, |b, &s| {
            let mut e = engine_with_sectors(s);
            let root = sha256(b"bench file");
            b.iter(|| {
                black_box(
                    e.file_add(CLIENT, 1, TokenAmount(1_000), root)
                        .expect("capacity available"),
                )
            })
        });
    }
    group.finish();
}

fn bench_proof_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/proof-cycle");
    group.sample_size(20);
    for files in [50usize, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(files), &files, |b, &n| {
            b.iter_with_setup(
                || {
                    let mut e = engine_with_sectors(50);
                    let root = sha256(b"bench file");
                    for _ in 0..n {
                        e.file_add(CLIENT, 1, TokenAmount(1_000), root).unwrap();
                    }
                    e.honest_providers_act();
                    e.advance_to(e.now() + 1);
                    e
                },
                |mut e| {
                    // One full proof cycle: all providers prove, CheckProof runs.
                    e.honest_providers_act();
                    e.advance_to(e.now() + e.params().proof_cycle);
                    black_box(e.stats().proofs_accepted)
                },
            )
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_file_add, bench_proof_cycle
}
criterion_main!(benches);
