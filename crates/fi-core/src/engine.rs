//! The FileInsurer protocol engine: request handlers, `Auto_*` tasks, fee
//! flows, deposits and compensation — the consensus state machine of §IV.
//!
//! The engine is a deterministic state machine over consensus time. Client
//! and provider requests ([`Engine::file_add`], [`Engine::file_confirm`],
//! [`Engine::file_prove`], [`Engine::sector_register`], …) mutate state
//! immediately; `Auto_` tasks (Fig. 7–9: `CheckAlloc`, `CheckProof`,
//! `Refresh`, `CheckRefresh`) execute from the consensus pending list when
//! [`Engine::advance_to`] moves time past their deadline.
//!
//! Money flows exactly as §IV-A/§IV-B prescribe:
//!
//! * **deposits** — pledged at `Sector_Register` into a deposit escrow;
//!   refunded on safe exit; confiscated into the compensation pool when a
//!   sector misses `ProofDeadline` or is corrupted;
//! * **storage rent + prepaid gas** — deducted from the client every
//!   `ProofCycle` by `Auto_CheckProof`; rent accumulates in a pool paid out
//!   to live sectors pro rata capacity each rent period; the gas share is
//!   burned (consensus space);
//! * **traffic fees** — escrowed at `File_Add`, released to each provider
//!   upon `File_Confirm`;
//! * **compensation** — on loss of all replicas, the client receives the
//!   declared file value from confiscated deposits (Fig. 8).

use std::collections::{BTreeSet, HashMap};

use fi_chain::account::{AccountId, Ledger, TokenAmount};
use fi_chain::block::{BlockChain, ChainEvent};
use fi_chain::gas::{GasSchedule, Op};
use fi_chain::tasks::{PendingList, Time};
use fi_crypto::{keyed_hash, DetRng, Hash256};

use crate::drep::CrAccounting;
use crate::params::{ParamError, ProtocolParams};
use crate::sampler::WeightedSampler;
use crate::segment::{reassemble_file, segment_file, SegmentError, SegmentedFile};
use crate::types::{
    AllocEntry, AllocState, FileDescriptor, FileId, FileState, ProtocolEvent, RemovalReason,
    Sector, SectorId, SectorState,
};

/// Deposit escrow: holds pledged sector deposits.
pub const DEPOSIT_ESCROW: AccountId = AccountId(1);
/// Compensation pool: confiscated deposits awaiting payout.
pub const COMPENSATION_POOL: AccountId = AccountId(2);
/// Rent pool: rent accrued during the current period.
pub const RENT_POOL: AccountId = AccountId(3);
/// Traffic-fee escrow: prepaid transfer fees awaiting confirms.
pub const TRAFFIC_ESCROW: AccountId = AccountId(4);

/// Errors returned by engine request handlers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Unknown file id.
    UnknownFile(FileId),
    /// Unknown sector id.
    UnknownSector(SectorId),
    /// The caller does not own the object it is operating on.
    NotOwner,
    /// The object is in the wrong state for the request.
    InvalidState(&'static str),
    /// Parameter/argument validation failed.
    Param(ParamError),
    /// The caller cannot cover a required payment.
    InsufficientFunds,
    /// No sector with enough free space could be sampled
    /// (`collision_retry_limit` exceeded — "almost never happens").
    NoCapacity,
    /// File exceeds `sizeLimit`; segment it first (§VI-C, [`crate::segment`]).
    FileTooLarge {
        /// Requested size.
        size: u64,
        /// The configured `sizeLimit`.
        limit: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownFile(id) => write!(f, "unknown {id}"),
            EngineError::UnknownSector(id) => write!(f, "unknown {id}"),
            EngineError::NotOwner => write!(f, "caller does not own the target"),
            EngineError::InvalidState(what) => write!(f, "invalid state: {what}"),
            EngineError::Param(e) => write!(f, "{e}"),
            EngineError::InsufficientFunds => write!(f, "insufficient funds"),
            EngineError::NoCapacity => write!(f, "no sector with sufficient free space"),
            EngineError::FileTooLarge { size, limit } => {
                write!(
                    f,
                    "file size {size} exceeds sizeLimit {limit}; erasure-segment it"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParamError> for EngineError {
    fn from(e: ParamError) -> Self {
        EngineError::Param(e)
    }
}

/// The result of [`Engine::file_add_segmented`]: the per-segment file ids
/// (data segments first, parity after — index `i` stores segment `i`) plus
/// the segmentation plan with the encoded flat buffer.
#[derive(Debug, Clone)]
pub struct SegmentedUpload {
    /// One file id per segment, in segment order.
    pub files: Vec<FileId>,
    /// The §VI-C plan: flat segment buffer, per-segment value, geometry.
    pub segmented: SegmentedFile,
}

/// Consensus-scheduled tasks (the `Auto_` protocols).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Task {
    CheckAlloc(FileId),
    CheckProof(FileId),
    CheckRefresh(FileId, u32),
    DistributeRent,
}

/// Counters exposed for experiments and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// `File_Add` sampling retries that hit an over-full sector.
    pub add_collisions: u64,
    /// `Auto_Refresh` attempts aborted because the target lacked space.
    pub refresh_collisions: u64,
    /// Refresh transfers started.
    pub refreshes_started: u64,
    /// Refresh transfers completed.
    pub refreshes_completed: u64,
    /// Storage proofs accepted.
    pub proofs_accepted: u64,
    /// Late-proof / failed-transfer punishments applied.
    pub punishments: u64,
    /// Sectors corrupted (deadline misses + injected corruption).
    pub sectors_corrupted: u64,
    /// Files lost (all replicas destroyed).
    pub files_lost: u64,
    /// Total declared value of lost files.
    pub value_lost: TokenAmount,
    /// Compensation actually paid out.
    pub compensation_paid: TokenAmount,
    /// Compensation shortfall (pool ran dry) — must stay zero in any run
    /// within Theorem 4's deposit regime.
    pub compensation_shortfall: TokenAmount,
}

/// The FileInsurer consensus engine.
///
/// # Example
///
/// ```
/// use fi_core::engine::Engine;
/// use fi_core::params::ProtocolParams;
/// use fi_chain::account::{AccountId, TokenAmount};
///
/// let mut params = ProtocolParams::default();
/// params.k = 2; // 2 replicas per minValue file in this tiny demo
/// let mut engine = Engine::new(params).unwrap();
///
/// let provider = AccountId(100);
/// let client = AccountId(200);
/// engine.fund(provider, TokenAmount(1_000_000_000));
/// engine.fund(client, TokenAmount(1_000_000));
///
/// let sector = engine.sector_register(provider, 640).unwrap();
/// let root = fi_crypto::sha256(b"my file");
/// let file = engine
///     .file_add(client, 10, engine.params().min_value, root)
///     .unwrap();
///
/// // The provider confirms both replicas, then time advances past the
/// // transfer window and Auto_CheckAlloc finalises the placement.
/// for (idx, s) in engine.pending_confirms(file) {
///     assert_eq!(s, sector);
///     engine.file_confirm(provider, file, idx, s).unwrap();
/// }
/// let deadline = engine.now() + engine.params().transfer_window(10);
/// engine.advance_to(deadline);
/// assert!(engine.file(file).is_some());
/// ```
#[derive(Debug)]
pub struct Engine {
    params: ProtocolParams,
    chain: BlockChain,
    ledger: Ledger,
    gas: GasSchedule,
    pending: PendingList<Task>,
    sectors: HashMap<SectorId, Sector>,
    cr: HashMap<SectorId, CrAccounting>,
    files: HashMap<FileId, FileDescriptor>,
    alloc: HashMap<(FileId, u32), AllocEntry>,
    /// `(file, index)` pairs touching each sector (as holder or as
    /// reservation target). Kept consistent with `alloc`.
    sector_replicas: HashMap<SectorId, BTreeSet<(FileId, u32)>>,
    sampler: WeightedSampler<SectorId>,
    rng: DetRng,
    next_file_id: u64,
    next_sector_id: u64,
    events: Vec<ProtocolEvent>,
    stats: EngineStats,
    discard_reasons: HashMap<FileId, RemovalReason>,
    op_counter: u64,
}

impl Engine {
    /// Creates an engine with validated parameters at time 0.
    ///
    /// # Errors
    ///
    /// Returns the first violated parameter constraint.
    pub fn new(params: ProtocolParams) -> Result<Self, ParamError> {
        params.validate()?;
        let chain = BlockChain::new(params.seed, params.block_interval);
        let rng = chain.beacon().rng_at(0, "fileinsurer/engine");
        let mut engine = Engine {
            chain,
            ledger: Ledger::new(),
            gas: GasSchedule::default(),
            pending: PendingList::new(),
            sectors: HashMap::new(),
            cr: HashMap::new(),
            files: HashMap::new(),
            alloc: HashMap::new(),
            sector_replicas: HashMap::new(),
            sampler: WeightedSampler::new(),
            rng,
            next_file_id: 0,
            next_sector_id: 0,
            events: Vec::new(),
            stats: EngineStats::default(),
            discard_reasons: HashMap::new(),
            op_counter: 0,
            params,
        };
        let period = engine.rent_period();
        engine.pending.schedule(period, Task::DistributeRent);
        Ok(engine)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Current consensus time.
    pub fn now(&self) -> Time {
        self.chain.now()
    }

    /// The protocol parameters.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// The token ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The underlying chain.
    pub fn chain(&self) -> &BlockChain {
        &self.chain
    }

    /// Counters for tests and experiments.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// A file descriptor, if the file is live.
    pub fn file(&self, id: FileId) -> Option<&FileDescriptor> {
        self.files.get(&id)
    }

    /// A sector, if registered and not removed.
    pub fn sector(&self, id: SectorId) -> Option<&Sector> {
        self.sectors.get(&id)
    }

    /// DRep accounting for a sector.
    pub fn cr_accounting(&self, id: SectorId) -> Option<&CrAccounting> {
        self.cr.get(&id)
    }

    /// An allocation entry.
    pub fn alloc_entry(&self, file: FileId, index: u32) -> Option<&AllocEntry> {
        self.alloc.get(&(file, index))
    }

    /// Live files (ids).
    pub fn file_ids(&self) -> Vec<FileId> {
        let mut ids: Vec<_> = self.files.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Live sectors (ids).
    pub fn sector_ids(&self) -> Vec<SectorId> {
        let mut ids: Vec<_> = self.sectors.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Protocol events logged so far (in order).
    pub fn events(&self) -> &[ProtocolEvent] {
        &self.events
    }

    /// Removes and returns the logged events.
    pub fn drain_events(&mut self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut self.events)
    }

    /// Sum of deposits currently pledged by live sectors.
    pub fn total_pledged_deposits(&self) -> TokenAmount {
        self.sectors.values().map(|s| s.deposit).sum()
    }

    /// A commitment over the engine state, folded into sealed blocks.
    pub fn state_root(&self) -> Hash256 {
        keyed_hash(
            "fileinsurer/state",
            &[
                &self.chain.now().to_be_bytes(),
                &(self.files.len() as u64).to_be_bytes(),
                &(self.sectors.len() as u64).to_be_bytes(),
                &self.ledger.total_supply().0.to_be_bytes(),
                &self.op_counter.to_be_bytes(),
            ],
        )
    }

    // ------------------------------------------------------------------
    // Simulation conveniences
    // ------------------------------------------------------------------

    /// Mints tokens into an account (simulation funding).
    pub fn fund(&mut self, account: AccountId, amount: TokenAmount) {
        self.ledger.mint(account, amount);
    }

    /// Burns tokens from an account (simulation counterpart of [`Engine::fund`],
    /// e.g. to model a client going broke).
    ///
    /// # Panics
    ///
    /// Panics if the account lacks the balance.
    pub fn burn_for_test(&mut self, account: AccountId, amount: TokenAmount) {
        self.ledger
            .burn(account, amount)
            .expect("burn_for_test within balance");
    }

    /// Replaces the gas fee schedule (e.g. [`GasSchedule::free`] for
    /// experiments isolating protocol money flows from gas noise).
    pub fn set_gas_schedule(&mut self, schedule: GasSchedule) {
        self.gas = schedule;
    }

    /// Replica placements awaiting a `File_Confirm`, as
    /// `(index, target sector)` pairs — what an honest provider would
    /// confirm next for `file`.
    pub fn pending_confirms(&self, file: FileId) -> Vec<(u32, SectorId)> {
        let Some(desc) = self.files.get(&file) else {
            return Vec::new();
        };
        (0..desc.cp)
            .filter_map(|i| {
                let e = self.alloc.get(&(file, i))?;
                if e.state == AllocState::Alloc {
                    e.next.map(|s| (i, s))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Simulates every honest provider: confirms all pending placements on
    /// non-failed sectors and submits storage proofs for all held replicas.
    /// Returns `(confirms, proofs)` counts.
    pub fn honest_providers_act(&mut self) -> (u64, u64) {
        let mut confirms = 0u64;
        let mut proofs = 0u64;
        // Confirms.
        let pending: Vec<(FileId, u32, SectorId)> = self
            .alloc
            .iter()
            .filter(|(_, e)| e.state == AllocState::Alloc)
            .filter_map(|(&(f, i), e)| e.next.map(|s| (f, i, s)))
            .collect();
        let mut ordered = pending;
        ordered.sort_unstable();
        for (f, i, s) in ordered {
            let Some(sector) = self.sectors.get(&s) else {
                continue;
            };
            if sector.physically_failed {
                continue;
            }
            let owner = sector.owner;
            if self.file_confirm(owner, f, i, s).is_ok() {
                confirms += 1;
            }
        }
        // Proofs.
        let held: Vec<(FileId, u32, SectorId)> = self
            .alloc
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e.state,
                    AllocState::Normal | AllocState::Alloc | AllocState::Confirm
                )
            })
            .filter_map(|(&(f, i), e)| e.prev.map(|s| (f, i, s)))
            .collect();
        let mut ordered = held;
        ordered.sort_unstable();
        for (f, i, s) in ordered {
            let Some(sector) = self.sectors.get(&s) else {
                continue;
            };
            if sector.physically_failed || sector.state == SectorState::Corrupted {
                continue;
            }
            let owner = sector.owner;
            if self.file_prove(owner, f, i, s).is_ok() {
                proofs += 1;
            }
        }
        (confirms, proofs)
    }

    // ------------------------------------------------------------------
    // Sector requests (Fig. 6)
    // ------------------------------------------------------------------

    /// `Sector_Register`: pledges the deposit and registers a sector filled
    /// with Capacity Replicas.
    ///
    /// # Errors
    ///
    /// * [`EngineError::Param`] — capacity not a multiple of `minCapacity`;
    /// * [`EngineError::InsufficientFunds`] — owner cannot cover deposit.
    pub fn sector_register(
        &mut self,
        owner: AccountId,
        capacity: u64,
    ) -> Result<SectorId, EngineError> {
        self.params.validate_capacity(capacity)?;
        self.charge_gas(owner, &[Op::RequestBase, Op::SectorAdmin])?;
        let deposit = self.params.sector_deposit(capacity);
        self.ledger
            .transfer(owner, DEPOSIT_ESCROW, deposit)
            .map_err(|_| EngineError::InsufficientFunds)?;
        let id = SectorId(self.next_sector_id);
        self.next_sector_id += 1;
        self.sectors.insert(
            id,
            Sector {
                owner,
                id,
                capacity,
                free_cap: capacity,
                state: SectorState::Normal,
                deposit,
                replica_count: 0,
                physically_failed: false,
            },
        );
        self.cr
            .insert(id, CrAccounting::new(capacity, self.params.min_capacity));
        self.sampler.insert(id, capacity);
        self.sector_replicas.insert(id, BTreeSet::new());
        self.log(ProtocolEvent::SectorRegistered {
            sector: id,
            owner,
            deposit,
        });
        if self.params.poisson_rebalance {
            self.poisson_swap_in(id);
        }
        Ok(id)
    }

    /// `Sector_Disable`: the sector stops accepting new files and drains
    /// via refreshes; the deposit returns once it is empty.
    ///
    /// # Errors
    ///
    /// * [`EngineError::UnknownSector`] / [`EngineError::NotOwner`];
    /// * [`EngineError::InvalidState`] if already disabled or corrupted.
    pub fn sector_disable(
        &mut self,
        caller: AccountId,
        sector: SectorId,
    ) -> Result<(), EngineError> {
        self.charge_gas(caller, &[Op::RequestBase, Op::SectorAdmin])?;
        let s = self
            .sectors
            .get_mut(&sector)
            .ok_or(EngineError::UnknownSector(sector))?;
        if s.owner != caller {
            return Err(EngineError::NotOwner);
        }
        if s.state != SectorState::Normal {
            return Err(EngineError::InvalidState("sector not in normal state"));
        }
        s.state = SectorState::Disabled;
        self.sampler.remove(&sector);
        self.log(ProtocolEvent::SectorDisabled { sector });
        self.op_counter += 1;
        self.maybe_remove_drained(sector);
        Ok(())
    }

    // ------------------------------------------------------------------
    // File requests (Figs. 4–5)
    // ------------------------------------------------------------------

    /// `File_Add`: samples `cp = k·value/minValue` capacity-weighted
    /// sectors, reserves space, escrows traffic fees, and schedules
    /// `Auto_CheckAlloc` after the transfer window.
    ///
    /// # Errors
    ///
    /// * [`EngineError::FileTooLarge`] — must be erasure-segmented (§VI-C);
    /// * [`EngineError::Param`] — value not a multiple of `minValue`;
    /// * [`EngineError::NoCapacity`] — sampling kept hitting full sectors;
    /// * [`EngineError::InsufficientFunds`] — traffic-fee escrow failed.
    pub fn file_add(
        &mut self,
        client: AccountId,
        size: u64,
        value: TokenAmount,
        merkle_root: Hash256,
    ) -> Result<FileId, EngineError> {
        if size == 0 {
            return Err(EngineError::InvalidState("file size must be positive"));
        }
        if size > self.params.size_limit {
            return Err(EngineError::FileTooLarge {
                size,
                limit: self.params.size_limit,
            });
        }
        let cp = self.params.backup_count(value)?;
        self.charge_gas(client, &[Op::RequestBase, Op::AllocWrite, Op::TaskSchedule])?;

        // Escrow traffic fees for all replicas up front (§IV-A.1: committed
        // before transmission).
        let escrow = TokenAmount(self.params.traffic_fee(size).0 * cp as u128);
        self.ledger
            .transfer(client, TRAFFIC_ESCROW, escrow)
            .map_err(|_| EngineError::InsufficientFunds)?;

        // Sample cp sectors i.i.d. proportional to capacity, re-sampling on
        // insufficient free space (Fig. 4's "almost never happens" loop).
        let mut targets = Vec::with_capacity(cp as usize);
        for _ in 0..cp {
            match self.sample_sector_with_space(size) {
                Some(s) => {
                    // Reserve immediately so later draws see reduced space.
                    self.reserve(s, size);
                    targets.push(s);
                }
                None => {
                    // Roll back reservations and the escrow.
                    for &s in &targets {
                        self.release_reservation(s, size);
                    }
                    self.ledger
                        .transfer(TRAFFIC_ESCROW, client, escrow)
                        .expect("escrow refund");
                    return Err(EngineError::NoCapacity);
                }
            }
        }

        let id = FileId(self.next_file_id);
        self.next_file_id += 1;
        self.files.insert(
            id,
            FileDescriptor {
                id,
                owner: client,
                size,
                value,
                merkle_root,
                cp,
                cntdown: -1,
                state: FileState::Allocating,
            },
        );
        for (i, &s) in targets.iter().enumerate() {
            self.alloc.insert((id, i as u32), AllocEntry::allocating(s));
            self.sector_replicas
                .get_mut(&s)
                .expect("sector index")
                .insert((id, i as u32));
        }
        let deadline = self.now() + self.params.transfer_window(size);
        self.pending.schedule(deadline, Task::CheckAlloc(id));
        self.log(ProtocolEvent::FileAdded { file: id, cp });
        Ok(id)
    }

    /// §VI-C front door: erasure-segments an oversized `payload` through the
    /// flat-buffer fast path and registers every segment as an individual
    /// file, committing each one to a Merkle root hashed directly from the
    /// shared segment buffer (no per-segment copies).
    ///
    /// On a mid-way failure (`NoCapacity`, funds), already-registered
    /// segments are rolled back — marked discarded directly, with no gas
    /// charge, so the rollback cannot itself fail when the client is out
    /// of funds — before the error is returned.
    ///
    /// # Errors
    ///
    /// * [`EngineError::InvalidState`] — the payload already fits
    ///   `sizeLimit` (use [`Engine::file_add`]) or needs more than 127 data
    ///   shards;
    /// * any [`Engine::file_add`] error for an individual segment.
    pub fn file_add_segmented(
        &mut self,
        client: AccountId,
        payload: &[u8],
        value: TokenAmount,
    ) -> Result<SegmentedUpload, EngineError> {
        let segmented = segment_file(payload, value, &self.params).map_err(|e| match e {
            SegmentError::NotNeeded { .. } => {
                EngineError::InvalidState("payload fits sizeLimit; use file_add")
            }
            SegmentError::TooLarge => {
                EngineError::InvalidState("file exceeds 127 x sizeLimit; cannot segment")
            }
            SegmentError::Erasure(_) => EngineError::InvalidState("erasure coding failed"),
        })?;
        let seg_size = segmented.segment_len() as u64;
        let roots = segmented.segment_roots();
        let mut files = Vec::with_capacity(roots.len());
        for root in roots {
            match self.file_add(client, seg_size, segmented.segment_value, root) {
                Ok(id) => files.push(id),
                Err(e) => {
                    // Consensus-side rollback, not a client request: mark the
                    // partial upload discarded without charging gas (the
                    // usual failure here is the client running dry, so a
                    // gas-charging discard would fail for the same reason
                    // and orphan the segments).
                    for &id in &files {
                        if let Some(f) = self.files.get_mut(&id) {
                            f.state = FileState::Discarded;
                            self.discard_reasons
                                .insert(id, RemovalReason::ClientDiscard);
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(SegmentedUpload { files, segmented })
    }

    /// Recovery path for a segmented upload: looks up which segments still
    /// have live holders ([`Engine::file_get`] per segment) and reassembles
    /// the original payload from the surviving ones (read straight from the
    /// upload's flat buffer), recomputing only what was lost.
    ///
    /// # Errors
    ///
    /// * [`Engine::file_get`] errors (gas);
    /// * [`EngineError::InvalidState`] when fewer than half the segments
    ///   survive — the insurance case: compensation, not recovery.
    pub fn file_get_segmented(
        &mut self,
        caller: AccountId,
        upload: &SegmentedUpload,
    ) -> Result<Vec<u8>, EngineError> {
        let mut received: Vec<Option<&[u8]>> = Vec::with_capacity(upload.files.len());
        for (i, &file) in upload.files.iter().enumerate() {
            let alive = match self.file_get(caller, file) {
                Ok(holders) => !holders.is_empty(),
                Err(EngineError::UnknownFile(_)) => false,
                Err(e) => return Err(e),
            };
            received.push(alive.then(|| upload.segmented.segment(i)));
        }
        reassemble_file(&upload.segmented, &received)
            .map_err(|_| EngineError::InvalidState("fewer than half the segments survive"))
    }

    /// `File_Discard`: marks the file for removal at its next
    /// `Auto_CheckProof` (Fig. 4).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownFile`] / [`EngineError::NotOwner`].
    pub fn file_discard(&mut self, caller: AccountId, file: FileId) -> Result<(), EngineError> {
        self.charge_gas(caller, &[Op::RequestBase])?;
        let f = self
            .files
            .get_mut(&file)
            .ok_or(EngineError::UnknownFile(file))?;
        if f.owner != caller {
            return Err(EngineError::NotOwner);
        }
        f.state = FileState::Discarded;
        self.discard_reasons
            .insert(file, RemovalReason::ClientDiscard);
        self.op_counter += 1;
        Ok(())
    }

    /// `File_Confirm` (Fig. 5): the provider of the target sector
    /// acknowledges receiving replica `index` of `file`; the traffic fee
    /// for this replica is released to the provider.
    ///
    /// # Errors
    ///
    /// Ownership/state violations per Fig. 5's checks.
    pub fn file_confirm(
        &mut self,
        caller: AccountId,
        file: FileId,
        index: u32,
        sector: SectorId,
    ) -> Result<(), EngineError> {
        self.charge_gas(caller, &[Op::RequestBase, Op::AllocRead])?;
        let s = self
            .sectors
            .get(&sector)
            .ok_or(EngineError::UnknownSector(sector))?;
        if s.owner != caller {
            return Err(EngineError::NotOwner);
        }
        let size = self
            .files
            .get(&file)
            .ok_or(EngineError::UnknownFile(file))?
            .size;
        let e = self
            .alloc
            .get_mut(&(file, index))
            .ok_or(EngineError::UnknownFile(file))?;
        if e.next != Some(sector) || e.state != AllocState::Alloc {
            return Err(EngineError::InvalidState(
                "allocation is not awaiting this sector's confirm",
            ));
        }
        e.state = AllocState::Confirm;
        let fee = self.params.traffic_fee(size);
        self.ledger.transfer_up_to(TRAFFIC_ESCROW, caller, fee);
        self.op_counter += 1;
        Ok(())
    }

    /// `File_Prove` (Fig. 5): records a storage proof for replica `index`
    /// held by `sector`. The proof itself is the simulated WindowPoSt: it
    /// is accepted iff the sector still physically holds its content.
    ///
    /// # Errors
    ///
    /// Ownership/state violations, or [`EngineError::InvalidState`] when
    /// the sector's content is physically gone (a real prover could not
    /// produce a valid proof).
    pub fn file_prove(
        &mut self,
        caller: AccountId,
        file: FileId,
        index: u32,
        sector: SectorId,
    ) -> Result<(), EngineError> {
        self.charge_gas(caller, &[Op::RequestBase, Op::ProofVerify])?;
        let s = self
            .sectors
            .get(&sector)
            .ok_or(EngineError::UnknownSector(sector))?;
        if s.owner != caller {
            return Err(EngineError::NotOwner);
        }
        if s.physically_failed || s.state == SectorState::Corrupted {
            return Err(EngineError::InvalidState("sector cannot produce proofs"));
        }
        let e = self
            .alloc
            .get_mut(&(file, index))
            .ok_or(EngineError::UnknownFile(file))?;
        if e.prev != Some(sector) {
            return Err(EngineError::InvalidState(
                "sector does not hold this replica",
            ));
        }
        e.last = Some(self.chain.now());
        self.stats.proofs_accepted += 1;
        self.op_counter += 1;
        Ok(())
    }

    /// `File_Get`: returns the live holders of `file` — the retrieval
    /// market then proceeds off-chain (§III-E).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownFile`] for unknown ids.
    pub fn file_get(
        &mut self,
        caller: AccountId,
        file: FileId,
    ) -> Result<Vec<(SectorId, AccountId)>, EngineError> {
        self.charge_gas(caller, &[Op::RequestBase, Op::AllocRead])?;
        let f = self
            .files
            .get(&file)
            .ok_or(EngineError::UnknownFile(file))?;
        let mut holders = Vec::new();
        for i in 0..f.cp {
            if let Some(e) = self.alloc.get(&(file, i)) {
                if e.state == AllocState::Normal || e.state == AllocState::Alloc {
                    if let Some(sid) = e.prev {
                        if let Some(s) = self.sectors.get(&sid) {
                            if s.state != SectorState::Corrupted && !s.physically_failed {
                                holders.push((sid, s.owner));
                            }
                        }
                    }
                }
            }
        }
        Ok(holders)
    }

    // ------------------------------------------------------------------
    // Adversary / fault injection
    // ------------------------------------------------------------------

    /// Injects a *silent* physical failure: the provider can no longer
    /// produce storage proofs; the network discovers it via the
    /// `ProofDeadline` machinery (the realistic path).
    ///
    /// # Panics
    ///
    /// Panics on unknown sector.
    pub fn fail_sector_silently(&mut self, sector: SectorId) {
        self.sectors
            .get_mut(&sector)
            .expect("unknown sector")
            .physically_failed = true;
        self.op_counter += 1;
    }

    /// Corrupts a sector *with immediate detection*: deposit confiscated,
    /// replicas voided, mid-refresh transfers resolved (used by
    /// experiments that don't simulate the proof timeline).
    ///
    /// # Panics
    ///
    /// Panics on unknown sector.
    pub fn corrupt_sector_now(&mut self, sector: SectorId) {
        let s = self.sectors.get_mut(&sector).expect("unknown sector");
        if s.state == SectorState::Corrupted {
            return;
        }
        s.state = SectorState::Corrupted;
        s.physically_failed = true;
        let confiscated = s.deposit;
        s.deposit = TokenAmount::ZERO;
        self.sampler.remove(&sector);
        self.ledger
            .transfer(DEPOSIT_ESCROW, COMPENSATION_POOL, confiscated)
            .expect("deposit escrow covers pledged deposits");
        self.stats.sectors_corrupted += 1;
        self.log(ProtocolEvent::SectorCorrupted {
            sector,
            confiscated,
        });
        self.void_sector_content(sector);
        self.op_counter += 1;
    }

    // ------------------------------------------------------------------
    // Time & Auto tasks
    // ------------------------------------------------------------------

    /// Advances consensus time to `target`, executing every `Auto_*` task
    /// that falls due, in timestamp order.
    ///
    /// # Panics
    ///
    /// Panics if `target` is in the past.
    pub fn advance_to(&mut self, target: Time) {
        assert!(target >= self.now(), "time cannot rewind");
        while let Some(t) = self.pending.next_time() {
            if t > target {
                break;
            }
            let root = self.state_root();
            self.chain.advance_time(t, root);
            for (_, task) in self.pending.pop_due(t) {
                self.execute(task);
            }
        }
        let root = self.state_root();
        self.chain.advance_time(target, root);
    }

    /// Advances by one block interval.
    pub fn tick(&mut self) {
        self.advance_to(self.now() + self.params.block_interval);
    }

    fn execute(&mut self, task: Task) {
        match task {
            Task::CheckAlloc(f) => self.auto_check_alloc(f),
            Task::CheckProof(f) => self.auto_check_proof(f),
            Task::CheckRefresh(f, i) => self.auto_check_refresh(f, i),
            Task::DistributeRent => self.auto_distribute_rent(),
        }
        self.op_counter += 1;
    }

    /// `Auto_CheckAlloc` (Fig. 7).
    fn auto_check_alloc(&mut self, file: FileId) {
        let Some(desc) = self.files.get(&file) else {
            return;
        };
        let cp = desc.cp;
        let owner = desc.owner;

        // First pass: all entries must be Confirm or Corrupted.
        let all_ok = (0..cp).all(|i| {
            matches!(
                self.alloc.get(&(file, i)).map(|e| e.state),
                Some(AllocState::Confirm) | Some(AllocState::Corrupted)
            )
        });
        if !all_ok {
            // Upload failed: refund outstanding traffic escrow for
            // unconfirmed replicas, release reservations, drop the file.
            let size = self.files[&file].size;
            let unconfirmed = (0..cp)
                .filter(|&i| self.alloc.get(&(file, i)).map(|e| e.state) == Some(AllocState::Alloc))
                .count() as u128;
            let refund = TokenAmount(self.params.traffic_fee(size).0 * unconfirmed);
            self.ledger.transfer_up_to(TRAFFIC_ESCROW, owner, refund);
            self.remove_file_completely(file, RemovalReason::UploadFailed);
            return;
        }

        // Second pass: finalise.
        let now = self.now();
        for i in 0..cp {
            let e = self.alloc.get_mut(&(file, i)).expect("entry exists");
            match e.state {
                AllocState::Confirm => {
                    e.prev = e.next.take();
                    e.last = Some(now);
                    e.state = AllocState::Normal;
                }
                AllocState::Corrupted => {
                    e.prev = None;
                    e.next = None;
                    e.last = None;
                }
                _ => unreachable!("checked above"),
            }
        }
        let desc = self.files.get_mut(&file).expect("file exists");
        // A discard issued during the transfer window (File_Discard, or the
        // file_add_segmented rollback) must survive finalisation: keep the
        // state so the first Auto_CheckProof removes the file instead of it
        // silently reviving as Normal.
        if desc.state != FileState::Discarded {
            desc.state = FileState::Normal;
        }
        desc.cntdown = Self::sample_cntdown(&mut self.rng, self.params.avg_refresh);
        self.pending
            .schedule(now + self.params.proof_cycle, Task::CheckProof(file));
        self.log(ProtocolEvent::FileStored { file });
    }

    /// `Auto_CheckProof` (Fig. 8).
    fn auto_check_proof(&mut self, file: FileId) {
        let Some(desc) = self.files.get(&file) else {
            return;
        };
        let owner = desc.owner;
        let size = desc.size;
        let cp = desc.cp;
        let now = self.now();

        // 1. Charge the next cycle (rent + prepaid gas) or force-discard.
        if desc.state == FileState::Normal {
            let cost = self.params.cycle_cost(size, cp);
            if self.ledger.balance(owner) < cost {
                let desc = self.files.get_mut(&file).expect("file exists");
                desc.state = FileState::Discarded;
                self.discard_reasons
                    .insert(file, RemovalReason::InsufficientFunds);
            } else {
                let rent = TokenAmount(self.params.unit_rent.0 * size as u128 * cp as u128);
                let gas = cost - rent;
                self.ledger
                    .transfer(owner, RENT_POOL, rent)
                    .expect("balance checked");
                self.ledger.burn(owner, gas).expect("balance checked");
            }
        }

        // 2. Late-proof checks per entry.
        for i in 0..cp {
            let Some(e) = self.alloc.get(&(file, i)) else {
                continue;
            };
            if e.state == AllocState::Corrupted {
                continue;
            }
            let Some(holder) = e.prev else { continue };
            let holder_corrupted = self
                .sectors
                .get(&holder)
                .map(|s| s.state == SectorState::Corrupted)
                .unwrap_or(true);
            if holder_corrupted {
                continue;
            }
            let last = e.last.unwrap_or(0);
            if now >= last + self.params.proof_deadline {
                self.confiscate_and_corrupt(holder);
            } else if now >= last + self.params.proof_due {
                self.punish(holder);
            }
        }

        // 3. Removal / loss / reschedule.
        let state = self.files.get(&file).map(|f| f.state);
        if state == Some(FileState::Discarded) {
            let reason = self
                .discard_reasons
                .remove(&file)
                .unwrap_or(RemovalReason::ClientDiscard);
            self.remove_file_completely(file, reason);
            return;
        }
        let all_corrupted = (0..cp)
            .all(|i| self.alloc.get(&(file, i)).map(|e| e.state) == Some(AllocState::Corrupted));
        if all_corrupted {
            self.compensate_loss(file);
            return;
        }
        self.pending
            .schedule(now + self.params.proof_cycle, Task::CheckProof(file));
        let desc = self.files.get_mut(&file).expect("file exists");
        desc.cntdown -= 1;
        if desc.cntdown <= 0 {
            let i = self.rng.below(cp as u64) as u32; // RandomIndex(f)
            self.auto_refresh(file, i);
        }
    }

    /// `Auto_Refresh` (Fig. 9).
    fn auto_refresh(&mut self, file: FileId, index: u32) {
        let Some(desc) = self.files.get(&file) else {
            return;
        };
        let size = desc.size;
        let entry_state = self.alloc.get(&(file, index)).map(|e| e.state);
        if entry_state != Some(AllocState::Normal) {
            // The chosen replica is corrupted or already mid-move; re-arm.
            let avg = self.params.avg_refresh;
            if let Some(d) = self.files.get_mut(&file) {
                d.cntdown = Self::sample_cntdown(&mut self.rng, avg);
            }
            return;
        }

        let target = {
            let mut rng = self.rng.clone();
            let choice = self.sampler.sample(&mut rng).copied();
            self.rng = rng;
            choice
        };
        let fits = target
            .and_then(|s| self.sectors.get(&s))
            .map(|s| s.free_cap >= size)
            .unwrap_or(false);
        if !fits {
            // Collision — "almost never happens" (Fig. 9 else-branch).
            self.stats.refresh_collisions += 1;
            self.log(ProtocolEvent::RefreshCollision { file, index });
            let avg = self.params.avg_refresh;
            if let Some(d) = self.files.get_mut(&file) {
                d.cntdown = Self::sample_cntdown(&mut self.rng, avg);
            }
            return;
        }
        let target = target.expect("fits implies some");
        self.reserve(target, size);
        self.sector_replicas
            .get_mut(&target)
            .expect("sector index")
            .insert((file, index));
        let e = self.alloc.get_mut(&(file, index)).expect("entry exists");
        let from = e.prev;
        e.next = Some(target);
        e.state = AllocState::Alloc;
        let deadline = self.now() + self.params.transfer_window(size);
        self.pending
            .schedule(deadline, Task::CheckRefresh(file, index));
        self.stats.refreshes_started += 1;
        self.log(ProtocolEvent::ReplicaSwap {
            file,
            index,
            from,
            to: target,
        });
    }

    /// `Auto_CheckRefresh` (Fig. 9).
    fn auto_check_refresh(&mut self, file: FileId, index: u32) {
        let Some(desc) = self.files.get(&file) else {
            return;
        };
        let size = desc.size;
        let cp = desc.cp;
        let avg = self.params.avg_refresh;
        let now = self.now();
        let Some(entry) = self.alloc.get(&(file, index)) else {
            return;
        };
        let (state, prev, next) = (entry.state, entry.prev, entry.next);

        match state {
            AllocState::Confirm => {
                // Transfer succeeded: release the old holder, flip over.
                let e = self.alloc.get_mut(&(file, index)).expect("entry");
                e.prev = next;
                e.next = None;
                e.last = Some(now);
                e.state = AllocState::Normal;
                if let Some(old_sector) = prev {
                    if prev == next {
                        // Self-move: free the transient second copy but keep
                        // the replica's membership in the sector index.
                        self.release_reservation(old_sector, size);
                    } else {
                        self.release_replica(old_sector, file, index, size);
                    }
                }
                self.stats.refreshes_completed += 1;
                if let Some(d) = self.files.get_mut(&file) {
                    d.cntdown = Self::sample_cntdown(&mut self.rng, avg);
                }
            }
            AllocState::Alloc => {
                // Not confirmed in time: punish the tardy target and every
                // current holder (Fig. 9: "punish entry.next; for j ∈ [f.cp]
                // punish allocTable[f,j].prev"), then retry the refresh.
                if let Some(t) = next {
                    self.punish(t);
                    self.release_reservation_indexed(t, file, index, size);
                }
                let e = self.alloc.get_mut(&(file, index)).expect("entry");
                e.next = None;
                e.state = AllocState::Normal;
                let mut holders = Vec::new();
                for j in 0..cp {
                    if let Some(other) = self.alloc.get(&(file, j)) {
                        if other.state != AllocState::Corrupted {
                            if let Some(h) = other.prev {
                                holders.push(h);
                            }
                        }
                    }
                }
                for h in holders {
                    self.punish(h);
                }
                self.auto_refresh(file, index);
            }
            // Resolved by corruption handling in the meantime.
            AllocState::Normal | AllocState::Corrupted => {}
        }
    }

    /// Rent distribution at period end (§IV-A.2): pro rata capacity over
    /// sectors functioning this period.
    fn auto_distribute_rent(&mut self) {
        let pool = self.ledger.balance(RENT_POOL);
        let live: Vec<(SectorId, AccountId, u64)> = {
            let mut v: Vec<_> = self
                .sectors
                .values()
                .filter(|s| s.state != SectorState::Corrupted)
                .map(|s| (s.id, s.owner, s.capacity))
                .collect();
            v.sort_unstable_by_key(|(id, _, _)| *id);
            v
        };
        let total_capacity: u64 = live.iter().map(|(_, _, c)| c).sum();
        let mut paid = TokenAmount::ZERO;
        if !pool.is_zero() && total_capacity > 0 {
            for (_, owner, capacity) in &live {
                let share = pool.mul_ratio(*capacity as u128, total_capacity as u128);
                if !share.is_zero() {
                    self.ledger
                        .transfer(RENT_POOL, *owner, share)
                        .expect("pool covers shares");
                    paid += share;
                }
            }
        }
        self.log(ProtocolEvent::RentDistributed { total: paid });
        let next = self.now() + self.rent_period();
        self.pending.schedule(next, Task::DistributeRent);
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn rent_period(&self) -> Time {
        self.params.proof_cycle * self.params.rent_period_cycles as Time
    }

    fn log(&mut self, event: ProtocolEvent) {
        self.chain.log(ChainEvent::new(
            event.kind(),
            format!("{event:?}").into_bytes(),
        ));
        self.events.push(event);
        self.op_counter += 1;
    }

    fn charge_gas(&mut self, account: AccountId, ops: &[Op]) -> Result<(), EngineError> {
        let gas: u64 = ops.iter().map(|&op| self.gas.price(op)).sum();
        let fee = self.gas.to_tokens(gas);
        self.ledger
            .burn(account, fee)
            .map_err(|_| EngineError::InsufficientFunds)
    }

    fn sample_cntdown(rng: &mut DetRng, avg_refresh: f64) -> i64 {
        (rng.sample_exp(avg_refresh).ceil() as i64).max(1)
    }

    /// Samples a sector with at least `size` free capacity, re-sampling up
    /// to the collision retry limit.
    fn sample_sector_with_space(&mut self, size: u64) -> Option<SectorId> {
        let mut rng = self.rng.clone();
        let mut result = None;
        for _ in 0..=self.params.collision_retry_limit {
            let Some(&candidate) = self.sampler.sample(&mut rng) else {
                break;
            };
            let ok = self
                .sectors
                .get(&candidate)
                .map(|s| s.free_cap >= size)
                .unwrap_or(false);
            if ok {
                result = Some(candidate);
                break;
            }
            self.stats.add_collisions += 1;
        }
        self.rng = rng;
        result
    }

    fn reserve(&mut self, sector: SectorId, size: u64) {
        let s = self.sectors.get_mut(&sector).expect("sector exists");
        debug_assert!(s.free_cap >= size, "reservation exceeds free space");
        s.free_cap -= size;
        s.replica_count += 1;
        self.cr
            .get_mut(&sector)
            .expect("cr accounting")
            .add_file(size);
    }

    fn release_reservation(&mut self, sector: SectorId, size: u64) {
        if let Some(s) = self.sectors.get_mut(&sector) {
            if s.state == SectorState::Corrupted {
                return;
            }
            s.free_cap += size;
            s.replica_count -= 1;
            self.cr
                .get_mut(&sector)
                .expect("cr accounting")
                .remove_file(size);
            self.maybe_remove_drained(sector);
        }
    }

    fn release_reservation_indexed(
        &mut self,
        sector: SectorId,
        file: FileId,
        index: u32,
        size: u64,
    ) {
        if let Some(set) = self.sector_replicas.get_mut(&sector) {
            set.remove(&(file, index));
        }
        self.release_reservation(sector, size);
    }

    /// Releases a stored replica (same as a reservation plus index upkeep).
    fn release_replica(&mut self, sector: SectorId, file: FileId, index: u32, size: u64) {
        self.release_reservation_indexed(sector, file, index, size);
    }

    /// Removes a drained disabled sector and refunds its deposit.
    fn maybe_remove_drained(&mut self, sector: SectorId) {
        let remove = self
            .sectors
            .get(&sector)
            .map(|s| s.state == SectorState::Disabled && s.replica_count == 0)
            .unwrap_or(false);
        if remove {
            let s = self.sectors.remove(&sector).expect("checked");
            self.cr.remove(&sector);
            self.sector_replicas.remove(&sector);
            self.ledger
                .transfer(DEPOSIT_ESCROW, s.owner, s.deposit)
                .expect("escrow covers deposit");
            self.log(ProtocolEvent::SectorRemoved {
                sector,
                refunded: s.deposit,
            });
        }
    }

    fn punish(&mut self, sector: SectorId) {
        let Some(s) = self.sectors.get_mut(&sector) else {
            return;
        };
        if s.state == SectorState::Corrupted {
            return;
        }
        let amount = self.params.punishment(s.deposit).min(s.deposit);
        if amount.is_zero() {
            return;
        }
        s.deposit = s.deposit - amount;
        self.ledger
            .transfer(DEPOSIT_ESCROW, COMPENSATION_POOL, amount)
            .expect("escrow covers punishment");
        self.stats.punishments += 1;
        self.log(ProtocolEvent::ProviderPunished { sector, amount });
    }

    /// Deadline miss: confiscate the whole deposit and void the sector.
    fn confiscate_and_corrupt(&mut self, sector: SectorId) {
        let Some(s) = self.sectors.get_mut(&sector) else {
            return;
        };
        if s.state == SectorState::Corrupted {
            return;
        }
        s.state = SectorState::Corrupted;
        s.physically_failed = true;
        let confiscated = s.deposit;
        s.deposit = TokenAmount::ZERO;
        self.sampler.remove(&sector);
        self.ledger
            .transfer(DEPOSIT_ESCROW, COMPENSATION_POOL, confiscated)
            .expect("escrow covers deposit");
        self.stats.sectors_corrupted += 1;
        self.log(ProtocolEvent::SectorCorrupted {
            sector,
            confiscated,
        });
        self.void_sector_content(sector);
    }

    /// Resolves every allocation entry touching a newly corrupted sector.
    fn void_sector_content(&mut self, sector: SectorId) {
        let touched: Vec<(FileId, u32)> = self
            .sector_replicas
            .get(&sector)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        let now = self.now();
        for (file, index) in touched {
            let size = self.files.get(&file).map(|f| f.size).unwrap_or(0);
            let Some(e) = self.alloc.get(&(file, index)) else {
                continue;
            };
            let (prev, next, state) = (e.prev, e.next, e.state);
            let incoming = next == Some(sector);
            let holding = prev == Some(sector);

            if incoming && holding {
                // Self-move inside the corrupted sector: everything gone.
                let e = self.alloc.get_mut(&(file, index)).expect("entry");
                e.state = AllocState::Corrupted;
                e.next = None;
                continue;
            }
            if incoming {
                // Reservation on the dead sector; the replica (if any)
                // still lives at prev.
                let e = self.alloc.get_mut(&(file, index)).expect("entry");
                e.next = None;
                if prev.is_some() && state != AllocState::Corrupted {
                    e.state = AllocState::Normal; // revert the move
                } else if prev.is_none() {
                    e.state = AllocState::Corrupted; // initial placement died
                }
                continue;
            }
            if holding {
                match state {
                    AllocState::Normal => {
                        let e = self.alloc.get_mut(&(file, index)).expect("entry");
                        e.state = AllocState::Corrupted;
                    }
                    AllocState::Alloc => {
                        // Mid-refresh, source destroyed before handoff: the
                        // pending copy at `next` is unverified raw space —
                        // release it and mark the replica lost.
                        if let Some(n) = next {
                            self.release_reservation_indexed(n, file, index, size);
                        }
                        let e = self.alloc.get_mut(&(file, index)).expect("entry");
                        e.next = None;
                        e.state = AllocState::Corrupted;
                    }
                    AllocState::Confirm => {
                        // The new sector already confirmed holding the
                        // replica: finalise the move early.
                        let e = self.alloc.get_mut(&(file, index)).expect("entry");
                        e.prev = next;
                        e.next = None;
                        e.last = Some(now);
                        e.state = AllocState::Normal;
                        self.stats.refreshes_completed += 1;
                    }
                    AllocState::Corrupted => {}
                }
            }
        }
        self.sector_replicas.remove(&sector);
    }

    /// Full compensation on loss (Fig. 8, §IV-B).
    fn compensate_loss(&mut self, file: FileId) {
        let Some(desc) = self.files.get(&file) else {
            return;
        };
        let owner = desc.owner;
        let value = desc.value;
        let paid = self.ledger.transfer_up_to(COMPENSATION_POOL, owner, value);
        self.stats.files_lost += 1;
        self.stats.value_lost += value;
        self.stats.compensation_paid += paid;
        self.stats.compensation_shortfall += value - paid;
        self.log(ProtocolEvent::FileLost {
            file,
            value,
            compensated: paid,
        });
        self.remove_file_completely(file, RemovalReason::Lost);
    }

    /// Removes a file and releases everything it holds.
    fn remove_file_completely(&mut self, file: FileId, reason: RemovalReason) {
        let Some(desc) = self.files.remove(&file) else {
            return;
        };
        self.discard_reasons.remove(&file);
        for i in 0..desc.cp {
            let Some(e) = self.alloc.remove(&(file, i)) else {
                continue;
            };
            match e.state {
                AllocState::Normal => {
                    if let Some(s) = e.prev {
                        self.release_replica(s, file, i, desc.size);
                    }
                }
                AllocState::Alloc | AllocState::Confirm => {
                    if let Some(s) = e.next {
                        self.release_reservation_indexed(s, file, i, desc.size);
                    }
                    if let Some(s) = e.prev {
                        self.release_replica(s, file, i, desc.size);
                    }
                }
                AllocState::Corrupted => {}
            }
        }
        self.log(ProtocolEvent::FileRemoved { file, reason });
    }

    /// §VI-B swap-in: move a Poisson-distributed number of existing
    /// replicas into a freshly registered sector so the allocation
    /// distribution stays i.i.d. capacity-proportional.
    fn poisson_swap_in(&mut self, sector: SectorId) {
        let capacity = self.sectors[&sector].capacity;
        let total: u64 = self.sampler.total_weight();
        if total == 0 {
            return;
        }
        // Count replicas currently placed (Normal entries only).
        let placed: Vec<(FileId, u32)> = {
            let mut v: Vec<_> = self
                .alloc
                .iter()
                .filter(|(_, e)| e.state == AllocState::Normal)
                .map(|(&k, _)| k)
                .collect();
            v.sort_unstable();
            v
        };
        if placed.is_empty() {
            return;
        }
        let mean = placed.len() as f64 * capacity as f64 / total as f64;
        let count = (self.rng.sample_poisson(mean) as usize).min(placed.len());
        if count == 0 {
            return;
        }
        let chosen = self.rng.sample_distinct(placed.len(), count);
        for idx in chosen {
            let (file, i) = placed[idx];
            self.forced_refresh_to(file, i, sector);
        }
    }

    /// Starts a refresh of `(file, index)` targeted at `sector` (used by
    /// the §VI-B swap-in; ordinary refreshes sample their target).
    fn forced_refresh_to(&mut self, file: FileId, index: u32, sector: SectorId) {
        let Some(desc) = self.files.get(&file) else {
            return;
        };
        let size = desc.size;
        let ok = self.alloc.get(&(file, index)).map(|e| e.state) == Some(AllocState::Normal)
            && self
                .sectors
                .get(&sector)
                .map(|s| s.state == SectorState::Normal && s.free_cap >= size)
                .unwrap_or(false);
        if !ok {
            return;
        }
        self.reserve(sector, size);
        self.sector_replicas
            .get_mut(&sector)
            .expect("sector index")
            .insert((file, index));
        let e = self.alloc.get_mut(&(file, index)).expect("entry");
        let from = e.prev;
        e.next = Some(sector);
        e.state = AllocState::Alloc;
        let deadline = self.now() + self.params.transfer_window(size);
        self.pending
            .schedule(deadline, Task::CheckRefresh(file, index));
        self.stats.refreshes_started += 1;
        self.log(ProtocolEvent::ReplicaSwap {
            file,
            index,
            from,
            to: sector,
        });
    }
}
