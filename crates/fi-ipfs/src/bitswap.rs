//! BitSwap-style block exchange (§II-A: "Nodes also provide the service of
//! retrieving files … through BitSwap protocol"; §III-E: the retrieval
//! market transfers files off-chain).
//!
//! The simulation models the essential mechanics: a client keeps a
//! *want-list* of CIDs, asks peers for wanted blocks, verifies every
//! received block against its CID (peers are untrusted), and discovers new
//! wants as branch nodes arrive. Duplicate and corrupt blocks are counted
//! — the statistics experiments use to compare retrieval strategies.

use crate::dag::DagNode;
use crate::store::{BlockStore, Cid};

/// Transfer statistics of one fetch session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitswapStats {
    /// Blocks received and accepted.
    pub blocks_received: u64,
    /// Payload bytes received and accepted.
    pub bytes_received: u64,
    /// Blocks offered by peers that were already held (duplicates).
    pub duplicate_blocks: u64,
    /// Blocks rejected because their bytes did not hash to the wanted CID.
    pub corrupt_blocks: u64,
}

/// Errors from a fetch session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitswapError {
    /// No connected peer had a wanted block.
    Unavailable(Cid),
    /// A fetched block failed to decode during want-list expansion.
    Malformed(Cid),
}

impl std::fmt::Display for BitswapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitswapError::Unavailable(c) => write!(f, "no peer has block {c}"),
            BitswapError::Malformed(c) => write!(f, "peer sent malformed dag node {c}"),
        }
    }
}

impl std::error::Error for BitswapError {}

/// Fetches the complete DAG rooted at `root` from `peers` into `local`,
/// verifying every block. Returns transfer statistics.
///
/// Peers are tried in order per block (the first peer holding the block
/// serves it) — the pricing/competition dynamics of the retrieval market
/// are modelled at the `fi-net` layer; here we reproduce the data path.
///
/// # Errors
///
/// * [`BitswapError::Unavailable`] — a block exists on no peer;
/// * [`BitswapError::Malformed`] — a received block decoded to garbage.
pub fn fetch_dag(
    local: &mut BlockStore,
    peers: &[&BlockStore],
    root: Cid,
) -> Result<BitswapStats, BitswapError> {
    let mut stats = BitswapStats::default();
    let mut want = vec![root];
    while let Some(cid) = want.pop() {
        if local.has(&cid) {
            stats.duplicate_blocks += 1;
        } else {
            let mut served = None;
            for peer in peers {
                if let Some(block) = peer.get(&cid) {
                    // Verify content addressing — peers are untrusted.
                    if fi_crypto::sha256(block) != cid {
                        stats.corrupt_blocks += 1;
                        continue;
                    }
                    served = Some(block.to_vec());
                    break;
                }
            }
            let block = served.ok_or(BitswapError::Unavailable(cid))?;
            stats.blocks_received += 1;
            stats.bytes_received += block.len() as u64;
            local.put(block);
        }
        // Expand wants from branch links.
        let block = local.get(&cid).expect("just stored or already present");
        match DagNode::decode(block) {
            Some(DagNode::Branch(links)) => {
                for (child, _) in links {
                    if !local.has(&child) {
                        want.push(child);
                    }
                }
            }
            Some(DagNode::Leaf(_)) => {}
            None => return Err(BitswapError::Malformed(cid)),
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{export_bytes, import_bytes};

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn fetch_from_single_peer() {
        let mut provider = BlockStore::new();
        let data = payload(50_000);
        let root = import_bytes(&mut provider, &data, 1000);
        let mut client = BlockStore::new();
        let stats = fetch_dag(&mut client, &[&provider], root).unwrap();
        assert_eq!(export_bytes(&client, root).unwrap(), data);
        assert_eq!(stats.blocks_received as usize, client.len());
        assert_eq!(stats.corrupt_blocks, 0);
    }

    #[test]
    fn fetch_striped_across_peers() {
        // Each peer holds only part of the DAG; together they cover it.
        let mut full = BlockStore::new();
        let data = payload(20_000);
        let root = import_bytes(&mut full, &data, 500);
        let cids: Vec<Cid> = crate::dag::dag_cids(&full, root).unwrap();
        let mut peer_a = BlockStore::new();
        let mut peer_b = BlockStore::new();
        for (i, cid) in cids.iter().enumerate() {
            let block = full.get(cid).unwrap().to_vec();
            if i % 2 == 0 {
                peer_a.put(block);
            } else {
                peer_b.put(block);
            }
        }
        let mut client = BlockStore::new();
        let stats = fetch_dag(&mut client, &[&peer_a, &peer_b], root).unwrap();
        assert_eq!(export_bytes(&client, root).unwrap(), data);
        assert_eq!(stats.blocks_received as usize, cids.len());
    }

    #[test]
    fn unavailable_block_reported() {
        let mut provider = BlockStore::new();
        let root = import_bytes(&mut provider, &payload(5_000), 500);
        let cids = crate::dag::dag_cids(&provider, root).unwrap();
        let victim = *cids.last().unwrap();
        let mut partial = BlockStore::new();
        for cid in &cids {
            if *cid != victim {
                partial.put(provider.get(cid).unwrap().to_vec());
            }
        }
        let mut client = BlockStore::new();
        assert_eq!(
            fetch_dag(&mut client, &[&partial], root),
            Err(BitswapError::Unavailable(victim))
        );
    }

    #[test]
    fn resume_counts_duplicates() {
        let mut provider = BlockStore::new();
        let data = payload(10_000);
        let root = import_bytes(&mut provider, &data, 500);
        let mut client = BlockStore::new();
        fetch_dag(&mut client, &[&provider], root).unwrap();
        // Second fetch: everything local already.
        let stats = fetch_dag(&mut client, &[&provider], root).unwrap();
        assert_eq!(stats.blocks_received, 0);
        assert!(stats.duplicate_blocks > 0);
    }

    #[test]
    fn empty_file_fetch() {
        let mut provider = BlockStore::new();
        let root = import_bytes(&mut provider, &[], 100);
        let mut client = BlockStore::new();
        let stats = fetch_dag(&mut client, &[&provider], root).unwrap();
        assert_eq!(stats.blocks_received, 1);
        assert_eq!(export_bytes(&client, root).unwrap(), Vec::<u8>::new());
    }
}
