//! Workload trace generation: realistic arrival/discard/retrieval streams
//! for stress scenarios and benchmarks.
//!
//! The paper's evaluation uses synthetic i.i.d. workloads; a downstream
//! user of the library wants knobs closer to production: Poisson file
//! arrivals, lognormal-ish size mixes, Zipf retrieval popularity, and
//! bounded file lifetimes. [`TraceConfig`] generates a deterministic
//! [`Trace`] of timed operations that [`crate::harness::Scenario`]-style
//! drivers (or the stress test in `tests/`) can replay against an engine.

use fi_crypto::DetRng;

/// One operation in a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    /// Store a new file.
    Add {
        /// Size in size units.
        size: u64,
        /// Value in `minValue` multiples.
        value_units: u32,
    },
    /// Discard the `n`-th *currently live* file (modulo live count).
    Discard {
        /// Selector into the live set.
        nth: u64,
    },
    /// Retrieve the `n`-th currently live file (Zipf-popular).
    Get {
        /// Selector into the live set (0 = most popular).
        nth: u64,
    },
}

/// A timed operation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When the operation fires (ticks).
    pub at: u64,
    /// What happens.
    pub op: TraceOp,
}

/// Trace generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Mean ticks between file arrivals (Poisson process).
    pub mean_interarrival: f64,
    /// Horizon in ticks.
    pub horizon: u64,
    /// Max file size (sizes are `1 + Exp(mean_size)` clamped here).
    pub max_size: u64,
    /// Mean of the exponential size component.
    pub mean_size: f64,
    /// Probability an arrival is high-value (value 2–4× `minValue`).
    pub high_value_prob: f64,
    /// Mean ticks between discards.
    pub mean_discard_interval: f64,
    /// Mean ticks between retrievals.
    pub mean_get_interval: f64,
    /// Zipf exponent for retrieval popularity.
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            mean_interarrival: 40.0,
            horizon: 10_000,
            max_size: 32,
            mean_size: 6.0,
            high_value_prob: 0.15,
            mean_discard_interval: 400.0,
            mean_get_interval: 25.0,
            zipf_s: 1.1,
            seed: 0x7ACE,
        }
    }
}

/// A generated trace, sorted by time.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The timed operations.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Generates a deterministic trace from `config`.
    pub fn generate(config: &TraceConfig) -> Trace {
        let mut rng = DetRng::from_seed_label(config.seed, "trace");
        let mut events = Vec::new();

        // Poisson arrivals.
        let mut t = 0.0f64;
        loop {
            t += rng.sample_exp(config.mean_interarrival);
            if t >= config.horizon as f64 {
                break;
            }
            let size = (1.0 + rng.sample_exp(config.mean_size)).min(config.max_size as f64) as u64;
            let value_units = if rng.bernoulli(config.high_value_prob) {
                2 + rng.below(3) as u32
            } else {
                1
            };
            events.push(TraceEvent {
                at: t as u64,
                op: TraceOp::Add {
                    size: size.max(1),
                    value_units,
                },
            });
        }

        // Poisson discards.
        let mut t = 0.0f64;
        loop {
            t += rng.sample_exp(config.mean_discard_interval);
            if t >= config.horizon as f64 {
                break;
            }
            events.push(TraceEvent {
                at: t as u64,
                op: TraceOp::Discard {
                    nth: rng.next_u64(),
                },
            });
        }

        // Zipf-popular retrievals.
        let mut t = 0.0f64;
        loop {
            t += rng.sample_exp(config.mean_get_interval);
            if t >= config.horizon as f64 {
                break;
            }
            // Inverse-CDF-ish Zipf rank draw over a virtual large catalog.
            let u = rng.f64().max(1e-9);
            let rank = (u.powf(-1.0 / config.zipf_s) - 1.0).min(1e6) as u64;
            events.push(TraceEvent {
                at: t as u64,
                op: TraceOp::Get { nth: rank },
            });
        }

        events.sort_by_key(|e| e.at);
        Trace { events }
    }

    /// Number of operations of each kind: `(adds, discards, gets)`.
    pub fn op_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for e in &self.events {
            match e.op {
                TraceOp::Add { .. } => counts.0 += 1,
                TraceOp::Discard { .. } => counts.1 += 1,
                TraceOp::Get { .. } => counts.2 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_sorted_and_in_horizon() {
        let trace = Trace::generate(&TraceConfig::default());
        assert!(!trace.events.is_empty());
        for pair in trace.events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        assert!(trace.events.iter().all(|e| e.at < 10_000));
    }

    #[test]
    fn op_mix_tracks_rates() {
        let trace = Trace::generate(&TraceConfig::default());
        let (adds, discards, gets) = trace.op_counts();
        // Means: 10000/40 = 250 adds, 10000/400 = 25 discards,
        // 10000/25 = 400 gets — allow ±40%.
        assert!((150..350).contains(&adds), "adds {adds}");
        assert!((10..40).contains(&discards), "discards {discards}");
        assert!((240..560).contains(&gets), "gets {gets}");
    }

    #[test]
    fn sizes_and_values_in_range() {
        let trace = Trace::generate(&TraceConfig::default());
        for e in &trace.events {
            if let TraceOp::Add { size, value_units } = e.op {
                assert!((1..=32).contains(&size));
                assert!((1..=4).contains(&value_units));
            }
        }
    }

    #[test]
    fn zipf_retrievals_skewed_to_head() {
        let trace = Trace::generate(&TraceConfig {
            mean_get_interval: 5.0,
            ..TraceConfig::default()
        });
        let ranks: Vec<u64> = trace
            .events
            .iter()
            .filter_map(|e| match e.op {
                TraceOp::Get { nth } => Some(nth),
                _ => None,
            })
            .collect();
        let head = ranks.iter().filter(|&&r| r < 3).count();
        assert!(
            head * 2 > ranks.len(),
            "zipf head {} of {}",
            head,
            ranks.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Trace::generate(&TraceConfig::default());
        let b = Trace::generate(&TraceConfig::default());
        assert_eq!(a.events, b.events);
        let c = Trace::generate(&TraceConfig {
            seed: 1,
            ..TraceConfig::default()
        });
        assert_ne!(a.events, c.events);
    }
}
