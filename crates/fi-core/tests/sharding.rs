//! Sharded-engine consensus equivalence: the engine partitioned over any
//! number of shards must be *bit-identical* to the 1-shard engine — same
//! state roots, same chain head, same stats — because sharding only
//! partitions per-file state and parallelizes the read-only audit verify
//! phase; the commit phase merges per-shard slices back into the global
//! `(time, schedule-seq)` order a single wheel would pop (DESIGN.md §9).
//!
//! The 100k-file version of the equality assertion runs in the
//! `engine_snapshot` bench (CI-gated); here randomized workloads with
//! faults, refreshes, punishments and losses cover the protocol surface at
//! test-friendly scale.

use fi_chain::account::{AccountId, TokenAmount};
use fi_core::engine::{Engine, EngineError, EngineStats, StateView};
use fi_core::params::ProtocolParams;
use fi_core::types::SectorState;
use fi_crypto::{sha256, DetRng};

const CLIENT: AccountId = AccountId(900);
const PROVIDERS: [AccountId; 3] = [AccountId(700), AccountId(701), AccountId(702)];

fn sharded_params(shards: usize) -> ProtocolParams {
    ProtocolParams {
        k: 3,
        delay_per_size: 6,
        avg_refresh: 6.0,
        shards,
        ..ProtocolParams::default()
    }
}

/// Drives the identical randomized workload (adds, confirms, proofs,
/// discards, faults, time advances) through an engine — every stochastic
/// choice comes from the caller's seed, not the engine, so two engines
/// differing only in shard count receive byte-identical op sequences.
fn drive_random_workload(engine: &mut Engine, seed: u64, steps: u64) {
    let mut rng = DetRng::from_seed_label(seed, "sharding-workload");
    engine.fund(CLIENT, TokenAmount(500_000_000));
    for p in PROVIDERS {
        engine.fund(p, TokenAmount(1_000_000_000_000));
        for _ in 0..2 {
            engine
                .sector_register(p, 640 * (1 + rng.below(3)))
                .expect("registration");
        }
    }
    for step in 0..steps {
        match rng.below(10) {
            0..=3 => {
                let size = 1 + rng.below(40);
                let root = sha256(&(seed ^ step).to_be_bytes());
                let _ = engine.file_add(CLIENT, size, engine.params().min_value, root);
            }
            4..=6 => {
                engine.honest_providers_act();
            }
            7 => {
                let ids = engine.file_ids();
                if !ids.is_empty() {
                    let f = ids[(rng.below(ids.len() as u64)) as usize];
                    let _ = engine.file_discard(CLIENT, f);
                }
            }
            8 => {
                let ids = engine.sector_ids();
                if !ids.is_empty() {
                    let s = ids[(rng.below(ids.len() as u64)) as usize];
                    if engine.sector(s).map(|x| x.state) == Some(SectorState::Normal) {
                        if rng.below(2) == 0 {
                            engine.fail_sector_silently(s);
                        } else {
                            engine.corrupt_sector_now(s);
                        }
                    }
                }
            }
            _ => {
                engine.advance_to(engine.now() + 10 + rng.below(150));
            }
        }
    }
    engine.honest_providers_act();
    engine.advance_to(engine.now() + engine.params().proof_cycle * 3);
}

fn assert_consensus_identical(a: &Engine, b: &Engine) {
    assert_eq!(
        a.state_root(),
        b.state_root(),
        "state roots diverged between {} and {} shards",
        a.shard_count(),
        b.shard_count()
    );
    assert_eq!(a.chain().head_hash(), b.chain().head_hash());
    // Execution-strategy counters (parallel staging, batched audit
    // commits) legitimately differ with the shard count; consensus state
    // and protocol counters must not.
    assert_eq!(a.stats().consensus(), b.stats().consensus());
    assert_eq!(a.file_ids(), b.file_ids());
    assert_eq!(a.sector_ids(), b.sector_ids());
    assert_eq!(a.ledger().total_supply(), b.ledger().total_supply());
    assert_eq!(a.pending_task_count(), b.pending_task_count());
}

/// The tentpole invariant: randomized workloads produce bit-identical
/// consensus state at 1, 4 and 8 shards.
#[test]
fn random_workloads_identical_across_shard_counts() {
    for seed in [3u64, 21, 77] {
        let mut baseline = Engine::new(sharded_params(1)).expect("valid params");
        drive_random_workload(&mut baseline, seed, 60);
        assert!(
            baseline.stats().punishments > 0 || baseline.stats().files_lost > 0,
            "seed {seed}: workload too tame to exercise the audit paths"
        );
        for shards in [4usize, 8] {
            let mut sharded = Engine::new(sharded_params(shards)).expect("valid params");
            drive_random_workload(&mut sharded, seed, 60);
            assert_consensus_identical(&baseline, &sharded);
        }
    }
}

/// A bucket big enough to cross the parallel-verify threshold (64
/// `Auto_CheckProof` tasks on one timestamp) must still produce identical
/// state: the scoped-thread fan-out is semantically invisible.
#[test]
fn large_same_timestamp_bucket_parallel_verify_is_identical() {
    let run = |shards: usize| -> Engine {
        let params = ProtocolParams {
            k: 2,
            shards,
            ..ProtocolParams::default()
        };
        let mut engine = Engine::new(params).expect("valid params");
        let provider = AccountId(100);
        engine.fund(provider, TokenAmount(u128::MAX / 4));
        engine.fund(CLIENT, TokenAmount(u128::MAX / 4));
        for _ in 0..8 {
            engine.sector_register(provider, 6400).expect("register");
        }
        // 200 size-1 files added at the same instant: one CheckAlloc
        // bucket, then one 200-task CheckProof bucket per cycle.
        for i in 0..200u64 {
            let root = sha256(&i.to_be_bytes());
            let f = engine
                .file_add(CLIENT, 1, engine.params().min_value, root)
                .expect("add");
            for (idx, s) in engine.pending_confirms(f) {
                engine.file_confirm(provider, f, idx, s).expect("confirm");
            }
        }
        for _ in 0..3 {
            engine.honest_providers_act();
            engine.advance_to(engine.now() + engine.params().proof_cycle);
        }
        engine
    };
    let one = run(1);
    assert_eq!(one.file_ids().len(), 200);
    assert!(
        one.stats().proofs_audited >= 400,
        "verify phase must audit replica proofs: {:?}",
        one.stats()
    );
    for shards in [4usize, 8] {
        assert_consensus_identical(&one, &run(shards));
    }
}

/// `shards = 1` degenerates to the unsharded engine: a single shard owns
/// every file and the audit verify phase runs inline.
#[test]
fn single_shard_degenerates_to_unsharded_behavior() {
    let mut engine = Engine::new(sharded_params(1)).expect("valid params");
    assert_eq!(engine.shard_count(), 1);
    drive_random_workload(&mut engine, 5, 40);
    // Everything still routes: files live, tasks pending, stats counted.
    assert!(engine.pending_task_count() > 0);
    let stats = engine.stats();
    assert!(stats.proofs_accepted > 0);
    assert!(stats.proofs_audited > 0, "audits run at one shard too");
}

/// Strided id allocation: ids come from one global counter, so shard `s`
/// of `n` owns exactly the ids `≡ s (mod n)` — no two files ever collide
/// on an id, and the population stays balanced across shards.
#[test]
fn strided_file_ids_never_collide_and_stay_balanced() {
    let params = ProtocolParams {
        k: 2,
        shards: 5,
        ..ProtocolParams::default()
    };
    let mut engine = Engine::new(params).expect("valid params");
    let provider = AccountId(100);
    engine.fund(provider, TokenAmount(u128::MAX / 4));
    engine.fund(CLIENT, TokenAmount(u128::MAX / 4));
    for _ in 0..4 {
        engine.sector_register(provider, 6400).expect("register");
    }
    let mut ids = Vec::new();
    for i in 0..103u64 {
        let root = sha256(&i.to_be_bytes());
        ids.push(
            engine
                .file_add(CLIENT, 1, engine.params().min_value, root)
                .expect("add"),
        );
    }
    let unique: std::collections::HashSet<_> = ids.iter().collect();
    assert_eq!(unique.len(), ids.len(), "file ids must never collide");
    // Consecutive allocations walk the shards round-robin, so per-shard
    // counts differ by at most one.
    let mut per_shard = [0u64; 5];
    for f in &ids {
        per_shard[(f.0 % 5) as usize] += 1;
    }
    let (min, max) = (
        *per_shard.iter().min().unwrap(),
        *per_shard.iter().max().unwrap(),
    );
    assert!(max - min <= 1, "stride imbalance: {per_shard:?}");
}

/// Ops targeting a removed file return the same typed error no matter
/// which shard the id routes to or how many shards the engine runs.
#[test]
fn removed_file_errors_identical_across_shard_counts() {
    let removed_file_errors = |shards: usize| -> Vec<EngineError> {
        let params = ProtocolParams {
            k: 2,
            shards,
            ..ProtocolParams::default()
        };
        let mut engine = Engine::new(params).expect("valid params");
        let provider = AccountId(100);
        engine.fund(provider, TokenAmount(1_000_000_000));
        engine.fund(CLIENT, TokenAmount(1_000_000));
        let sector = engine.sector_register(provider, 640).expect("register");
        // A handful of files so the probed ids land on different shards.
        let mut files = Vec::new();
        for i in 0..6u64 {
            let root = sha256(&i.to_be_bytes());
            let f = engine
                .file_add(CLIENT, 1, engine.params().min_value, root)
                .expect("add");
            for (idx, s) in engine.pending_confirms(f) {
                engine.file_confirm(provider, f, idx, s).expect("confirm");
            }
            files.push(f);
        }
        engine.advance_to(engine.now() + engine.params().transfer_window(1) + 1);
        for &f in &files {
            engine.file_discard(CLIENT, f).expect("discard");
        }
        // The next CheckProof removes them all.
        engine.advance_to(engine.now() + engine.params().proof_cycle * 2);
        assert!(engine.file_ids().is_empty(), "files must be removed");
        let mut errors = Vec::new();
        for &f in &files {
            errors.push(engine.file_get(CLIENT, f).unwrap_err());
            errors.push(engine.file_discard(CLIENT, f).unwrap_err());
            errors.push(engine.file_confirm(provider, f, 0, sector).unwrap_err());
            errors.push(engine.file_prove(provider, f, 0, sector).unwrap_err());
        }
        errors
    };
    let baseline = removed_file_errors(1);
    for err in &baseline {
        assert!(
            matches!(err, EngineError::UnknownFile(_)),
            "expected UnknownFile, got {err:?}"
        );
    }
    for shards in [4usize, 8] {
        assert_eq!(
            baseline,
            removed_file_errors(shards),
            "typed errors diverged at {shards} shards"
        );
    }
}

/// The satellite stats invariant: per-shard stats merged equal the
/// sequential (1-shard) engine's stats on the same workload, and `merge`
/// itself is plain field-wise addition.
#[test]
fn merged_shard_stats_equal_sequential_stats() {
    let mut sequential = Engine::new(sharded_params(1)).expect("valid params");
    drive_random_workload(&mut sequential, 13, 60);
    let mut sharded = Engine::new(sharded_params(4)).expect("valid params");
    drive_random_workload(&mut sharded, 13, 60);
    // `stats()` *is* the merge of the global + per-shard instances (up to
    // the execution-strategy counters, which depend on the shard count).
    assert_eq!(sequential.stats().consensus(), sharded.stats().consensus());

    // And merge arithmetic is field-wise addition.
    let mut a = EngineStats {
        add_collisions: 1,
        refreshes_started: 2,
        proofs_accepted: 3,
        files_lost: 4,
        value_lost: TokenAmount(10),
        ..EngineStats::default()
    };
    let b = EngineStats {
        add_collisions: 10,
        refreshes_started: 20,
        proofs_accepted: 30,
        files_lost: 40,
        value_lost: TokenAmount(100),
        proofs_audited: 7,
        ..EngineStats::default()
    };
    a.merge(&b);
    assert_eq!(a.add_collisions, 11);
    assert_eq!(a.refreshes_started, 22);
    assert_eq!(a.proofs_accepted, 33);
    assert_eq!(a.files_lost, 44);
    assert_eq!(a.value_lost, TokenAmount(110));
    assert_eq!(a.proofs_audited, 7);
    assert_eq!(a.refresh_collisions, 0);
}
