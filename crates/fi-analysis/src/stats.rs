//! Summary statistics for experiment reporting.

/// Summary statistics of a sample: count, mean, variance, extremes and
/// selected quantiles.
///
/// # Example
///
/// ```
/// use fi_analysis::Summary;
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.quantile(0.5), 2.0); // nearest-rank convention
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (0 for a single observation).
    pub variance: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    sorted: Vec<f64>,
}

impl Summary {
    /// Computes statistics over `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_slice(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary of an empty sample");
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        Summary {
            count,
            mean,
            variance,
            min: sorted[0],
            max: sorted[count - 1],
            sorted,
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Empirical quantile (nearest-rank, `q` in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let rank = ((q * self.count as f64).ceil() as usize).clamp(1, self.count);
        self.sorted[rank - 1]
    }
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets; values outside
/// the range are clamped into the edge buckets. Used for textual plots in
/// experiment output.
pub fn histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0 && hi > lo);
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &v in values {
        let idx = (((v - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance - 4.571428571428571).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.quantile(0.0), 3.5);
        assert_eq!(s.quantile(1.0), 3.5);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.quantile(0.2), 1.0);
        assert_eq!(s.quantile(0.21), 2.0);
        assert_eq!(s.quantile(1.0), 5.0);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let h = histogram(&[-1.0, 0.1, 0.5, 0.9, 2.0], 0.0, 1.0, 2);
        assert_eq!(h, vec![2, 3]);
    }
}
