//! # FileInsurer — a scalable and reliable decentralized file storage
//! protocol (ICDCS 2022 reproduction)
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`fi_core`] | the FileInsurer protocol: engine, sampler, DRep, segmentation, subnets |
//! | [`fi_chain`] | ledger, gas, blocks, consensus pending list |
//! | [`fi_crypto`] | SHA-256, Merkle trees, ChaCha20 DetRng, random beacon |
//! | [`fi_porep`] | simulated PoRep / Capacity Replicas / WindowPoSt |
//! | [`fi_erasure`] | GF(2^8) + Reed–Solomon erasure codes |
//! | [`fi_ipfs`] | content-addressed store, Merkle DAG, Kademlia DHT, BitSwap |
//! | [`fi_net`] | discrete-event network simulator |
//! | [`fi_node`] | networked block production: mempool, proposer, follower replay |
//! | [`fi_baselines`] | Filecoin / Storj / Sia / Arweave comparison models |
//! | [`fi_analysis`] | Theorems 1–4 bounds, probability helpers, statistics |
//! | [`fi_sim`] | experiment harness for every paper table & figure |
//!
//! ## Quickstart
//!
//! ```
//! use fileinsurer::prelude::*;
//!
//! let mut params = ProtocolParams::default();
//! params.k = 3;
//! let mut net = Engine::new(params).unwrap();
//!
//! let provider = AccountId(100);
//! let client = AccountId(200);
//! net.fund(provider, TokenAmount(10_000_000_000));
//! net.fund(client, TokenAmount(10_000_000));
//!
//! net.sector_register(provider, 640).unwrap();
//! let file = net
//!     .file_add(client, 16, net.params().min_value, sha256(b"hello dsn"))
//!     .unwrap();
//! net.honest_providers_act();
//! net.advance_to(net.now() + 16);
//! assert!(net.file(file).is_some());
//! ```

pub use fi_analysis as analysis;
pub use fi_baselines as baselines;
pub use fi_chain as chain;
pub use fi_core as core;
pub use fi_crypto as crypto;
pub use fi_erasure as erasure;
pub use fi_ipfs as ipfs;
pub use fi_net as net;
pub use fi_node as node;
pub use fi_porep as porep;
pub use fi_sim as sim;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use fi_chain::account::{AccountId, Ledger, TokenAmount};
    pub use fi_chain::tasks::Time;
    pub use fi_core::engine::{Engine, PinnedState, StateProof, StateView};
    pub use fi_core::params::ProtocolParams;
    pub use fi_core::types::{FileId, ProtocolEvent, RemovalReason, SectorId, SectorState};
    pub use fi_crypto::{sha256, DetRng, Hash256};
}
