//! Integration: the retrieval market over the discrete-event network —
//! BitSwap-style block exchange as message-passing processes with latency,
//! jitter and loss (paper §III-E: transfers happen off-chain; liveness
//! comes from retrying against any holder).

use fi_crypto::Hash256;
use fi_ipfs::dag::{dag_cids, export_bytes, import_bytes};
use fi_ipfs::store::BlockStore;
use fi_net::link::LinkModel;
use fi_net::world::{Ctx, Process, World};
use std::cell::RefCell;
use std::rc::Rc;

/// Wire messages of the toy retrieval protocol.
#[derive(Debug, Clone)]
enum Msg {
    /// Client asks for a block.
    Want(Hash256),
    /// Provider answers with the block bytes.
    Block(Vec<u8>),
}

/// A provider node serving blocks from its store.
struct ProviderNode {
    store: BlockStore,
}

impl Process<Msg> for ProviderNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: usize, msg: Msg) {
        if let Msg::Want(cid) = msg {
            if let Some(block) = self.store.get(&cid) {
                let bytes = block.len() as u64;
                ctx.send(from, Msg::Block(block.to_vec()), bytes);
            }
        }
    }
}

/// A client fetching a want-list with periodic retry (loss tolerance).
struct ClientNode {
    providers: Vec<usize>,
    wanted: Vec<Hash256>,
    store: Rc<RefCell<BlockStore>>,
    next_provider: usize,
    done: Rc<RefCell<bool>>,
}

const RETRY_TAG: u64 = 1;

impl ClientNode {
    fn request_all(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let store = self.store.borrow();
        let missing: Vec<Hash256> = self
            .wanted
            .iter()
            .filter(|c| !store.has(c))
            .copied()
            .collect();
        drop(store);
        if missing.is_empty() {
            *self.done.borrow_mut() = true;
            return;
        }
        for cid in missing {
            // Round-robin across providers; retries hit someone else.
            let target = self.providers[self.next_provider % self.providers.len()];
            self.next_provider += 1;
            ctx.send(target, Msg::Want(cid), 40);
        }
        ctx.set_timer(500, RETRY_TAG);
    }
}

impl Process<Msg> for ClientNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.request_all(ctx);
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: usize, msg: Msg) {
        if let Msg::Block(bytes) = msg {
            // put() verifies nothing by itself, but content addressing
            // means a corrupted block simply stores under a different CID
            // and stays "missing" — same effect as rejection.
            self.store.borrow_mut().put(bytes);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        if tag == RETRY_TAG && !*self.done.borrow() {
            self.request_all(ctx);
        }
    }
}

fn run_retrieval(loss: f64, seed: u64) -> (bool, u64, u64) {
    // Build the file and the provider stores.
    let mut origin = BlockStore::new();
    let payload: Vec<u8> = (0..30_000u32).map(|i| (i % 249) as u8).collect();
    let root = import_bytes(&mut origin, &payload, 800);
    let wanted = dag_cids(&origin, root).unwrap();

    let mut world: World<Msg> = World::new(LinkModel::lossy(loss), seed);
    let p1 = world.add(ProviderNode {
        store: origin.clone(),
    });
    let p2 = world.add(ProviderNode {
        store: origin.clone(),
    });

    let client_store = Rc::new(RefCell::new(BlockStore::new()));
    let done = Rc::new(RefCell::new(false));
    world.add(ClientNode {
        providers: vec![p1, p2],
        wanted,
        store: Rc::clone(&client_store),
        next_provider: 0,
        done: Rc::clone(&done),
    });

    world.run_until(200_000);
    let complete = export_bytes(&client_store.borrow(), root)
        .map(|got| got == payload)
        .unwrap_or(false);
    (complete, world.messages_sent(), world.messages_lost())
}

#[test]
fn retrieval_completes_over_reliable_links() {
    let (complete, sent, lost) = run_retrieval(0.0, 1);
    assert!(complete);
    assert_eq!(lost, 0);
    // One round trip per block plus the want messages.
    assert!(sent >= 2 * 39, "sent {sent}");
}

#[test]
fn retrieval_survives_heavy_loss_through_retries() {
    let (complete, sent, lost) = run_retrieval(0.4, 2);
    assert!(complete, "retries must eventually deliver every block");
    assert!(lost > 0, "the lossy link dropped something");
    // Loss costs extra traffic.
    let (_, sent_clean, _) = run_retrieval(0.0, 3);
    assert!(sent > sent_clean, "{sent} vs {sent_clean}");
}

#[test]
fn deterministic_network_replay() {
    assert_eq!(run_retrieval(0.2, 9), run_retrieval(0.2, 9));
    assert_ne!(run_retrieval(0.2, 9).1, run_retrieval(0.2, 10).1);
}
