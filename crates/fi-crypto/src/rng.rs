//! Deterministic pseudorandom generator built on the ChaCha20 block function.
//!
//! Paper §III-F: *"we use a pseudorandom number generator to generate long
//! pseudo-random bits based on a short random beacon"*. Every stochastic
//! decision in the protocol (sector sampling, refresh countdowns, PoSt
//! challenges) must be reproducible by all consensus participants, so the
//! generator is keyed by a 32-byte seed and is fully deterministic.
//!
//! [`DetRng`] exposes the small set of sampling primitives the protocol and
//! the experiment harness need: uniform integers, floats, exponential
//! deviates (for `SampleExp(AvgRefresh)`), normal deviates (for the Table III
//! workloads), Poisson deviates (for the §VI-B swap-in approximation) and
//! Fisher–Yates shuffling.

use crate::hash::Hash256;
use crate::sha256::Sha256;

/// The ChaCha20 quarter round.
#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block (RFC 8439 layout).
///
/// `key` is 8 words, `counter` is the 32-bit block counter, `nonce` is 3
/// words. Used both by [`DetRng`] and by the simulated PoRep "sealing"
/// transform in `fi-porep`.
pub fn chacha20_block(key: &[u32; 8], counter: u32, nonce: &[u32; 3]) -> [u8; 64] {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter;
    state[13..16].copy_from_slice(nonce);

    let initial = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = state[i].wrapping_add(initial[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// The complete mid-stream state of a [`DetRng`], exposed so engine
/// snapshots can persist protocol randomness byte-for-byte: a generator
/// rebuilt with [`DetRng::from_state`] continues the exact keystream (and
/// Box–Muller cache) the saved generator would have produced.
#[derive(Debug, Clone, PartialEq)]
pub struct DetRngState {
    /// ChaCha20 key words.
    pub key: [u32; 8],
    /// ChaCha20 nonce words.
    pub nonce: [u32; 3],
    /// Next block counter.
    pub counter: u32,
    /// Current keystream block.
    pub buf: [u8; 64],
    /// Next unread offset in `buf` (64 = exhausted).
    pub offset: u8,
    /// Cached second Box–Muller output, if any.
    pub gauss_spare: Option<f64>,
}

/// Deterministic, seedable pseudorandom generator (ChaCha20 keystream).
///
/// Not an implementation of `rand::Rng`: the protocol needs a tiny, stable,
/// consensus-reproducible surface, so the API is intentionally small and
/// self-contained.
///
/// # Example
///
/// ```
/// use fi_crypto::DetRng;
///
/// let mut rng = DetRng::from_seed_label(7, "example");
/// let die = rng.range_u64(1..=6);
/// assert!((1..=6).contains(&die));
/// let wait = rng.sample_exp(10.0); // mean-10 exponential deviate
/// assert!(wait >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
    buf: [u8; 64],
    /// Next unread offset in `buf`; 64 means "exhausted".
    offset: usize,
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl DetRng {
    /// Creates a generator from a full 32-byte seed.
    pub fn from_hash(seed: Hash256) -> Self {
        let bytes = seed.into_bytes();
        let mut key = [0u32; 8];
        for i in 0..8 {
            key[i] = u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap());
        }
        DetRng {
            key,
            nonce: [0; 3],
            counter: 0,
            buf: [0u8; 64],
            offset: 64,
            gauss_spare: None,
        }
    }

    /// Creates a generator from an integer seed and a purpose label.
    ///
    /// Distinct labels yield statistically independent streams, which keeps
    /// experiment components (workload generation, adversary choices,
    /// protocol randomness) decorrelated even when sharing one master seed.
    pub fn from_seed_label(seed: u64, label: &str) -> Self {
        let mut h = Sha256::new();
        h.update(b"fi-detrng/v1");
        h.update(&seed.to_be_bytes());
        h.update(label.as_bytes());
        Self::from_hash(h.finalize())
    }

    /// Captures the generator's complete state for serialization.
    pub fn state(&self) -> DetRngState {
        DetRngState {
            key: self.key,
            nonce: self.nonce,
            counter: self.counter,
            buf: self.buf,
            offset: self.offset.min(64) as u8,
            gauss_spare: self.gauss_spare,
        }
    }

    /// Rebuilds a generator from a captured [`DetRngState`]; the restored
    /// generator emits exactly the values the original would have.
    pub fn from_state(state: DetRngState) -> Self {
        DetRng {
            key: state.key,
            nonce: state.nonce,
            counter: state.counter,
            buf: state.buf,
            offset: (state.offset as usize).min(64),
            gauss_spare: state.gauss_spare,
        }
    }

    /// Derives an independent child generator identified by `label`.
    pub fn fork(&self, label: &str) -> DetRng {
        let mut h = Sha256::new();
        h.update(b"fi-detrng/fork");
        for w in self.key {
            h.update(&w.to_le_bytes());
        }
        h.update(label.as_bytes());
        DetRng::from_hash(h.finalize())
    }

    fn refill(&mut self) {
        self.buf = chacha20_block(&self.key, self.counter, &self.nonce);
        self.counter = self.counter.wrapping_add(1);
        if self.counter == 0 {
            // 256 GiB of keystream consumed; roll the nonce to stay distinct.
            self.nonce[0] = self.nonce[0].wrapping_add(1);
        }
        self.offset = 0;
    }

    /// Next uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        if self.offset + 8 > 64 {
            self.refill();
        }
        let v = u64::from_le_bytes(self.buf[self.offset..self.offset + 8].try_into().unwrap());
        self.offset += 8;
        v
    }

    /// Next uniformly random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Uniform value in `[0, bound)` without modulo bias (Lemire rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Widening-multiply rejection sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value within an inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, range: std::ops::RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential deviate with the given mean (`SampleExp` in the paper,
    /// Table I). Inverse-CDF method.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn sample_exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        // 1 - f64() is in (0, 1], so ln is finite.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal deviate via the Box–Muller transform.
    pub fn sample_standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid u == 0.
        let u = 1.0 - self.f64();
        let v = self.f64();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with mean `mu` and standard deviation `sigma`.
    pub fn sample_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.sample_standard_normal()
    }

    /// Poisson deviate with the given mean.
    ///
    /// Knuth's product method for small means; for large means (> 30) uses
    /// the normal approximation with continuity correction, which is accurate
    /// to well under the experiment noise floor and O(1).
    pub fn sample_poisson(&mut self, mean: f64) -> u64 {
        assert!(mean.is_finite() && mean >= 0.0, "mean must be non-negative");
        if mean == 0.0 {
            return 0;
        }
        if mean > 30.0 {
            let z = self.sample_standard_normal();
            let v = mean + mean.sqrt() * z + 0.5;
            return if v < 0.0 { 0 } else { v as u64 };
        }
        let limit = (-mean).exp();
        let mut product = self.f64();
        let mut count = 0u64;
        while product > limit {
            product *= self.f64();
            count += 1;
        }
        count
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (floyd's algorithm),
    /// returned in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct from {n}");
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in n - k..n {
            let t = self.index(j + 1);
            if chosen.insert(t) {
                out.push(t);
            } else {
                chosen.insert(j);
                out.push(j);
            }
        }
        self.shuffle(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2 test vector.
        let key: [u32; 8] = [
            0x03020100, 0x07060504, 0x0b0a0908, 0x0f0e0d0c, 0x13121110, 0x17161514, 0x1b1a1918,
            0x1f1e1d1c,
        ];
        let nonce: [u32; 3] = [0x09000000, 0x4a000000, 0x00000000];
        let block = chacha20_block(&key, 1, &nonce);
        let expect_first16: [u8; 16] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&block[..16], &expect_first16);
    }

    #[test]
    fn determinism_and_stream_independence() {
        let mut a = DetRng::from_seed_label(1, "x");
        let mut b = DetRng::from_seed_label(1, "x");
        let mut c = DetRng::from_seed_label(1, "y");
        let va: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn fork_independence() {
        let parent = DetRng::from_seed_label(9, "p");
        let mut f1 = parent.fork("a");
        let mut f2 = parent.fork("b");
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = DetRng::from_seed_label(2, "below");
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = DetRng::from_seed_label(3, "f64");
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = DetRng::from_seed_label(4, "exp");
        let n = 200_000;
        let mean = 8.0;
        let sum: f64 = (0..n).map(|_| rng.sample_exp(mean)).sum();
        let measured = sum / n as f64;
        assert!(
            (measured - mean).abs() < 0.1,
            "measured {measured} expected {mean}"
        );
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = DetRng::from_seed_label(5, "norm");
        let n = 200_000;
        let (mu, sigma) = (3.0, 2.0);
        let xs: Vec<f64> = (0..n).map(|_| rng.sample_normal(mu, sigma)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - mu).abs() < 0.05, "mean {mean}");
        assert!((var - sigma * sigma).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_mean_close_small_and_large() {
        let mut rng = DetRng::from_seed_label(6, "pois");
        for mean in [0.5, 4.0, 50.0] {
            let n = 100_000;
            let sum: u64 = (0..n).map(|_| rng.sample_poisson(mean)).sum();
            let measured = sum as f64 / n as f64;
            assert!(
                (measured - mean).abs() / mean < 0.05,
                "measured {measured} expected {mean}"
            );
        }
        assert_eq!(rng.sample_poisson(0.0), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::from_seed_label(7, "shuf");
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = DetRng::from_seed_label(8, "dist");
        for _ in 0..50 {
            let got = rng.sample_distinct(20, 5);
            assert_eq!(got.len(), 5);
            let set: std::collections::HashSet<_> = got.iter().collect();
            assert_eq!(set.len(), 5, "must be distinct");
            assert!(got.iter().all(|&i| i < 20));
        }
        // Edge: k == n yields a permutation.
        let got = rng.sample_distinct(5, 5);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn uniformity_chi_square() {
        // Coarse chi-square test on 16 buckets; threshold is generous (the
        // 99.9th percentile of chi2 with 15 dof is ~37.7).
        let mut rng = DetRng::from_seed_label(10, "chi");
        let n = 160_000u64;
        let mut buckets = [0u64; 16];
        for _ in 0..n {
            buckets[rng.below(16) as usize] += 1;
        }
        let expect = n as f64 / 16.0;
        let chi2: f64 = buckets
            .iter()
            .map(|&o| {
                let d = o as f64 - expect;
                d * d / expect
            })
            .sum();
        assert!(chi2 < 45.0, "chi2 {chi2}");
    }

    #[test]
    fn state_round_trip_continues_stream_exactly() {
        let mut rng = DetRng::from_seed_label(99, "state");
        // Burn an odd number of bytes so the buffer is mid-block, and prime
        // the Box–Muller cache so `gauss_spare` is exercised too.
        for _ in 0..13 {
            rng.next_u64();
        }
        rng.sample_standard_normal();
        let mut restored = DetRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
        assert_eq!(
            rng.sample_standard_normal(),
            restored.sample_standard_normal()
        );
        assert_eq!(rng.sample_exp(3.0), restored.sample_exp(3.0));
    }
}
