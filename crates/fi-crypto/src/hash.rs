//! 32-byte digest newtype and domain-separated keyed hashing.

use std::fmt;

use crate::sha256::Sha256;

/// A 32-byte digest (SHA-256 output).
///
/// Used throughout the workspace as file Merkle roots, content identifiers,
/// replica commitments, beacon outputs, and block hashes.
///
/// # Example
///
/// ```
/// use fi_crypto::{sha256, Hash256};
///
/// let h = sha256(b"file contents");
/// let restored = Hash256::from_hex(&h.to_hex()).unwrap();
/// assert_eq!(h, restored);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Hash256([u8; 32]);

impl Hash256 {
    /// The all-zero digest. Used as a sentinel (e.g. the parent of a genesis
    /// block) — never produced by hashing real data.
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// Wraps raw digest bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Hash256(bytes)
    }

    /// Borrows the digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Consumes the digest, returning its bytes.
    pub fn into_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Lowercase hex encoding (64 characters).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// Parses a 64-character hex string.
    ///
    /// Returns `None` if the string is not exactly 64 hex digits.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        let bytes = s.as_bytes();
        for i in 0..32 {
            let hi = (bytes[2 * i] as char).to_digit(16)?;
            let lo = (bytes[2 * i + 1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Hash256(out))
    }

    /// First 8 bytes interpreted as a big-endian `u64`.
    ///
    /// Handy for deriving integer seeds from digests.
    pub fn to_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().unwrap())
    }

    /// XOR distance between two digests (Kademlia metric), returned as the
    /// number of leading zero bits of the XOR (larger = closer).
    pub fn xor_leading_zeros(&self, other: &Hash256) -> u32 {
        let mut zeros = 0u32;
        for i in 0..32 {
            let x = self.0[i] ^ other.0[i];
            if x == 0 {
                zeros += 8;
            } else {
                zeros += x.leading_zeros();
                break;
            }
        }
        zeros
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash256({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Hash256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Hash256 {
    fn from(bytes: [u8; 32]) -> Self {
        Hash256(bytes)
    }
}

/// Domain-separated keyed hash: `SHA-256(len(domain) || domain || data...)`.
///
/// Each variadic part is length-prefixed so that concatenation ambiguity is
/// impossible (`("ab","c")` never collides with `("a","bc")`).
///
/// # Example
///
/// ```
/// use fi_crypto::keyed_hash;
/// let a = keyed_hash("replica", &[b"file", b"sector-1"]);
/// let b = keyed_hash("replica", &[b"files", b"ector-1"]);
/// assert_ne!(a, b);
/// ```
pub fn keyed_hash(domain: &str, parts: &[&[u8]]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&(domain.len() as u64).to_be_bytes());
    h.update(domain.as_bytes());
    for part in parts {
        h.update(&(part.len() as u64).to_be_bytes());
        h.update(part);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256;

    #[test]
    fn hex_round_trip() {
        let h = sha256(b"round trip");
        assert_eq!(Hash256::from_hex(&h.to_hex()), Some(h));
        assert_eq!(Hash256::from_hex("xyz"), None);
        assert_eq!(Hash256::from_hex(&"g".repeat(64)), None);
    }

    #[test]
    fn zero_is_sentinel() {
        assert_eq!(Hash256::ZERO.to_hex(), "0".repeat(64));
        assert_ne!(sha256(b""), Hash256::ZERO);
    }

    #[test]
    fn keyed_hash_domain_separation() {
        assert_ne!(
            keyed_hash("a", &[b"payload"]),
            keyed_hash("b", &[b"payload"])
        );
        // Length prefixing prevents concatenation ambiguity.
        assert_ne!(
            keyed_hash("d", &[b"ab", b"c"]),
            keyed_hash("d", &[b"a", b"bc"])
        );
        assert_ne!(keyed_hash("d", &[b"abc"]), keyed_hash("d", &[b"ab", b"c"]));
    }

    #[test]
    fn xor_leading_zeros_basics() {
        let a = Hash256::from_bytes([0u8; 32]);
        assert_eq!(a.xor_leading_zeros(&a), 256);
        let mut b = [0u8; 32];
        b[0] = 0x80;
        assert_eq!(a.xor_leading_zeros(&Hash256::from_bytes(b)), 0);
        let mut c = [0u8; 32];
        c[1] = 0x01;
        assert_eq!(a.xor_leading_zeros(&Hash256::from_bytes(c)), 15);
    }

    #[test]
    fn to_u64_is_prefix() {
        let mut raw = [0u8; 32];
        raw[..8].copy_from_slice(&0xDEAD_BEEF_CAFE_F00Du64.to_be_bytes());
        assert_eq!(Hash256::from_bytes(raw).to_u64(), 0xDEAD_BEEF_CAFE_F00D);
    }
}
