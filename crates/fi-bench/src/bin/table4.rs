//! Regenerates Table IV: comparison of DSN protocols (measured).

use fi_sim::table4::{render, run, Table4Config};
use fi_sim::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    println!(
        "{}",
        fi_bench::banner(
            "Table IV — comparison of DSN protocols",
            "FileInsurer (ICDCS'22), Table IV / §V-C"
        )
    );
    let config = Table4Config::for_scale(scale);
    println!(
        "network: {} nodes, {} files, k={}, greedy adversary at lambda={}\n",
        config.ns, config.nv, config.k, config.lambda
    );
    let rows = run(&config);
    println!("{}", render(&rows));
}
