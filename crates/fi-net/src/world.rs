//! The process framework: nodes, typed messages, timers.
//!
//! A [`World`] owns a set of nodes (each a [`Process`] implementation), a
//! shared [`LinkModel`], and the event queue. Nodes interact only through
//! their [`Ctx`] handle — sending messages (subject to link delay/loss) and
//! arming timers — so every run is a deterministic function of the seed.

use fi_crypto::DetRng;

use crate::link::LinkModel;
use crate::sim::{SimTime, Simulator};

/// Index of a node within its world.
pub type NodeIdx = usize;

/// Events processed by the world.
#[derive(Debug)]
enum Event<M> {
    Deliver { from: NodeIdx, to: NodeIdx, msg: M },
    Timer { node: NodeIdx, tag: u64 },
}

/// A node's behaviour.
///
/// All callbacks receive a [`Ctx`] for sending messages and arming timers.
/// Default implementations do nothing, so simple nodes implement only what
/// they need.
pub trait Process<M> {
    /// Called once when the world starts running.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message from `from` is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeIdx, msg: M);

    /// Called when a timer armed via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, tag: u64) {
        let _ = (ctx, tag);
    }
}

/// Per-callback handle: scheduling and randomness for one node.
pub struct Ctx<'a, M> {
    me: NodeIdx,
    now: SimTime,
    sim: &'a mut Simulator<Event<M>>,
    link: &'a LinkModel,
    rng: &'a mut DetRng,
    messages_sent: &'a mut u64,
    messages_lost: &'a mut u64,
}

impl<M> Ctx<'_, M> {
    /// This node's index.
    pub fn me(&self) -> NodeIdx {
        self.me
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic randomness scoped to the world.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Sends `msg` (`bytes` long on the wire) to `to`; it arrives after the
    /// link delay, or never (lossy links).
    pub fn send(&mut self, to: NodeIdx, msg: M, bytes: u64) {
        *self.messages_sent += 1;
        match self.link.delivery_delay(self.rng, bytes) {
            Some(delay) => {
                let from = self.me;
                self.sim.schedule(delay, Event::Deliver { from, to, msg });
            }
            None => *self.messages_lost += 1,
        }
    }

    /// Arms a timer that fires on this node after `delay` ticks with `tag`.
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) {
        let node = self.me;
        self.sim.schedule(delay, Event::Timer { node, tag });
    }
}

/// A simulated network of processes.
pub struct World<M> {
    nodes: Vec<Option<Box<dyn Process<M>>>>,
    sim: Simulator<Event<M>>,
    link: LinkModel,
    rng: DetRng,
    started: bool,
    messages_sent: u64,
    messages_lost: u64,
}

impl<M> std::fmt::Debug for World<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("nodes", &self.nodes.len())
            .field("now", &self.sim.now())
            .field("queued", &self.sim.len())
            .finish()
    }
}

impl<M> World<M> {
    /// Creates a world with one shared link model and a master seed.
    pub fn new(link: LinkModel, seed: u64) -> Self {
        World {
            nodes: Vec::new(),
            sim: Simulator::new(),
            link,
            rng: DetRng::from_seed_label(seed, "fi-net/world"),
            started: false,
            messages_sent: 0,
            messages_lost: 0,
        }
    }

    /// Adds a node; returns its index.
    pub fn add(&mut self, node: impl Process<M> + 'static) -> NodeIdx {
        self.nodes.push(Some(Box::new(node)));
        self.nodes.len() - 1
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Total messages sent (including lost ones).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Messages dropped by the link model.
    pub fn messages_lost(&self) -> u64 {
        self.messages_lost
    }

    /// Runs until the queue drains or `deadline` passes, whichever first.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                self.with_node(i, |node, ctx| node.on_start(ctx));
            }
        }
        let mut processed = 0;
        while let Some((_, event)) = self.sim.next_before(deadline) {
            match event {
                Event::Deliver { from, to, msg } => {
                    self.with_node(to, |node, ctx| node.on_message(ctx, from, msg));
                }
                Event::Timer { node, tag } => {
                    self.with_node(node, |n, ctx| n.on_timer(ctx, tag));
                }
            }
            processed += 1;
        }
        if self.sim.now() < deadline {
            self.sim.advance_clock(deadline);
        }
        processed
    }

    /// Borrow of node `idx` for inspection after a run.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn node(&self, idx: NodeIdx) -> &dyn Process<M> {
        self.nodes[idx].as_deref().expect("node present")
    }

    /// Temporarily extracts a node, builds a `Ctx`, runs `f`.
    fn with_node<F>(&mut self, idx: NodeIdx, f: F)
    where
        F: FnOnce(&mut Box<dyn Process<M>>, &mut Ctx<'_, M>),
    {
        let Some(slot) = self.nodes.get_mut(idx) else {
            return;
        };
        let Some(mut node) = slot.take() else { return };
        let mut ctx = Ctx {
            me: idx,
            now: self.sim.now(),
            sim: &mut self.sim,
            link: &self.link,
            rng: &mut self.rng,
            messages_sent: &mut self.messages_sent,
            messages_lost: &mut self.messages_lost,
        };
        f(&mut node, &mut ctx);
        self.nodes[idx] = Some(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts messages; replies until a hop budget is exhausted.
    struct Echo {
        received: Vec<(NodeIdx, u64)>,
        timers: Vec<u64>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                received: Vec::new(),
                timers: Vec::new(),
            }
        }
    }

    impl Process<u64> for Echo {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.me() == 0 {
                ctx.send(1, 3, 100); // 3 hops left
                ctx.set_timer(50, 99);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeIdx, msg: u64) {
            self.received.push((from, msg));
            if msg > 0 {
                ctx.send(from, msg - 1, 100);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, tag: u64) {
            self.timers.push(tag);
        }
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut world = World::new(LinkModel::lan(), 1);
        world.add(Echo::new());
        world.add(Echo::new());
        let processed = world.run_until(10_000);
        // 4 deliveries (3,2,1,0) + 1 timer = 5 events.
        assert_eq!(processed, 5);
        assert_eq!(world.messages_sent(), 4);
        assert_eq!(world.messages_lost(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut world = World::new(LinkModel::wan(), 9);
            world.add(Echo::new());
            world.add(Echo::new());
            world.run_until(5_000);
            (world.now(), world.messages_sent())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lossy_link_drops_some() {
        let mut world = World::new(LinkModel::lossy(0.5), 3);
        // Node 0 sprays messages at node 1 via timers.
        struct Sprayer;
        impl Process<u64> for Sprayer {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                if ctx.me() == 0 {
                    for _ in 0..200 {
                        ctx.send(1, 0, 10);
                    }
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeIdx, _: u64) {}
        }
        world.add(Sprayer);
        world.add(Sprayer);
        world.run_until(100_000);
        assert_eq!(world.messages_sent(), 200);
        assert!(world.messages_lost() > 50 && world.messages_lost() < 150);
    }

    #[test]
    fn run_until_deadline_stops_early() {
        let mut world = World::new(LinkModel::lan(), 4);
        struct Clock;
        impl Process<u64> for Clock {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.set_timer(10, 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeIdx, _: u64) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, tag: u64) {
                ctx.set_timer(10, tag + 1); // re-arm forever
            }
        }
        world.add(Clock);
        let processed = world.run_until(100);
        assert_eq!(processed, 10); // timers at 10,20,...,100
        assert_eq!(world.now(), 100);
    }
}
