//! Sia baseline model.
//!
//! §II-C.2: Sia forms **storage contracts** between a renter and hosts the
//! renter selects; hosts post periodic storage proofs per contract. Two
//! properties distinguish it in Table IV:
//!
//! * **No Sybil prevention** (Table IV row 2: "Preventing Sybil Attacks —
//!   No"): Sia's storage proofs prove *possession of data under a
//!   contract*, not that distinct contracts live on distinct hardware. One
//!   physical operator can present many host identities backed by one
//!   disk; corrupting that operator kills every such "independent" host.
//!   We model this with entity groups: each physical entity backs
//!   `sybil_factor` logical hosts.
//! * **No loss compensation**: host collateral is burned/kept, renters are
//!   not made whole.

use fi_crypto::DetRng;

use crate::common::{FileSpec, NetworkSpec, Placement};
use crate::{Compensation, DsnModel};

/// Sia at placement granularity.
#[derive(Debug, Clone)]
pub struct SiaModel {
    /// Hosts per file contract set.
    hosts_per_file: u32,
    /// Logical hosts per physical entity (the Sybil exposure).
    sybil_factor: u32,
}

impl SiaModel {
    /// Creates the model with `hosts_per_file` contracts per file and a
    /// Sybil factor (logical hosts per physical entity).
    pub fn new(hosts_per_file: u32, sybil_factor: u32) -> Self {
        assert!(hosts_per_file > 0 && sybil_factor > 0);
        SiaModel {
            hosts_per_file,
            sybil_factor,
        }
    }

    /// Rewrites a network spec so that consecutive groups of
    /// `sybil_factor` nodes share one physical entity — what the Sia
    /// network *actually* looks like under Sybil identities, unbeknownst
    /// to renters.
    pub fn sybilize(&self, net: &NetworkSpec) -> NetworkSpec {
        NetworkSpec {
            nodes: net
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| crate::common::NodeSpec {
                    capacity: n.capacity,
                    entity: i / self.sybil_factor as usize,
                })
                .collect(),
        }
    }
}

impl DsnModel for SiaModel {
    fn name(&self) -> &'static str {
        "Sia"
    }

    fn place(&self, net: &NetworkSpec, files: &[FileSpec], rng: &mut DetRng) -> Placement {
        // Renters pick distinct-looking hosts uniformly.
        let n = net.nodes.len();
        let per_file = (self.hosts_per_file as usize).min(n);
        let locations = files
            .iter()
            .map(|_| rng.sample_distinct(n, per_file))
            .collect();
        Placement {
            locations,
            survivors_needed: vec![1; files.len()],
        }
    }

    fn sybil_vulnerable(&self) -> bool {
        true
    }

    fn provable_robustness(&self) -> bool {
        false
    }

    fn compensation(&self) -> Compensation {
        Compensation::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{corrupt_nodes, evaluate_loss, AdversaryStrategy};

    #[test]
    fn sybilize_groups_entities() {
        let m = SiaModel::new(3, 4);
        let net = NetworkSpec::uniform(12, 64);
        let sybil = m.sybilize(&net);
        assert_eq!(sybil.nodes[0].entity, 0);
        assert_eq!(sybil.nodes[3].entity, 0);
        assert_eq!(sybil.nodes[4].entity, 1);
        assert_eq!(sybil.nodes[11].entity, 2);
    }

    #[test]
    fn sybil_attack_devastates_sia_but_not_honest_network() {
        // Same placement, same λ budget; with Sybil collapse the adversary
        // kills whole entity groups at one disk's cost.
        let m = SiaModel::new(3, 8);
        let net = NetworkSpec::uniform(64, 64);
        let files = vec![
            FileSpec {
                size: 1,
                value: 1.0
            };
            400
        ];
        let mut rng = DetRng::from_seed_label(91, "sia");
        let placement = m.place(&net, &files, &mut rng);

        let sybil_net = m.sybilize(&net);
        let mut rng_a = DetRng::from_seed_label(92, "a");
        let mut rng_b = DetRng::from_seed_label(92, "b");
        let with_sybil = corrupt_nodes(
            &sybil_net,
            &placement,
            &files,
            0.2,
            AdversaryStrategy::GreedyKill,
            true,
            &mut rng_a,
        );
        let without = corrupt_nodes(
            &net,
            &placement,
            &files,
            0.2,
            AdversaryStrategy::GreedyKill,
            false,
            &mut rng_b,
        );
        let loss_sybil = evaluate_loss(&sybil_net, &placement, &files, &with_sybil);
        let loss_honest = evaluate_loss(&net, &placement, &files, &without);
        assert!(
            loss_sybil.lost_value > loss_honest.lost_value * 2.0,
            "sybil {} vs honest {}",
            loss_sybil.lost_value,
            loss_honest.lost_value
        );
        // And many more logical nodes fell than the budget "paid for".
        assert!(with_sybil.len() > without.len());
    }

    #[test]
    fn no_compensation() {
        let m = SiaModel::new(3, 4);
        assert_eq!(m.compensate(50.0, 1e9), 0.0);
    }
}
