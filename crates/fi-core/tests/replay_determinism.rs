//! Op-log replay determinism: a random workload driven through the typed
//! transaction layer, replayed from the log into a fresh engine, must
//! reproduce the same `state_root()` at every block — the property that
//! makes the op log the canonical ledger history.

use fi_chain::account::{AccountId, TokenAmount};
use fi_chain::tasks::SchedulerKind;
use fi_core::engine::{Engine, StateView};
use fi_core::params::ProtocolParams;
use fi_core::types::SectorState;
use fi_crypto::{sha256, DetRng};

const CLIENT: AccountId = AccountId(900);
const PROVIDERS: [AccountId; 3] = [AccountId(700), AccountId(701), AccountId(702)];

fn random_workload(seed: u64, params: &ProtocolParams) -> Engine {
    let mut engine = Engine::new(params.clone()).expect("valid params");
    let mut rng = DetRng::from_seed_label(seed, "replay-workload");
    engine.fund(CLIENT, TokenAmount(500_000_000));
    for p in PROVIDERS {
        engine.fund(p, TokenAmount(1_000_000_000_000));
        for _ in 0..2 {
            engine
                .sector_register(p, 640 * (1 + rng.below(3)))
                .expect("registration");
        }
    }
    for step in 0..60u64 {
        match rng.below(10) {
            0..=3 => {
                // File adds (sometimes unaffordable sizes → failed op,
                // which must also replay identically).
                let size = 1 + rng.below(40);
                let root = sha256(&(seed ^ step).to_be_bytes());
                let _ = engine.file_add(CLIENT, size, engine.params().min_value, root);
            }
            4..=6 => {
                engine.honest_providers_act();
            }
            7 => {
                // Discard a random live file (or fail on a bogus id).
                let ids = engine.file_ids();
                if !ids.is_empty() {
                    let f = ids[(rng.below(ids.len() as u64)) as usize];
                    let _ = engine.file_discard(CLIENT, f);
                }
            }
            8 => {
                // Fault injection.
                let ids = engine.sector_ids();
                if !ids.is_empty() {
                    let s = ids[(rng.below(ids.len() as u64)) as usize];
                    if engine.sector(s).map(|x| x.state) == Some(SectorState::Normal) {
                        if rng.below(2) == 0 {
                            engine.fail_sector_silently(s);
                        } else {
                            engine.corrupt_sector_now(s);
                        }
                    }
                }
            }
            _ => {
                engine.advance_to(engine.now() + 10 + rng.below(150));
            }
        }
    }
    engine.honest_providers_act();
    engine.advance_to(engine.now() + engine.params().proof_cycle * 3);
    engine
}

fn assert_replay_matches(original: &Engine, params: ProtocolParams) {
    let replayed = Engine::replay(params, original.op_log()).expect("params valid");
    // Same state root and chain head…
    assert_eq!(replayed.state_root(), original.state_root());
    assert_eq!(replayed.chain().head_hash(), original.chain().head_hash());
    // …and block-by-block: every sealed block (whose hash folds in the
    // state root declared at seal time, the event digests, and the op
    // batch + receipt root) is identical.
    let a = original.chain().blocks();
    let b = replayed.chain().blocks();
    assert_eq!(a.len(), b.len(), "block counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.block_hash, y.block_hash, "block {} diverged", x.height);
        assert_eq!(x.op_digests, y.op_digests, "op batch {} diverged", x.height);
        assert_eq!(
            x.receipt_root, y.receipt_root,
            "receipts {} diverged",
            x.height
        );
    }
    // Observable protocol outcomes match too.
    assert_eq!(replayed.stats(), original.stats());
    assert_eq!(replayed.file_ids(), original.file_ids());
    assert_eq!(replayed.sector_ids(), original.sector_ids());
    assert_eq!(
        replayed.ledger().total_supply(),
        original.ledger().total_supply()
    );
}

#[test]
fn random_workloads_replay_to_identical_chains() {
    for seed in [1u64, 7, 42] {
        let params = ProtocolParams {
            k: 3,
            delay_per_size: 6,
            avg_refresh: 6.0,
            ..ProtocolParams::default()
        };
        let engine = random_workload(seed, &params);
        assert!(
            engine.op_log().iter().any(|r| !r.ok),
            "seed {seed}: workload should include failed ops (they replay too)"
        );
        assert_replay_matches(&engine, params);
    }
}

#[test]
fn replay_is_scheduler_agnostic() {
    // The wheel and the BTreeMap scheduler execute tasks identically, so a
    // log recorded under one replays to the same chain under the other.
    let wheel_params = ProtocolParams {
        k: 3,
        delay_per_size: 6,
        scheduler: SchedulerKind::Wheel,
        ..ProtocolParams::default()
    };
    let btree_params = ProtocolParams {
        scheduler: SchedulerKind::BTree,
        ..wheel_params.clone()
    };
    let engine = random_workload(99, &wheel_params);
    assert_replay_matches(&engine, btree_params);
}

/// Checkpoint + truncate bounds op-log growth without losing replayability:
/// a snapshot taken at the checkpoint plus the post-checkpoint log suffix
/// rebuilds the exact engine — state root, chain head, stats — and the
/// checkpoint itself is invisible to consensus (roots commit to the
/// monotonic op counter, not the log length).
#[test]
fn replay_from_checkpoint_is_deterministic() {
    for seed in [4u64, 19] {
        let params = ProtocolParams {
            k: 3,
            delay_per_size: 6,
            avg_refresh: 6.0,
            ..ProtocolParams::default()
        };
        // Build the first half of the workload, snapshot + checkpoint.
        let mut engine = random_workload(seed, &params);
        let pre_truncate_root = engine.state_root();
        let log_before = engine.op_log().len();
        assert!(log_before > 0);
        let base = engine.clone();
        let cp = engine.checkpoint();
        assert!(engine.op_log().is_empty(), "checkpoint truncates the log");
        assert_eq!(engine.last_checkpoint(), Some(&cp));
        assert_eq!(
            engine.state_root(),
            pre_truncate_root,
            "truncation must not change consensus state"
        );
        assert_eq!(cp.state_root, pre_truncate_root);
        assert_eq!(cp.ops_applied, log_before as u64);

        // Second half: more traffic, faults, time.
        let mut rng = DetRng::from_seed_label(seed, "checkpoint-tail");
        for step in 0..30u64 {
            match rng.below(4) {
                0 => {
                    let root = sha256(&(seed ^ (1 << 32) ^ step).to_be_bytes());
                    let _ =
                        engine.file_add(CLIENT, 1 + rng.below(20), engine.params().min_value, root);
                }
                1 => {
                    engine.honest_providers_act();
                }
                _ => engine.advance_to(engine.now() + 10 + rng.below(100)),
            }
        }
        // Post-checkpoint records continue the global seq numbering.
        assert_eq!(engine.op_log()[0].seq, cp.ops_applied);

        // Replay from the checkpoint base: identical engine.
        let replayed = Engine::replay_from(&base, &cp, engine.op_log()).expect("base matches");
        assert_eq!(replayed.state_root(), engine.state_root());
        assert_eq!(replayed.chain().head_hash(), engine.chain().head_hash());
        assert_eq!(replayed.stats(), engine.stats());
        assert_eq!(replayed.file_ids(), engine.file_ids());
        assert_eq!(replayed.op_log(), engine.op_log());

        // A non-matching base is rejected, not silently replayed.
        let mut wrong = base.clone();
        wrong.tick();
        assert!(Engine::replay_from(&wrong, &cp, engine.op_log()).is_err());
    }
}

#[test]
fn segmented_upload_rollback_is_replayable() {
    // The §VI-C rollback path issues consensus-side ForceDiscard ops; the
    // log must capture them so replay reproduces the partial-upload state.
    let params = ProtocolParams {
        k: 2,
        size_limit: 16,
        ..ProtocolParams::default()
    };
    let mut engine = Engine::new(params.clone()).unwrap();
    let provider = AccountId(100);
    engine.fund(provider, TokenAmount(1_000_000_000));
    engine.sector_register(provider, 640).unwrap();
    // Fund the client with just enough for part of the upload so it fails
    // midway and rolls back.
    let client = AccountId(200);
    engine.fund(client, TokenAmount(400));
    let payload: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
    let err = engine
        .file_add_segmented(client, &payload, TokenAmount(2_000))
        .unwrap_err();
    let _ = err;
    assert!(
        engine
            .op_log()
            .iter()
            .any(|r| r.op.kind() == "op.force_discard"),
        "rollback must be logged as ops"
    );
    engine.advance_to(engine.now() + 500);
    assert_replay_matches(&engine, params);
}
