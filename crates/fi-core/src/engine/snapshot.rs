//! Durable engine snapshots: a versioned, self-hashed, deterministic byte
//! encoding of the full consensus state.
//!
//! [`Engine::snapshot_save`] serializes everything a node needs to resume
//! consensus from this exact moment: parameters, the chain head (height,
//! head hash, the open block's events and op batch — the beacon re-derives
//! from the seed), the ledger, every shard's files / allocation rows /
//! discard reasons / pending tasks / stats, the sector tables, the
//! capacity sampler's exact slot layout, the protocol rng's mid-stream
//! state, and the global counters the state root commits to.
//! [`Engine::snapshot_restore`] rebuilds a live engine from those bytes;
//! together with [`Engine::replay_from`] this replaces the "keep a live
//! clone at the checkpoint" pattern with bytes on disk (DESIGN.md §10).
//!
//! Two things are deliberately **not** part of a snapshot:
//!
//! * history — the truncated op log and sealed block bodies (a restored
//!   chain's [`fi_chain::BlockChain::blocks`] holds only post-restore
//!   seals, verified against the restored head); snapshots capture state,
//!   checkpointed op logs capture history;
//! * deployment configuration — the gas schedule (like
//!   [`Engine::replay`], restoring an engine that ran a non-default
//!   schedule requires setting the same schedule afterwards) and the
//!   drained [`Engine::events`] accessor log.
//!
//! Wire format (all integers big-endian):
//!
//! ```text
//! magic   8 bytes  b"FISNAPSH"
//! version u16      currently 4 (1 predates the PR 5 node/mempool params,
//!                  2 predates the PR 6 tombstone-retention param,
//!                  3 predates the PR 8 audit-batch stats)
//! payload ...      field-by-field engine state (see encode())
//! hash    32 bytes sha256 over magic ‖ version ‖ payload
//! ```
//!
//! The trailing self-hash makes corruption detection unconditional:
//! truncation, bit flips and trailing garbage all surface as typed
//! [`SnapshotError`]s before any field is interpreted.
//!
//! ## Incremental snapshots (`FIDELTA1`)
//!
//! [`Engine::snapshot_delta`] writes a second format under the same
//! envelope discipline (`b"FIDELTA1"`, version, self-hash): the base and
//! new `state_root`s, the five new map roots, the full non-map sections
//! (identical byte language to FISNAPSH via shared helpers), and then —
//! instead of the five map tables — only the content-addressed HAMT
//! nodes *new since the base roots*. A holder of the base state applies
//! it with [`Engine::snapshot_restore_delta`], which verifies every
//! node block against its id and cross-checks the reassembled engine's
//! `state_root` against the recorded one (DESIGN.md §15).

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use fi_chain::account::{AccountId, Ledger, TokenAmount};
use fi_chain::block::{BlockChain, ChainEvent};
use fi_chain::gas::GasSchedule;
use fi_chain::tasks::{SchedulerKind, Time};
use fi_crypto::{sha256, DetRng, DetRngState, Hash256};
use fi_store::{Hamt, StoreError};

use crate::params::{ParamError, ProtocolParams};
use crate::sampler::WeightedSampler;
use crate::types::{
    AllocEntry, AllocState, FileDescriptor, FileId, FileState, RemovalReason, Sector, SectorId,
    SectorState,
};

use crate::error::Error;

use super::shard::ShardedState;
use super::statemap::{self, CommitCell, StateRoots, TrackedMap};
use super::{Checkpoint, Engine, EngineStats, Task};

const MAGIC: &[u8; 8] = b"FISNAPSH";
const VERSION: u16 = 4;
/// Incremental-snapshot envelope: same self-hash discipline as FISNAPSH,
/// its own magic and version lineage.
const DELTA_MAGIC: &[u8; 8] = b"FIDELTA1";
const DELTA_VERSION: u16 = 1;
const HASH_LEN: usize = 32;

/// Typed failures of [`Engine::snapshot_restore`]. Corrupted or
/// incompatible bytes always surface as one of these — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte string is shorter than the fixed envelope (magic, version,
    /// self-hash) or a field ran past the payload end.
    Truncated,
    /// The leading magic bytes are not a FileInsurer snapshot's.
    BadMagic,
    /// The self-hash does not match — the payload was corrupted in
    /// storage or transit.
    CorruptPayload,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion(u16),
    /// The envelope is intact but a decoded field violates a structural
    /// invariant (unknown enum tag, inconsistent table, …).
    Malformed(&'static str),
    /// The decoded protocol parameters fail validation.
    InvalidParams(ParamError),
    /// Well-formed payload followed by extra bytes.
    TrailingBytes,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot bytes truncated"),
            SnapshotError::BadMagic => write!(f, "not a FileInsurer snapshot (bad magic)"),
            SnapshotError::CorruptPayload => {
                write!(f, "snapshot self-hash mismatch (corrupted payload)")
            }
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::InvalidParams(e) => write!(f, "snapshot parameters invalid: {e}"),
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after snapshot payload"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<ParamError> for SnapshotError {
    fn from(e: ParamError) -> Self {
        SnapshotError::InvalidParams(e)
    }
}

// ----------------------------------------------------------------------
// Byte codec
// ----------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc::with_header(MAGIC, VERSION)
    }

    fn with_header(magic: &[u8; 8], version: u16) -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(magic);
        buf.extend_from_slice(&version.to_be_bytes());
        Enc { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn hash(&mut self, h: &Hash256) {
        self.buf.extend_from_slice(h.as_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Seals the snapshot: appends the self-hash over everything so far.
    fn finish(mut self) -> Vec<u8> {
        let digest = sha256(&self.buf);
        self.buf.extend_from_slice(digest.as_bytes());
        self.buf
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_be_bytes(self.take(16)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("boolean tag")),
        }
    }

    /// A length prefix used to size a following allocation: bounded by the
    /// bytes actually remaining so corrupt lengths cannot trigger huge
    /// allocations (each encoded element is at least one byte).
    fn len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        if n as usize > self.bytes.len() - self.pos {
            return Err(SnapshotError::Truncated);
        }
        Ok(n as usize)
    }

    fn hash(&mut self) -> Result<Hash256, SnapshotError> {
        Ok(Hash256::from_bytes(self.take(32)?.try_into().unwrap()))
    }

    fn bytes_vec(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(SnapshotError::Malformed("option tag")),
        }
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// ----------------------------------------------------------------------
// Field encoders
// ----------------------------------------------------------------------

fn enc_params(e: &mut Enc, p: &ProtocolParams) {
    e.u64(p.min_capacity);
    e.u128(p.min_value.0);
    e.u32(p.k);
    e.u64(p.cap_para);
    e.u64(p.gamma_deposit_ppm);
    e.u64(p.proof_cycle);
    e.u64(p.proof_due);
    e.u64(p.proof_deadline);
    e.f64(p.avg_refresh);
    e.u64(p.delay_per_size);
    e.u128(p.unit_rent.0);
    e.u128(p.traffic_fee_per_size.0);
    e.u128(p.gas_prepay_per_cycle.0);
    e.u32(p.rent_period_cycles);
    e.u64(p.size_limit);
    e.u64(p.punish_ppm);
    e.u32(p.collision_retry_limit);
    e.bool(p.poisson_rebalance);
    e.u64(p.seed);
    e.u64(p.block_interval);
    e.u8(match p.scheduler {
        SchedulerKind::Wheel => 0,
        SchedulerKind::BTree => 1,
    });
    e.usize(p.shards);
    e.u32(p.audit_path_len);
    e.usize(p.ingest_threads);
    e.usize(p.mempool_cap);
    e.u64(p.block_gas_limit);
    e.usize(p.block_ops_limit);
    e.u64(p.tombstone_retention_blocks);
}

fn dec_params(d: &mut Dec<'_>) -> Result<ProtocolParams, SnapshotError> {
    Ok(ProtocolParams {
        min_capacity: d.u64()?,
        min_value: TokenAmount(d.u128()?),
        k: d.u32()?,
        cap_para: d.u64()?,
        gamma_deposit_ppm: d.u64()?,
        proof_cycle: d.u64()?,
        proof_due: d.u64()?,
        proof_deadline: d.u64()?,
        avg_refresh: d.f64()?,
        delay_per_size: d.u64()?,
        unit_rent: TokenAmount(d.u128()?),
        traffic_fee_per_size: TokenAmount(d.u128()?),
        gas_prepay_per_cycle: TokenAmount(d.u128()?),
        rent_period_cycles: d.u32()?,
        size_limit: d.u64()?,
        punish_ppm: d.u64()?,
        collision_retry_limit: d.u32()?,
        poisson_rebalance: d.bool()?,
        seed: d.u64()?,
        block_interval: d.u64()?,
        scheduler: match d.u8()? {
            0 => SchedulerKind::Wheel,
            1 => SchedulerKind::BTree,
            _ => return Err(SnapshotError::Malformed("scheduler kind tag")),
        },
        shards: d.u64()? as usize,
        audit_path_len: d.u32()?,
        ingest_threads: d.u64()? as usize,
        mempool_cap: d.u64()? as usize,
        block_gas_limit: d.u64()?,
        block_ops_limit: d.u64()? as usize,
        tombstone_retention_blocks: d.u64()?,
    })
}

fn enc_stats(e: &mut Enc, s: &EngineStats) {
    e.u64(s.add_collisions);
    e.u64(s.refresh_collisions);
    e.u64(s.refreshes_started);
    e.u64(s.refreshes_completed);
    e.u64(s.proofs_accepted);
    e.u64(s.punishments);
    e.u64(s.sectors_corrupted);
    e.u64(s.files_lost);
    e.u128(s.value_lost.0);
    e.u128(s.compensation_paid.0);
    e.u128(s.compensation_shortfall.0);
    e.u64(s.proofs_audited);
    e.u64(s.batches_staged_parallel);
    e.u64(s.batches_fell_back_sequential);
    e.u64(s.audit_commit_batches);
}

fn dec_stats(d: &mut Dec<'_>) -> Result<EngineStats, SnapshotError> {
    Ok(EngineStats {
        add_collisions: d.u64()?,
        refresh_collisions: d.u64()?,
        refreshes_started: d.u64()?,
        refreshes_completed: d.u64()?,
        proofs_accepted: d.u64()?,
        punishments: d.u64()?,
        sectors_corrupted: d.u64()?,
        files_lost: d.u64()?,
        value_lost: TokenAmount(d.u128()?),
        compensation_paid: TokenAmount(d.u128()?),
        compensation_shortfall: TokenAmount(d.u128()?),
        proofs_audited: d.u64()?,
        batches_staged_parallel: d.u64()?,
        batches_fell_back_sequential: d.u64()?,
        audit_commit_batches: d.u64()?,
    })
}

fn enc_task(e: &mut Enc, task: &Task) {
    match task {
        Task::CheckAlloc(f) => {
            e.u8(0);
            e.u64(f.0);
        }
        Task::CheckProof(f) => {
            e.u8(1);
            e.u64(f.0);
        }
        Task::CheckRefresh(f, i) => {
            e.u8(2);
            e.u64(f.0);
            e.u32(*i);
        }
        Task::DistributeRent => e.u8(3),
    }
}

fn dec_task(d: &mut Dec<'_>) -> Result<Task, SnapshotError> {
    Ok(match d.u8()? {
        0 => Task::CheckAlloc(FileId(d.u64()?)),
        1 => Task::CheckProof(FileId(d.u64()?)),
        2 => Task::CheckRefresh(FileId(d.u64()?), d.u32()?),
        3 => Task::DistributeRent,
        _ => return Err(SnapshotError::Malformed("task tag")),
    })
}

// ----------------------------------------------------------------------
// Section helpers — shared by the full (FISNAPSH) and delta (FIDELTA1)
// formats. Each pair writes/reads exactly the bytes the full format
// always wrote, so extracting them keeps FISNAPSH byte-stable.
// ----------------------------------------------------------------------

/// Checks a snapshot envelope (magic, trailing self-hash, version) and
/// returns a decoder positioned at the start of the payload.
fn open_envelope<'a>(
    bytes: &'a [u8],
    magic: &[u8; 8],
    version: u16,
) -> Result<Dec<'a>, SnapshotError> {
    if bytes.len() < magic.len() + 2 + HASH_LEN {
        return Err(SnapshotError::Truncated);
    }
    if &bytes[..magic.len()] != magic {
        return Err(SnapshotError::BadMagic);
    }
    let (body, tail) = bytes.split_at(bytes.len() - HASH_LEN);
    if sha256(body).as_bytes() != tail {
        return Err(SnapshotError::CorruptPayload);
    }
    let got = u16::from_be_bytes(bytes[8..10].try_into().unwrap());
    if got != version {
        return Err(SnapshotError::UnsupportedVersion(got));
    }
    Ok(Dec {
        bytes: &body[magic.len() + 2..],
        pos: 0,
    })
}

fn enc_chain(e: &mut Enc, chain: &BlockChain) {
    e.u64(chain.now());
    e.u64(chain.height());
    e.hash(&chain.head_hash());
    let open_events = chain.open_events();
    e.usize(open_events.len());
    for ev in open_events {
        e.bytes(ev.kind.as_bytes());
        e.bytes(&ev.payload);
    }
    let open_ops = chain.open_ops();
    e.usize(open_ops.len());
    for (op, receipt) in open_ops {
        e.hash(op);
        e.hash(receipt);
    }
}

fn dec_chain(d: &mut Dec<'_>, params: &ProtocolParams) -> Result<BlockChain, SnapshotError> {
    let now = d.u64()?;
    let height = d.u64()?;
    let head_hash = d.hash()?;
    // checked_mul, not saturating: a height whose sealed boundary
    // doesn't even fit Time is malformed regardless of `now`.
    let sealed_boundary =
        height
            .checked_mul(params.block_interval)
            .ok_or(SnapshotError::Malformed(
                "chain height overflows the time range",
            ))?;
    if now < sealed_boundary {
        return Err(SnapshotError::Malformed(
            "chain time precedes the last sealed boundary",
        ));
    }
    let n_events = d.len()?;
    let mut open_events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let kind = String::from_utf8(d.bytes_vec()?)
            .map_err(|_| SnapshotError::Malformed("event kind not UTF-8"))?;
        let payload = d.bytes_vec()?;
        open_events.push(ChainEvent::new(kind, payload));
    }
    let n_ops = d.len()?;
    let mut open_ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        open_ops.push((d.hash()?, d.hash()?));
    }
    Ok(BlockChain::restore(
        params.seed,
        params.block_interval,
        now,
        height,
        head_hash,
        open_events,
        open_ops,
    ))
}

fn enc_ledger(e: &mut Enc, ledger: &Ledger) {
    // Non-zero balances, canonical account order.
    let mut balances: Vec<(AccountId, TokenAmount)> = ledger.iter().collect();
    balances.sort_unstable_by_key(|(a, _)| *a);
    e.usize(balances.len());
    for (account, amount) in balances {
        e.u64(account.0);
        e.u128(amount.0);
    }
    e.u128(ledger.total_supply().0);
    e.u128(ledger.total_burned().0);
}

fn dec_ledger(d: &mut Dec<'_>) -> Result<Ledger, SnapshotError> {
    let n_balances = d.len()?;
    let mut balances = Vec::with_capacity(n_balances);
    for _ in 0..n_balances {
        balances.push((AccountId(d.u64()?), TokenAmount(d.u128()?)));
    }
    let total_supply = TokenAmount(d.u128()?);
    let total_burned = TokenAmount(d.u128()?);
    Ledger::restore(balances, total_supply, total_burned).map_err(SnapshotError::Malformed)
}

/// The global counters and commitments section.
struct Counters {
    next_file_id: u64,
    next_sector_id: u64,
    op_counter: u64,
    ops_applied: u64,
    task_seq: u64,
    audit_root: Hash256,
}

fn enc_counters(e: &mut Enc, engine: &Engine) {
    e.u64(engine.next_file_id);
    e.u64(engine.next_sector_id);
    e.u64(engine.op_counter);
    e.u64(engine.ops_applied);
    e.u64(engine.task_seq);
    e.hash(&engine.audit_root);
}

fn dec_counters(d: &mut Dec<'_>) -> Result<Counters, SnapshotError> {
    Ok(Counters {
        next_file_id: d.u64()?,
        next_sector_id: d.u64()?,
        op_counter: d.u64()?,
        ops_applied: d.u64()?,
        task_seq: d.u64()?,
        audit_root: d.hash()?,
    })
}

fn enc_all_stats(e: &mut Enc, global: &EngineStats, shards: &ShardedState) {
    // The global instance, then one per shard in shard order.
    enc_stats(e, global);
    e.usize(shards.shards.len());
    for shard in &shards.shards {
        enc_stats(e, &shard.stats);
    }
}

fn dec_all_stats(
    d: &mut Dec<'_>,
    expected_shards: usize,
) -> Result<(EngineStats, Vec<EngineStats>), SnapshotError> {
    let global = dec_stats(d)?;
    let n_shard_stats = d.len()?;
    if n_shard_stats != expected_shards {
        return Err(SnapshotError::Malformed(
            "per-shard stats count does not match the shard parameter",
        ));
    }
    let mut shard_stats = Vec::with_capacity(n_shard_stats);
    for _ in 0..n_shard_stats {
        shard_stats.push(dec_stats(d)?);
    }
    Ok((global, shard_stats))
}

fn enc_tasks(e: &mut Enc, shards: &ShardedState) {
    // Pending Auto_* tasks, canonically ordered by (time, seq). Tasks
    // are scheduled with a monotonic global sequence, so re-scheduling
    // in this order reproduces every wheel's pop order exactly.
    let mut tasks: Vec<(Time, u64, &Task)> = shards
        .shards
        .iter()
        .flat_map(|s| {
            s.pending
                .iter()
                .map(|(time, (seq, task))| (time, *seq, task))
        })
        .collect();
    tasks.sort_unstable_by_key(|&(time, seq, _)| (time, seq));
    e.usize(tasks.len());
    for (time, seq, task) in tasks {
        e.u64(time);
        e.u64(seq);
        enc_task(e, task);
    }
}

fn dec_tasks(
    d: &mut Dec<'_>,
    task_seq: u64,
    shards: &mut ShardedState,
) -> Result<(), SnapshotError> {
    let n_tasks = d.len()?;
    let mut last_key = None;
    for _ in 0..n_tasks {
        let time = d.u64()?;
        let seq = d.u64()?;
        if last_key.is_some_and(|k| k >= (time, seq)) {
            return Err(SnapshotError::Malformed("tasks out of canonical order"));
        }
        last_key = Some((time, seq));
        if seq >= task_seq {
            return Err(SnapshotError::Malformed("task seq above the seq counter"));
        }
        let task = dec_task(d)?;
        shards.schedule(seq, time, task);
    }
    Ok(())
}

fn enc_replicas(e: &mut Enc, sector_replicas: &HashMap<SectorId, BTreeSet<(FileId, u32)>>) {
    // Sorted; BTreeSet iterates sorted already.
    let mut replicas: Vec<(SectorId, &BTreeSet<(FileId, u32)>)> =
        sector_replicas.iter().map(|(id, set)| (*id, set)).collect();
    replicas.sort_unstable_by_key(|(id, _)| *id);
    e.usize(replicas.len());
    for (id, set) in replicas {
        e.u64(id.0);
        e.usize(set.len());
        for &(file, index) in set {
            e.u64(file.0);
            e.u32(index);
        }
    }
}

/// Decodes the replica index. Sector existence is checked by the caller
/// (the sector table may come from a different section or a state map).
type ReplicaIndex = HashMap<SectorId, BTreeSet<(FileId, u32)>>;

fn dec_replicas(d: &mut Dec<'_>) -> Result<ReplicaIndex, SnapshotError> {
    let n_replicas = d.len()?;
    let mut sector_replicas = HashMap::with_capacity(n_replicas);
    for _ in 0..n_replicas {
        let id = SectorId(d.u64()?);
        let n = d.len()?;
        let mut set = BTreeSet::new();
        for _ in 0..n {
            set.insert((FileId(d.u64()?), d.u32()?));
        }
        sector_replicas.insert(id, set);
    }
    Ok(sector_replicas)
}

fn enc_sampler(e: &mut Enc, sampler: &WeightedSampler<SectorId>) {
    // Exact slot layout (see WeightedSampler::snapshot_parts).
    let (slots, free_slots, tree_len) = sampler.snapshot_parts();
    e.usize(slots.len());
    for (key, weight) in slots {
        e.opt_u64(key.map(|s| s.0));
        e.u64(weight);
    }
    e.usize(free_slots.len());
    for slot in free_slots {
        e.usize(slot);
    }
    e.usize(tree_len);
}

fn dec_sampler(d: &mut Dec<'_>) -> Result<WeightedSampler<SectorId>, SnapshotError> {
    let n_slots = d.len()?;
    let mut slots = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        let key = d.opt_u64()?.map(SectorId);
        let weight = d.u64()?;
        slots.push((key, weight));
    }
    let n_free = d.len()?;
    let mut free_slots = Vec::with_capacity(n_free);
    for _ in 0..n_free {
        free_slots.push(d.u64()? as usize);
    }
    let tree_len = d.u64()? as usize;
    if tree_len > n_slots.saturating_mul(4).max(2) {
        return Err(SnapshotError::Malformed("sampler tree oversized"));
    }
    WeightedSampler::from_parts(slots, free_slots, tree_len).map_err(SnapshotError::Malformed)
}

fn enc_rng(e: &mut Enc, rng: &DetRng) {
    // Protocol rng, mid-stream.
    let rng = rng.state();
    for w in rng.key {
        e.u32(w);
    }
    for w in rng.nonce {
        e.u32(w);
    }
    e.u32(rng.counter);
    e.buf.extend_from_slice(&rng.buf);
    e.u8(rng.offset);
    match rng.gauss_spare {
        Some(v) => {
            e.u8(1);
            e.f64(v);
        }
        None => e.u8(0),
    }
}

fn dec_rng(d: &mut Dec<'_>) -> Result<DetRng, SnapshotError> {
    let mut key = [0u32; 8];
    for w in &mut key {
        *w = d.u32()?;
    }
    let mut nonce = [0u32; 3];
    for w in &mut nonce {
        *w = d.u32()?;
    }
    let counter = d.u32()?;
    let buf: [u8; 64] = d
        .take(64)?
        .try_into()
        .expect("take returns exactly 64 bytes");
    let offset = d.u8()?;
    if offset > 64 {
        return Err(SnapshotError::Malformed("rng offset beyond its buffer"));
    }
    let gauss_spare = match d.u8()? {
        0 => None,
        1 => Some(d.f64()?),
        _ => return Err(SnapshotError::Malformed("rng spare tag")),
    };
    Ok(DetRng::from_state(DetRngState {
        key,
        nonce,
        counter,
        buf,
        offset,
        gauss_spare,
    }))
}

fn enc_checkpoint(e: &mut Enc, checkpoint: &Option<Checkpoint>) {
    match checkpoint {
        Some(cp) => {
            e.u8(1);
            e.u64(cp.height);
            e.u64(cp.at);
            e.hash(&cp.state_root);
            e.u64(cp.ops_applied);
        }
        None => e.u8(0),
    }
}

fn dec_checkpoint(d: &mut Dec<'_>) -> Result<Option<Checkpoint>, SnapshotError> {
    Ok(match d.u8()? {
        0 => None,
        1 => Some(Checkpoint {
            height: d.u64()?,
            at: d.u64()?,
            state_root: d.hash()?,
            ops_applied: d.u64()?,
        }),
        _ => return Err(SnapshotError::Malformed("checkpoint tag")),
    })
}

impl Engine {
    /// Serializes the engine's complete consensus state into the versioned,
    /// self-hashed snapshot format (see the module docs for what is and
    /// isn't included). The encoding is deterministic: equal engine states
    /// produce byte-identical snapshots, whatever the shard count or hash
    /// map iteration order.
    pub fn snapshot_save(&self) -> Vec<u8> {
        let mut e = Enc::new();

        enc_params(&mut e, &self.params);
        enc_chain(&mut e, &self.chain);
        enc_ledger(&mut e, &self.ledger);
        enc_counters(&mut e, self);
        enc_all_stats(&mut e, &self.stats_global, &self.shards);

        // Files (sorted by id; the shard routing re-derives on restore).
        let mut files: Vec<&FileDescriptor> = self
            .shards
            .shards
            .iter()
            .flat_map(|s| s.files.values())
            .collect();
        files.sort_unstable_by_key(|f| f.id);
        e.usize(files.len());
        for f in files {
            e.u64(f.id.0);
            e.u64(f.owner.0);
            e.u64(f.size);
            e.u128(f.value.0);
            e.hash(&f.merkle_root);
            e.u32(f.cp);
            e.i64(f.cntdown);
            e.u8(match f.state {
                FileState::Allocating => 0,
                FileState::Normal => 1,
                FileState::Discarded => 2,
            });
        }

        // Allocation table (sorted by (file, index)).
        let mut alloc: Vec<(&(FileId, u32), &AllocEntry)> = self.shards.alloc_iter().collect();
        alloc.sort_unstable_by_key(|(k, _)| **k);
        e.usize(alloc.len());
        for (&(file, index), entry) in alloc {
            e.u64(file.0);
            e.u32(index);
            e.opt_u64(entry.prev.map(|s| s.0));
            e.opt_u64(entry.next.map(|s| s.0));
            e.opt_u64(entry.last);
            e.u8(match entry.state {
                AllocState::Alloc => 0,
                AllocState::Confirm => 1,
                AllocState::Normal => 2,
                AllocState::Corrupted => 3,
            });
        }

        // Discard reasons (sorted by file).
        let mut reasons: Vec<(FileId, RemovalReason)> = self
            .shards
            .shards
            .iter()
            .flat_map(|s| s.discard_reasons.iter().map(|(f, r)| (*f, *r)))
            .collect();
        reasons.sort_unstable_by_key(|(f, _)| *f);
        e.usize(reasons.len());
        for (file, reason) in reasons {
            e.u64(file.0);
            e.u8(match reason {
                RemovalReason::ClientDiscard => 0,
                RemovalReason::InsufficientFunds => 1,
                RemovalReason::UploadFailed => 2,
                RemovalReason::Lost => 3,
            });
        }

        enc_tasks(&mut e, &self.shards);

        // Sectors (sorted by id).
        let mut sectors: Vec<&Sector> = self.sectors.values().collect();
        sectors.sort_unstable_by_key(|s| s.id);
        e.usize(sectors.len());
        for s in sectors {
            e.u64(s.id.0);
            e.u64(s.owner.0);
            e.u64(s.capacity);
            e.u64(s.free_cap);
            e.u8(match s.state {
                SectorState::Normal => 0,
                SectorState::Disabled => 1,
                SectorState::Corrupted => 2,
            });
            e.u128(s.deposit.0);
            e.u32(s.replica_count);
            e.bool(s.physically_failed);
        }

        // DRep accounting (sorted by sector id).
        type CrParts = (u64, u64, u64, u64, u64);
        let mut cr: Vec<(SectorId, CrParts)> = self
            .cr
            .iter()
            .map(|(id, acct)| (*id, acct.snapshot_parts()))
            .collect();
        cr.sort_unstable_by_key(|(id, _)| *id);
        e.usize(cr.len());
        for (id, (capacity, cr_size, file_bytes, regenerated, discarded)) in cr {
            e.u64(id.0);
            e.u64(capacity);
            e.u64(cr_size);
            e.u64(file_bytes);
            e.u64(regenerated);
            e.u64(discarded);
        }

        enc_replicas(&mut e, &self.sector_replicas);
        enc_sampler(&mut e, &self.sampler);
        enc_rng(&mut e, &self.rng);
        enc_checkpoint(&mut e, &self.last_checkpoint);

        e.finish()
    }

    /// Rebuilds an engine from [`Engine::snapshot_save`] bytes.
    ///
    /// The restored engine reproduces the saved engine's `state_root()`
    /// and — fed the same subsequent ops — every later receipt and block
    /// hash exactly (asserted by the snapshot durability tests). Its op
    /// log starts empty and its chain holds no pre-snapshot block bodies;
    /// pair snapshots with [`Engine::checkpoint`] /
    /// [`Engine::replay_from`] to reconstruct state past the snapshot
    /// point from a persisted log suffix.
    ///
    /// # Errors
    ///
    /// A typed [`SnapshotError`] for anything wrong with the bytes:
    /// truncation, foreign magic, bit flips (self-hash mismatch), a
    /// version this build doesn't read, malformed fields, or invalid
    /// parameters. Never panics on untrusted input.
    pub fn snapshot_restore(bytes: &[u8]) -> Result<Engine, SnapshotError> {
        let mut d = open_envelope(bytes, MAGIC, VERSION)?;

        let params = dec_params(&mut d)?;
        params.validate()?;
        let chain = dec_chain(&mut d, &params)?;
        let ledger = dec_ledger(&mut d)?;
        let counters = dec_counters(&mut d)?;
        let Counters {
            next_file_id,
            next_sector_id,
            op_counter,
            ops_applied,
            task_seq,
            audit_root,
        } = counters;
        let (stats_global, shard_stats) = dec_all_stats(&mut d, params.shards)?;

        let mut shards = ShardedState::new(params.shards, params.scheduler, params.block_interval);
        for (shard, stats) in shards.shards.iter_mut().zip(shard_stats) {
            shard.stats = stats;
        }

        // Files.
        let n_files = d.len()?;
        for _ in 0..n_files {
            let id = FileId(d.u64()?);
            let desc = FileDescriptor {
                id,
                owner: AccountId(d.u64()?),
                size: d.u64()?,
                value: TokenAmount(d.u128()?),
                merkle_root: d.hash()?,
                cp: d.u32()?,
                cntdown: d.i64()?,
                state: match d.u8()? {
                    0 => FileState::Allocating,
                    1 => FileState::Normal,
                    2 => FileState::Discarded,
                    _ => return Err(SnapshotError::Malformed("file state tag")),
                },
            };
            if id.0 >= next_file_id {
                return Err(SnapshotError::Malformed("file id above the id counter"));
            }
            shards.insert_file(desc);
        }

        // Allocation table.
        let n_alloc = d.len()?;
        for _ in 0..n_alloc {
            let file = FileId(d.u64()?);
            let index = d.u32()?;
            let entry = AllocEntry {
                prev: d.opt_u64()?.map(SectorId),
                next: d.opt_u64()?.map(SectorId),
                last: d.opt_u64()?,
                state: match d.u8()? {
                    0 => AllocState::Alloc,
                    1 => AllocState::Confirm,
                    2 => AllocState::Normal,
                    3 => AllocState::Corrupted,
                    _ => return Err(SnapshotError::Malformed("alloc state tag")),
                },
            };
            if shards.file(file).is_none() {
                return Err(SnapshotError::Malformed("allocation row without a file"));
            }
            shards.insert_entry(file, index, entry);
        }

        // Discard reasons.
        let n_reasons = d.len()?;
        for _ in 0..n_reasons {
            let file = FileId(d.u64()?);
            let reason = match d.u8()? {
                0 => RemovalReason::ClientDiscard,
                1 => RemovalReason::InsufficientFunds,
                2 => RemovalReason::UploadFailed,
                3 => RemovalReason::Lost,
                _ => return Err(SnapshotError::Malformed("removal reason tag")),
            };
            shards.set_discard_reason(file, reason);
        }

        // Pending tasks (already in canonical (time, seq) order).
        dec_tasks(&mut d, task_seq, &mut shards)?;

        // Sectors.
        let n_sectors = d.len()?;
        // A TrackedMap insert marks the key dirty, so the first
        // state_root after restore rebuilds the full HAMT commitment
        // (canonical layout ⇒ roots identical to the snapshotted engine's).
        let mut sectors = TrackedMap::new();
        for _ in 0..n_sectors {
            let id = SectorId(d.u64()?);
            let sector = Sector {
                owner: AccountId(d.u64()?),
                id,
                capacity: d.u64()?,
                free_cap: d.u64()?,
                state: match d.u8()? {
                    0 => SectorState::Normal,
                    1 => SectorState::Disabled,
                    2 => SectorState::Corrupted,
                    _ => return Err(SnapshotError::Malformed("sector state tag")),
                },
                deposit: TokenAmount(d.u128()?),
                replica_count: d.u32()?,
                physically_failed: d.bool()?,
            };
            if id.0 >= next_sector_id {
                return Err(SnapshotError::Malformed("sector id above the id counter"));
            }
            if sector.free_cap > sector.capacity {
                return Err(SnapshotError::Malformed("sector free_cap above capacity"));
            }
            if sectors.insert(id, sector).is_some() {
                return Err(SnapshotError::Malformed("duplicate sector id"));
            }
        }

        // DRep accounting.
        let n_cr = d.len()?;
        let mut cr = TrackedMap::new();
        for _ in 0..n_cr {
            let id = SectorId(d.u64()?);
            let parts = (d.u64()?, d.u64()?, d.u64()?, d.u64()?, d.u64()?);
            let acct =
                crate::drep::CrAccounting::from_parts(parts).map_err(SnapshotError::Malformed)?;
            if !sectors.contains_key(&id) {
                return Err(SnapshotError::Malformed("CR accounting without a sector"));
            }
            cr.insert(id, acct);
        }

        // Sector replica index.
        let sector_replicas = dec_replicas(&mut d)?;
        for id in sector_replicas.keys() {
            if !sectors.contains_key(id) {
                return Err(SnapshotError::Malformed("replica index without a sector"));
            }
        }

        let sampler = dec_sampler(&mut d)?;
        let rng = dec_rng(&mut d)?;
        let last_checkpoint = dec_checkpoint(&mut d)?;

        if !d.done() {
            return Err(SnapshotError::TrailingBytes);
        }

        Ok(Engine {
            params,
            chain,
            ledger,
            gas: GasSchedule::default(),
            shards,
            sectors,
            cr,
            sector_replicas,
            sampler,
            rng,
            next_file_id,
            next_sector_id,
            events: Vec::new(),
            stats_global,
            op_counter,
            ops_applied,
            task_seq,
            audit_root,
            op_log: Vec::new(),
            last_checkpoint,
            pool: super::pool::PoolHandle::new(),
            phase: super::PhaseTimes::default(),
            store: super::default_store(),
            commit: CommitCell::new(),
        })
    }

    /// Serializes an **incremental** snapshot against `base`: the full
    /// non-map state (chain, ledger, counters, stats, tasks, replica
    /// index, sampler, rng, checkpoint — these don't deduplicate well and
    /// are small), plus, for each of the five state maps, only the HAMT
    /// nodes that are new since the base roots
    /// ([`fi_store::Hamt::diff_new_nodes`]). A reader holding the base
    /// state can reconstruct the full new state:
    /// [`Engine::snapshot_restore_delta`].
    ///
    /// `base` is typically a previously returned [`Engine::state_roots`]
    /// of this engine (or of an engine sharing its blockstore — e.g. one
    /// restored from the matching full snapshot).
    ///
    /// Deterministic like [`Engine::snapshot_save`]: equal (state, base)
    /// pairs produce byte-identical deltas.
    ///
    /// # Errors
    ///
    /// [`variant@Error::Store`] when the base roots are not resident in this
    /// engine's blockstore (an unrelated or pruned base) or on store I/O
    /// failure.
    ///
    /// # Panics
    ///
    /// As [`Engine::state_root`]: on backing-store write failure while
    /// syncing the current commitment.
    pub fn snapshot_delta(&self, base: &StateRoots) -> Result<Vec<u8>, Error> {
        let roots = self.state_roots();
        let mut e = Enc::with_header(DELTA_MAGIC, DELTA_VERSION);

        // Identity: which base this delta applies to, and what it yields.
        e.hash(&base.state_root);
        e.hash(&roots.state_root);
        for root in roots.map_roots() {
            e.hash(&root);
        }

        // Full non-map sections, in FISNAPSH order.
        enc_params(&mut e, &self.params);
        enc_chain(&mut e, &self.chain);
        enc_ledger(&mut e, &self.ledger);
        enc_counters(&mut e, self);
        enc_all_stats(&mut e, &self.stats_global, &self.shards);
        enc_tasks(&mut e, &self.shards);
        enc_replicas(&mut e, &self.sector_replicas);
        enc_sampler(&mut e, &self.sampler);
        enc_rng(&mut e, &self.rng);
        enc_checkpoint(&mut e, &self.last_checkpoint);

        // Per-map node deltas: exactly the blocks a holder of the base
        // trees is missing.
        let store = self.store.as_ref();
        for (new_root, base_root) in roots.map_roots().into_iter().zip(base.map_roots()) {
            let nodes = Hamt::diff_new_nodes(store, new_root, base_root)?;
            e.usize(nodes.len());
            for (hash, bytes) in nodes {
                e.hash(&hash);
                e.bytes(&bytes);
            }
        }

        Ok(e.finish())
    }

    /// Rebuilds an engine from [`Engine::snapshot_delta`] bytes plus the
    /// `base` engine the delta was taken against.
    ///
    /// The delta's node blocks are verified (each must hash to its
    /// recorded block id) and added to the base's blockstore; the five
    /// state maps are then read back out of the trees at the delta's new
    /// roots, and the result is cross-checked end-to-end: the restored
    /// engine must reproduce the delta's recorded `state_root`
    /// bit-for-bit, or restore fails. `base + delta` is therefore
    /// equivalent to restoring a full snapshot of the new state —
    /// asserted by the state-commitment differential suite.
    ///
    /// The restored engine shares the base's blockstore (content
    /// addressing makes that harmless) but is otherwise independent.
    ///
    /// # Errors
    ///
    /// [`variant@Error::Snapshot`] for anything wrong with the bytes
    /// (truncation, magic, self-hash, version, malformed fields, a base
    /// root that doesn't match `base`, or a final state-root mismatch);
    /// [`variant@Error::Store`] when the combined store still can't resolve
    /// the new trees or a leaf fails to decode.
    pub fn snapshot_restore_delta(bytes: &[u8], base: &Engine) -> Result<Engine, Error> {
        let mut d = open_envelope(bytes, DELTA_MAGIC, DELTA_VERSION)?;

        let base_root = d.hash().map_err(Error::Snapshot)?;
        let base_roots = base.state_roots();
        if base_roots.state_root != base_root {
            return Err(SnapshotError::Malformed("delta base does not match this engine").into());
        }
        let new_state_root = d.hash().map_err(Error::Snapshot)?;
        let mut map_roots = [Hash256::from_bytes([0; 32]); 5];
        for root in &mut map_roots {
            *root = d.hash().map_err(Error::Snapshot)?;
        }

        // Non-map sections.
        let params = dec_params(&mut d).map_err(Error::Snapshot)?;
        params.validate().map_err(SnapshotError::from)?;
        let chain = dec_chain(&mut d, &params)?;
        let ledger = dec_ledger(&mut d)?;
        let counters = dec_counters(&mut d)?;
        let (stats_global, shard_stats) = dec_all_stats(&mut d, params.shards)?;
        let mut shards = ShardedState::new(params.shards, params.scheduler, params.block_interval);
        for (shard, stats) in shards.shards.iter_mut().zip(shard_stats) {
            shard.stats = stats;
        }
        dec_tasks(&mut d, counters.task_seq, &mut shards)?;
        let sector_replicas = dec_replicas(&mut d)?;
        let sampler = dec_sampler(&mut d)?;
        let rng = dec_rng(&mut d)?;
        let last_checkpoint = dec_checkpoint(&mut d)?;

        // Node blocks: verify each against its recorded id, then make it
        // resident. After this, the new trees are fully readable from the
        // shared store (base nodes + delta nodes).
        let store = Arc::clone(&base.store);
        for _ in 0..5 {
            let n_nodes = d.len()?;
            for _ in 0..n_nodes {
                let want = d.hash()?;
                let node = d.bytes_vec()?;
                if store.put(&node)? != want {
                    return Err(
                        SnapshotError::Malformed("delta node bytes mismatch their id").into(),
                    );
                }
            }
        }
        if !d.done() {
            return Err(SnapshotError::TrailingBytes.into());
        }

        // Read the five maps back out of the trees. TrackedMap inserts
        // mark every key dirty, so the restored engine's first
        // state_root rebuilds its own commitment from scratch — which the
        // final cross-check below then compares against the recorded root.
        let s = store.as_ref();
        type KvList = Vec<(Vec<u8>, Vec<u8>)>;
        let entries = |root: Hash256| -> Result<KvList, StoreError> {
            let mut kvs = Vec::new();
            Hamt::load(root).walk(s, &mut |k, v| kvs.push((k.to_vec(), v.to_vec())))?;
            Ok(kvs)
        };

        for (key, value) in entries(map_roots[0])? {
            let desc = statemap::dec_file(&value)?;
            if key != statemap::key_file(desc.id) {
                return Err(StoreError::Corrupt("file leaf under a foreign key").into());
            }
            if desc.id.0 >= counters.next_file_id {
                return Err(SnapshotError::Malformed("file id above the id counter").into());
            }
            shards.insert_file(desc);
        }
        for (key, value) in entries(map_roots[1])? {
            let entry = statemap::dec_alloc_entry(&value)?;
            let key: [u8; 12] = key
                .try_into()
                .map_err(|_| StoreError::Corrupt("alloc key width"))?;
            let file = FileId(u64::from_be_bytes(key[..8].try_into().expect("8B")));
            let index = u32::from_be_bytes(key[8..].try_into().expect("4B"));
            if shards.file(file).is_none() {
                return Err(SnapshotError::Malformed("allocation row without a file").into());
            }
            shards.insert_entry(file, index, entry);
        }
        for (key, value) in entries(map_roots[2])? {
            let reason = statemap::dec_reason(&value)?;
            let key: [u8; 8] = key
                .try_into()
                .map_err(|_| StoreError::Corrupt("discard key width"))?;
            shards.set_discard_reason(FileId(u64::from_be_bytes(key)), reason);
        }
        let mut sectors = TrackedMap::new();
        for (key, value) in entries(map_roots[3])? {
            let sector = statemap::dec_sector(&value)?;
            if key != statemap::key_sector(sector.id) {
                return Err(StoreError::Corrupt("sector leaf under a foreign key").into());
            }
            if sector.id.0 >= counters.next_sector_id {
                return Err(SnapshotError::Malformed("sector id above the id counter").into());
            }
            if sector.free_cap > sector.capacity {
                return Err(SnapshotError::Malformed("sector free_cap above capacity").into());
            }
            sectors.insert(sector.id, sector);
        }
        let mut cr = TrackedMap::new();
        for (key, value) in entries(map_roots[4])? {
            let acct = statemap::dec_cr(&value)?;
            let key: [u8; 8] = key
                .try_into()
                .map_err(|_| StoreError::Corrupt("cr key width"))?;
            let id = SectorId(u64::from_be_bytes(key));
            if !sectors.contains_key(&id) {
                return Err(SnapshotError::Malformed("CR accounting without a sector").into());
            }
            cr.insert(id, acct);
        }
        for id in sector_replicas.keys() {
            if !sectors.contains_key(id) {
                return Err(SnapshotError::Malformed("replica index without a sector").into());
            }
        }

        let engine = Engine {
            params,
            chain,
            ledger,
            gas: GasSchedule::default(),
            shards,
            sectors,
            cr,
            sector_replicas,
            sampler,
            rng,
            next_file_id: counters.next_file_id,
            next_sector_id: counters.next_sector_id,
            events: Vec::new(),
            stats_global,
            op_counter: counters.op_counter,
            ops_applied: counters.ops_applied,
            task_seq: counters.task_seq,
            audit_root: counters.audit_root,
            op_log: Vec::new(),
            last_checkpoint,
            pool: super::pool::PoolHandle::new(),
            phase: super::PhaseTimes::default(),
            store,
            commit: CommitCell::new(),
        };

        // End-to-end commitment check: the reassembled engine must fold
        // to exactly the state root the delta promised.
        if engine.state_root() != new_state_root {
            return Err(SnapshotError::Malformed("restored state root mismatch").into());
        }
        Ok(engine)
    }
}
