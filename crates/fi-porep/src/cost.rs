//! Cost model for the simulated proof system.
//!
//! Real PoRep sealing is deliberately slow and non-parallelisable (paper
//! §II-B: *"the calculation of `R_D^ek` would take a lot of time because it
//! can't be parallelized"*), and SNARK generation is compute-heavy, while
//! verification is cheap. Our simulation executes none of that, but the
//! *relative* costs matter for the protocol's timing arguments (e.g. why
//! DRep avoids re-sealing, why `DelayPerSize` bounds transfer time). This
//! module prices operations in abstract time units so `fi-net` scenarios
//! and the DRep-ablation bench can charge them.
//!
//! Defaults are calibrated to the ratios reported for Filecoin's 32 GiB
//! sectors (sealing ≈ hours, WindowPoSt response ≈ seconds, verify ≈ ms),
//! compressed to keep simulated timelines readable.

/// Prices (in abstract time units) for proof-system operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Sealing cost per byte (slow, sequential).
    pub seal_per_byte: f64,
    /// SNARK generation flat cost (prover side of PoRep).
    pub snark_prove: f64,
    /// SNARK verification flat cost (cheap).
    pub snark_verify: f64,
    /// Producing one PoSt challenge response (chunk + Merkle path).
    pub post_respond_per_challenge: f64,
    /// Verifying one PoSt challenge response.
    pub post_verify_per_challenge: f64,
    /// Plain transfer cost per byte (no sealing), for replica moves.
    pub transfer_per_byte: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seal_per_byte: 1.0,
            snark_prove: 50_000.0,
            snark_verify: 5.0,
            post_respond_per_challenge: 1.0,
            post_verify_per_challenge: 0.5,
            transfer_per_byte: 0.01,
        }
    }
}

impl CostModel {
    /// Cost of a full PoRep round (seal + SNARK) over `bytes`.
    pub fn full_porep(&self, bytes: u64) -> f64 {
        self.seal_per_byte * bytes as f64 + self.snark_prove
    }

    /// Cost of moving an existing replica to a new sector under DRep:
    /// transfer plus re-seal, **no** SNARK (paper §III-D: replicas moved
    /// between sectors are regenerated from raw data without re-proving).
    pub fn drep_move(&self, bytes: u64) -> f64 {
        self.transfer_per_byte * bytes as f64 + self.seal_per_byte * bytes as f64
    }

    /// Cost of the naive alternative DRep replaces: re-sealing the entire
    /// sector and re-proving whenever content changes.
    pub fn naive_sector_reseal(&self, sector_bytes: u64) -> f64 {
        self.full_porep(sector_bytes)
    }

    /// Cost of one WindowPoSt round with `challenges` challenges
    /// (prover side).
    pub fn window_post(&self, challenges: u32) -> f64 {
        self.post_respond_per_challenge * challenges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drep_beats_naive_reseal() {
        // The motivating inequality of §III-D: moving one file must be far
        // cheaper than re-sealing the sector that holds it.
        let m = CostModel::default();
        let file = 1u64 << 20; // 1 MiB file
        let sector = 64u64 << 30; // 64 GiB sector
        assert!(m.drep_move(file) * 100.0 < m.naive_sector_reseal(sector));
    }

    #[test]
    fn verify_cheaper_than_prove() {
        let m = CostModel::default();
        assert!(m.snark_verify * 1000.0 < m.snark_prove);
        assert!(m.post_verify_per_challenge <= m.post_respond_per_challenge);
    }

    #[test]
    fn costs_scale_linearly() {
        let m = CostModel::default();
        assert!(m.full_porep(2000) - m.full_porep(1000) - m.seal_per_byte * 1000.0 < 1e-9);
        assert_eq!(m.window_post(0), 0.0);
    }
}
