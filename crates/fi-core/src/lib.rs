//! # fi-core — the FileInsurer protocol
//!
//! This crate implements the primary contribution of *"FileInsurer: A
//! Scalable and Reliable Protocol for Decentralized File Storage in
//! Blockchain"* (Chen, Lu, Cheng — ICDCS 2022): a blockchain-based
//! Decentralized Storage Network in which
//!
//! * replica locations are **random** (capacity-proportional, i.i.d.) and
//!   **refreshed** over time, giving provable robustness (Theorem 3), and
//! * storage providers pledge **deposits** that fully compensate clients
//!   for lost files (Theorem 4), at a deposit ratio below 0.5%.
//!
//! ## Module map
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`params`] | Table I, §IV | protocol constants & derived formulas |
//! | [`types`] | Fig. 1 | sectors, file descriptors, allocation entries, events |
//! | [`ops`] | Figs. 4–6 | the typed transaction layer: `Op`, `Receipt`, op log |
//! | [`sampler`] | Table I (`RandomSector`) | Fenwick-tree weighted sampling |
//! | [`drep`] | §III-D, Fig. 2 | Dynamic Replication / Capacity Replicas |
//! | [`engine`] | §IV, Figs. 4–9 | the consensus state machine (`Engine::apply`) |
//! | [`segment`] | §VI-C | erasure-coded large-file segmentation |
//! | [`subnet`] | §VI-D | value-level subnetworks |
//! | [`reputation`] | §VII (future work) | softmax provider reputation prototype |
//!
//! ## Quickstart
//!
//! ```
//! use fi_core::engine::{Engine, StateView};
//! use fi_core::params::ProtocolParams;
//! use fi_chain::account::{AccountId, TokenAmount};
//! use fi_crypto::sha256;
//!
//! let mut params = ProtocolParams::default();
//! params.k = 3;
//! let mut net = Engine::new(params).unwrap();
//!
//! // A provider rents out two sectors; a client stores a file.
//! let provider = AccountId(100);
//! let client = AccountId(200);
//! net.fund(provider, TokenAmount(10_000_000_000));
//! net.fund(client, TokenAmount(10_000_000));
//! net.sector_register(provider, 640).unwrap();
//! net.sector_register(provider, 640).unwrap();
//!
//! let file = net
//!     .file_add(client, 16, net.params().min_value, sha256(b"quick"))
//!     .unwrap();
//! net.honest_providers_act();                 // providers confirm receipt
//! net.advance_to(net.now() + 16);             // Auto_CheckAlloc fires
//! assert!(net.events().iter().any(|e| matches!(
//!     e,
//!     fi_core::types::ProtocolEvent::FileStored { .. }
//! )));
//! # let _ = file;
//! ```

pub mod drep;
pub mod engine;
pub mod error;
pub mod ops;
pub mod params;
pub mod reputation;
pub mod sampler;
pub mod segment;
pub mod subnet;
pub mod types;

#[cfg(test)]
mod engine_tests;
#[cfg(test)]
mod engine_tests_fees;

pub use engine::{Engine, EngineError, EngineStats, PinnedState, StateProof, StateView};
pub use error::Error;
pub use ops::{Op, OpRecord, Receipt};
pub use params::{ParamError, ProtocolParams};
pub use sampler::WeightedSampler;
pub use types::{
    AllocEntry, AllocState, FileDescriptor, FileId, FileState, ProtocolEvent, RemovalReason,
    Sector, SectorId, SectorState,
};
