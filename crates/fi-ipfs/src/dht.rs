//! Kademlia-style distributed hash table (the routing layer of §II-A).
//!
//! Node identifiers live in the same 256-bit space as content identifiers;
//! distance is XOR. Each node keeps `k`-buckets of peers indexed by the
//! length of the shared prefix with its own id, and lookups proceed
//! iteratively: query the `α` closest known peers, learn closer ones,
//! repeat until no progress. Provider records map CIDs to the nodes that
//! announced them (`provide` → `find_providers`), which is how FileInsurer
//! retrieval locates replica holders without touching the chain.
//!
//! The simulation runs all nodes in one process: [`Dht`] owns every node's
//! routing state and executes lookups with an explicit hop budget,
//! reporting hop counts so experiments can check the O(log n) scaling.

use std::collections::{HashMap, HashSet};

use fi_crypto::{keyed_hash, Hash256};

use crate::store::Cid;

/// A DHT node identifier.
pub type NodeId = Hash256;

/// Derives a node id from an ordinal (deterministic test networks).
pub fn node_id(ordinal: u64) -> NodeId {
    keyed_hash("dht/node-id", &[&ordinal.to_be_bytes()])
}

/// XOR distance, compared via leading-zero count of the XOR.
fn closer(target: &Hash256, a: &Hash256, b: &Hash256) -> std::cmp::Ordering {
    // More shared prefix bits = closer. Tie-break on raw bytes for total
    // order stability.
    let za = target.xor_leading_zeros(a);
    let zb = target.xor_leading_zeros(b);
    zb.cmp(&za).then_with(|| {
        let xa: Vec<u8> = target
            .as_bytes()
            .iter()
            .zip(a.as_bytes())
            .map(|(t, x)| t ^ x)
            .collect();
        let xb: Vec<u8> = target
            .as_bytes()
            .iter()
            .zip(b.as_bytes())
            .map(|(t, x)| t ^ x)
            .collect();
        xa.cmp(&xb)
    })
}

/// Per-node routing state: 256 k-buckets.
#[derive(Debug, Clone)]
struct RoutingTable {
    id: NodeId,
    buckets: Vec<Vec<NodeId>>,
    bucket_size: usize,
}

impl RoutingTable {
    fn new(id: NodeId, bucket_size: usize) -> Self {
        RoutingTable {
            id,
            buckets: vec![Vec::new(); 257],
            bucket_size,
        }
    }

    fn observe(&mut self, peer: NodeId) {
        if peer == self.id {
            return;
        }
        let bucket = self.id.xor_leading_zeros(&peer) as usize;
        let entries = &mut self.buckets[bucket];
        if let Some(pos) = entries.iter().position(|p| *p == peer) {
            // Move to front (most recently seen).
            entries.remove(pos);
            entries.insert(0, peer);
        } else if entries.len() < self.bucket_size {
            entries.insert(0, peer);
        }
        // Full bucket: Kademlia would ping the oldest; the simulation has
        // no failures at this layer, so the newcomer is dropped.
    }

    /// The `count` known peers closest to `target`.
    fn closest(&self, target: &Hash256, count: usize) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self.buckets.iter().flatten().copied().collect();
        all.sort_by(|a, b| closer(target, a, b));
        all.truncate(count);
        all
    }
}

/// Result of an iterative lookup.
#[derive(Debug, Clone)]
pub struct LookupResult {
    /// The closest nodes found, best first.
    pub closest: Vec<NodeId>,
    /// Distinct nodes queried.
    pub hops: usize,
}

/// An in-process Kademlia network.
///
/// # Example
///
/// ```
/// use fi_ipfs::dht::{Dht, node_id};
/// use fi_crypto::sha256;
///
/// let mut dht = Dht::new(20, 3);
/// for i in 0..50 {
///     dht.join(node_id(i));
/// }
/// let cid = sha256(b"content");
/// dht.provide(node_id(7), cid);
/// let found = dht.find_providers(node_id(33), cid);
/// assert!(found.providers.contains(&node_id(7)));
/// ```
#[derive(Debug)]
pub struct Dht {
    nodes: HashMap<NodeId, RoutingTable>,
    providers: HashMap<Cid, HashSet<NodeId>>,
    bucket_size: usize,
    alpha: usize,
    join_order: Vec<NodeId>,
}

/// Result of a provider lookup.
#[derive(Debug, Clone)]
pub struct ProvidersResult {
    /// Nodes advertising the CID (empty if none reachable).
    pub providers: Vec<NodeId>,
    /// Distinct nodes queried during the search.
    pub hops: usize,
}

impl Dht {
    /// Creates an empty network with bucket size `k` and lookup
    /// parallelism `alpha`.
    pub fn new(bucket_size: usize, alpha: usize) -> Self {
        assert!(bucket_size > 0 && alpha > 0);
        Dht {
            nodes: HashMap::new(),
            providers: HashMap::new(),
            bucket_size,
            alpha,
            join_order: Vec::new(),
        }
    }

    /// Number of nodes in the network.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node, bootstrapping its routing table through a self-lookup
    /// via the earliest-joined node.
    pub fn join(&mut self, id: NodeId) {
        if self.nodes.contains_key(&id) {
            return;
        }
        let mut table = RoutingTable::new(id, self.bucket_size);
        if let Some(&bootstrap) = self.join_order.first() {
            table.observe(bootstrap);
        }
        self.nodes.insert(id, table);
        self.join_order.push(id);
        // Self-lookup populates buckets along the path, and tells the
        // queried nodes about the newcomer.
        self.lookup(id, id);
    }

    /// Removes a node (churn simulation). Its provider records vanish too.
    pub fn leave(&mut self, id: NodeId) {
        self.nodes.remove(&id);
        self.join_order.retain(|n| *n != id);
        for set in self.providers.values_mut() {
            set.remove(&id);
        }
    }

    /// Iterative `FIND_NODE` from `origin` toward `target`.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is not in the network.
    pub fn lookup(&mut self, origin: NodeId, target: Hash256) -> LookupResult {
        assert!(self.nodes.contains_key(&origin), "origin not joined");
        let mut queried: HashSet<NodeId> = HashSet::new();
        let mut learned: Vec<NodeId> = self.nodes[&origin].closest(&target, self.bucket_size);
        learned.push(origin);
        learned.sort_by(|a, b| closer(&target, a, b));

        loop {
            let to_query: Vec<NodeId> = learned
                .iter()
                .filter(|n| !queried.contains(*n) && self.nodes.contains_key(*n))
                .take(self.alpha)
                .copied()
                .collect();
            if to_query.is_empty() {
                break;
            }
            let mut progressed = false;
            for peer in to_query {
                queried.insert(peer);
                // The peer answers with its closest-known and learns about
                // the requester (standard Kademlia side effect).
                let answers = self.nodes[&peer].closest(&target, self.bucket_size);
                self.nodes
                    .get_mut(&peer)
                    .expect("peer exists")
                    .observe(origin);
                self.nodes
                    .get_mut(&origin)
                    .expect("origin exists")
                    .observe(peer);
                for a in answers {
                    if !learned.contains(&a) {
                        learned.push(a);
                        progressed = true;
                    }
                    self.nodes
                        .get_mut(&origin)
                        .expect("origin exists")
                        .observe(a);
                }
            }
            learned.sort_by(|a, b| closer(&target, a, b));
            learned.truncate(4 * self.bucket_size);
            if !progressed {
                break;
            }
        }
        learned.retain(|n| self.nodes.contains_key(n));
        learned.truncate(self.bucket_size);
        LookupResult {
            closest: learned,
            hops: queried.len(),
        }
    }

    /// Announces that `node` can serve `cid`. The record is stored on the
    /// nodes closest to the CID (as in Kademlia provider records).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the network.
    pub fn provide(&mut self, node: NodeId, cid: Cid) {
        let _ = self.lookup(node, cid); // route toward the key (populates tables)
        self.providers.entry(cid).or_default().insert(node);
    }

    /// Withdraws a provider record.
    pub fn unprovide(&mut self, node: NodeId, cid: Cid) {
        if let Some(set) = self.providers.get_mut(&cid) {
            set.remove(&node);
        }
    }

    /// Finds providers of `cid` starting from `origin`.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is not in the network.
    pub fn find_providers(&mut self, origin: NodeId, cid: Cid) -> ProvidersResult {
        let route = self.lookup(origin, cid);
        let mut providers: Vec<NodeId> = self
            .providers
            .get(&cid)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        providers.retain(|n| self.nodes.contains_key(n));
        providers.sort();
        ProvidersResult {
            providers,
            hops: route.hops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fi_crypto::sha256;

    fn network(n: u64) -> Dht {
        let mut dht = Dht::new(8, 3);
        for i in 0..n {
            dht.join(node_id(i));
        }
        dht
    }

    #[test]
    fn lookup_finds_the_actual_closest_node() {
        let mut dht = network(64);
        let target = sha256(b"some key");
        // Ground truth: closest of all node ids.
        let mut all: Vec<NodeId> = (0..64).map(node_id).collect();
        all.sort_by(|a, b| closer(&target, a, b));
        let truth = all[0];
        let result = dht.lookup(node_id(5), target);
        assert_eq!(result.closest[0], truth, "lookup converges to closest");
    }

    #[test]
    fn lookups_scale_sublinearly() {
        let mut dht = network(256);
        let mut total_hops = 0usize;
        for i in 0..20u64 {
            let res = dht.lookup(node_id(i), sha256(&i.to_be_bytes()));
            total_hops += res.hops;
        }
        let avg = total_hops as f64 / 20.0;
        assert!(avg < 64.0, "average hops {avg} should be far below n=256");
    }

    #[test]
    fn provide_and_find() {
        let mut dht = network(50);
        let cid = sha256(b"file block");
        dht.provide(node_id(7), cid);
        dht.provide(node_id(9), cid);
        let res = dht.find_providers(node_id(33), cid);
        assert_eq!(res.providers.len(), 2);
        assert!(res.providers.contains(&node_id(7)));
        assert!(res.providers.contains(&node_id(9)));
        // Unknown CID: no providers, but the search still routed.
        let res = dht.find_providers(node_id(3), sha256(b"unknown"));
        assert!(res.providers.is_empty());
        assert!(res.hops > 0);
    }

    #[test]
    fn churn_drops_provider_records() {
        let mut dht = network(30);
        let cid = sha256(b"volatile");
        dht.provide(node_id(4), cid);
        dht.leave(node_id(4));
        let res = dht.find_providers(node_id(1), cid);
        assert!(res.providers.is_empty());
        assert_eq!(dht.len(), 29);
    }

    #[test]
    fn join_is_idempotent() {
        let mut dht = network(10);
        dht.join(node_id(3));
        assert_eq!(dht.len(), 10);
    }

    #[test]
    fn distance_ordering_is_total() {
        let t = sha256(b"t");
        let a = node_id(1);
        let b = node_id(2);
        assert_eq!(closer(&t, &a, &b), closer(&t, &b, &a).reverse());
        assert_eq!(closer(&t, &a, &a), std::cmp::Ordering::Equal);
    }
}
