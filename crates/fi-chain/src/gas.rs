//! Gas metering and the prepaid-gas mechanism.
//!
//! Paper §IV-A.3: periodic proof checks and refreshes *"use the consensus
//! space and thus incur a gas fee. The gas fee for these operations should
//! be prepaid by the user as these operations are performed automatically"*;
//! and §III-B.4: *"tasks that are placed in the pending list must have a
//! clear gas used upper bound"*.
//!
//! [`GasSchedule`] prices operations, [`GasMeter`] accumulates usage within
//! a request, and prepaid balances are ordinary ledger escrow handled by the
//! protocol layer. The schedule values are abstract units — only relative
//! magnitudes matter in simulation.

use crate::account::TokenAmount;

/// Chargeable operation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Fixed per-request base cost (anti-spam; §IV-A.3 "anyone who submits
    /// requests to the network must pay a gas fee").
    RequestBase,
    /// Writing one allocation-table entry.
    AllocWrite,
    /// Reading/validating one allocation-table entry.
    AllocRead,
    /// Verifying one storage proof (WindowPoSt response).
    ProofVerify,
    /// Scheduling a pending-list task.
    TaskSchedule,
    /// Executing a pending-list task (base).
    TaskExecute,
    /// Ledger transfer.
    Transfer,
    /// Registering or disabling a sector.
    SectorAdmin,
}

/// Gas prices per operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GasSchedule {
    request_base: u64,
    alloc_write: u64,
    alloc_read: u64,
    proof_verify: u64,
    task_schedule: u64,
    task_execute: u64,
    transfer: u64,
    sector_admin: u64,
    /// Token price of one gas unit.
    pub token_per_gas: TokenAmount,
}

impl Default for GasSchedule {
    fn default() -> Self {
        GasSchedule {
            request_base: 10,
            alloc_write: 5,
            alloc_read: 1,
            proof_verify: 20,
            task_schedule: 2,
            task_execute: 5,
            transfer: 3,
            sector_admin: 25,
            token_per_gas: TokenAmount(1),
        }
    }
}

impl GasSchedule {
    /// A schedule with every price at zero — for experiments that want to
    /// observe pure protocol money flows without gas noise.
    pub fn free() -> Self {
        GasSchedule {
            request_base: 0,
            alloc_write: 0,
            alloc_read: 0,
            proof_verify: 0,
            task_schedule: 0,
            task_execute: 0,
            transfer: 0,
            sector_admin: 0,
            token_per_gas: TokenAmount(0),
        }
    }

    /// Gas units charged for `op`.
    pub fn price(&self, op: Op) -> u64 {
        match op {
            Op::RequestBase => self.request_base,
            Op::AllocWrite => self.alloc_write,
            Op::AllocRead => self.alloc_read,
            Op::ProofVerify => self.proof_verify,
            Op::TaskSchedule => self.task_schedule,
            Op::TaskExecute => self.task_execute,
            Op::Transfer => self.transfer,
            Op::SectorAdmin => self.sector_admin,
        }
    }

    /// Token cost of `gas` units.
    pub fn to_tokens(&self, gas: u64) -> TokenAmount {
        TokenAmount(self.token_per_gas.0 * gas as u128)
    }

    /// Upper bound (in gas) of one `Auto_CheckProof` execution over a file
    /// with `cp` replicas: task base + per-replica read + proof verify +
    /// a reschedule. Pending-list tasks must declare such a bound (§III-B.4).
    pub fn check_proof_bound(&self, cp: u32) -> u64 {
        self.task_execute
            + cp as u64 * (self.alloc_read + self.proof_verify)
            + self.task_schedule
            + self.transfer
    }

    /// Upper bound (in gas) of one `Auto_Refresh` + `Auto_CheckRefresh`
    /// pair for a file with `cp` replicas.
    pub fn refresh_bound(&self, cp: u32) -> u64 {
        2 * self.task_execute
            + 2 * self.alloc_write
            + cp as u64 * self.alloc_read
            + self.task_schedule
    }
}

/// Errors from gas accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GasError {
    /// The meter's limit was exceeded.
    OutOfGas {
        /// Gas limit for the request/task.
        limit: u64,
        /// Gas that would have been used.
        needed: u64,
    },
}

impl std::fmt::Display for GasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GasError::OutOfGas { limit, needed } => {
                write!(f, "out of gas: limit {limit}, needed {needed}")
            }
        }
    }
}

impl std::error::Error for GasError {}

/// Accumulates gas within one request or task execution.
///
/// # Example
///
/// ```
/// use fi_chain::gas::{GasMeter, GasSchedule, Op};
/// let schedule = GasSchedule::default();
/// let mut meter = GasMeter::new(100);
/// meter.charge(&schedule, Op::RequestBase).unwrap();
/// meter.charge(&schedule, Op::AllocWrite).unwrap();
/// assert_eq!(meter.used(), 15);
/// ```
#[derive(Debug, Clone)]
pub struct GasMeter {
    limit: u64,
    used: u64,
}

impl GasMeter {
    /// A meter that aborts past `limit` gas.
    pub fn new(limit: u64) -> Self {
        GasMeter { limit, used: 0 }
    }

    /// An effectively unlimited meter (consensus-internal bookkeeping).
    pub fn unlimited() -> Self {
        GasMeter {
            limit: u64::MAX,
            used: 0,
        }
    }

    /// Charges one operation.
    ///
    /// # Errors
    ///
    /// [`GasError::OutOfGas`] when the charge would exceed the limit; the
    /// meter records the limit as fully used in that case (failed requests
    /// still consume their gas).
    pub fn charge(&mut self, schedule: &GasSchedule, op: Op) -> Result<(), GasError> {
        let price = schedule.price(op);
        let needed = self.used.saturating_add(price);
        if needed > self.limit {
            self.used = self.limit;
            return Err(GasError::OutOfGas {
                limit: self.limit,
                needed,
            });
        }
        self.used = needed;
        Ok(())
    }

    /// Gas used so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Gas remaining under the limit.
    pub fn remaining(&self) -> u64 {
        self.limit - self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let s = GasSchedule::default();
        let mut m = GasMeter::new(1000);
        m.charge(&s, Op::RequestBase).unwrap();
        m.charge(&s, Op::SectorAdmin).unwrap();
        assert_eq!(m.used(), 35);
        assert_eq!(m.remaining(), 965);
    }

    #[test]
    fn out_of_gas_consumes_limit() {
        let s = GasSchedule::default();
        let mut m = GasMeter::new(12);
        m.charge(&s, Op::RequestBase).unwrap(); // 10
        let err = m.charge(&s, Op::ProofVerify).unwrap_err(); // +20 > 12
        assert_eq!(
            err,
            GasError::OutOfGas {
                limit: 12,
                needed: 30
            }
        );
        assert_eq!(m.used(), 12);
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn task_bounds_dominate_actual_usage() {
        // The declared bounds must be valid upper bounds for the op mix the
        // engine actually performs (checked against fi-core in integration
        // tests; here against a representative mix).
        let s = GasSchedule::default();
        for cp in [1u32, 5, 20, 100] {
            let mut m = GasMeter::unlimited();
            m.charge(&s, Op::TaskExecute).unwrap();
            for _ in 0..cp {
                m.charge(&s, Op::AllocRead).unwrap();
                m.charge(&s, Op::ProofVerify).unwrap();
            }
            m.charge(&s, Op::TaskSchedule).unwrap();
            m.charge(&s, Op::Transfer).unwrap();
            assert!(m.used() <= s.check_proof_bound(cp), "cp={cp}");
        }
    }

    #[test]
    fn tokens_conversion() {
        let s = GasSchedule {
            token_per_gas: TokenAmount(3),
            ..GasSchedule::default()
        };
        assert_eq!(s.to_tokens(7), TokenAmount(21));
    }
}
