//! Writes a `BENCH_node.json` end-to-end node-pipeline snapshot: whole
//! simulated clusters (mempool → proposer → `apply_batch` → sealed blocks
//! over a lossy `fi-net` link → follower replay) measured wall-clock, plus
//! mempool admission/selection throughput and follower catch-up time from
//! a durable snapshot.
//!
//! Usage: `cargo run --release -p fi-bench --bin node_snapshot [out.json]`
//!
//! Three sections:
//!
//! * **node** — one full cluster run (proposer, 3 verifying followers, a
//!   chain-watching workload driver, 10% message loss) per
//!   `(shards, ingest_threads)` configuration in the {1,8} × {1,4} cross.
//!   Blocks/s and ops/s are end-to-end: they include mempool selection,
//!   the engine commit, link simulation and every follower's replay. The
//!   two knobs are performance-only, so all four configurations must
//!   produce **bit-identical consensus** — same per-round state roots —
//!   and every follower must verify every height; both are asserted, which
//!   makes this bench the node-level instance of the DESIGN.md §9–10
//!   invariance argument (and the reason the snapshot is CI-gated).
//! * **mempool** — admission throughput (100k transactions across 64
//!   accounts into one pool) and fee-ordered, gas-bounded selection
//!   throughput draining that pool block by block.
//! * **catchup** — a cold-starting follower's sync cost: restore a
//!   checkpointed engine from `snapshot_save` bytes and `replay_from` the
//!   post-checkpoint op-log suffix; the time to a bit-identical root is
//!   what a mid-run joiner pays before it can verify live blocks.

use std::time::Instant;

use fi_chain::account::{AccountId, TokenAmount};
use fi_chain::gas::GasSchedule;
use fi_core::engine::Engine;
use fi_core::ops::Op;
use fi_core::params::ProtocolParams;
use fi_crypto::sha256;
use fi_net::link::LinkModel;
use fi_node::{run_cluster, ClusterConfig, Mempool, ReplayMode, Tx, WorkloadConfig};

/// Rounds per measured cluster run (≥200: the multi-node determinism bar).
const ROUNDS: u64 = 240;
/// The `(shards, ingest_threads)` cross; the last entry is the gated row.
const NODE_CONFIGS: [(usize, usize); 4] = [(1, 1), (1, 4), (8, 1), (8, 4)];
/// Transactions for the mempool throughput section.
const MEMPOOL_TXS: u64 = 100_000;
/// Accounts the mempool transactions spread across.
const MEMPOOL_ACCOUNTS: u64 = 64;

struct NodeRun {
    shards: usize,
    threads: usize,
    wall_s: f64,
    blocks: u64,
    ops: u64,
    mempool_admitted: u64,
    roots: Vec<(u64, fi_crypto::Hash256, fi_crypto::Hash256)>,
}

/// World seed: a fixed base offset by `FI_NODE_TEST_SEED` (the node-sim
/// CI matrix), so each CI cell measures — and consensus-checks — the
/// cluster under a different loss/jitter/reorder pattern. The committed
/// snapshot is generated with the variable unset (offset 0).
fn world_seed() -> u64 {
    let offset = std::env::var("FI_NODE_TEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    0xBE9C4 + 1_000 * offset
}

fn cluster_config(shards: usize, threads: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::small(world_seed(), ROUNDS);
    cfg.params.shards = shards;
    cfg.params.ingest_threads = threads;
    cfg.params.delay_per_size = 25;
    cfg.link = LinkModel {
        base_latency: 5,
        ticks_per_byte: 0.001,
        max_jitter: 8,
        loss: 0.1,
    };
    cfg.followers = vec![ReplayMode::OpByOp, ReplayMode::Batch, ReplayMode::OpByOp];
    cfg.workload = WorkloadConfig {
        add_every_rounds: 1,
        max_files: 120,
        file_size: 4,
        prove_every_rounds: 10,
        get_prob: 0.5,
        discard_prob: 0.02,
    };
    cfg
}

fn run_node(shards: usize, threads: usize) -> NodeRun {
    let cfg = cluster_config(shards, threads);
    let t = Instant::now();
    let (_world, reports) = run_cluster(&cfg);
    let wall_s = t.elapsed().as_secs_f64();
    let proposer = reports.proposer.borrow();
    assert_eq!(
        proposer.roots.len(),
        ROUNDS as usize,
        "({shards},{threads}): proposer produced every round"
    );
    for (i, report) in reports.followers.iter().enumerate() {
        let report = report.borrow();
        assert!(
            report.mismatched_rounds.is_empty(),
            "({shards},{threads}): follower {i} diverged at {:?}",
            report.mismatched_rounds
        );
        assert_eq!(
            report.verified_rounds, ROUNDS,
            "({shards},{threads}): follower {i} verified every height"
        );
    }
    let client = reports.client.borrow();
    NodeRun {
        shards,
        threads,
        wall_s,
        blocks: ROUNDS,
        ops: proposer.ops_committed,
        mempool_admitted: client.txs_submitted,
        roots: proposer.roots.clone(),
    }
}

struct MempoolRun {
    admit_s: f64,
    select_s: f64,
    admitted: u64,
    selected: u64,
    blocks: u64,
}

fn run_mempool() -> MempoolRun {
    let params = ProtocolParams {
        k: 1,
        block_ops_limit: 1_024,
        block_gas_limit: 200_000,
        mempool_cap: MEMPOOL_TXS as usize,
        ..ProtocolParams::default()
    };
    let mut ledger = fi_chain::account::Ledger::new();
    for a in 0..MEMPOOL_ACCOUNTS {
        ledger.mint(AccountId(a), TokenAmount(u128::MAX / 1_000));
    }
    let mut pool = Mempool::new(params, GasSchedule::default());
    let t_admit = Instant::now();
    for i in 0..MEMPOOL_TXS {
        let from = AccountId(i % MEMPOOL_ACCOUNTS);
        let tx = Tx {
            from,
            nonce: i / MEMPOOL_ACCOUNTS,
            fee: TokenAmount((i % 97) as u128),
            op: Op::FileProve {
                caller: from,
                file: fi_core::types::FileId(i),
                index: 0,
                sector: fi_core::types::SectorId(i % 512),
            },
        };
        pool.admit(tx, &ledger).expect("admission succeeds");
    }
    let admit_s = t_admit.elapsed().as_secs_f64();
    let admitted = pool.stats().admitted;
    assert_eq!(admitted, MEMPOOL_TXS);

    let t_select = Instant::now();
    let mut selected = 0u64;
    let mut blocks = 0u64;
    while !pool.is_empty() {
        let (txs, gas) = pool.select_block();
        assert!(!txs.is_empty(), "pool drains monotonically");
        assert!(gas <= 200_000, "gas bound respected");
        selected += txs.len() as u64;
        blocks += 1;
    }
    let select_s = t_select.elapsed().as_secs_f64();
    assert_eq!(selected, MEMPOOL_TXS, "every admitted tx selected");

    MempoolRun {
        admit_s,
        select_s,
        admitted,
        selected,
        blocks,
    }
}

struct CatchupRun {
    snapshot_bytes: usize,
    suffix_ops: usize,
    restore_s: f64,
    replay_s: f64,
}

/// Builds a loaded engine, checkpoints + snapshots it, keeps running, then
/// measures a cold joiner's restore + suffix replay to the live root.
fn run_catchup() -> CatchupRun {
    let params = ProtocolParams {
        k: 2,
        delay_per_size: 25,
        ..ProtocolParams::default()
    };
    let provider = AccountId(700);
    let client = AccountId(900);
    let mut engine = Engine::new(params).expect("valid params");
    engine.fund(provider, TokenAmount(1_000_000_000_000));
    engine.fund(client, TokenAmount(1_000_000_000));
    for _ in 0..8 {
        engine.sector_register(provider, 1_280).expect("sector");
    }
    // Load: files + confirms + a few proof cycles of Auto_* traffic.
    for i in 0..500u64 {
        let file = engine
            .file_add(
                client,
                4,
                engine.params().min_value,
                sha256(&i.to_be_bytes()),
            )
            .expect("add");
        for (idx, s) in engine.pending_confirms(file) {
            engine
                .file_confirm(provider, file, idx, s)
                .expect("confirm");
        }
        if i.is_multiple_of(50) {
            engine.advance_to(engine.now() + 10);
        }
    }
    engine.advance_to(engine.now() + 200);

    // The proposer's maintenance step: checkpoint (truncate) + snapshot.
    let checkpoint = engine.checkpoint();
    let snapshot = engine.snapshot_save();

    // The chain keeps moving while the joiner is cold.
    for i in 0..2_000u64 {
        let files = engine.file_ids();
        let file = files[(i % files.len() as u64) as usize];
        let _ = engine.file_get(client, file);
        if i.is_multiple_of(100) {
            engine.advance_to(engine.now() + 10);
        }
    }
    engine.advance_to(engine.now() + 100);
    let suffix = engine.op_log().to_vec();
    let live_root = engine.state_root();

    // The joiner's bill: restore bytes, replay the suffix, verify.
    let t_restore = Instant::now();
    let restored = Engine::snapshot_restore(&snapshot).expect("snapshot restores");
    let restore_s = t_restore.elapsed().as_secs_f64();
    let t_replay = Instant::now();
    let caught_up = Engine::replay_from(&restored, &checkpoint, &suffix).expect("suffix replays");
    let replay_s = t_replay.elapsed().as_secs_f64();
    assert_eq!(
        caught_up.state_root(),
        live_root,
        "caught-up joiner matches the live engine bit-for-bit"
    );
    assert_eq!(caught_up.chain().head_hash(), engine.chain().head_hash());

    CatchupRun {
        snapshot_bytes: snapshot.len(),
        suffix_ops: suffix.len(),
        restore_s,
        replay_s,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_node.json".into());
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let runs: Vec<NodeRun> = NODE_CONFIGS.iter().map(|&(s, t)| run_node(s, t)).collect();
    // Shards and ingest threads are performance knobs: every configuration
    // must reproduce the identical block-by-block consensus history.
    for run in &runs[1..] {
        assert_eq!(
            run.roots, runs[0].roots,
            "({}, {}) diverged from the (1,1) cluster history",
            run.shards, run.threads
        );
    }
    for run in &runs {
        println!(
            "node shards={} threads={}: {} blocks / {} ops in {:.2}s = {:.1} blocks/s, {:.0} ops/s ({} txs submitted)",
            run.shards,
            run.threads,
            run.blocks,
            run.ops,
            run.wall_s,
            run.blocks as f64 / run.wall_s,
            run.ops as f64 / run.wall_s,
            run.mempool_admitted,
        );
    }

    let mempool = run_mempool();
    println!(
        "mempool: {} admits in {:.3}s = {:.0}/s; {} selected over {} blocks in {:.3}s = {:.0}/s",
        mempool.admitted,
        mempool.admit_s,
        mempool.admitted as f64 / mempool.admit_s,
        mempool.selected,
        mempool.blocks,
        mempool.select_s,
        mempool.selected as f64 / mempool.select_s,
    );

    let catchup = run_catchup();
    println!(
        "catchup: {} snapshot bytes restored in {:.1}ms, {} suffix ops replayed in {:.1}ms",
        catchup.snapshot_bytes,
        catchup.restore_s * 1e3,
        catchup.suffix_ops,
        catchup.replay_s * 1e3,
    );

    let node_rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"shards\": {}, \"ingest_threads\": {}, \"blocks\": {}, \"ops_committed\": {}, \"wall_s\": {:.3}, \"blocks_per_sec\": {:.1}, \"ops_per_sec\": {:.0}, \"txs_submitted\": {}}}",
                r.shards,
                r.threads,
                r.blocks,
                r.ops,
                r.wall_s,
                r.blocks as f64 / r.wall_s,
                r.ops as f64 / r.wall_s,
                r.mempool_admitted,
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"suite\": \"fi-node end-to-end pipeline: mempool -> proposer -> apply_batch -> fi-net broadcast -> follower replay\",\n  \
           \"unit_note\": \"node runs: one whole simulated cluster (proposer + 3 verifying followers incl. one apply_batch replayer + workload driver, 10% loss, jittered link) per (shards, ingest_threads) config; wall-clock covers mempool selection, engine commit, link simulation and every follower's replay; all configs asserted bit-identical per round and every follower verifies every height. mempool: admission + fee-ordered gas-bounded selection on one pool. catchup: snapshot_restore + replay_from to the live root, the cold-start joiner's sync bill\",\n  \
           \"available_parallelism\": {parallelism},\n  \
           \"node\": {{\n    \"rounds\": {ROUNDS},\n    \"runs\": [\n{}\n    ]\n  }},\n  \
           \"mempool\": {{\"txs\": {}, \"accounts\": {MEMPOOL_ACCOUNTS}, \"admit_per_sec\": {:.0}, \"select_per_sec\": {:.0}, \"blocks_selected\": {}}},\n  \
           \"catchup\": {{\"snapshot_bytes\": {}, \"suffix_ops\": {}, \"restore_ms\": {:.3}, \"replay_ms\": {:.3}, \"total_ms\": {:.3}}}\n}}\n",
        node_rows.join(",\n"),
        mempool.admitted,
        mempool.admitted as f64 / mempool.admit_s,
        mempool.selected as f64 / mempool.select_s,
        mempool.blocks,
        catchup.snapshot_bytes,
        catchup.suffix_ops,
        catchup.restore_s * 1e3,
        catchup.replay_s * 1e3,
        (catchup.restore_s + catchup.replay_s) * 1e3,
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("wrote {out_path}");
}
