//! IPFS-style paths: named directory DAGs and path resolution.
//!
//! Paper §VI-F: *"it's easy to build and update DHTs and Merkle DAGs on
//! FileInsurer so that anyone can address files stored in FileInsurer
//! through IPFS paths."* This module supplies the directory layer:
//! immutable directory nodes map names to child CIDs; a path like
//! `/ipfs/<root-cid>/docs/paper.pdf` resolves by walking directory blocks.
//!
//! Encoding (distinct from file DAG nodes via the `0x02` kind tag):
//!
//! ```text
//! dir := 0x02 count(u32 BE) (name_len(u16 BE) name cid(32)) * count
//! ```

use std::collections::BTreeMap;

use fi_crypto::Hash256;

use crate::store::{BlockStore, Cid};

/// A directory: an ordered map of names to child CIDs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Directory {
    entries: BTreeMap<String, Cid>,
}

/// Errors from path resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The path does not start with `/ipfs/<cid>`.
    BadPrefix,
    /// The root CID failed to parse.
    BadCid,
    /// A referenced block is missing.
    MissingBlock(Cid),
    /// A path component does not exist in its directory.
    NotFound(String),
    /// Tried to descend *into* a file.
    NotADirectory(String),
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::BadPrefix => write!(f, "path must start with /ipfs/<cid>"),
            PathError::BadCid => write!(f, "unparseable root cid"),
            PathError::MissingBlock(c) => write!(f, "missing block {c}"),
            PathError::NotFound(name) => write!(f, "no entry named '{name}'"),
            PathError::NotADirectory(name) => write!(f, "'{name}' is a file, not a directory"),
        }
    }
}

impl std::error::Error for PathError {}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Adds or replaces an entry; returns `self` for chaining.
    pub fn with(mut self, name: impl Into<String>, cid: Cid) -> Self {
        self.entries.insert(name.into(), cid);
        self
    }

    /// Looks up a name.
    pub fn get(&self, name: &str) -> Option<Cid> {
        self.entries.get(name).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Cid)> {
        self.entries.iter().map(|(n, c)| (n.as_str(), *c))
    }

    /// Serialises to a directory block.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0x02];
        out.extend_from_slice(&(self.entries.len() as u32).to_be_bytes());
        for (name, cid) in &self.entries {
            out.extend_from_slice(&(name.len() as u16).to_be_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(cid.as_ref());
        }
        out
    }

    /// Decodes a directory block (kind tag `0x02`).
    pub fn decode(block: &[u8]) -> Option<Directory> {
        if block.first() != Some(&0x02) {
            return None;
        }
        let count = u32::from_be_bytes(block.get(1..5)?.try_into().ok()?) as usize;
        let mut entries = BTreeMap::new();
        let mut at = 5usize;
        for _ in 0..count {
            let name_len = u16::from_be_bytes(block.get(at..at + 2)?.try_into().ok()?) as usize;
            at += 2;
            let name = std::str::from_utf8(block.get(at..at + name_len)?).ok()?;
            at += name_len;
            let cid_bytes: [u8; 32] = block.get(at..at + 32)?.try_into().ok()?;
            at += 32;
            entries.insert(name.to_string(), Hash256::from_bytes(cid_bytes));
        }
        if at != block.len() {
            return None;
        }
        Some(Directory { entries })
    }

    /// Stores the directory as a block; returns its CID.
    pub fn store(&self, store: &mut BlockStore) -> Cid {
        store.put(self.encode())
    }
}

/// Resolves an IPFS path (`/ipfs/<root-cid>/a/b/c`) to the CID it names.
///
/// Intermediate components must be directories; the final component may be
/// a file DAG or a directory.
///
/// # Errors
///
/// See [`PathError`].
pub fn resolve_path(store: &BlockStore, path: &str) -> Result<Cid, PathError> {
    let rest = path.strip_prefix("/ipfs/").ok_or(PathError::BadPrefix)?;
    let mut parts = rest.split('/').filter(|p| !p.is_empty());
    let root_hex = parts.next().ok_or(PathError::BadPrefix)?;
    let mut current = Hash256::from_hex(root_hex).ok_or(PathError::BadCid)?;
    for component in parts {
        let block = store
            .get(&current)
            .ok_or(PathError::MissingBlock(current))?;
        let dir = Directory::decode(block)
            .ok_or_else(|| PathError::NotADirectory(component.to_string()))?;
        current = dir
            .get(component)
            .ok_or_else(|| PathError::NotFound(component.to_string()))?;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{export_bytes, import_bytes};

    fn tree(store: &mut BlockStore) -> (Cid, Vec<u8>) {
        // /docs/paper.pdf and /media/logo.png under one root.
        let paper = b"the fileinsurer paper".to_vec();
        let paper_cid = import_bytes(store, &paper, 8);
        let logo_cid = import_bytes(store, b"\x89PNG...", 8);
        let docs = Directory::new().with("paper.pdf", paper_cid).store(store);
        let media = Directory::new().with("logo.png", logo_cid).store(store);
        let root = Directory::new()
            .with("docs", docs)
            .with("media", media)
            .store(store);
        (root, paper)
    }

    #[test]
    fn encode_decode_round_trip() {
        let d = Directory::new()
            .with("a", fi_crypto::sha256(b"1"))
            .with("長い名前", fi_crypto::sha256(b"2"));
        assert_eq!(Directory::decode(&d.encode()), Some(d.clone()));
        assert_eq!(d.len(), 2);
        // File DAG decoder must reject directory blocks and vice versa.
        assert_eq!(crate::dag::DagNode::decode(&d.encode()), None);
        assert_eq!(
            Directory::decode(&crate::dag::DagNode::Leaf(vec![1]).encode()),
            None
        );
    }

    #[test]
    fn resolve_nested_path() {
        let mut store = BlockStore::new();
        let (root, paper) = tree(&mut store);
        let path = format!("/ipfs/{}/docs/paper.pdf", root.to_hex());
        let cid = resolve_path(&store, &path).unwrap();
        assert_eq!(export_bytes(&store, cid).unwrap(), paper);
        // Root itself resolves.
        assert_eq!(
            resolve_path(&store, &format!("/ipfs/{}", root.to_hex())).unwrap(),
            root
        );
    }

    #[test]
    fn resolve_error_paths() {
        let mut store = BlockStore::new();
        let (root, _) = tree(&mut store);
        let hex = root.to_hex();
        assert_eq!(
            resolve_path(&store, "/notipfs/xyz"),
            Err(PathError::BadPrefix)
        );
        assert_eq!(resolve_path(&store, "/ipfs/zz"), Err(PathError::BadCid));
        assert_eq!(
            resolve_path(&store, &format!("/ipfs/{hex}/docs/missing.txt")),
            Err(PathError::NotFound("missing.txt".into()))
        );
        assert_eq!(
            resolve_path(&store, &format!("/ipfs/{hex}/docs/paper.pdf/inside")),
            Err(PathError::NotADirectory("inside".into()))
        );
    }

    #[test]
    fn directory_updates_produce_new_cids() {
        let mut store = BlockStore::new();
        let f1 = import_bytes(&mut store, b"v1", 8);
        let f2 = import_bytes(&mut store, b"v2", 8);
        let d1 = Directory::new().with("file", f1);
        let d2 = d1.clone().with("file", f2);
        assert_ne!(d1.store(&mut store), d2.store(&mut store));
    }
}
