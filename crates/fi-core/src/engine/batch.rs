//! The pipelined batch-ingest path: staged execution of shard-local ops.
//!
//! [`Engine::apply_batch`](super::Engine::apply_batch) splits a block's op
//! batch into **segments** of consecutive *shard-local* ops (`File_Confirm`,
//! `File_Prove`, `File_Get`, `File_Discard`, `ForceDiscard` — ops whose
//! writes are confined to one file's shard plus the ledger) separated by
//! **barrier** ops (everything else: sector admin, `File_Add`'s
//! sampler/rng draws, funds, fault injection, `AdvanceTo`). Each segment is
//! staged concurrently — one worker per group of shards, up to
//! [`ProtocolParams::ingest_threads`] — and then committed sequentially in
//! the original submission order, so consensus state is bit-identical to
//! feeding the same ops one by one through `Engine::apply`.
//!
//! Determinism rests on three pillars:
//!
//! 1. **Single executor.** [`stage_shard_local`] is the *only*
//!    implementation of the five shard-local ops; the sequential dispatch
//!    path runs the same function against live state and applies its
//!    effects immediately. There is no second copy of the op semantics
//!    that could drift.
//! 2. **Shard isolation.** A staging worker executes its shard's ops in
//!    submission order against a [`ShardOverlay`] (base shard + staged
//!    writes), while reading global state — sectors, params, gas prices,
//!    consensus time — immutably. No shard-local op writes any of those,
//!    so the only cross-shard data flow inside a segment is through the
//!    ledger.
//! 3. **Ledger validation at commit.** Staged balance checks are
//!    *assumptions* against the pre-segment ledger. The commit phase
//!    replays each op's [`LedgerStep`] program against the live ledger
//!    first; if any assumed outcome flips (an earlier op in the segment
//!    drained or credited an account past a threshold), the staged result
//!    is discarded, the op re-executes sequentially, and the shard is
//!    marked dirty for the rest of the segment (its later staged results
//!    were computed against a stale overlay). The fallback is the normal
//!    sequential path, so even the pathological interleavings are
//!    bit-identical — they just don't get the speedup.
//!
//! The expensive parts of ingest — the modeled `File_Prove` WindowPoSt
//! verification ([`prove_replica_digest`], `audit_path_len` Merkle nodes
//! per proof, folded into the engine's audit root in commit order) and the
//! canonical op/receipt digests — all happen in the parallel phase.

use std::collections::HashMap;

use fi_chain::account::{AccountId, Ledger, TokenAmount};
use fi_chain::gas::{GasSchedule, Op as GasOp};
use fi_chain::tasks::Time;
use fi_crypto::{cached_domain, Hash256};

use crate::ops::{Op, Receipt};
use crate::params::ProtocolParams;
use crate::types::{
    AllocEntry, AllocState, FileDescriptor, FileId, FileState, RemovalReason, Sector, SectorId,
    SectorState,
};

use super::lifecycle::FileAddPrestage;
use super::pool::JobBatch;
use super::shard::Shard;
use super::statemap::TrackedMap;
use super::{Engine, EngineError, TRAFFIC_ESCROW};

/// The file a shard-local op targets, or `None` for barrier ops. This is
/// the batch classifier: ops with a target stage concurrently on the
/// target's shard; everything else serializes the pipeline.
pub(super) fn shard_local_file(op: &Op) -> Option<FileId> {
    match op {
        Op::FileConfirm { file, .. }
        | Op::FileProve { file, .. }
        | Op::FileGet { file, .. }
        | Op::FileDiscard { file, .. }
        | Op::ForceDiscard { file } => Some(*file),
        Op::SectorRegister { .. }
        | Op::SectorDisable { .. }
        | Op::FileAdd { .. }
        | Op::Fund { .. }
        | Op::Burn { .. }
        | Op::FailSector { .. }
        | Op::CorruptSector { .. }
        | Op::AdvanceTo { .. } => None,
    }
}

/// One recorded ledger operation of a staged op, in execution order.
/// Balance-dependent steps carry the outcome the staging phase *assumed*;
/// the commit phase replays the program and falls back to sequential
/// execution when any assumption no longer holds.
#[derive(Debug, Clone)]
pub(super) enum LedgerStep {
    /// A gas burn. `assumed_ok` is the balance check's staged outcome
    /// (`false` = the op failed with `InsufficientFunds` here and recorded
    /// no further steps).
    Burn {
        /// Account debited.
        account: AccountId,
        /// Fee burned.
        amount: TokenAmount,
        /// Whether the staging phase saw sufficient balance.
        assumed_ok: bool,
    },
    /// A best-effort transfer (`Ledger::transfer_up_to`). Infallible, and
    /// no shard-local op observes the moved amount, so it carries no
    /// assumption — the commit replay computes the actual amount.
    TransferUpTo {
        /// Source account.
        from: AccountId,
        /// Destination account.
        to: AccountId,
        /// Upper bound on the amount moved.
        cap: TokenAmount,
    },
}

/// One staged mutation of the target shard. Writes carry whole cloned
/// objects: the overlay the executor read from already contains every
/// earlier same-segment write, so replacement at commit time is exact.
#[derive(Debug, Clone)]
pub(super) enum ShardWrite {
    /// Replace an allocation entry.
    Entry {
        /// Target file.
        file: FileId,
        /// Replica index.
        index: u32,
        /// The new entry value.
        entry: AllocEntry,
    },
    /// Replace a file descriptor.
    File {
        /// The new descriptor value (keyed by `desc.id`).
        desc: FileDescriptor,
    },
    /// Record a pending removal reason.
    DiscardReason {
        /// Target file.
        file: FileId,
        /// Why it is being removed.
        reason: RemovalReason,
    },
    /// Bump the shard's `proofs_accepted` counter.
    ProofAccepted,
}

/// Everything one shard-local op does, staged: the typed outcome, the
/// ledger program, the shard writes, the audit-root fold of a verified
/// proof, and the op-counter increment. Applying these to live state (in
/// submission order, after the ledger program revalidates) reproduces the
/// sequential execution bit for bit.
#[derive(Debug, Clone)]
pub(super) struct StagedEffects {
    /// The typed result the op returns.
    pub(super) outcome: Result<Receipt, EngineError>,
    /// Ledger operations in execution order.
    pub(super) ledger: Vec<LedgerStep>,
    /// Shard mutations in execution order.
    pub(super) writes: Vec<ShardWrite>,
    /// Digest of a verified `File_Prove` proof, folded into the engine's
    /// audit root at commit (in submission order — the fold is part of the
    /// state root, which pins the parallel verification results).
    pub(super) audit_fold: Option<Hash256>,
    /// `Engine::op_counter` increment.
    pub(super) op_counter_inc: u64,
}

impl StagedEffects {
    fn fail(sim: LedgerSim<'_>, err: EngineError) -> Self {
        StagedEffects {
            outcome: Err(err),
            ledger: sim.steps,
            writes: Vec::new(),
            audit_fold: None,
            op_counter_inc: 0,
        }
    }
}

/// A staged op ready for commit: the effects plus the canonical digests
/// (both computed in the parallel phase — `Op::digest` formats and hashes
/// the whole op, a meaningful share of ingest cost).
#[derive(Debug, Clone)]
pub(super) struct StagedOp {
    /// Canonical digest of the op (block batch commitment).
    pub(super) op_digest: Hash256,
    /// Digest of the staged outcome (receipt root commitment).
    pub(super) receipt_digest: Hash256,
    /// The staged effects.
    pub(super) effects: StagedEffects,
}

/// The immutable global context a staging worker reads: parameters, gas
/// prices, the sector table, the pre-segment ledger, and consensus time.
/// No shard-local op writes any of these, which is what makes the segment
/// staging sound.
pub(super) struct OpCtx<'a> {
    pub(super) params: &'a ProtocolParams,
    pub(super) gas: &'a GasSchedule,
    pub(super) sectors: &'a TrackedMap<SectorId, Sector>,
    pub(super) ledger: &'a Ledger,
    pub(super) now: Time,
}

/// A shard read view: the live shard plus every staged write of earlier
/// same-segment ops on this shard, so in-segment dependencies (a second
/// confirm of the same replica, a prove after a discard) resolve exactly
/// as they would sequentially.
pub(super) struct ShardOverlay<'a> {
    base: &'a Shard,
    files: HashMap<FileId, FileDescriptor>,
    entries: HashMap<(FileId, u32), AllocEntry>,
}

impl<'a> ShardOverlay<'a> {
    pub(super) fn new(base: &'a Shard) -> Self {
        ShardOverlay {
            base,
            files: HashMap::new(),
            entries: HashMap::new(),
        }
    }

    fn file(&self, file: FileId) -> Option<&FileDescriptor> {
        self.files.get(&file).or_else(|| self.base.files.get(&file))
    }

    fn entry(&self, file: FileId, index: u32) -> Option<&AllocEntry> {
        self.entries
            .get(&(file, index))
            .or_else(|| self.base.alloc.get(&(file, index)))
    }

    /// Mirrors a staged write into the overlay so later ops in the same
    /// segment read it. Discard reasons and stats are write-only for
    /// shard-local ops, so only files and entries need overlaying.
    pub(super) fn note_write(&mut self, write: &ShardWrite) {
        match write {
            ShardWrite::Entry { file, index, entry } => {
                self.entries.insert((*file, *index), entry.clone());
            }
            ShardWrite::File { desc } => {
                self.files.insert(desc.id, desc.clone());
            }
            ShardWrite::DiscardReason { .. } | ShardWrite::ProofAccepted => {}
        }
    }
}

/// A tiny account→balance overlay for simulating one op's ledger program:
/// an op touches at most a handful of accounts, so a linear-scan `Vec`
/// beats a hash map on both allocation and lookup — this sits on the
/// sequential dispatch path of every shard-local op.
#[derive(Default)]
struct BalanceScratch(Vec<(AccountId, TokenAmount)>);

impl BalanceScratch {
    fn get(&self, base: &Ledger, account: AccountId) -> TokenAmount {
        self.0
            .iter()
            .find(|(a, _)| *a == account)
            .map(|(_, b)| *b)
            .unwrap_or_else(|| base.balance(account))
    }

    fn set(&mut self, account: AccountId, balance: TokenAmount) {
        match self.0.iter_mut().find(|(a, _)| *a == account) {
            Some(slot) => slot.1 = balance,
            None => self.0.push((account, balance)),
        }
    }
}

/// A per-op ledger simulation over the frozen pre-segment ledger: records
/// the op's [`LedgerStep`] program while tracking hypothetical balances so
/// multi-step ops (gas burn then fee release) stay internally consistent.
struct LedgerSim<'a> {
    base: &'a Ledger,
    local: BalanceScratch,
    steps: Vec<LedgerStep>,
}

impl<'a> LedgerSim<'a> {
    fn new(base: &'a Ledger) -> Self {
        LedgerSim {
            base,
            local: BalanceScratch::default(),
            steps: Vec::new(),
        }
    }

    fn balance(&self, account: AccountId) -> TokenAmount {
        self.local.get(self.base, account)
    }

    /// Records a burn; returns whether it (hypothetically) succeeded.
    fn burn(&mut self, account: AccountId, amount: TokenAmount) -> bool {
        let balance = self.balance(account);
        let ok = balance >= amount;
        self.steps.push(LedgerStep::Burn {
            account,
            amount,
            assumed_ok: ok,
        });
        if ok {
            self.local.set(account, balance - amount);
        }
        ok
    }

    /// Records a best-effort transfer and applies it hypothetically.
    fn transfer_up_to(&mut self, from: AccountId, to: AccountId, cap: TokenAmount) {
        self.steps.push(LedgerStep::TransferUpTo { from, to, cap });
        let from_balance = self.balance(from);
        let moved = from_balance.min(cap);
        self.local.set(from, from_balance - moved);
        let to_balance = self.balance(to);
        self.local.set(to, to_balance + moved);
    }

    /// The staged counterpart of `Engine::charge_gas`.
    fn charge_gas(&mut self, gas: &GasSchedule, account: AccountId, ops: &[GasOp]) -> bool {
        let total: u64 = ops.iter().map(|&op| gas.price(op)).sum();
        self.burn(account, gas.to_tokens(total))
    }
}

/// Replays a staged op's ledger program against the live ledger *without
/// mutating it*: returns `true` iff every balance-dependent step resolves
/// exactly as the staging phase assumed. `false` means an earlier op in
/// the segment moved money in a way this op's outcome depends on — the
/// caller must discard the staged result and re-execute sequentially.
pub(super) fn ledger_steps_match(ledger: &Ledger, steps: &[LedgerStep]) -> bool {
    let mut local = BalanceScratch::default();
    for step in steps {
        match step {
            LedgerStep::Burn {
                account,
                amount,
                assumed_ok,
            } => {
                let b = local.get(ledger, *account);
                let ok = b >= *amount;
                if ok != *assumed_ok {
                    return false;
                }
                if ok {
                    local.set(*account, b - *amount);
                }
            }
            LedgerStep::TransferUpTo { from, to, cap } => {
                let from_balance = local.get(ledger, *from);
                let moved = from_balance.min(*cap);
                local.set(*from, from_balance - moved);
                let to_balance = local.get(ledger, *to);
                local.set(*to, to_balance + moved);
            }
        }
    }
    true
}

cached_domain!(fn prove_leaf_domain, "fileinsurer/prove-leaf");
cached_domain!(fn prove_node_domain, "fileinsurer/prove-node");
cached_domain!(pub(super) fn prove_root_domain, "fileinsurer/prove-root");

/// The modeled WindowPoSt verification a `File_Prove` carries: derive the
/// challenged leaf from the file's Merkle commitment, the replica index,
/// the holding sector and the proof time, then walk an
/// `audit_path_len`-node authentication path. Pure — the digest is folded
/// into the engine's audit root in commit order, so the state root pins
/// every parallel verification bit-for-bit.
fn prove_replica_digest(
    merkle_root: &Hash256,
    index: u32,
    sector: SectorId,
    now: Time,
    path_len: u32,
) -> Hash256 {
    let mut node = prove_leaf_domain().hash(&[
        merkle_root.as_bytes(),
        &index.to_be_bytes(),
        &sector.0.to_be_bytes(),
        &now.to_be_bytes(),
    ]);
    let node_domain = prove_node_domain();
    for level in 0..path_len {
        node = node_domain.hash(&[node.as_bytes(), &level.to_be_bytes()]);
    }
    node
}

/// Executes one shard-local op against a shard view and the frozen global
/// context, producing staged effects. This is the single implementation of
/// the five ops' semantics: the sequential dispatch path runs it against
/// the live shard and applies the effects immediately; the batch path runs
/// it in a staging worker and commits later.
pub(super) fn stage_shard_local(
    op: &Op,
    ctx: &OpCtx<'_>,
    view: &ShardOverlay<'_>,
) -> StagedEffects {
    match op {
        Op::FileConfirm {
            caller,
            file,
            index,
            sector,
        } => stage_file_confirm(ctx, view, *caller, *file, *index, *sector),
        Op::FileProve {
            caller,
            file,
            index,
            sector,
        } => stage_file_prove(ctx, view, *caller, *file, *index, *sector),
        Op::FileGet { caller, file } => stage_file_get(ctx, view, *caller, *file),
        Op::FileDiscard { caller, file } => stage_file_discard(ctx, view, *caller, *file),
        Op::ForceDiscard { file } => stage_force_discard(view, *file),
        other => unreachable!("{} is not a shard-local op", other.kind()),
    }
}

/// `File_Confirm` (Fig. 5): the provider of the target sector acknowledges
/// receiving the replica; the traffic fee for it is released.
fn stage_file_confirm(
    ctx: &OpCtx<'_>,
    view: &ShardOverlay<'_>,
    caller: AccountId,
    file: FileId,
    index: u32,
    sector: SectorId,
) -> StagedEffects {
    let mut sim = LedgerSim::new(ctx.ledger);
    if !sim.charge_gas(ctx.gas, caller, &[GasOp::RequestBase, GasOp::AllocRead]) {
        return StagedEffects::fail(sim, EngineError::InsufficientFunds);
    }
    let Some(s) = ctx.sectors.get(&sector) else {
        return StagedEffects::fail(sim, EngineError::UnknownSector(sector));
    };
    if s.owner != caller {
        return StagedEffects::fail(sim, EngineError::NotOwner);
    }
    let Some(size) = view.file(file).map(|f| f.size) else {
        return StagedEffects::fail(sim, EngineError::UnknownFile(file));
    };
    let Some(e) = view.entry(file, index) else {
        return StagedEffects::fail(sim, EngineError::UnknownFile(file));
    };
    if e.next != Some(sector) || e.state != AllocState::Alloc {
        return StagedEffects::fail(
            sim,
            EngineError::InvalidState("allocation is not awaiting this sector's confirm"),
        );
    }
    let mut entry = e.clone();
    entry.state = AllocState::Confirm;
    let fee = ctx.params.traffic_fee(size);
    sim.transfer_up_to(TRAFFIC_ESCROW, caller, fee);
    StagedEffects {
        outcome: Ok(Receipt::Confirmed { file, index }),
        ledger: sim.steps,
        writes: vec![ShardWrite::Entry { file, index, entry }],
        audit_fold: None,
        op_counter_inc: 1,
    }
}

/// `File_Prove` (Fig. 5): verify the modeled storage proof for a held
/// replica and record its timestamp. The verification digest is folded
/// into the engine's audit root at commit.
fn stage_file_prove(
    ctx: &OpCtx<'_>,
    view: &ShardOverlay<'_>,
    caller: AccountId,
    file: FileId,
    index: u32,
    sector: SectorId,
) -> StagedEffects {
    let mut sim = LedgerSim::new(ctx.ledger);
    if !sim.charge_gas(ctx.gas, caller, &[GasOp::RequestBase, GasOp::ProofVerify]) {
        return StagedEffects::fail(sim, EngineError::InsufficientFunds);
    }
    let Some(s) = ctx.sectors.get(&sector) else {
        return StagedEffects::fail(sim, EngineError::UnknownSector(sector));
    };
    if s.owner != caller {
        return StagedEffects::fail(sim, EngineError::NotOwner);
    }
    if s.physically_failed || s.state == SectorState::Corrupted {
        return StagedEffects::fail(
            sim,
            EngineError::InvalidState("sector cannot produce proofs"),
        );
    }
    let Some(e) = view.entry(file, index) else {
        return StagedEffects::fail(sim, EngineError::UnknownFile(file));
    };
    if e.prev != Some(sector) {
        return StagedEffects::fail(
            sim,
            EngineError::InvalidState("sector does not hold this replica"),
        );
    }
    let merkle_root = view
        .file(file)
        .map(|f| f.merkle_root)
        .expect("allocation entries never outlive their descriptor");
    let digest = prove_replica_digest(
        &merkle_root,
        index,
        sector,
        ctx.now,
        ctx.params.audit_path_len,
    );
    let mut entry = e.clone();
    entry.last = Some(ctx.now);
    StagedEffects {
        outcome: Ok(Receipt::Proved { file, index }),
        ledger: sim.steps,
        writes: vec![
            ShardWrite::Entry { file, index, entry },
            ShardWrite::ProofAccepted,
        ],
        audit_fold: Some(digest),
        op_counter_inc: 1,
    }
}

/// `File_Get` (§III-E): gas-charged live-holder lookup.
fn stage_file_get(
    ctx: &OpCtx<'_>,
    view: &ShardOverlay<'_>,
    caller: AccountId,
    file: FileId,
) -> StagedEffects {
    let mut sim = LedgerSim::new(ctx.ledger);
    if !sim.charge_gas(ctx.gas, caller, &[GasOp::RequestBase, GasOp::AllocRead]) {
        return StagedEffects::fail(sim, EngineError::InsufficientFunds);
    }
    let Some(f) = view.file(file) else {
        return StagedEffects::fail(sim, EngineError::UnknownFile(file));
    };
    let mut holders = Vec::new();
    for i in 0..f.cp {
        if let Some(e) = view.entry(file, i) {
            if e.state == AllocState::Normal || e.state == AllocState::Alloc {
                if let Some(sid) = e.prev {
                    if let Some(s) = ctx.sectors.get(&sid) {
                        if s.state != SectorState::Corrupted && !s.physically_failed {
                            holders.push((sid, s.owner));
                        }
                    }
                }
            }
        }
    }
    StagedEffects {
        outcome: Ok(Receipt::Holders { holders }),
        ledger: sim.steps,
        writes: Vec::new(),
        audit_fold: None,
        op_counter_inc: 0,
    }
}

/// `File_Discard` (Fig. 4): the owner marks the file for removal at its
/// next `Auto_CheckProof`.
fn stage_file_discard(
    ctx: &OpCtx<'_>,
    view: &ShardOverlay<'_>,
    caller: AccountId,
    file: FileId,
) -> StagedEffects {
    let mut sim = LedgerSim::new(ctx.ledger);
    if !sim.charge_gas(ctx.gas, caller, &[GasOp::RequestBase]) {
        return StagedEffects::fail(sim, EngineError::InsufficientFunds);
    }
    let Some(f) = view.file(file) else {
        return StagedEffects::fail(sim, EngineError::UnknownFile(file));
    };
    if f.owner != caller {
        return StagedEffects::fail(sim, EngineError::NotOwner);
    }
    let mut desc = f.clone();
    desc.state = FileState::Discarded;
    StagedEffects {
        outcome: Ok(Receipt::Discarded { file }),
        ledger: sim.steps,
        writes: vec![
            ShardWrite::File { desc },
            ShardWrite::DiscardReason {
                file,
                reason: RemovalReason::ClientDiscard,
            },
        ],
        audit_fold: None,
        op_counter_inc: 1,
    }
}

/// Consensus-side rollback discard (§VI-C): no ownership check, no gas.
fn stage_force_discard(view: &ShardOverlay<'_>, file: FileId) -> StagedEffects {
    let writes = match view.file(file) {
        Some(f) => {
            let mut desc = f.clone();
            desc.state = FileState::Discarded;
            vec![
                ShardWrite::File { desc },
                ShardWrite::DiscardReason {
                    file,
                    reason: RemovalReason::ClientDiscard,
                },
            ]
        }
        None => Vec::new(),
    };
    StagedEffects {
        outcome: Ok(Receipt::Discarded { file }),
        ledger: Vec::new(),
        writes,
        audit_fold: None,
        op_counter_inc: 0,
    }
}

impl Engine {
    /// Stages one shard-local op against *live* state (empty overlay, live
    /// ledger). In this single-op setting every ledger assumption holds by
    /// construction, so the staged effects are exact.
    pub(super) fn stage_vs_live(&self, op: &Op) -> StagedEffects {
        let file = shard_local_file(op).expect("shard-local op");
        let shard_idx = self.shards.shard_of(file);
        let ctx = OpCtx {
            params: &self.params,
            gas: &self.gas,
            sectors: &self.sectors,
            ledger: &self.ledger,
            now: self.chain.now(),
        };
        let view = ShardOverlay::new(&self.shards.shards[shard_idx]);
        stage_shard_local(op, &ctx, &view)
    }

    /// The sequential execution of a shard-local op — dispatch routes the
    /// five ops here. Staging against live state plus an immediate commit
    /// is exactly the pre-pipeline handler semantics.
    pub(super) fn apply_shard_local(&mut self, op: &Op) -> Result<Receipt, EngineError> {
        let file = shard_local_file(op).expect("shard-local op");
        let shard_idx = self.shards.shard_of(file);
        let effects = self.stage_vs_live(op);
        debug_assert!(
            ledger_steps_match(&self.ledger, &effects.ledger),
            "live staging cannot mis-assume balances"
        );
        self.apply_effects(shard_idx, effects)
    }

    /// Applies staged effects to live state: the ledger program (with
    /// assumptions already revalidated by the caller), the shard writes,
    /// the audit-root fold, the op counter. Returns the staged outcome.
    pub(super) fn apply_effects(
        &mut self,
        shard_idx: usize,
        effects: StagedEffects,
    ) -> Result<Receipt, EngineError> {
        for step in &effects.ledger {
            match step {
                LedgerStep::Burn {
                    account,
                    amount,
                    assumed_ok,
                } => {
                    if *assumed_ok {
                        self.ledger
                            .burn(*account, *amount)
                            .expect("commit replay validated the balance");
                    }
                    // An assumed-failed burn mutates nothing, exactly like
                    // the sequential path's rejected `Ledger::burn`.
                }
                LedgerStep::TransferUpTo { from, to, cap } => {
                    self.ledger.transfer_up_to(*from, *to, *cap);
                }
            }
        }
        let shard = &mut self.shards.shards[shard_idx];
        for write in effects.writes {
            match write {
                ShardWrite::Entry { file, index, entry } => {
                    shard.alloc.insert((file, index), entry);
                }
                ShardWrite::File { desc } => {
                    shard.files.insert(desc.id, desc);
                }
                ShardWrite::DiscardReason { file, reason } => {
                    shard.discard_reasons.insert(file, reason);
                }
                ShardWrite::ProofAccepted => {
                    shard.stats.proofs_accepted += 1;
                }
            }
        }
        if let Some(digest) = effects.audit_fold {
            self.audit_root =
                prove_root_domain().hash(&[self.audit_root.as_bytes(), digest.as_bytes()]);
        }
        self.op_counter += effects.op_counter_inc;
        effects.outcome
    }

    /// Stages a segment of shard-local ops concurrently: ops are grouped by
    /// target shard, shard groups are chunked over up to
    /// [`ProtocolParams::ingest_threads`] persistent pool workers, and each
    /// worker executes its shards' ops in submission order against a
    /// [`ShardOverlay`]. Pure with respect to the engine — all effects are
    /// returned, none applied.
    ///
    /// The `File_Add` ops among `upcoming_barriers` (the barrier run that
    /// ends this segment) have their pure halves pre-staged in the same
    /// pool run — fee/validation/erasure-geometry work overlaps the shard
    /// workers, and only the sampler/rng draws remain for the serialized
    /// barrier commit. Returns one prestage slot per barrier op.
    pub(super) fn stage_segment(
        &self,
        ops: &[Op],
        upcoming_barriers: &[Op],
    ) -> (Vec<StagedOp>, Vec<Option<FileAddPrestage>>) {
        let shard_count = self.shards.shards.len();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        for (i, op) in ops.iter().enumerate() {
            let file = shard_local_file(op).expect("segment holds shard-local ops");
            groups[self.shards.shard_of(file)].push(i);
        }
        let occupied: Vec<usize> = (0..shard_count)
            .filter(|&s| !groups[s].is_empty())
            .collect();
        let workers = self.params.ingest_threads.clamp(1, occupied.len().max(1));
        let chunk_len = occupied.len().div_ceil(workers).max(1);
        let ctx = OpCtx {
            params: &self.params,
            gas: &self.gas,
            sectors: &self.sectors,
            ledger: &self.ledger,
            now: self.chain.now(),
        };
        let shards = &self.shards.shards;
        let groups = &groups;
        let ctx = &ctx;

        let chunks: Vec<&[usize]> = occupied.chunks(chunk_len).collect();
        let mut chunk_out: Vec<Vec<(usize, StagedOp)>> =
            chunks.iter().map(|_| Vec::new()).collect();
        let mut prestages: Vec<Option<FileAddPrestage>> =
            upcoming_barriers.iter().map(|_| None).collect();

        let pool = self.pool();
        let mut jobs: JobBatch<'_> = Vec::with_capacity(chunks.len() + 1);
        for (shard_ids, slot) in chunks.into_iter().zip(chunk_out.iter_mut()) {
            jobs.push(Box::new(move || {
                let mut staged: Vec<(usize, Hash256, StagedEffects)> = Vec::new();
                for &s in shard_ids {
                    let mut view = ShardOverlay::new(&shards[s]);
                    for &i in &groups[s] {
                        let op = &ops[i];
                        let effects = stage_shard_local(op, ctx, &view);
                        for write in &effects.writes {
                            view.note_write(write);
                        }
                        let receipt_digest = match &effects.outcome {
                            Ok(receipt) => receipt.digest(),
                            Err(err) => Receipt::error_digest(err),
                        };
                        staged.push((i, receipt_digest, effects));
                    }
                }
                // The canonical op digests for this worker's ops in
                // one multi-lane sweep — each worker batches its own
                // share, so the hashing is both parallel across
                // workers and SIMD-wide within one.
                let op_refs: Vec<&Op> = staged.iter().map(|&(i, ..)| &ops[i]).collect();
                let op_digests = Op::digest_many(&op_refs);
                *slot = staged
                    .into_iter()
                    .zip(op_digests)
                    .map(|((i, receipt_digest, effects), op_digest)| {
                        (
                            i,
                            StagedOp {
                                op_digest,
                                receipt_digest,
                                effects,
                            },
                        )
                    })
                    .collect();
            }));
        }
        if upcoming_barriers
            .iter()
            .any(|op| matches!(op, Op::FileAdd { .. }))
        {
            let params = &self.params;
            let gas = &self.gas;
            let slots = &mut prestages;
            jobs.push(Box::new(move || {
                for (op, out) in upcoming_barriers.iter().zip(slots.iter_mut()) {
                    if let Op::FileAdd { size, value, .. } = op {
                        *out = Some(FileAddPrestage::compute(params, gas, *size, *value));
                    }
                }
            }));
        }
        pool.run(jobs);

        let mut out: Vec<Option<StagedOp>> = ops.iter().map(|_| None).collect();
        for chunk in chunk_out {
            for (i, staged) in chunk {
                out[i] = Some(staged);
            }
        }
        let staged = out
            .into_iter()
            .map(|staged| staged.expect("every segment op staged exactly once"))
            .collect();
        (staged, prestages)
    }
}
