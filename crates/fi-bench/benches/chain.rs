//! Chain substrate: block production, ledger ops, pending list.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use fi_chain::account::{AccountId, Ledger, TokenAmount};
use fi_chain::block::BlockChain;
use fi_chain::tasks::PendingList;
use fi_crypto::Hash256;

fn bench_blocks(c: &mut Criterion) {
    c.bench_function("chain/advance-100-blocks", |b| {
        b.iter_with_setup(
            || BlockChain::new(1, 10),
            |mut chain| {
                chain.advance_time(1_000, Hash256::ZERO);
                black_box(chain.height())
            },
        )
    });
}

fn bench_ledger(c: &mut Criterion) {
    c.bench_function("chain/ledger/transfer", |b| {
        let mut ledger = Ledger::new();
        ledger.mint(AccountId(1), TokenAmount(u128::MAX / 2));
        b.iter(|| {
            ledger
                .transfer(AccountId(1), AccountId(2), TokenAmount(1))
                .unwrap();
            black_box(ledger.balance(AccountId(2)))
        })
    });
}

fn bench_pending_list(c: &mut Criterion) {
    c.bench_function("chain/pending/schedule+pop", |b| {
        let mut pl: PendingList<u64> = PendingList::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            pl.schedule(t + 10, t);
            black_box(pl.pop_due(t))
        })
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_blocks, bench_ledger, bench_pending_list
}
criterion_main!(benches);
