//! The sharded per-file core of the engine.
//!
//! `Auto_CheckProof` audits are independent per (file, replica) — the
//! paper's scalability claim rests on it — so all per-file state lives in
//! a [`Shard`]: the file descriptors, the allocation table rows, the
//! discard reasons, the shard's own `Auto_*` task wheel, and the shard's
//! slice of the engine counters. [`ShardedState`] routes by
//! `FileId % shards`; since file ids come from one global counter, shard
//! `s` of `n` owns exactly the strided ids `s, s + n, s + 2n, …` — the
//! population stays balanced and the id sequence (hence every op digest
//! and receipt) is identical at every shard count.
//!
//! Global, cross-file state — the chain, the ledger, sectors and their
//! capacity sampler, the protocol `DetRng` — stays in
//! [`Engine`](super::Engine); shards never touch each other, which is what
//! lets the audit verify phase *and* the batch-ingest staging phase
//! (`engine/batch.rs`) borrow them immutably in parallel (`Shard` is
//! `Sync`).

use fi_chain::tasks::{Scheduler, SchedulerKind, Time};

use crate::types::{AllocEntry, FileDescriptor, FileId, RemovalReason};

use super::statemap::TrackedMap;
use super::{EngineStats, Task};

/// A task tagged with its global schedule sequence number. The tag is
/// assigned by the engine in apply order, which is shard-count-invariant,
/// so sorting a merged bucket by `(time, seq)` reconstructs the exact
/// order a single unsharded scheduler would pop.
pub(super) type SeqTask = (u64, Task);

/// One shard's drained slice of a due bucket.
pub(super) type ShardSlice = Vec<(Time, SeqTask)>;

/// Per-file engine state for one file-id stride.
#[derive(Debug, Clone)]
pub(super) struct Shard {
    /// Live file descriptors owned by this shard. Dirty-tracked: the keys
    /// touched since the last state-root sync feed the files HAMT.
    pub(super) files: TrackedMap<FileId, FileDescriptor>,
    /// Allocation table rows `(file, replica index)` for this shard's files.
    pub(super) alloc: TrackedMap<(FileId, u32), AllocEntry>,
    /// Pending removal reasons for this shard's files.
    pub(super) discard_reasons: TrackedMap<FileId, RemovalReason>,
    /// This shard's `Auto_*` task wheel.
    pub(super) pending: Scheduler<SeqTask>,
    /// This shard's slice of the engine counters (merged by
    /// [`Engine::stats`](super::Engine::stats)).
    pub(super) stats: EngineStats,
}

impl Shard {
    pub(super) fn new(kind: SchedulerKind, granularity: Time) -> Self {
        Shard {
            files: TrackedMap::new(),
            alloc: TrackedMap::new(),
            discard_reasons: TrackedMap::new(),
            pending: Scheduler::new(kind, granularity),
            stats: EngineStats::default(),
        }
    }
}

/// The engine's per-file state, partitioned by `FileId` range.
#[derive(Debug, Clone)]
pub(super) struct ShardedState {
    pub(super) shards: Vec<Shard>,
}

impl ShardedState {
    /// Creates `count` empty shards (validated ≥ 1 by `ProtocolParams`).
    pub(super) fn new(count: usize, kind: SchedulerKind, granularity: Time) -> Self {
        assert!(count >= 1, "shard count must be positive");
        ShardedState {
            shards: (0..count).map(|_| Shard::new(kind, granularity)).collect(),
        }
    }

    /// The route-by-file-id invariant: everything about `file` lives in
    /// shard `file % shards`, forever (files never migrate between shards).
    #[inline]
    pub(super) fn shard_of(&self, file: FileId) -> usize {
        (file.0 % self.shards.len() as u64) as usize
    }

    #[inline]
    pub(super) fn shard(&self, file: FileId) -> &Shard {
        &self.shards[self.shard_of(file)]
    }

    #[inline]
    pub(super) fn shard_mut(&mut self, file: FileId) -> &mut Shard {
        let idx = self.shard_of(file);
        &mut self.shards[idx]
    }

    // ------------------------------------------------------------------
    // File descriptors
    // ------------------------------------------------------------------

    pub(super) fn file(&self, file: FileId) -> Option<&FileDescriptor> {
        self.shard(file).files.get(&file)
    }

    pub(super) fn file_mut(&mut self, file: FileId) -> Option<&mut FileDescriptor> {
        self.shard_mut(file).files.get_mut(&file)
    }

    pub(super) fn insert_file(&mut self, desc: FileDescriptor) {
        let id = desc.id;
        self.shard_mut(id).files.insert(id, desc);
    }

    pub(super) fn remove_file(&mut self, file: FileId) -> Option<FileDescriptor> {
        self.shard_mut(file).files.remove(&file)
    }

    pub(super) fn files_len(&self) -> usize {
        self.shards.iter().map(|s| s.files.len()).sum()
    }

    /// Live file ids across all shards, sorted.
    pub(super) fn file_ids(&self) -> Vec<FileId> {
        let mut ids: Vec<FileId> = self
            .shards
            .iter()
            .flat_map(|s| s.files.keys().copied())
            .collect();
        ids.sort_unstable();
        ids
    }

    // ------------------------------------------------------------------
    // Allocation table
    // ------------------------------------------------------------------

    pub(super) fn entry(&self, file: FileId, index: u32) -> Option<&AllocEntry> {
        self.shard(file).alloc.get(&(file, index))
    }

    pub(super) fn entry_mut(&mut self, file: FileId, index: u32) -> Option<&mut AllocEntry> {
        self.shard_mut(file).alloc.get_mut(&(file, index))
    }

    pub(super) fn insert_entry(&mut self, file: FileId, index: u32, entry: AllocEntry) {
        self.shard_mut(file).alloc.insert((file, index), entry);
    }

    pub(super) fn remove_entry(&mut self, file: FileId, index: u32) -> Option<AllocEntry> {
        self.shard_mut(file).alloc.remove(&(file, index))
    }

    /// Iterates every allocation row across all shards (shard order —
    /// callers that need a deterministic order sort the collected rows).
    pub(super) fn alloc_iter(&self) -> impl Iterator<Item = (&(FileId, u32), &AllocEntry)> {
        self.shards.iter().flat_map(|s| s.alloc.iter())
    }

    // ------------------------------------------------------------------
    // Discard reasons
    // ------------------------------------------------------------------

    pub(super) fn set_discard_reason(&mut self, file: FileId, reason: RemovalReason) {
        self.shard_mut(file).discard_reasons.insert(file, reason);
    }

    pub(super) fn take_discard_reason(&mut self, file: FileId) -> Option<RemovalReason> {
        self.shard_mut(file).discard_reasons.remove(&file)
    }

    // ------------------------------------------------------------------
    // Task wheels
    // ------------------------------------------------------------------

    /// Which shard executes a task: its file's shard; global tasks
    /// (`DistributeRent`) live on shard 0.
    fn task_shard(&self, task: &Task) -> usize {
        match task {
            Task::CheckAlloc(f) | Task::CheckProof(f) | Task::CheckRefresh(f, _) => {
                self.shard_of(*f)
            }
            Task::DistributeRent => 0,
        }
    }

    /// Schedules `task` at `time` on its shard's wheel, tagged with the
    /// caller-assigned global sequence number.
    pub(super) fn schedule(&mut self, seq: u64, time: Time, task: Task) {
        let idx = self.task_shard(&task);
        self.shards[idx].pending.schedule(time, (seq, task));
    }

    /// Earliest pending task time across all shards — the sharded
    /// equivalent of [`Scheduler::next_time`] (see
    /// [`fi_chain::tasks::next_time_across`] for the general form).
    pub(super) fn next_task_time(&self) -> Option<Time> {
        self.shards
            .iter()
            .filter_map(|s| s.pending.next_time())
            .min()
    }

    /// Drains every task due at or before `now`, one slice per shard —
    /// the wheel-embedded equivalent of
    /// [`fi_chain::tasks::pop_due_across`].
    pub(super) fn pop_due(&mut self, now: Time) -> Vec<ShardSlice> {
        self.shards
            .iter_mut()
            .map(|s| s.pending.pop_due(now))
            .collect()
    }

    /// Total scheduled tasks across all shards.
    pub(super) fn pending_len(&self) -> usize {
        self.shards.iter().map(|s| s.pending.len()).sum()
    }
}
