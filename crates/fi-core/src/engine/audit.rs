//! The `Auto_*` consensus tasks (Figs. 7–9) and the punishment machinery:
//! `Auto_CheckAlloc`, `Auto_CheckProof`, `Auto_Refresh`,
//! `Auto_CheckRefresh`, rent distribution, deposit confiscation, and the
//! adversarial fault-injection ops.
//!
//! These are *not* transactions: they run by consensus when
//! [`Engine::advance_to`] moves time past their deadline, which is exactly
//! why the op log stays replayable — the same `AdvanceTo` op deterministically
//! re-executes the same task sequence.

use fi_chain::account::TokenAmount;
use fi_crypto::DetRng;

use crate::types::{
    AllocState, FileId, FileState, ProtocolEvent, RemovalReason, SectorId, SectorState,
};

use super::{Engine, Task, COMPENSATION_POOL, DEPOSIT_ESCROW, RENT_POOL, TRAFFIC_ESCROW};

impl Engine {
    // ------------------------------------------------------------------
    // Adversary / fault injection
    // ------------------------------------------------------------------

    /// Injects a *silent* physical failure: the provider can no longer
    /// produce storage proofs; the network discovers it via the
    /// `ProofDeadline` machinery (the realistic path).
    ///
    /// # Panics
    ///
    /// Panics on unknown sector.
    pub fn fail_sector_silently(&mut self, sector: SectorId) {
        self.apply(crate::ops::Op::FailSector { sector })
            .expect("fault injection is infallible");
    }

    pub(super) fn fail_sector_op(&mut self, sector: SectorId) {
        self.sectors
            .get_mut(&sector)
            .expect("unknown sector")
            .physically_failed = true;
        self.op_counter += 1;
    }

    /// Corrupts a sector *with immediate detection*: deposit confiscated,
    /// replicas voided, mid-refresh transfers resolved (used by
    /// experiments that don't simulate the proof timeline).
    ///
    /// # Panics
    ///
    /// Panics on unknown sector.
    pub fn corrupt_sector_now(&mut self, sector: SectorId) {
        self.apply(crate::ops::Op::CorruptSector { sector })
            .expect("fault injection is infallible");
    }

    pub(super) fn corrupt_sector_op(&mut self, sector: SectorId) {
        let s = self.sectors.get_mut(&sector).expect("unknown sector");
        if s.state == SectorState::Corrupted {
            return;
        }
        s.state = SectorState::Corrupted;
        s.physically_failed = true;
        let confiscated = s.deposit;
        s.deposit = TokenAmount::ZERO;
        self.sampler.remove(&sector);
        self.ledger
            .transfer(DEPOSIT_ESCROW, COMPENSATION_POOL, confiscated)
            .expect("deposit escrow covers pledged deposits");
        self.stats.sectors_corrupted += 1;
        self.log(ProtocolEvent::SectorCorrupted {
            sector,
            confiscated,
        });
        self.void_sector_content(sector);
        self.op_counter += 1;
    }

    // ------------------------------------------------------------------
    // Auto tasks
    // ------------------------------------------------------------------

    /// `Auto_CheckAlloc` (Fig. 7).
    pub(super) fn auto_check_alloc(&mut self, file: FileId) {
        let Some(desc) = self.files.get(&file) else {
            return;
        };
        let cp = desc.cp;
        let owner = desc.owner;

        // First pass: all entries must be Confirm or Corrupted.
        let all_ok = (0..cp).all(|i| {
            matches!(
                self.alloc.get(&(file, i)).map(|e| e.state),
                Some(AllocState::Confirm) | Some(AllocState::Corrupted)
            )
        });
        if !all_ok {
            // Upload failed: refund outstanding traffic escrow for
            // unconfirmed replicas, release reservations, drop the file.
            let size = self.files[&file].size;
            let unconfirmed = (0..cp)
                .filter(|&i| self.alloc.get(&(file, i)).map(|e| e.state) == Some(AllocState::Alloc))
                .count() as u128;
            let refund = TokenAmount(self.params.traffic_fee(size).0 * unconfirmed);
            self.ledger.transfer_up_to(TRAFFIC_ESCROW, owner, refund);
            self.remove_file_completely(file, RemovalReason::UploadFailed);
            return;
        }

        // Second pass: finalise.
        let now = self.now();
        for i in 0..cp {
            let e = self.alloc.get_mut(&(file, i)).expect("entry exists");
            match e.state {
                AllocState::Confirm => {
                    e.prev = e.next.take();
                    e.last = Some(now);
                    e.state = AllocState::Normal;
                }
                AllocState::Corrupted => {
                    e.prev = None;
                    e.next = None;
                    e.last = None;
                }
                _ => unreachable!("checked above"),
            }
        }
        let desc = self.files.get_mut(&file).expect("file exists");
        // A discard issued during the transfer window (File_Discard, or the
        // file_add_segmented rollback) must survive finalisation: keep the
        // state so the first Auto_CheckProof removes the file instead of it
        // silently reviving as Normal.
        if desc.state != FileState::Discarded {
            desc.state = FileState::Normal;
        }
        desc.cntdown = Self::sample_cntdown(&mut self.rng, self.params.avg_refresh);
        self.pending
            .schedule(now + self.params.proof_cycle, Task::CheckProof(file));
        self.log(ProtocolEvent::FileStored { file });
    }

    /// `Auto_CheckProof` (Fig. 8).
    pub(super) fn auto_check_proof(&mut self, file: FileId) {
        let Some(desc) = self.files.get(&file) else {
            return;
        };
        let owner = desc.owner;
        let size = desc.size;
        let cp = desc.cp;
        let now = self.now();

        // 1. Charge the next cycle (rent + prepaid gas) or force-discard.
        if desc.state == FileState::Normal {
            let cost = self.params.cycle_cost(size, cp);
            if self.ledger.balance(owner) < cost {
                let desc = self.files.get_mut(&file).expect("file exists");
                desc.state = FileState::Discarded;
                self.discard_reasons
                    .insert(file, RemovalReason::InsufficientFunds);
            } else {
                let rent = TokenAmount(self.params.unit_rent.0 * size as u128 * cp as u128);
                let gas = cost - rent;
                self.ledger
                    .transfer(owner, RENT_POOL, rent)
                    .expect("balance checked");
                self.ledger.burn(owner, gas).expect("balance checked");
            }
        }

        // 2. Late-proof checks per entry.
        for i in 0..cp {
            let Some(e) = self.alloc.get(&(file, i)) else {
                continue;
            };
            if e.state == AllocState::Corrupted {
                continue;
            }
            let Some(holder) = e.prev else { continue };
            let holder_corrupted = self
                .sectors
                .get(&holder)
                .map(|s| s.state == SectorState::Corrupted)
                .unwrap_or(true);
            if holder_corrupted {
                continue;
            }
            let last = e.last.unwrap_or(0);
            if now >= last + self.params.proof_deadline {
                self.confiscate_and_corrupt(holder);
            } else if now >= last + self.params.proof_due {
                self.punish(holder);
            }
        }

        // 3. Removal / loss / reschedule.
        let state = self.files.get(&file).map(|f| f.state);
        if state == Some(FileState::Discarded) {
            let reason = self
                .discard_reasons
                .remove(&file)
                .unwrap_or(RemovalReason::ClientDiscard);
            self.remove_file_completely(file, reason);
            return;
        }
        let all_corrupted = (0..cp)
            .all(|i| self.alloc.get(&(file, i)).map(|e| e.state) == Some(AllocState::Corrupted));
        if all_corrupted {
            self.compensate_loss(file);
            return;
        }
        self.pending
            .schedule(now + self.params.proof_cycle, Task::CheckProof(file));
        let desc = self.files.get_mut(&file).expect("file exists");
        desc.cntdown -= 1;
        if desc.cntdown <= 0 {
            let i = self.rng.below(cp as u64) as u32; // RandomIndex(f)
            self.auto_refresh(file, i);
        }
    }

    /// `Auto_Refresh` (Fig. 9).
    pub(super) fn auto_refresh(&mut self, file: FileId, index: u32) {
        let Some(desc) = self.files.get(&file) else {
            return;
        };
        let size = desc.size;
        let entry_state = self.alloc.get(&(file, index)).map(|e| e.state);
        if entry_state != Some(AllocState::Normal) {
            // The chosen replica is corrupted or already mid-move; re-arm.
            let avg = self.params.avg_refresh;
            if let Some(d) = self.files.get_mut(&file) {
                d.cntdown = Self::sample_cntdown(&mut self.rng, avg);
            }
            return;
        }

        let target = {
            let mut rng = self.rng.clone();
            let choice = self.sampler.sample(&mut rng).copied();
            self.rng = rng;
            choice
        };
        let fits = target
            .and_then(|s| self.sectors.get(&s))
            .map(|s| s.free_cap >= size)
            .unwrap_or(false);
        if !fits {
            // Collision — "almost never happens" (Fig. 9 else-branch).
            self.stats.refresh_collisions += 1;
            self.log(ProtocolEvent::RefreshCollision { file, index });
            let avg = self.params.avg_refresh;
            if let Some(d) = self.files.get_mut(&file) {
                d.cntdown = Self::sample_cntdown(&mut self.rng, avg);
            }
            return;
        }
        let target = target.expect("fits implies some");
        self.reserve(target, size);
        self.sector_replicas
            .get_mut(&target)
            .expect("sector index")
            .insert((file, index));
        let e = self.alloc.get_mut(&(file, index)).expect("entry exists");
        let from = e.prev;
        e.next = Some(target);
        e.state = AllocState::Alloc;
        let deadline = self.now() + self.params.transfer_window(size);
        self.pending
            .schedule(deadline, Task::CheckRefresh(file, index));
        self.stats.refreshes_started += 1;
        self.log(ProtocolEvent::ReplicaSwap {
            file,
            index,
            from,
            to: target,
        });
    }

    /// `Auto_CheckRefresh` (Fig. 9).
    pub(super) fn auto_check_refresh(&mut self, file: FileId, index: u32) {
        let Some(desc) = self.files.get(&file) else {
            return;
        };
        let size = desc.size;
        let cp = desc.cp;
        let avg = self.params.avg_refresh;
        let now = self.now();
        let Some(entry) = self.alloc.get(&(file, index)) else {
            return;
        };
        let (state, prev, next) = (entry.state, entry.prev, entry.next);

        match state {
            AllocState::Confirm => {
                // Transfer succeeded: release the old holder, flip over.
                let e = self.alloc.get_mut(&(file, index)).expect("entry");
                e.prev = next;
                e.next = None;
                e.last = Some(now);
                e.state = AllocState::Normal;
                if let Some(old_sector) = prev {
                    if prev == next {
                        // Self-move: free the transient second copy but keep
                        // the replica's membership in the sector index.
                        self.release_reservation(old_sector, size);
                    } else {
                        self.release_replica(old_sector, file, index, size);
                    }
                }
                self.stats.refreshes_completed += 1;
                if let Some(d) = self.files.get_mut(&file) {
                    d.cntdown = Self::sample_cntdown(&mut self.rng, avg);
                }
            }
            AllocState::Alloc => {
                // Not confirmed in time: punish the tardy target and every
                // current holder (Fig. 9: "punish entry.next; for j ∈ [f.cp]
                // punish allocTable[f,j].prev"), then retry the refresh.
                if let Some(t) = next {
                    self.punish(t);
                    self.release_reservation_indexed(t, file, index, size);
                }
                let e = self.alloc.get_mut(&(file, index)).expect("entry");
                e.next = None;
                e.state = AllocState::Normal;
                let mut holders = Vec::new();
                for j in 0..cp {
                    if let Some(other) = self.alloc.get(&(file, j)) {
                        if other.state != AllocState::Corrupted {
                            if let Some(h) = other.prev {
                                holders.push(h);
                            }
                        }
                    }
                }
                for h in holders {
                    self.punish(h);
                }
                self.auto_refresh(file, index);
            }
            // Resolved by corruption handling in the meantime.
            AllocState::Normal | AllocState::Corrupted => {}
        }
    }

    /// Rent distribution at period end (§IV-A.2): pro rata capacity over
    /// sectors functioning this period.
    pub(super) fn auto_distribute_rent(&mut self) {
        let pool = self.ledger.balance(RENT_POOL);
        let live: Vec<(SectorId, fi_chain::account::AccountId, u64)> = {
            let mut v: Vec<_> = self
                .sectors
                .values()
                .filter(|s| s.state != SectorState::Corrupted)
                .map(|s| (s.id, s.owner, s.capacity))
                .collect();
            v.sort_unstable_by_key(|(id, _, _)| *id);
            v
        };
        let total_capacity: u64 = live.iter().map(|(_, _, c)| c).sum();
        let mut paid = TokenAmount::ZERO;
        if !pool.is_zero() && total_capacity > 0 {
            for (_, owner, capacity) in &live {
                let share = pool.mul_ratio(*capacity as u128, total_capacity as u128);
                if !share.is_zero() {
                    self.ledger
                        .transfer(RENT_POOL, *owner, share)
                        .expect("pool covers shares");
                    paid += share;
                }
            }
        }
        self.log(ProtocolEvent::RentDistributed { total: paid });
        let next = self.now() + self.rent_period();
        self.pending.schedule(next, Task::DistributeRent);
    }

    // ------------------------------------------------------------------
    // Punishment & compensation
    // ------------------------------------------------------------------

    pub(super) fn sample_cntdown(rng: &mut DetRng, avg_refresh: f64) -> i64 {
        (rng.sample_exp(avg_refresh).ceil() as i64).max(1)
    }

    pub(super) fn punish(&mut self, sector: SectorId) {
        let Some(s) = self.sectors.get_mut(&sector) else {
            return;
        };
        if s.state == SectorState::Corrupted {
            return;
        }
        let amount = self.params.punishment(s.deposit).min(s.deposit);
        if amount.is_zero() {
            return;
        }
        s.deposit = s.deposit - amount;
        self.ledger
            .transfer(DEPOSIT_ESCROW, COMPENSATION_POOL, amount)
            .expect("escrow covers punishment");
        self.stats.punishments += 1;
        self.log(ProtocolEvent::ProviderPunished { sector, amount });
    }

    /// Deadline miss: confiscate the whole deposit and void the sector.
    pub(super) fn confiscate_and_corrupt(&mut self, sector: SectorId) {
        let Some(s) = self.sectors.get_mut(&sector) else {
            return;
        };
        if s.state == SectorState::Corrupted {
            return;
        }
        s.state = SectorState::Corrupted;
        s.physically_failed = true;
        let confiscated = s.deposit;
        s.deposit = TokenAmount::ZERO;
        self.sampler.remove(&sector);
        self.ledger
            .transfer(DEPOSIT_ESCROW, COMPENSATION_POOL, confiscated)
            .expect("escrow covers deposit");
        self.stats.sectors_corrupted += 1;
        self.log(ProtocolEvent::SectorCorrupted {
            sector,
            confiscated,
        });
        self.void_sector_content(sector);
    }

    /// Full compensation on loss (Fig. 8, §IV-B).
    pub(super) fn compensate_loss(&mut self, file: FileId) {
        let Some(desc) = self.files.get(&file) else {
            return;
        };
        let owner = desc.owner;
        let value = desc.value;
        let paid = self.ledger.transfer_up_to(COMPENSATION_POOL, owner, value);
        self.stats.files_lost += 1;
        self.stats.value_lost += value;
        self.stats.compensation_paid += paid;
        self.stats.compensation_shortfall += value - paid;
        self.log(ProtocolEvent::FileLost {
            file,
            value,
            compensated: paid,
        });
        self.remove_file_completely(file, RemovalReason::Lost);
    }
}
