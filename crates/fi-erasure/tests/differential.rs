//! Differential tests: the flat-buffer/table-accelerated fast path must be
//! **byte-identical** to the frozen seed scalar implementation
//! (`fi_erasure::reference`) on every input — random payloads, coefficients,
//! shard geometries, and erasure patterns, plus the edges (empty payload,
//! sub-word shard lengths, all parity lost, all data lost).
//!
//! A tiny xorshift generator keeps the suite deterministic without external
//! dependencies.

use fi_erasure::reference::{RefGf256, RefReedSolomon};
use fi_erasure::{Gf256, ReedSolomon, ShardSet};

/// Deterministic xorshift64* stream.
struct Xs(u64);

impl Xs {
    fn new(seed: u64) -> Self {
        Xs(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next() as u8).collect()
    }
}

#[test]
fn mul_matches_reference_exhaustively() {
    let gf = Gf256::new();
    let reference = RefGf256::new();
    for a in 0..=255u8 {
        for b in 0..=255u8 {
            assert_eq!(gf.mul(a, b), reference.mul(a, b), "a={a} b={b}");
        }
    }
}

#[test]
fn wide_mul_acc_matches_reference_all_coefficients() {
    let gf = Gf256::new();
    let reference = RefGf256::new();
    let mut rng = Xs::new(7);
    // Every coefficient, across lengths that straddle the u64 chunking.
    for coeff in 0..=255u8 {
        for len in [0usize, 1, 7, 8, 9, 31, 64, 100] {
            let src = rng.bytes(len);
            let mut fast = rng.bytes(len);
            let mut slow = fast.clone();
            gf.mul_acc(&mut fast, &src, coeff);
            reference.mul_acc(&mut slow, &src, coeff);
            assert_eq!(fast, slow, "coeff={coeff} len={len}");
        }
    }
}

#[test]
fn wide_mul_acc_matches_reference_long_random_streams() {
    let gf = Gf256::new();
    let reference = RefGf256::new();
    let mut rng = Xs::new(99);
    for trial in 0..40 {
        let len = 1 + rng.below(10_000) as usize;
        let coeff = rng.next() as u8;
        let src = rng.bytes(len);
        let mut fast = rng.bytes(len);
        let mut slow = fast.clone();
        gf.mul_acc(&mut fast, &src, coeff);
        reference.mul_acc(&mut slow, &src, coeff);
        assert_eq!(fast, slow, "trial={trial} coeff={coeff} len={len}");
    }
}

#[test]
fn encode_matches_reference_across_geometries() {
    let mut rng = Xs::new(1234);
    for (data, parity) in [
        (1usize, 1usize),
        (2, 1),
        (3, 3),
        (4, 2),
        (8, 8),
        (16, 16),
        (10, 3),
    ] {
        let rs = ReedSolomon::new(data, parity).unwrap();
        let reference = RefReedSolomon::new(data, parity);
        for payload_len in [0usize, 1, 5, 64, 1000, 4096 + 3] {
            let payload = rng.bytes(payload_len);
            let fast = rs.encode_bytes_flat(&payload);
            let slow = reference.encode_bytes(&payload);
            assert_eq!(
                fast.to_vecs(),
                slow,
                "({data},{parity}) payload_len={payload_len}"
            );
        }
    }
}

#[test]
fn reconstruct_matches_reference_random_erasure_patterns() {
    let mut rng = Xs::new(4321);
    for (data, parity) in [(2usize, 2usize), (4, 3), (8, 8), (5, 2)] {
        let rs = ReedSolomon::new(data, parity).unwrap();
        let reference = RefReedSolomon::new(data, parity);
        let total = data + parity;
        for trial in 0..30 {
            let len = 1 + rng.below(2000) as usize;
            let payload = rng.bytes(len);
            let encoded = reference.encode_bytes(&payload);
            // Erase a random subset of at most `parity` shards.
            let mut present = vec![true; total];
            let erasures = rng.below(parity as u64 + 1) as usize;
            let mut erased = 0;
            while erased < erasures {
                let i = rng.below(total as u64) as usize;
                if present[i] {
                    present[i] = false;
                    erased += 1;
                }
            }

            // Reference: full reconstruct from Options.
            let got: Vec<Option<Vec<u8>>> = encoded
                .iter()
                .enumerate()
                .map(|(i, s)| present[i].then(|| s.clone()))
                .collect();
            let slow = reference.reconstruct(&got);

            // Fast path: in-place on the flat buffer with erased rows
            // poisoned to catch any row the kernel forgets to rewrite.
            let shard_len = encoded[0].len();
            let mut set = ShardSet::new(total, shard_len);
            for (i, shard) in encoded.iter().enumerate() {
                if present[i] {
                    set.shard_mut(i).copy_from_slice(shard);
                } else {
                    set.shard_mut(i).fill(0xEE);
                }
            }
            rs.reconstruct_into(&mut set, &present).unwrap();
            assert_eq!(
                set.to_vecs(),
                slow,
                "({data},{parity}) trial={trial} pattern={present:?}"
            );
        }
    }
}

#[test]
fn reconstruct_matches_reference_edge_patterns() {
    // The adversarial edges: all data lost, all parity lost, exactly-half
    // alternating loss, single erasure in every position.
    let rs = ReedSolomon::new(8, 8).unwrap();
    let reference = RefReedSolomon::new(8, 8);
    let payload: Vec<u8> = (0..5000).map(|i| (i * 131 % 256) as u8).collect();
    let encoded = reference.encode_bytes(&payload);
    let total = 16;

    let mut patterns: Vec<Vec<bool>> = vec![
        (0..total).map(|i| i >= 8).collect(),     // all data lost
        (0..total).map(|i| i < 8).collect(),      // all parity lost
        (0..total).map(|i| i % 2 == 1).collect(), // alternating half
    ];
    for i in 0..total {
        let mut p = vec![true; total];
        p[i] = false; // single erasure at every position
        patterns.push(p);
    }

    for present in patterns {
        let got: Vec<Option<Vec<u8>>> = encoded
            .iter()
            .enumerate()
            .map(|(i, s)| present[i].then(|| s.clone()))
            .collect();
        let slow = reference.reconstruct(&got);

        let mut set = ShardSet::new(total, encoded[0].len());
        for (i, shard) in encoded.iter().enumerate() {
            if present[i] {
                set.shard_mut(i).copy_from_slice(shard);
            } else {
                set.shard_mut(i).fill(0xEE);
            }
        }
        rs.reconstruct_into(&mut set, &present).unwrap();
        assert_eq!(set.to_vecs(), slow, "pattern={present:?}");
    }
}

#[test]
fn empty_payload_matches_reference() {
    for (data, parity) in [(1usize, 1usize), (3, 2), (8, 8)] {
        let rs = ReedSolomon::new(data, parity).unwrap();
        let reference = RefReedSolomon::new(data, parity);
        let fast = rs.encode_bytes_flat(b"");
        let slow = reference.encode_bytes(b"");
        assert_eq!(fast.to_vecs(), slow, "({data},{parity})");
        assert_eq!(fast.shard_len(), 1, "empty payload pads to length-1 shards");
    }
}

#[test]
fn decode_bytes_flat_round_trips_with_reference_encoding() {
    // Encode with the reference, decode with the fast path: proves the two
    // implementations interoperate shard-for-shard, not merely agree with
    // themselves.
    let mut rng = Xs::new(555);
    let rs = ReedSolomon::new(6, 6).unwrap();
    let reference = RefReedSolomon::new(6, 6);
    for _ in 0..10 {
        let len = 1 + rng.below(3000) as usize;
        let payload = rng.bytes(len);
        let encoded = reference.encode_bytes(&payload);
        let mut present = vec![true; 12];
        for i in 0..6 {
            present[(i * 2) % 12] = false; // lose half
        }
        let mut set = ShardSet::new(12, encoded[0].len());
        for (i, shard) in encoded.iter().enumerate() {
            if present[i] {
                set.shard_mut(i).copy_from_slice(shard);
            }
        }
        let decoded = rs
            .decode_bytes_flat(&mut set, &present, payload.len())
            .unwrap();
        assert_eq!(decoded, payload);
    }
}
