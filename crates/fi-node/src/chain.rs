//! The block tree and deterministic fork-choice every node runs.
//!
//! Under proposer rotation ([`crate::schedule`]) several blocks can exist
//! for one slot (a skipped leader's fallback raced it back online) and
//! blocks arrive late, out of order, or never. [`ChainTracker`] turns that
//! into a deterministic head:
//!
//! * **block tree** — every structurally valid block attaches under its
//!   parent; blocks whose parent is unknown wait in a bounded orphan pool
//!   until it arrives (the node layer fetches it);
//! * **verify-then-prefer** — a branch is only adopted after replaying its
//!   blocks on a clone of the engine and checking the proposer's claimed
//!   `state_root` / head hash / receipt root; a block that fails
//!   verification is banned, never adopted, and fork-choice recomputes
//!   without it;
//! * **fork-choice** — the best tip maximizes height; ties resolve at the
//!   earliest divergence by the smallest `(rank, slot, hash)` — the
//!   schedule's priority order — so every node picks the identical winner
//!   regardless of arrival order;
//! * **equivocation** — two different blocks from the same proposer for
//!   the same slot are proof of misbehavior: the pair is recorded as
//!   [`EquivocationEvidence`], both blocks (and every other block by the
//!   equivocator) are discarded from fork-choice, and future blocks by
//!   that proposer are rejected outright. The ban set is a function of
//!   the evidence alone, so nodes that learn it in any order agree.
//!
//! The engine state at the head is maintained incrementally: extensions
//! apply only the new blocks; a reorg rebuilds from the anchor engine
//! (genesis, or the snapshot a cold joiner synced from) along the new
//! branch — correctness over speed, exactly what a verifier wants.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use fi_core::engine::{Checkpoint, Engine};
use fi_core::ops::Op;
use fi_crypto::{sha256, Hash256};
use fi_net::world::NodeIdx;

use crate::schedule::ProposerSchedule;

/// Buffered parent-less blocks across all branches; beyond this, new
/// orphans are dropped (anti-entropy re-delivers them).
const ORPHAN_CAP: usize = 1024;

/// How a node replays block ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// One `Engine::apply` per op — the canonical verifier path.
    OpByOp,
    /// One `Engine::apply_batch` per block — must agree bit-for-bit
    /// (PR 4's guarantee; asserted by the node tests).
    Batch,
}

/// A block as broadcast on the wire: its slot-schedule coordinates, chain
/// position, the exact op sequence committed, and the proposer's claimed
/// post-state for verify-then-prefer.
#[derive(Debug, Clone)]
pub struct SealedBlock {
    /// The rotation slot this block fills.
    pub slot: u64,
    /// The proposer's rank in the slot's schedule (0 = scheduled leader).
    pub rank: u32,
    /// The proposing node.
    pub proposer: NodeIdx,
    /// Chain height (parent height + 1).
    pub height: u64,
    /// Hash of the parent block (the tracker's anchor hash at height 1).
    pub parent: Hash256,
    /// The committed ops in order (mempool selection plus the slot's
    /// trailing `AdvanceTo` barrier).
    pub ops: Vec<Op>,
    /// `Engine::state_root()` the proposer claims after the batch.
    pub state_root: Hash256,
    /// Engine chain head hash the proposer claims after the batch.
    pub head_hash: Hash256,
    /// Receipt root of the engine block this batch sealed.
    pub receipt_root: Hash256,
}

impl SealedBlock {
    /// The block's identity: a hash over the header and the op digests.
    pub fn hash(&self) -> Hash256 {
        let mut buf = Vec::with_capacity(160 + self.ops.len() * 32);
        buf.extend_from_slice(b"fi-node/block");
        buf.extend_from_slice(&self.slot.to_be_bytes());
        buf.extend_from_slice(&self.rank.to_be_bytes());
        buf.extend_from_slice(&(self.proposer as u64).to_be_bytes());
        buf.extend_from_slice(&self.height.to_be_bytes());
        buf.extend_from_slice(self.parent.as_ref());
        buf.extend_from_slice(self.state_root.as_ref());
        buf.extend_from_slice(self.head_hash.as_ref());
        buf.extend_from_slice(self.receipt_root.as_ref());
        for op in &self.ops {
            buf.extend_from_slice(op.digest().as_ref());
        }
        sha256(&buf)
    }

    /// Approximate wire size, for link-delay modeling.
    pub fn wire_bytes(&self) -> u64 {
        196 + self.ops.len() as u64 * 80
    }
}

/// Proof that a proposer sealed two different blocks for one slot.
#[derive(Debug, Clone)]
pub struct EquivocationEvidence {
    /// The slot both blocks claim.
    pub slot: u64,
    /// The misbehaving proposer.
    pub proposer: NodeIdx,
    /// The block seen first (already in the tree).
    pub first: SealedBlock,
    /// The conflicting block.
    pub second: SealedBlock,
}

/// Why [`ChainTracker::insert`] refused a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The proposer is not the schedule's leader for `(slot, rank)`, or
    /// the rank is beyond the schedule's fallback depth.
    NotScheduled,
    /// Height or slot does not extend the parent (`height != parent+1`,
    /// or `slot <= parent.slot`).
    BadLineage,
    /// The proposer was caught equivocating earlier.
    BannedProposer,
    /// The exact block was banned (equivocation pair member, or it failed
    /// verification during an earlier adoption attempt).
    BannedBlock,
    /// The block is at or below the tracker's anchor height (stale, or
    /// predates a cold joiner's sync point).
    BelowAnchor,
}

/// What [`ChainTracker::insert`] did with a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Attached to the tree. `head_changed` says whether fork-choice moved
    /// the head (here or via drained orphans); `reorged` whether the move
    /// abandoned previously-adopted blocks.
    Attached {
        /// The head moved.
        head_changed: bool,
        /// The move rolled back previously-adopted blocks.
        reorged: bool,
    },
    /// Already in the tree (duplicate delivery).
    AlreadyKnown,
    /// Parent unknown; buffered. The caller should fetch `missing_parent`.
    Orphaned {
        /// The parent hash nobody has shown us yet.
        missing_parent: Hash256,
    },
    /// The block convicted its proposer of equivocation; evidence was
    /// recorded (see [`ChainTracker::evidence`]) and the proposer's
    /// blocks discarded.
    Equivocation {
        /// The slot with two conflicting blocks.
        slot: u64,
        /// The convicted proposer.
        proposer: NodeIdx,
    },
    /// Structurally invalid; not retained.
    Rejected(RejectReason),
}

/// The per-node block tree + fork-choice + verified head engine.
pub struct ChainTracker {
    schedule: ProposerSchedule,
    mode: ReplayMode,
    /// Engine at the anchor, kept pristine for reorg rebuilds.
    base: Engine,
    anchor: Hash256,
    anchor_height: u64,
    anchor_slot: u64,
    blocks: HashMap<Hash256, SealedBlock>,
    children: HashMap<Hash256, Vec<Hash256>>,
    /// parent hash → blocks waiting for it.
    orphans: BTreeMap<Hash256, Vec<SealedBlock>>,
    orphan_count: usize,
    /// `(slot, proposer)` → first block hash seen, for equivocation
    /// detection.
    seen: HashMap<(u64, NodeIdx), Hash256>,
    banned_blocks: HashSet<Hash256>,
    banned_proposers: HashSet<NodeIdx>,
    evidence: Vec<EquivocationEvidence>,
    /// Engine replayed through the current head.
    engine: Engine,
    head: Hash256,
    head_height: u64,
    head_slot: u64,
    /// Op digests committed along the current head path (injection dedup
    /// for rotating proposers).
    committed: HashSet<Hash256>,
    /// Verified engines at recently-applied blocks (capped LRU). Fallback
    /// proposers routinely race the slot leader, so sibling reorgs are the
    /// common case — restarting them from the fork point instead of the
    /// anchor keeps adoption O(reorg depth), not O(chain length).
    recent_engines: VecDeque<(Hash256, Engine)>,
    reorgs: u64,
    verify_failures: u64,
}

/// Entries kept in [`ChainTracker::recent_engines`]: deep enough for
/// every sibling race and short skip-rule forks; deeper reorgs (a healed
/// partition's divergence) pay the anchor rebuild once.
const ENGINE_CACHE: usize = 8;

impl ChainTracker {
    /// A tracker rooted at `genesis` (height 0, slot 0).
    pub fn new(genesis: Engine, schedule: ProposerSchedule, mode: ReplayMode) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(b"fi-node/genesis-anchor");
        buf.extend_from_slice(genesis.state_root().as_ref());
        let anchor = sha256(&buf);
        ChainTracker::anchored(genesis, schedule, mode, anchor, 0, 0)
    }

    /// A tracker for a cold joiner: `engine` is the synced state whose
    /// head block hashes to `head` at `height` / `slot`. Blocks at or
    /// below the anchor are rejected — the joiner trusts its sync point.
    pub fn from_sync(
        engine: Engine,
        schedule: ProposerSchedule,
        mode: ReplayMode,
        head: Hash256,
        height: u64,
        slot: u64,
    ) -> Self {
        ChainTracker::anchored(engine, schedule, mode, head, height, slot)
    }

    fn anchored(
        engine: Engine,
        schedule: ProposerSchedule,
        mode: ReplayMode,
        anchor: Hash256,
        anchor_height: u64,
        anchor_slot: u64,
    ) -> Self {
        ChainTracker {
            schedule,
            mode,
            base: engine.clone(),
            anchor,
            anchor_height,
            anchor_slot,
            blocks: HashMap::new(),
            children: HashMap::new(),
            orphans: BTreeMap::new(),
            orphan_count: 0,
            seen: HashMap::new(),
            banned_blocks: HashSet::new(),
            banned_proposers: HashSet::new(),
            evidence: Vec::new(),
            engine,
            head: anchor,
            head_height: anchor_height,
            head_slot: anchor_slot,
            committed: HashSet::new(),
            recent_engines: VecDeque::new(),
            reorgs: 0,
            verify_failures: 0,
        }
    }

    /// The rotation schedule this tracker validates against.
    pub fn schedule(&self) -> &ProposerSchedule {
        &self.schedule
    }

    /// The engine replayed through the current head.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Current head block hash (the anchor hash before any block).
    pub fn head(&self) -> Hash256 {
        self.head
    }

    /// Current head height.
    pub fn head_height(&self) -> u64 {
        self.head_height
    }

    /// Slot of the current head block.
    pub fn head_slot(&self) -> u64 {
        self.head_slot
    }

    /// Recorded equivocation proofs, in detection order.
    pub fn evidence(&self) -> &[EquivocationEvidence] {
        &self.evidence
    }

    /// Proposers convicted of equivocation.
    pub fn banned_proposers(&self) -> &HashSet<NodeIdx> {
        &self.banned_proposers
    }

    /// Head switches that abandoned previously-adopted blocks.
    pub fn reorgs(&self) -> u64 {
        self.reorgs
    }

    /// Blocks banned because replay contradicted their claimed roots.
    pub fn verify_failures(&self) -> u64 {
        self.verify_failures
    }

    /// A block by hash, if known.
    pub fn block(&self, hash: &Hash256) -> Option<&SealedBlock> {
        self.blocks.get(hash)
    }

    /// `true` when `digest` is an op committed on the current head path
    /// (used to dedup consensus-side injections across rotating
    /// proposers).
    pub fn op_committed(&self, digest: &Hash256) -> bool {
        self.committed.contains(digest)
    }

    /// The current best chain above `height`, oldest first, at most
    /// `limit` blocks — what anti-entropy pushes to a lagging peer.
    pub fn blocks_above(&self, height: u64, limit: usize) -> Vec<SealedBlock> {
        let mut path = Vec::new();
        let mut at = self.head;
        while at != self.anchor {
            let block = &self.blocks[&at];
            if block.height <= height {
                break;
            }
            path.push(block.clone());
            at = block.parent;
        }
        path.reverse();
        path.truncate(limit);
        path
    }

    /// `(height, hash)` of every best-chain block above the anchor,
    /// oldest first — the canonical spine recovery-latency metrics are
    /// computed against (no op payloads are cloned).
    pub fn chain_ids(&self) -> Vec<(u64, Hash256)> {
        let mut path = Vec::new();
        let mut at = self.head;
        while at != self.anchor {
            let block = &self.blocks[&at];
            path.push((block.height, at));
            at = block.parent;
        }
        path.reverse();
        path
    }

    /// Best-chain block locator, newest first: the last 8 hashes densely,
    /// then exponentially sparser back toward the anchor. A sync peer
    /// finds the highest hash it shares ([`Self::fork_point`]) and serves
    /// blocks from there — one round trip locates the divergence point no
    /// matter how deep it is.
    pub fn locator(&self) -> Vec<Hash256> {
        let ids = self.chain_ids();
        let mut locator = Vec::new();
        let mut step = 1usize;
        let mut back = 0usize;
        while back < ids.len() {
            locator.push(ids[ids.len() - 1 - back].1);
            if locator.len() >= 8 {
                step *= 2;
            }
            back += step;
        }
        if let Some(&(_, oldest)) = ids.first() {
            if locator.last() != Some(&oldest) {
                locator.push(oldest);
            }
        }
        locator
    }

    /// Height of the highest locator entry on this node's best chain —
    /// the serving floor for a [`Self::locator`]-carrying block request.
    /// Falls back to the anchor height when nothing matches (serve
    /// everything we have).
    pub fn fork_point(&self, locator: &[Hash256]) -> u64 {
        let mine: HashMap<Hash256, u64> = self
            .chain_ids()
            .into_iter()
            .map(|(height, hash)| (hash, height))
            .collect();
        locator
            .iter()
            .filter_map(|hash| mine.get(hash).copied())
            .max()
            .unwrap_or(0)
    }

    /// Checkpoints the head engine (truncating its op log, keeping memory
    /// bounded) and saves a durable snapshot — the artifact cold joiners
    /// sync from.
    pub fn snapshot_head(&mut self) -> (Vec<u8>, Checkpoint) {
        let checkpoint = self.engine.checkpoint();
        (self.engine.snapshot_save(), checkpoint)
    }

    /// Seals the node's own block for `(slot, rank)` on top of the current
    /// head: applies `ops` to the head engine, records the resulting
    /// roots, and adopts the block as the new head. The caller must be
    /// the schedule's `(slot, rank)` leader and must not have sealed this
    /// slot before (that would be equivocation).
    pub fn seal_block(
        &mut self,
        slot: u64,
        rank: u32,
        proposer: NodeIdx,
        ops: Vec<Op>,
    ) -> SealedBlock {
        debug_assert_eq!(self.schedule.leader(slot, rank as usize), Some(proposer));
        debug_assert!(
            !self.seen.contains_key(&(slot, proposer)),
            "own equivocation"
        );
        debug_assert!(slot > self.head_slot, "slot already filled on this branch");
        if self.head != self.anchor {
            // Our own block may lose to a fallback sibling; keep the
            // parent state so that reorg stays cheap.
            let at_head = self.engine.clone();
            self.cache_engine_at(self.head, at_head);
        }
        self.apply_ops(&ops);
        let block = SealedBlock {
            slot,
            rank,
            proposer,
            height: self.head_height + 1,
            parent: self.head,
            ops,
            state_root: self.engine.state_root(),
            head_hash: self.engine.chain().head_hash(),
            receipt_root: last_receipt_root(&self.engine),
        };
        let hash = block.hash();
        self.blocks.insert(hash, block.clone());
        self.children.entry(block.parent).or_default().push(hash);
        self.seen.insert((slot, proposer), hash);
        self.head = hash;
        self.head_height = block.height;
        self.head_slot = slot;
        for op in &block.ops {
            self.committed.insert(op.digest());
        }
        block
    }

    fn apply_ops(&mut self, ops: &[Op]) {
        match self.mode {
            ReplayMode::OpByOp => {
                for op in ops {
                    // Failed ops are part of history (they burn gas and
                    // carry failure receipts); outcomes surface through
                    // the roots.
                    let _ = self.engine.apply(op.clone());
                }
            }
            ReplayMode::Batch => {
                let _ = self.engine.apply_batch(ops.to_vec());
            }
        }
    }

    /// Feeds one received block through validation, the tree, and
    /// fork-choice. See [`InsertOutcome`].
    pub fn insert(&mut self, block: SealedBlock) -> InsertOutcome {
        let hash = block.hash();
        if self.blocks.contains_key(&hash) {
            return InsertOutcome::AlreadyKnown;
        }
        if self.banned_blocks.contains(&hash) {
            return InsertOutcome::Rejected(RejectReason::BannedBlock);
        }
        if let Some(reason) = self.structural_reject(&block) {
            return InsertOutcome::Rejected(reason);
        }
        if let Some(ev) = self.equivocation_by(&block, hash) {
            let (slot, proposer) = (ev.slot, ev.proposer);
            self.convict(ev, hash);
            let _ = self.recompute_head();
            return InsertOutcome::Equivocation { slot, proposer };
        }
        let Some((parent_height, parent_slot)) = self.parent_info(&block.parent) else {
            if self.orphan_count < ORPHAN_CAP {
                let waiting = self.orphans.entry(block.parent).or_default();
                if !waiting.iter().any(|b| b.hash() == hash) {
                    waiting.push(block.clone());
                    self.orphan_count += 1;
                }
            }
            return InsertOutcome::Orphaned {
                missing_parent: block.parent,
            };
        };
        if block.height != parent_height + 1 || block.slot <= parent_slot {
            return InsertOutcome::Rejected(RejectReason::BadLineage);
        }
        self.attach(hash, block);
        self.drain_orphans(hash);
        let (head_changed, reorged) = self.recompute_head();
        InsertOutcome::Attached {
            head_changed,
            reorged,
        }
    }

    fn structural_reject(&self, b: &SealedBlock) -> Option<RejectReason> {
        if b.height <= self.anchor_height {
            return Some(RejectReason::BelowAnchor);
        }
        if self.banned_proposers.contains(&b.proposer) {
            return Some(RejectReason::BannedProposer);
        }
        if self.schedule.leader(b.slot, b.rank as usize) != Some(b.proposer) {
            return Some(RejectReason::NotScheduled);
        }
        None
    }

    fn parent_info(&self, parent: &Hash256) -> Option<(u64, u64)> {
        if *parent == self.anchor {
            return Some((self.anchor_height, self.anchor_slot));
        }
        self.blocks.get(parent).map(|b| (b.height, b.slot))
    }

    /// Evidence if `block` conflicts with a previously-seen block for the
    /// same `(slot, proposer)`.
    fn equivocation_by(&self, block: &SealedBlock, hash: Hash256) -> Option<EquivocationEvidence> {
        let first_hash = *self.seen.get(&(block.slot, block.proposer))?;
        if first_hash == hash {
            return None;
        }
        Some(EquivocationEvidence {
            slot: block.slot,
            proposer: block.proposer,
            first: self.blocks[&first_hash].clone(),
            second: block.clone(),
        })
    }

    /// Records evidence and discards the equivocator: both conflicting
    /// blocks, every other tree block by the proposer, and all their
    /// future blocks. The resulting ban set depends only on the evidence
    /// and the blocks known — not on arrival order — so converged peers
    /// agree on the surviving chain.
    fn convict(&mut self, ev: EquivocationEvidence, second_hash: Hash256) {
        let proposer = ev.proposer;
        self.banned_blocks.insert(ev.first.hash());
        self.banned_blocks.insert(second_hash);
        self.banned_proposers.insert(proposer);
        let theirs: Vec<Hash256> = self
            .blocks
            .iter()
            .filter(|(_, b)| b.proposer == proposer)
            .map(|(&h, _)| h)
            .collect();
        self.banned_blocks.extend(theirs);
        // Orphans by (or waiting under) the equivocator's blocks resolve
        // through the ban checks when drained; drop their direct buffer.
        let mut removed = 0;
        for waiting in self.orphans.values_mut() {
            let before = waiting.len();
            waiting.retain(|b| b.proposer != proposer);
            removed += before - waiting.len();
        }
        self.orphan_count -= removed;
        self.orphans.retain(|_, v| !v.is_empty());
        self.evidence.push(ev);
    }

    /// Remembers `engine` as the verified state at `hash` (capped; oldest
    /// entries fall out — see [`ENGINE_CACHE`]).
    fn cache_engine_at(&mut self, hash: Hash256, engine: Engine) {
        if self.recent_engines.iter().any(|(h, _)| *h == hash) {
            return;
        }
        if self.recent_engines.len() >= ENGINE_CACHE {
            self.recent_engines.pop_front();
        }
        self.recent_engines.push_back((hash, engine));
    }

    fn attach(&mut self, hash: Hash256, block: SealedBlock) {
        self.seen.insert((block.slot, block.proposer), hash);
        self.children.entry(block.parent).or_default().push(hash);
        self.blocks.insert(hash, block);
    }

    /// Attaches every orphan transitively unblocked by `parent`.
    fn drain_orphans(&mut self, parent: Hash256) {
        let mut queue = vec![parent];
        while let Some(p) = queue.pop() {
            let Some(waiting) = self.orphans.remove(&p) else {
                continue;
            };
            self.orphan_count -= waiting.len();
            let (parent_height, parent_slot) = self.parent_info(&p).expect("parent attached");
            for block in waiting {
                let hash = block.hash();
                if self.blocks.contains_key(&hash) || self.banned_blocks.contains(&hash) {
                    continue;
                }
                if self.structural_reject(&block).is_some() {
                    continue;
                }
                if let Some(ev) = self.equivocation_by(&block, hash) {
                    self.convict(ev, hash);
                    continue;
                }
                if block.height != parent_height + 1 || block.slot <= parent_slot {
                    continue;
                }
                self.attach(hash, block);
                queue.push(hash);
            }
        }
    }

    /// Fork-choice: the best tip in the subtree under `node` (`height` is
    /// `node`'s height). Maximizes tip height; ties resolve at this — the
    /// earliest — divergence by the smallest `(rank, slot, hash)` child.
    fn best_from(&self, node: Hash256, height: u64) -> (u64, Hash256) {
        let mut best: Option<(u64, Hash256, (u32, u64, Hash256))> = None;
        for &child in self.children.get(&node).into_iter().flatten() {
            if self.banned_blocks.contains(&child) {
                continue;
            }
            let cb = &self.blocks[&child];
            let (tip_height, tip) = self.best_from(child, cb.height);
            let key = (cb.rank, cb.slot, child);
            let better = match &best {
                None => true,
                Some((bh, _, bkey)) => tip_height > *bh || (tip_height == *bh && key < *bkey),
            };
            if better {
                best = Some((tip_height, tip, key));
            }
        }
        match best {
            Some((h, tip, _)) => (h, tip),
            None => (height, node),
        }
    }

    /// Re-runs fork-choice and, when the best tip moved, verifies and
    /// adopts the new branch. Blocks that fail verification are banned
    /// and fork-choice retried. Returns `(head_changed, reorged)`.
    fn recompute_head(&mut self) -> (bool, bool) {
        let mut changed = false;
        let mut reorged = false;
        loop {
            let (_, tip) = self.best_from(self.anchor, self.anchor_height);
            if tip == self.head {
                return (changed, reorged);
            }
            match self.adopt(tip) {
                Ok(was_reorg) => {
                    changed = true;
                    reorged |= was_reorg;
                    if was_reorg {
                        self.reorgs += 1;
                    }
                    return (changed, reorged);
                }
                Err(bad) => {
                    self.banned_blocks.insert(bad);
                    self.verify_failures += 1;
                    // Loop: fork-choice without the liar's block.
                }
            }
        }
    }

    /// Verifies and switches to the branch ending at `tip`. On success the
    /// head engine, path metadata and committed-op set are updated; on
    /// failure returns the hash of the first block whose replay
    /// contradicted its claims (engine state is untouched).
    fn adopt(&mut self, tip: Hash256) -> Result<bool, Hash256> {
        // Path anchor → tip.
        let mut path = Vec::new();
        let mut at = tip;
        while at != self.anchor {
            path.push(at);
            at = self.blocks[&at].parent;
        }
        path.reverse();
        // Pure extension if the current head lies on the path (or is the
        // anchor): replay only the suffix, on a scratch clone so a
        // verification failure cannot corrupt the adopted head state.
        let suffix_start = if self.head == self.anchor {
            Some(0)
        } else {
            path.iter().position(|&h| h == self.head).map(|i| i + 1)
        };
        let (mut engine, todo, was_reorg) = match suffix_start {
            Some(i) => {
                if i > 0 && i < path.len() {
                    // The head engine is about to advance past `head`;
                    // keep its state around for sibling reorgs.
                    let at_head = self.engine.clone();
                    self.cache_engine_at(self.head, at_head);
                }
                (self.engine.clone(), &path[i..], false)
            }
            None => {
                // Reorg: restart from the deepest cached ancestor on the
                // new branch, falling back to the anchor engine.
                let mut start = 0;
                let mut from_cache = None;
                for (i, h) in path.iter().enumerate().rev() {
                    if let Some((_, cached)) = self.recent_engines.iter().find(|(ch, _)| ch == h) {
                        start = i + 1;
                        from_cache = Some(cached.clone());
                        break;
                    }
                }
                let engine = from_cache.unwrap_or_else(|| self.base.clone());
                (engine, &path[start..], true)
            }
        };
        for &h in todo {
            let block = self.blocks[&h].clone();
            match self.mode {
                ReplayMode::OpByOp => {
                    for op in block.ops.iter().cloned() {
                        let _ = engine.apply(op);
                    }
                }
                ReplayMode::Batch => {
                    let _ = engine.apply_batch(block.ops.clone());
                }
            }
            let ok = engine.state_root() == block.state_root
                && engine.chain().head_hash() == block.head_hash
                && last_receipt_root(&engine) == block.receipt_root;
            if !ok {
                return Err(h);
            }
            self.cache_engine_at(h, engine.clone());
        }
        self.engine = engine;
        self.head = tip;
        if tip == self.anchor {
            // Everything above the anchor was banned away.
            self.head_height = self.anchor_height;
            self.head_slot = self.anchor_slot;
        } else {
            let tip_block = &self.blocks[&tip];
            self.head_height = tip_block.height;
            self.head_slot = tip_block.slot;
        }
        if was_reorg {
            self.committed.clear();
            for h in &path {
                for op in &self.blocks[h].ops {
                    self.committed.insert(op.digest());
                }
            }
        } else {
            for &h in todo {
                for op in &self.blocks[&h].ops {
                    self.committed.insert(op.digest());
                }
            }
        }
        Ok(was_reorg)
    }
}

/// Receipt root of the engine's most recently sealed block.
fn last_receipt_root(engine: &Engine) -> Hash256 {
    engine
        .chain()
        .blocks()
        .last()
        .map(|b| b.receipt_root)
        .unwrap_or(Hash256::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fi_chain::account::{AccountId, TokenAmount};
    use fi_core::params::ProtocolParams;
    use fi_crypto::RandomBeacon;

    const VALIDATORS: [NodeIdx; 3] = [0, 1, 2];

    fn genesis() -> Engine {
        let mut engine = Engine::new(ProtocolParams::default()).expect("valid params");
        engine.fund(AccountId(900), TokenAmount(1_000_000_000));
        engine
    }

    fn tracker() -> ChainTracker {
        let schedule =
            ProposerSchedule::new(RandomBeacon::new(5), VALIDATORS.to_vec(), VALIDATORS.len());
        ChainTracker::new(genesis(), schedule, ReplayMode::OpByOp)
    }

    /// A valid block for `(slot, rank)` extending `parent` (a hash in the
    /// tracker, or the head) — roots computed on a scratch replay, like a
    /// remote proposer would.
    fn forge(tracker: &ChainTracker, slot: u64, rank: u32, ops: Vec<Op>) -> SealedBlock {
        let proposer = tracker
            .schedule()
            .leader(slot, rank as usize)
            .expect("rank");
        let mut engine = tracker.engine().clone();
        for op in ops.iter().cloned() {
            let _ = engine.apply(op);
        }
        SealedBlock {
            slot,
            rank,
            proposer,
            height: tracker.head_height() + 1,
            parent: tracker.head(),
            ops,
            state_root: engine.state_root(),
            head_hash: engine.chain().head_hash(),
            receipt_root: last_receipt_root(&engine),
        }
    }

    fn advance_ops(slot: u64) -> Vec<Op> {
        vec![Op::AdvanceTo { target: slot * 30 }]
    }

    #[test]
    fn blocks_adopt_in_order_and_update_the_head_engine() {
        let mut t = tracker();
        for slot in 1..=3 {
            let block = forge(&t, slot, 0, advance_ops(slot));
            let hash = block.hash();
            assert_eq!(
                t.insert(block),
                InsertOutcome::Attached {
                    head_changed: true,
                    reorged: false
                }
            );
            assert_eq!(t.head(), hash);
            assert_eq!(t.head_height(), slot);
        }
        assert_eq!(t.engine().now(), 90, "AdvanceTo barriers replayed");
        assert_eq!(t.reorgs(), 0);
    }

    #[test]
    fn orphans_wait_for_their_parent_then_attach() {
        let mut t = tracker();
        let b1 = forge(&t, 1, 0, advance_ops(1));
        // Forge slot 2 on a lookahead clone so it extends b1.
        let mut ahead = tracker();
        ahead.insert(b1.clone());
        let b2 = forge(&ahead, 2, 0, advance_ops(2));
        assert_eq!(
            t.insert(b2.clone()),
            InsertOutcome::Orphaned {
                missing_parent: b1.hash()
            }
        );
        assert_eq!(t.head_height(), 0, "orphan alone moves nothing");
        assert_eq!(
            t.insert(b1),
            InsertOutcome::Attached {
                head_changed: true,
                reorged: false
            }
        );
        assert_eq!(t.head(), b2.hash(), "orphan drained behind its parent");
        assert_eq!(t.head_height(), 2);
    }

    #[test]
    fn fork_choice_prefers_the_lower_rank_whichever_arrives_first() {
        let build = |first_rank: u32, second_rank: u32| {
            let mut t = tracker();
            let a = forge(&t, 1, first_rank, advance_ops(1));
            let b = forge(&t, 1, second_rank, advance_ops(1));
            t.insert(a);
            t.insert(b);
            t
        };
        let rank_first = build(0, 1);
        let fallback_first = build(1, 0);
        assert_eq!(rank_first.head(), fallback_first.head(), "same winner");
        let head = rank_first
            .block(&rank_first.head())
            .expect("head block")
            .clone();
        assert_eq!(head.rank, 0, "schedule priority wins the tie");
        // The node that adopted the fallback first had to reorg onto the
        // scheduled leader's block.
        assert_eq!(fallback_first.reorgs(), 1);
        assert_eq!(rank_first.reorgs(), 0);
    }

    #[test]
    fn longer_chains_beat_schedule_priority() {
        let mut t = tracker();
        let fallback = forge(&t, 1, 1, advance_ops(1));
        let mut ahead = tracker();
        ahead.insert(fallback.clone());
        let child = forge(&ahead, 2, 0, advance_ops(2));
        let leader_late = forge(&t, 1, 0, advance_ops(1));
        t.insert(fallback);
        t.insert(child.clone());
        // The scheduled leader's lone block arrives last: height wins, the
        // two-block fallback branch stays the head.
        t.insert(leader_late);
        assert_eq!(t.head(), child.hash());
        assert_eq!(t.head_height(), 2);
    }

    #[test]
    fn equivocation_records_evidence_and_every_node_picks_the_same_winner() {
        // The slot-1 leader signs two different blocks; a fallback block
        // for the same slot also exists. Whatever the arrival order, the
        // equivocator's blocks are discarded and the fallback wins.
        let base = tracker();
        let a = forge(&base, 1, 0, advance_ops(1));
        let a2 = forge(&base, 1, 0, vec![Op::AdvanceTo { target: 31 }]);
        let b = forge(&base, 1, 1, advance_ops(1));
        assert_ne!(a.hash(), a2.hash());
        let proposer = a.proposer;

        let orders: [[&SealedBlock; 3]; 3] = [[&a, &a2, &b], [&a2, &b, &a], [&b, &a, &a2]];
        let mut heads = Vec::new();
        for order in orders {
            let mut t = tracker();
            let mut convicted = false;
            for block in order {
                if let InsertOutcome::Equivocation { slot, proposer: p } = t.insert(block.clone()) {
                    assert_eq!((slot, p), (1, proposer));
                    convicted = true;
                }
            }
            assert!(convicted, "the conflicting pair must convict");
            assert_eq!(t.evidence().len(), 1);
            assert!(t.banned_proposers().contains(&proposer));
            // Future blocks by the equivocator bounce at the door.
            let late = forge(
                &t,
                4,
                t.schedule().rank_of(4, proposer).map_or(0, |r| r as u32),
                advance_ops(4),
            );
            if late.proposer == proposer {
                assert_eq!(
                    t.insert(late),
                    InsertOutcome::Rejected(RejectReason::BannedProposer)
                );
            }
            heads.push(t.head());
        }
        assert!(heads.windows(2).all(|w| w[0] == w[1]), "identical winner");
        assert_eq!(heads[0], b.hash(), "the honest fallback block survives");
    }

    #[test]
    fn lying_roots_get_the_block_banned_not_adopted() {
        let mut t = tracker();
        let mut liar = forge(&t, 1, 0, advance_ops(1));
        liar.state_root = sha256(b"not the real root");
        let hash = liar.hash();
        assert_eq!(
            t.insert(liar),
            InsertOutcome::Attached {
                head_changed: false,
                reorged: false
            }
        );
        assert_eq!(t.head_height(), 0, "liar never adopted");
        assert_eq!(t.verify_failures(), 1);
        // An honest block for the same slot from the fallback proceeds.
        let honest = forge(&t, 1, 1, advance_ops(1));
        assert_eq!(
            t.insert(honest.clone()),
            InsertOutcome::Attached {
                head_changed: true,
                reorged: false
            }
        );
        assert_eq!(t.head(), honest.hash());
        assert_ne!(t.head(), hash);
    }

    #[test]
    fn wrong_proposer_and_bad_lineage_rejected() {
        let mut t = tracker();
        let mut wrong = forge(&t, 1, 0, advance_ops(1));
        // Claim rank 1 while keeping rank 0's proposer (they differ for
        // any slot where order[0] != order[1], true by construction).
        wrong.rank = 1;
        if t.schedule().leader(1, 1) != Some(wrong.proposer) {
            assert_eq!(
                t.insert(wrong),
                InsertOutcome::Rejected(RejectReason::NotScheduled)
            );
        }
        let good = forge(&t, 1, 0, advance_ops(1));
        t.insert(good);
        // A properly-scheduled child claiming the wrong height.
        let mut bad_height = forge(&t, 2, 0, advance_ops(2));
        bad_height.height = 3;
        assert_eq!(
            t.insert(bad_height),
            InsertOutcome::Rejected(RejectReason::BadLineage)
        );
    }
}
