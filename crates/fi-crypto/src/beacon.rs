//! Public random beacon simulation.
//!
//! Paper §III-F: generating an unbiased, unpredictable public random beacon
//! in a blockchain is a solved problem (RandPiper, SPURT, threshold
//! signatures — the paper cites [6, 7, 12]) and is explicitly *out of scope*
//! for FileInsurer. What the protocol consumes is one agreed 32-byte value
//! per consensus round, from which long pseudorandom streams are expanded.
//!
//! [`RandomBeacon`] reproduces exactly that interface: `value_at(round)` is a
//! deterministic function of the genesis seed and the round number —
//! unpredictable without the seed, identical for every honest node.

use crate::hash::Hash256;
use crate::rng::DetRng;
use crate::sha256::Sha256;

/// A deterministic stand-in for a distributed random beacon.
///
/// # Example
///
/// ```
/// use fi_crypto::RandomBeacon;
///
/// let beacon = RandomBeacon::new(1234);
/// let r5 = beacon.value_at(5);
/// assert_eq!(r5, RandomBeacon::new(1234).value_at(5)); // consensus-agreed
/// assert_ne!(r5, beacon.value_at(6));                  // fresh each round
///
/// // Expand a round value into an arbitrarily long pseudorandom stream:
/// let mut rng = beacon.rng_at(5, "sector-sampling");
/// let _ = rng.next_u64();
/// ```
#[derive(Debug, Clone)]
pub struct RandomBeacon {
    genesis: Hash256,
}

impl RandomBeacon {
    /// Creates a beacon from an integer genesis seed.
    pub fn new(seed: u64) -> Self {
        let mut h = Sha256::new();
        h.update(b"fi-beacon/genesis");
        h.update(&seed.to_be_bytes());
        RandomBeacon {
            genesis: h.finalize(),
        }
    }

    /// Creates a beacon from a full 32-byte genesis value.
    pub fn from_genesis(genesis: Hash256) -> Self {
        RandomBeacon { genesis }
    }

    /// The agreed random value for `round`.
    pub fn value_at(&self, round: u64) -> Hash256 {
        let mut h = Sha256::new();
        h.update(b"fi-beacon/round");
        h.update(self.genesis.as_ref());
        h.update(&round.to_be_bytes());
        h.finalize()
    }

    /// A deterministic RNG expanded from the round value, domain-separated
    /// by `purpose` so independent protocol components draw independent
    /// streams from the same round.
    pub fn rng_at(&self, round: u64, purpose: &str) -> DetRng {
        let mut h = Sha256::new();
        h.update(b"fi-beacon/rng");
        h.update(self.value_at(round).as_ref());
        h.update(purpose.as_bytes());
        DetRng::from_hash(h.finalize())
    }

    /// A beacon-derived permutation of `0..n` for `round`, domain-separated
    /// by `purpose`.
    ///
    /// Every honest node computes the identical ordering, which makes this
    /// the building block for rotation schedules (e.g. the proposer order
    /// for a consensus height): position 0 is the scheduled leader,
    /// position 1 the first fallback, and so on.
    pub fn permutation(&self, round: u64, purpose: &str, n: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = self.rng_at(round, purpose);
        rng.shuffle(&mut order);
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_are_distinct_and_reproducible() {
        let beacon = RandomBeacon::new(7);
        let values: Vec<Hash256> = (0..64).map(|r| beacon.value_at(r)).collect();
        let unique: std::collections::HashSet<_> = values.iter().collect();
        assert_eq!(unique.len(), values.len());
        let again = RandomBeacon::new(7);
        assert_eq!(again.value_at(42), values[42]);
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(
            RandomBeacon::new(1).value_at(0),
            RandomBeacon::new(2).value_at(0)
        );
    }

    #[test]
    fn purpose_separates_streams() {
        let beacon = RandomBeacon::new(3);
        let a = beacon.rng_at(10, "alloc").next_u64();
        let b = beacon.rng_at(10, "refresh").next_u64();
        assert_ne!(a, b);
        assert_eq!(a, beacon.rng_at(10, "alloc").next_u64());
    }

    #[test]
    fn permutation_is_a_reproducible_shuffle() {
        let beacon = RandomBeacon::new(9);
        let p = beacon.permutation(4, "proposer", 7);
        assert_eq!(p, beacon.permutation(4, "proposer", 7));
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>(), "a true permutation");
        // Rounds and purposes draw independent orderings: over a few rounds
        // at n=7 at least one must differ from round 4's.
        assert!((5..12).any(|r| beacon.permutation(r, "proposer", 7) != p));
        assert!((4..12)
            .any(|r| beacon.permutation(r, "audit", 7) != beacon.permutation(r, "proposer", 7)));
    }

    #[test]
    fn permutation_handles_degenerate_sizes() {
        let beacon = RandomBeacon::new(1);
        assert_eq!(beacon.permutation(0, "p", 0), Vec::<usize>::new());
        assert_eq!(beacon.permutation(0, "p", 1), vec![0]);
    }
}
