//! The deterministic mempool: typed transactions, admission control, and
//! fee-ordered, gas-bounded block selection.
//!
//! The paper specifies the on-chain handlers (Figs. 4–6) but not how
//! requests reach them; a real deployment puts a mempool in front of the
//! consensus state machine (Filecoin's actors stack has the same
//! boundary). This module supplies that front end for the node layer:
//!
//! * **admission** ([`Mempool::admit`]) — cheap, node-local pre-checks:
//!   per-account nonce sequencing, duplicate-op rejection, a balance
//!   heuristic against the node's current ledger view, and a capacity cap
//!   ([`ProtocolParams::mempool_cap`]). Admission is *advisory*: the
//!   engine's commit path re-validates everything, and an op that passes
//!   admission can still fail at commit (e.g. the account went broke
//!   mid-block — exactly the PR 4 staged-ingest fallback);
//! * **selection** ([`Mempool::select_block`]) — drains the highest-fee
//!   admissible transactions into a block, respecting per-account nonce
//!   order and stopping at [`ProtocolParams::block_gas_limit`] /
//!   [`ProtocolParams::block_ops_limit`], with gas costs taken from the
//!   [`fi_chain::gas`] schedule's declared upper bounds (§III-B.4).
//!
//! Everything is deterministic: accounts iterate in id order, ties in fee
//! break by arrival sequence, and no wall clock is consulted — two nodes
//! fed the same submissions in the same order build the same blocks.
//!
//! Under proposer rotation the pool also **follows the chain**:
//! [`Mempool::observe_committed`] drops transactions another proposer
//! committed and advances the account frontiers, and the rejection
//! tombstones are bounded by [`ProtocolParams::tombstone_retention_blocks`]
//! — after that many blocks a stalled frontier steps over the aged
//! tombstone (or gap) instead of waiting forever for a nonce that will
//! never arrive.

use std::collections::{BTreeMap, HashMap, HashSet};

use fi_chain::account::{AccountId, Ledger, TokenAmount};
use fi_chain::gas::{GasSchedule, Op as GasOp};
use fi_core::ops::Op;
use fi_core::params::ProtocolParams;
use fi_crypto::Hash256;

/// A signed-transaction stand-in: who submits, replay protection, a
/// priority fee, and the protocol op itself.
///
/// The simulation does not model signatures; `from` is trusted the way
/// the engine trusts its `caller` arguments. The nonce is mempool-layer
/// replay protection (per-account, strictly increasing), not part of
/// consensus: the op alone is what a sealed block carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tx {
    /// Submitting account (pays fees; must match the op's caller for
    /// caller-checked ops).
    pub from: AccountId,
    /// Per-account sequence number; selection is strictly in nonce order.
    pub nonce: u64,
    /// Priority fee used for ordering only (the simulation does not charge
    /// it — gas burns happen inside the engine).
    pub fee: TokenAmount,
    /// The protocol operation to commit.
    pub op: Op,
}

impl Tx {
    /// Approximate wire size of the transaction, for link-delay modeling.
    pub fn wire_bytes(&self) -> u64 {
        128
    }
}

/// Why a submission was rejected at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The op is not a client-submittable request. Only the paper's
    /// Figs. 4–6 handlers (`Sector_Register`/`Disable`, `File_Add`/
    /// `Confirm`/`Prove`/`Get`/`Discard`) may enter through the mempool:
    /// `AdvanceTo` moves consensus time (the proposer's job), and `Fund`/
    /// `Burn`/`ForceDiscard`/`FailSector`/`CorruptSector` are
    /// simulation- or consensus-side ops with **no caller field** — the
    /// engine commits them without an ownership check, so admitting them
    /// would let any client mint tokens or destroy others' sectors.
    ConsensusOnly,
    /// The nonce was already selected into a block (or is below the
    /// account's next selectable nonce).
    StaleNonce {
        /// The smallest admissible nonce for the account.
        expected_at_least: u64,
        /// The submitted nonce.
        got: u64,
    },
    /// A queued transaction already occupies this nonce.
    NonceOccupied {
        /// The contested nonce.
        nonce: u64,
    },
    /// An identical op (same digest) is already queued.
    DuplicateOp,
    /// The account cannot cover its queued transactions plus this one
    /// under the admission cost heuristic.
    InsufficientFunds {
        /// Current ledger balance of the account.
        balance: TokenAmount,
        /// Estimated total cost of the account's queue including this tx.
        required: TokenAmount,
    },
    /// The mempool is at [`ProtocolParams::mempool_cap`].
    MempoolFull {
        /// The configured cap.
        cap: usize,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::ConsensusOnly => write!(f, "op is not client-submittable"),
            AdmitError::StaleNonce {
                expected_at_least,
                got,
            } => write!(f, "stale nonce {got} (expected >= {expected_at_least})"),
            AdmitError::NonceOccupied { nonce } => write!(f, "nonce {nonce} already queued"),
            AdmitError::DuplicateOp => write!(f, "identical op already queued"),
            AdmitError::InsufficientFunds { balance, required } => {
                write!(f, "balance {balance:?} below estimated cost {required:?}")
            }
            AdmitError::MempoolFull { cap } => write!(f, "mempool at capacity {cap}"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Admission/selection counters for reports and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Transactions accepted into the pool.
    pub admitted: u64,
    /// Rejections: stale or occupied nonce.
    pub rejected_nonce: u64,
    /// Rejections: duplicate op digest.
    pub rejected_duplicate: u64,
    /// Rejections: admission funds heuristic.
    pub rejected_funds: u64,
    /// Rejections: pool at capacity.
    pub rejected_full: u64,
    /// Rejections: consensus-internal op.
    pub rejected_consensus_only: u64,
    /// Transactions selected into blocks.
    pub selected: u64,
    /// Queued transactions removed because a committed block already
    /// carried their op (committed via this or another proposer).
    pub observed_committed: u64,
    /// Tombstones folded away because they aged past the retention window
    /// while the frontier was stalled below them.
    pub tombstones_expired: u64,
    /// Frontier jumps over aged gaps (nonces never seen by this pool,
    /// presumed committed elsewhere or lost by the client).
    pub gaps_jumped: u64,
}

#[derive(Debug, Clone)]
struct QueuedTx {
    tx: Tx,
    arrival: u64,
    gas_bound: u64,
    cost: TokenAmount,
    /// Pool height when admitted — lets a gapped queue age out (the
    /// missing lower nonces were committed through another node's pool or
    /// lost for good).
    admitted_height: u64,
}

#[derive(Debug, Clone, Default)]
struct AccountQueue {
    /// Next selectable nonce; admission rejects anything below it.
    next_nonce: u64,
    /// Summed admission-cost estimates of the queued transactions.
    pending_cost: TokenAmount,
    txs: BTreeMap<u64, QueuedTx>,
    /// Nonces consumed by *rejected* submissions, keyed to the pool height
    /// that burned them. The submitter burned the nonce client-side (it
    /// cannot un-send), so selection must treat it as spent or the
    /// account's queue would gap forever behind it. Only content
    /// rejections (duplicate, funds, capacity, non-client op) tombstone;
    /// nonce rejections are retransmit duplicates of a live or spent
    /// nonce and must not. The set is bounded:
    /// [`ProtocolParams::tombstone_retention_blocks`] blocks after birth a
    /// tombstone stalling the frontier is folded away.
    tombstones: BTreeMap<u64, u64>,
}

impl AccountQueue {
    /// Folds tombstones at the selection frontier into `next_nonce`.
    ///
    /// This is the **only** way a tombstone leaves the map — always by
    /// advancing the frontier past it, never by forgetting it — which is
    /// what keeps eviction from re-opening the burned-nonce gap: a nonce
    /// once tombstoned can never become selectable again.
    fn normalize(&mut self) {
        while self.tombstones.remove(&self.next_nonce).is_some() {
            self.next_nonce += 1;
        }
    }
}

/// The deterministic transaction pool in front of a proposer's engine.
#[derive(Debug)]
pub struct Mempool {
    params: ProtocolParams,
    gas: GasSchedule,
    /// `BTreeMap`, not `HashMap`: selection iterates accounts, and the
    /// block it builds must not depend on hash order.
    accounts: BTreeMap<AccountId, AccountQueue>,
    /// Digest → (account, nonce) of every queued transaction, so
    /// [`Mempool::observe_committed`] can drop a tx another proposer
    /// committed without scanning the queues.
    queued_digests: HashMap<Hash256, (AccountId, u64)>,
    len: usize,
    arrivals: u64,
    /// Highest chain height observed via [`Mempool::observe_committed`];
    /// the clock tombstone retention is measured against.
    height: u64,
    stats: MempoolStats,
}

/// Whether `op` may enter through the mempool: exactly the paper's
/// client/provider request handlers (Figs. 4–6). Everything else is
/// consensus- or simulation-side — see [`AdmitError::ConsensusOnly`].
pub fn client_submittable(op: &Op) -> bool {
    matches!(
        op,
        Op::SectorRegister { .. }
            | Op::SectorDisable { .. }
            | Op::FileAdd { .. }
            | Op::FileConfirm { .. }
            | Op::FileProve { .. }
            | Op::FileGet { .. }
            | Op::FileDiscard { .. }
    )
}

/// Upper bound, in gas units, of committing `op` — the planning cost the
/// proposer charges against [`ProtocolParams::block_gas_limit`] during
/// block selection.
///
/// Derived from the same [`GasSchedule`] the engine charges with, using
/// each handler's worst-case op mix (cf. [`GasSchedule::check_proof_bound`]
/// for the pending-list analogue). `File_Get`'s holder scan depends on the
/// file's replica count, unknown at selection time; it is bounded by `k`
/// reads (exact for `minValue` files, the common case). Bounds are
/// defined for every variant so callers can price arbitrary batches, but
/// only [`client_submittable`] ops ever reach block selection.
pub fn gas_bound(params: &ProtocolParams, gas: &GasSchedule, op: &Op) -> u64 {
    let p = |o: GasOp| gas.price(o);
    match op {
        Op::SectorRegister { .. } | Op::SectorDisable { .. } => {
            p(GasOp::RequestBase) + p(GasOp::SectorAdmin) + p(GasOp::Transfer)
        }
        Op::FileAdd { value, .. } => {
            // cp allocation writes; an invalid value fails at commit, so
            // bound it by k (one minValue multiple) in that case.
            let cp = params.backup_count(*value).unwrap_or(params.k) as u64;
            p(GasOp::RequestBase)
                + p(GasOp::Transfer)
                + cp * p(GasOp::AllocWrite)
                + p(GasOp::TaskSchedule)
        }
        Op::FileConfirm { .. } => {
            p(GasOp::RequestBase) + p(GasOp::AllocRead) + p(GasOp::AllocWrite) + p(GasOp::Transfer)
        }
        Op::FileProve { .. } => p(GasOp::RequestBase) + p(GasOp::AllocRead) + p(GasOp::ProofVerify),
        Op::FileGet { .. } => p(GasOp::RequestBase) + params.k as u64 * p(GasOp::AllocRead),
        Op::FileDiscard { .. } | Op::ForceDiscard { .. } => {
            p(GasOp::RequestBase) + p(GasOp::AllocWrite)
        }
        Op::Fund { .. } | Op::Burn { .. } => p(GasOp::Transfer),
        Op::FailSector { .. } | Op::CorruptSector { .. } => p(GasOp::SectorAdmin),
        Op::AdvanceTo { .. } => p(GasOp::TaskExecute),
    }
}

impl Mempool {
    /// An empty pool enforcing `params`' caps and pricing selection with
    /// `gas` (must match the engine's schedule for the gas bounds to mean
    /// anything).
    pub fn new(params: ProtocolParams, gas: GasSchedule) -> Self {
        Mempool {
            params,
            gas,
            accounts: BTreeMap::new(),
            queued_digests: HashMap::new(),
            len: 0,
            arrivals: 0,
            height: 0,
            stats: MempoolStats::default(),
        }
    }

    /// Queued transactions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Admission/selection counters.
    pub fn stats(&self) -> &MempoolStats {
        &self.stats
    }

    /// The estimated token cost admission reserves for `tx`: the gas-bound
    /// fee plus op-specific escrows the commit will move (the traffic-fee
    /// escrow for `File_Add`). A heuristic —
    /// rent charged later by `Auto_CheckProof` is deliberately not
    /// front-counted — so commit-time insolvency remains possible and is
    /// handled by the engine's sequential fallback.
    fn admission_cost(&self, tx: &Tx, bound: u64) -> TokenAmount {
        let mut cost = self.gas.to_tokens(bound);
        if let Op::FileAdd { size, value, .. } = &tx.op {
            let cp = self.params.backup_count(*value).unwrap_or(self.params.k);
            cost += TokenAmount(self.params.traffic_fee(*size).0 * cp as u128);
        }
        cost
    }

    /// Marks `nonce` spent after a content rejection: the submitter
    /// cannot un-send it, so leaving it unspent would gap the account's
    /// queue forever (selection only ever drains `next_nonce`). Nonces
    /// below the frontier or occupied by a live transaction are
    /// retransmit duplicates and are left alone.
    fn consume_nonce(&mut self, from: AccountId, nonce: u64) {
        let height = self.height;
        let queue = self.accounts.entry(from).or_default();
        if nonce >= queue.next_nonce && !queue.txs.contains_key(&nonce) {
            queue.tombstones.insert(nonce, height);
            queue.normalize();
        }
    }

    /// Admits one transaction, or says exactly why not.
    ///
    /// `ledger` is the node's current view (the proposer's engine ledger):
    /// the funds check compares the account balance against the estimated
    /// cost of everything it already has queued plus this submission.
    ///
    /// # Errors
    ///
    /// See [`AdmitError`]; every rejection also bumps the matching
    /// [`MempoolStats`] counter.
    pub fn admit(&mut self, tx: Tx, ledger: &Ledger) -> Result<(), AdmitError> {
        if !client_submittable(&tx.op) {
            self.stats.rejected_consensus_only += 1;
            self.consume_nonce(tx.from, tx.nonce);
            return Err(AdmitError::ConsensusOnly);
        }
        if self.len >= self.params.mempool_cap {
            self.stats.rejected_full += 1;
            self.consume_nonce(tx.from, tx.nonce);
            return Err(AdmitError::MempoolFull {
                cap: self.params.mempool_cap,
            });
        }
        let (next_nonce, occupied, pending_cost) = {
            let queue = self.accounts.entry(tx.from).or_default();
            (
                queue.next_nonce,
                queue.txs.contains_key(&tx.nonce),
                queue.pending_cost,
            )
        };
        if tx.nonce < next_nonce {
            self.stats.rejected_nonce += 1;
            return Err(AdmitError::StaleNonce {
                expected_at_least: next_nonce,
                got: tx.nonce,
            });
        }
        if occupied {
            self.stats.rejected_nonce += 1;
            return Err(AdmitError::NonceOccupied { nonce: tx.nonce });
        }
        let digest = tx.op.digest();
        if self.queued_digests.contains_key(&digest) {
            self.stats.rejected_duplicate += 1;
            self.consume_nonce(tx.from, tx.nonce);
            return Err(AdmitError::DuplicateOp);
        }
        let bound = gas_bound(&self.params, &self.gas, &tx.op);
        let cost = self.admission_cost(&tx, bound);
        let required = pending_cost + cost;
        let balance = ledger.balance(tx.from);
        if balance < required {
            self.stats.rejected_funds += 1;
            self.consume_nonce(tx.from, tx.nonce);
            return Err(AdmitError::InsufficientFunds { balance, required });
        }
        let (from, nonce) = (tx.from, tx.nonce);
        let queue = self.accounts.get_mut(&from).expect("entry created");
        queue.pending_cost = required;
        queue.txs.insert(
            nonce,
            QueuedTx {
                tx,
                arrival: self.arrivals,
                gas_bound: bound,
                cost,
                admitted_height: self.height,
            },
        );
        self.queued_digests.insert(digest, (from, nonce));
        self.arrivals += 1;
        self.len += 1;
        self.stats.admitted += 1;
        Ok(())
    }

    /// Drains the next block's transactions: highest fee first (ties by
    /// arrival), per-account strictly in nonce order, stopping at the
    /// block gas and op-count limits. An account whose next transaction
    /// does not fit in the remaining gas is skipped for this block — its
    /// later nonces can never jump the queue.
    ///
    /// Returns the selected transactions in selection order together with
    /// their summed gas bound.
    pub fn select_block(&mut self) -> (Vec<Tx>, u64) {
        let mut picked = Vec::new();
        let mut gas_used = 0u64;
        let mut blocked: HashSet<AccountId> = HashSet::new();
        while picked.len() < self.params.block_ops_limit {
            // The best admissible head: each account contributes only its
            // next-nonce transaction.
            let mut best: Option<(TokenAmount, u64, AccountId)> = None;
            for (&account, queue) in &self.accounts {
                if blocked.contains(&account) {
                    continue;
                }
                let Some(head) = queue.txs.get(&queue.next_nonce) else {
                    continue;
                };
                let better = match best {
                    None => true,
                    // Highest fee wins; earliest arrival breaks ties.
                    Some((fee, arrival, _)) => {
                        head.tx.fee > fee || (head.tx.fee == fee && head.arrival < arrival)
                    }
                };
                if better {
                    best = Some((head.tx.fee, head.arrival, account));
                }
            }
            let Some((_, _, account)) = best else { break };
            let queue = self.accounts.get_mut(&account).expect("account exists");
            let head = queue.txs.get(&queue.next_nonce).expect("head exists");
            if gas_used + head.gas_bound > self.params.block_gas_limit {
                // Doesn't fit: the account sits this block out (nonce
                // order forbids selecting a later tx instead).
                blocked.insert(account);
                continue;
            }
            let head = queue.txs.remove(&queue.next_nonce).expect("head exists");
            queue.next_nonce += 1;
            queue.normalize(); // step over nonces burned by rejections
            queue.pending_cost = queue.pending_cost.saturating_sub(head.cost);
            gas_used += head.gas_bound;
            self.queued_digests.remove(&head.tx.op.digest());
            self.len -= 1;
            self.stats.selected += 1;
            picked.push(head.tx);
        }
        (picked, gas_used)
    }

    /// Highest chain height this pool has observed.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Rejection tombstones currently held across all accounts. Bounded:
    /// any tombstone stalling a frontier is folded within
    /// [`ProtocolParams::tombstone_retention_blocks`] observed blocks.
    pub fn tombstone_count(&self) -> usize {
        self.accounts.values().map(|q| q.tombstones.len()).sum()
    }

    /// Follows the chain: call with every adopted block's ops and height
    /// (own proposals *and* blocks adopted from other proposers).
    ///
    /// Transactions whose op a committed block already carries are dropped
    /// from the pool and their nonces folded into the frontier — without
    /// this, a tx committed through another proposer's pool would sit here
    /// forever, stalling the account's later nonces. Afterwards, frontiers
    /// stalled on items older than
    /// [`ProtocolParams::tombstone_retention_blocks`] step over the aged
    /// gap (see `evict_expired`), which is what bounds the tombstone set.
    pub fn observe_committed(&mut self, ops: &[Op], height: u64) {
        self.height = self.height.max(height);
        for op in ops {
            let Some((from, nonce)) = self.queued_digests.remove(&op.digest()) else {
                continue;
            };
            let queue = self.accounts.get_mut(&from).expect("indexed account");
            if let Some(q) = queue.txs.remove(&nonce) {
                queue.pending_cost = queue.pending_cost.saturating_sub(q.cost);
                self.len -= 1;
                self.stats.observed_committed += 1;
            }
            // The nonce is spent on-chain; mark it so the frontier folds
            // past it exactly like a rejection-burned nonce.
            if nonce >= queue.next_nonce {
                queue.tombstones.insert(nonce, self.height);
            }
            queue.normalize();
        }
        self.evict_expired();
    }

    /// Steps stalled account frontiers over items older than
    /// [`ProtocolParams::tombstone_retention_blocks`].
    ///
    /// Eviction only ever *advances* the frontier — a tombstone is folded
    /// by jumping `next_nonce` past it, never by forgetting it while the
    /// frontier is still below — so a burned nonce can never become
    /// admissible again (the PR 5 gap stays closed). Jumping over nonces
    /// this pool never saw un-wedges accounts whose lower nonces were
    /// committed through another proposer's pool or lost by the client.
    fn evict_expired(&mut self) {
        let retention = self.params.tombstone_retention_blocks;
        let height = self.height;
        let (mut expired, mut jumped) = (0u64, 0u64);
        for queue in self.accounts.values_mut() {
            loop {
                queue.normalize();
                if queue.txs.contains_key(&queue.next_nonce) {
                    break; // head selectable — nothing stalls
                }
                // The lowest item above the frontier is what the account
                // is waiting behind: a burned tombstone or a gapped tx.
                let tomb = queue.tombstones.iter().next().map(|(&n, &b)| (n, b, true));
                let gapped = queue
                    .txs
                    .iter()
                    .next()
                    .map(|(&n, q)| (n, q.admitted_height, false));
                let (nonce, born, is_tomb) = match (tomb, gapped) {
                    (None, None) => break, // idle account
                    (Some(t), None) => t,
                    (None, Some(q)) => q,
                    (Some(t), Some(q)) => {
                        if t.0 < q.0 {
                            t
                        } else {
                            q
                        }
                    }
                };
                if height.saturating_sub(born) < retention {
                    break; // still within the retention window
                }
                // Aged out: the nonces in the gap below are never coming.
                // Advance the frontier *to* the item — a tombstone then
                // folds via normalize, a queued tx becomes selectable.
                queue.next_nonce = nonce;
                jumped += 1;
                if is_tomb {
                    expired += 1;
                }
            }
        }
        self.stats.tombstones_expired += expired;
        self.stats.gaps_jumped += jumped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fi_crypto::sha256;

    const A: AccountId = AccountId(10);
    const B: AccountId = AccountId(11);

    fn pool(cap: usize, gas_limit: u64, ops_limit: usize) -> Mempool {
        let params = ProtocolParams {
            mempool_cap: cap,
            block_gas_limit: gas_limit,
            block_ops_limit: ops_limit,
            ..ProtocolParams::default()
        };
        Mempool::new(params, GasSchedule::default())
    }

    fn rich_ledger() -> Ledger {
        let mut ledger = Ledger::new();
        ledger.mint(A, TokenAmount(1_000_000_000));
        ledger.mint(B, TokenAmount(1_000_000_000));
        ledger
    }

    fn prove_tx(from: AccountId, nonce: u64, fee: u128, tag: u64) -> Tx {
        Tx {
            from,
            nonce,
            fee: TokenAmount(fee),
            op: Op::FileProve {
                caller: from,
                file: fi_core::types::FileId(tag),
                index: 0,
                sector: fi_core::types::SectorId(0),
            },
        }
    }

    #[test]
    fn fee_ordering_with_arrival_tiebreak() {
        let mut pool = pool(100, 1_000_000, 100);
        let ledger = rich_ledger();
        pool.admit(prove_tx(A, 0, 5, 1), &ledger).unwrap();
        pool.admit(prove_tx(B, 0, 9, 2), &ledger).unwrap();
        pool.admit(prove_tx(A, 1, 9, 3), &ledger).unwrap();
        let (block, _) = pool.select_block();
        // B's fee-9 arrived before A's fee-9 could become A's head (A's
        // head is the fee-5 nonce 0), so order is: B(9), then A(5), A(9).
        let tags: Vec<u64> = block
            .iter()
            .map(|t| match t.op {
                Op::FileProve { file, .. } => file.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![2, 1, 3]);
        assert!(pool.is_empty());
    }

    #[test]
    fn nonce_order_never_violated_by_fees() {
        let mut pool = pool(100, 1_000_000, 100);
        let ledger = rich_ledger();
        pool.admit(prove_tx(A, 0, 1, 1), &ledger).unwrap();
        pool.admit(prove_tx(A, 1, 1_000, 2), &ledger).unwrap();
        let (block, _) = pool.select_block();
        let nonces: Vec<u64> = block.iter().map(|t| t.nonce).collect();
        assert_eq!(nonces, vec![0, 1], "high fee cannot jump the nonce queue");
    }

    #[test]
    fn out_of_order_admission_waits_for_the_gap() {
        let mut pool = pool(100, 1_000_000, 100);
        let ledger = rich_ledger();
        // Nonce 1 arrives first (jitter): admissible, but not selectable
        // until nonce 0 shows up.
        pool.admit(prove_tx(A, 1, 5, 2), &ledger).unwrap();
        let (block, _) = pool.select_block();
        assert!(block.is_empty(), "gapped account contributes nothing");
        pool.admit(prove_tx(A, 0, 5, 1), &ledger).unwrap();
        let (block, _) = pool.select_block();
        assert_eq!(block.len(), 2);
        assert_eq!(block[0].nonce, 0);
    }

    #[test]
    fn duplicate_and_replayed_nonces_rejected() {
        let mut pool = pool(100, 1_000_000, 100);
        let ledger = rich_ledger();
        let tx = prove_tx(A, 0, 5, 1);
        pool.admit(tx.clone(), &ledger).unwrap();
        // Same op, different nonce: duplicate digest.
        assert_eq!(
            pool.admit(
                Tx {
                    nonce: 1,
                    ..tx.clone()
                },
                &ledger
            ),
            Err(AdmitError::DuplicateOp)
        );
        // Different op, same nonce: occupied.
        assert_eq!(
            pool.admit(prove_tx(A, 0, 5, 99), &ledger),
            Err(AdmitError::NonceOccupied { nonce: 0 })
        );
        pool.select_block();
        // After selection the nonce is spent — and the duplicate's
        // rejection above burned nonce 1 (the submitter cannot un-send
        // it), so the frontier sits at 2.
        assert_eq!(
            pool.admit(prove_tx(A, 0, 5, 98), &ledger),
            Err(AdmitError::StaleNonce {
                expected_at_least: 2,
                got: 0
            })
        );
        // But the identical op may be resubmitted under the next nonce
        // once no longer queued (recurring proofs work this way).
        pool.admit(Tx { nonce: 2, ..tx }, &ledger).unwrap();
    }

    #[test]
    fn funds_checked_against_whole_queue() {
        let mut pool = pool(100, 1_000_000, 100);
        let mut ledger = Ledger::new();
        let per_tx = {
            let params = ProtocolParams::default();
            let gas = GasSchedule::default();
            let bound = gas_bound(&params, &gas, &prove_tx(A, 0, 1, 0).op);
            gas.to_tokens(bound)
        };
        ledger.mint(A, TokenAmount(per_tx.0 * 2));
        pool.admit(prove_tx(A, 0, 1, 1), &ledger).unwrap();
        pool.admit(prove_tx(A, 1, 1, 2), &ledger).unwrap();
        let err = pool.admit(prove_tx(A, 2, 1, 3), &ledger).unwrap_err();
        assert!(
            matches!(err, AdmitError::InsufficientFunds { .. }),
            "third tx exceeds the balance: {err:?}"
        );
        assert_eq!(pool.stats().rejected_funds, 1);
    }

    #[test]
    fn file_add_admission_counts_traffic_escrow() {
        let mut pool = pool(100, 1_000_000, 100);
        let params = ProtocolParams::default();
        let mut ledger = Ledger::new();
        let tx = Tx {
            from: A,
            nonce: 0,
            fee: TokenAmount(1),
            op: Op::FileAdd {
                client: A,
                size: 10,
                value: params.min_value,
                merkle_root: sha256(b"f"),
            },
        };
        // Gas alone would pass, but the k-replica traffic escrow dominates.
        ledger.mint(A, TokenAmount(100));
        assert!(matches!(
            pool.admit(tx.clone(), &ledger),
            Err(AdmitError::InsufficientFunds { .. })
        ));
        // The rejection burned nonce 0; once funded, the client re-signs
        // under its next nonce.
        ledger.mint(A, TokenAmount(10_000_000));
        pool.admit(Tx { nonce: 1, ..tx }, &ledger).unwrap();
    }

    #[test]
    fn block_gas_limit_boundary() {
        let gas = GasSchedule::default();
        let params = ProtocolParams::default();
        let per_tx = gas_bound(&params, &gas, &prove_tx(A, 0, 1, 0).op);
        // Limit fits exactly three proves: the third fills the block to
        // the boundary, the fourth must wait.
        let mut pool = pool(100, per_tx * 3, 100);
        let ledger = rich_ledger();
        for nonce in 0..4 {
            pool.admit(prove_tx(A, nonce, 1, nonce), &ledger).unwrap();
        }
        let (block, used) = pool.select_block();
        assert_eq!(block.len(), 3, "exact fill selected");
        assert_eq!(used, per_tx * 3, "gas bound reached exactly");
        assert_eq!(pool.len(), 1);
        let (rest, _) = pool.select_block();
        assert_eq!(rest.len(), 1, "the overflow tx heads the next block");
    }

    #[test]
    fn gas_blocked_account_does_not_block_others() {
        let gas = GasSchedule::default();
        let params = ProtocolParams::default();
        let prove_cost = gas_bound(&params, &gas, &prove_tx(A, 0, 1, 0).op);
        let add_op = Op::FileAdd {
            client: A,
            size: 1,
            value: params.min_value,
            merkle_root: sha256(b"big"),
        };
        let add_cost = gas_bound(&params, &gas, &add_op);
        assert!(add_cost > prove_cost, "k-replica add dominates a prove");
        // Room for the prove but not the add.
        let mut pool = pool(100, prove_cost + add_cost / 2, 100);
        let ledger = rich_ledger();
        pool.admit(
            Tx {
                from: A,
                nonce: 0,
                fee: TokenAmount(100), // highest fee, but doesn't fit
                op: add_op,
            },
            &ledger,
        )
        .unwrap();
        pool.admit(prove_tx(B, 0, 1, 7), &ledger).unwrap();
        let (block, _) = pool.select_block();
        assert_eq!(block.len(), 1);
        assert_eq!(block[0].from, B, "B's fitting tx selected around A's");
        assert_eq!(pool.len(), 1, "A's oversized tx still queued");
    }

    #[test]
    fn cap_and_consensus_only_rejections() {
        let mut pool = pool(2, 1_000_000, 100);
        let ledger = rich_ledger();
        pool.admit(prove_tx(A, 0, 1, 1), &ledger).unwrap();
        pool.admit(prove_tx(A, 1, 1, 2), &ledger).unwrap();
        assert_eq!(
            pool.admit(prove_tx(A, 2, 1, 3), &ledger),
            Err(AdmitError::MempoolFull { cap: 2 })
        );
        assert_eq!(
            pool.admit(
                Tx {
                    from: A,
                    nonce: 2,
                    fee: TokenAmount(1),
                    op: Op::AdvanceTo { target: 1_000 },
                },
                &ledger
            ),
            Err(AdmitError::ConsensusOnly)
        );
        assert_eq!(pool.stats().rejected_full, 1);
        assert_eq!(pool.stats().rejected_consensus_only, 1);
    }

    #[test]
    fn non_client_ops_rejected_whoever_submits_them() {
        // Fund/Burn/ForceDiscard/FailSector/CorruptSector carry no caller
        // field the engine could check — admitting them would let any
        // client mint tokens or destroy other providers' sectors.
        let mut pool = pool(100, 1_000_000, 100);
        let ledger = rich_ledger();
        let attacks = [
            Op::Fund {
                account: A,
                amount: TokenAmount(u128::MAX / 2),
            },
            Op::Burn {
                account: B,
                amount: TokenAmount(1),
            },
            Op::ForceDiscard {
                file: fi_core::types::FileId(0),
            },
            Op::FailSector {
                sector: fi_core::types::SectorId(0),
            },
            Op::CorruptSector {
                sector: fi_core::types::SectorId(0),
            },
            Op::AdvanceTo { target: 1_000 },
        ];
        for (nonce, op) in attacks.into_iter().enumerate() {
            assert_eq!(
                pool.admit(
                    Tx {
                        from: A,
                        nonce: nonce as u64,
                        fee: TokenAmount(1_000_000),
                        op,
                    },
                    &ledger
                ),
                Err(AdmitError::ConsensusOnly)
            );
        }
        assert_eq!(pool.stats().rejected_consensus_only, 6);
        // The burned nonces do not stall the account: a legitimate tx at
        // the next nonce is admitted and selectable immediately.
        pool.admit(prove_tx(A, 6, 1, 1), &ledger).unwrap();
        let (block, _) = pool.select_block();
        assert_eq!(block.len(), 1);
        assert_eq!(block[0].nonce, 6);
    }

    #[test]
    fn rejection_burned_nonces_never_stall_the_account() {
        let mut pool = pool(100, 1_000_000, 100);
        let mut ledger = Ledger::new();
        let per_tx = {
            let params = ProtocolParams::default();
            let gas = GasSchedule::default();
            gas.to_tokens(gas_bound(&params, &gas, &prove_tx(A, 0, 1, 0).op))
        };
        ledger.mint(A, TokenAmount(per_tx.0 * 2));
        // nonce 0 admitted, nonce 1 rejected (funds), then the account is
        // topped up and nonce 2 admitted: selection must not wait forever
        // on the burned nonce 1.
        pool.admit(prove_tx(A, 0, 1, 1), &ledger).unwrap();
        pool.admit(prove_tx(A, 1, 1, 2), &ledger).unwrap();
        assert!(matches!(
            pool.admit(prove_tx(A, 2, 1, 3), &ledger),
            Err(AdmitError::InsufficientFunds { .. })
        ));
        ledger.mint(A, TokenAmount(per_tx.0 * 4));
        pool.admit(prove_tx(A, 3, 1, 4), &ledger).unwrap();
        let (block, _) = pool.select_block();
        let nonces: Vec<u64> = block.iter().map(|t| t.nonce).collect();
        assert_eq!(nonces, vec![0, 1, 3], "burned nonce 2 stepped over");
        assert!(pool.is_empty());
        // Tombstones ahead of queued txs unblock in admission too: a
        // duplicate burns nonce 4 while nonce 5 is queued behind it.
        pool.admit(prove_tx(A, 5, 1, 6), &ledger).unwrap();
        let dup = prove_tx(A, 4, 1, 6); // same op digest as nonce 5's
        assert_eq!(pool.admit(dup, &ledger), Err(AdmitError::DuplicateOp));
        let (block, _) = pool.select_block();
        let nonces: Vec<u64> = block.iter().map(|t| t.nonce).collect();
        assert_eq!(nonces, vec![5], "queued tx behind the tombstone drains");
    }

    #[test]
    fn ops_limit_bounds_block_size() {
        let mut pool = pool(100, 1_000_000_000, 5);
        let ledger = rich_ledger();
        for nonce in 0..20 {
            pool.admit(prove_tx(A, nonce, 1, nonce), &ledger).unwrap();
        }
        let (block, _) = pool.select_block();
        assert_eq!(block.len(), 5);
        assert_eq!(pool.len(), 15);
    }

    fn pool_with_retention(retention: u64) -> Mempool {
        let params = ProtocolParams {
            mempool_cap: 100,
            block_gas_limit: 1_000_000,
            block_ops_limit: 100,
            tombstone_retention_blocks: retention,
            ..ProtocolParams::default()
        };
        Mempool::new(params, GasSchedule::default())
    }

    #[test]
    fn tombstone_eviction_never_reopens_the_burned_nonce_gap() {
        let mut pool = pool_with_retention(4);
        let ledger = rich_ledger();
        // Queue a tx at nonce 4, then burn nonce 3 with a duplicate of its
        // op: tombstone at 3, queued tx at 4, frontier stalled at 0 behind
        // the never-seen nonces 0..=2.
        pool.admit(prove_tx(A, 4, 1, 9), &ledger).unwrap();
        assert_eq!(
            pool.admit(prove_tx(A, 3, 1, 9), &ledger),
            Err(AdmitError::DuplicateOp)
        );
        assert_eq!(pool.tombstone_count(), 1);
        // Young: within the retention window nothing is evicted and the
        // account contributes nothing.
        pool.observe_committed(&[], 3);
        assert_eq!(pool.tombstone_count(), 1);
        let (block, _) = pool.select_block();
        assert!(block.is_empty(), "gap still within retention");
        // Aged: the frontier steps over the gap and the tombstone — by
        // advancing past them, never by re-opening them.
        pool.observe_committed(&[], 4);
        assert_eq!(pool.tombstone_count(), 0, "stalling tombstone folded");
        assert!(pool.stats().tombstones_expired >= 1);
        let (block, _) = pool.select_block();
        assert_eq!(
            block.iter().map(|t| t.nonce).collect::<Vec<_>>(),
            vec![4],
            "queued tx behind the aged gap drains"
        );
        // The burned nonce can never come back: a fresh submission at the
        // evicted tombstone's nonce (or anywhere in the jumped gap) is
        // stale, not admissible.
        assert_eq!(
            pool.admit(prove_tx(A, 3, 1, 50), &ledger),
            Err(AdmitError::StaleNonce {
                expected_at_least: 5,
                got: 3
            })
        );
        assert_eq!(
            pool.admit(prove_tx(A, 0, 1, 51), &ledger),
            Err(AdmitError::StaleNonce {
                expected_at_least: 5,
                got: 0
            })
        );
    }

    #[test]
    fn observe_committed_drops_foreign_committed_txs() {
        let mut pool = pool_with_retention(32);
        let ledger = rich_ledger();
        let tx0 = prove_tx(A, 0, 1, 1);
        let tx1 = prove_tx(A, 1, 1, 2);
        pool.admit(tx0.clone(), &ledger).unwrap();
        pool.admit(tx1, &ledger).unwrap();
        // Another proposer's block carries tx0's op: the pool drops it and
        // advances the frontier so nonce 1 is immediately selectable.
        pool.observe_committed(std::slice::from_ref(&tx0.op), 1);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.stats().observed_committed, 1);
        assert_eq!(pool.height(), 1);
        let (block, _) = pool.select_block();
        assert_eq!(block.iter().map(|t| t.nonce).collect::<Vec<_>>(), vec![1]);
        // The committed tx cannot be replayed: its digest is free again
        // (recurring proofs re-use ops) but the nonce is spent.
        assert_eq!(
            pool.admit(tx0, &ledger),
            Err(AdmitError::StaleNonce {
                expected_at_least: 2,
                got: 0
            })
        );
    }

    #[test]
    fn aged_gap_jump_unwedges_foreign_nonce_holes() {
        let mut pool = pool_with_retention(4);
        let ledger = rich_ledger();
        // A's nonces 0 and 1 went through another validator's pool; we
        // only ever saw nonce 2. Without eviction it would stall forever.
        pool.admit(prove_tx(A, 2, 1, 7), &ledger).unwrap();
        pool.observe_committed(&[], 3);
        let (block, _) = pool.select_block();
        assert!(block.is_empty(), "hole younger than retention");
        pool.observe_committed(&[], 4);
        assert!(pool.stats().gaps_jumped >= 1);
        let (block, _) = pool.select_block();
        assert_eq!(block.iter().map(|t| t.nonce).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn selection_is_deterministic() {
        let build = || {
            let mut pool = pool(100, 1_000_000, 100);
            let ledger = rich_ledger();
            for nonce in 0..10 {
                pool.admit(prove_tx(A, nonce, (nonce % 3) as u128, nonce), &ledger)
                    .unwrap();
                pool.admit(
                    prove_tx(B, nonce, (nonce % 4) as u128, 100 + nonce),
                    &ledger,
                )
                .unwrap();
            }
            let (block, gas) = pool.select_block();
            (block, gas)
        };
        assert_eq!(build(), build());
    }
}
