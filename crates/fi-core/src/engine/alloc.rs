//! Allocation bookkeeping: capacity-weighted sector sampling with the
//! Fig. 4 collision-retry loop, reservation accounting and rollback,
//! drained-sector removal, corrupted-sector voiding, full file removal,
//! and the §VI-B Poisson swap-in that keeps the allocation distribution
//! i.i.d. capacity-proportional as sectors join.

use crate::types::{AllocState, FileId, ProtocolEvent, RemovalReason, SectorId, SectorState};

use super::{Engine, Task, DEPOSIT_ESCROW};

impl Engine {
    /// Samples a sector with at least `size` free capacity, re-sampling up
    /// to the collision retry limit.
    pub(super) fn sample_sector_with_space(&mut self, size: u64) -> Option<SectorId> {
        let mut rng = self.rng.clone();
        let mut result = None;
        for _ in 0..=self.params.collision_retry_limit {
            let Some(&candidate) = self.sampler.sample(&mut rng) else {
                break;
            };
            let ok = self
                .sectors
                .get(&candidate)
                .map(|s| s.free_cap >= size)
                .unwrap_or(false);
            if ok {
                result = Some(candidate);
                break;
            }
            // No file exists yet at sampling time, so the collision is a
            // global (unattributed) counter.
            self.stats_global.add_collisions += 1;
        }
        self.rng = rng;
        result
    }

    pub(super) fn reserve(&mut self, sector: SectorId, size: u64) {
        let s = self.sectors.get_mut(&sector).expect("sector exists");
        debug_assert!(s.free_cap >= size, "reservation exceeds free space");
        s.free_cap -= size;
        s.replica_count += 1;
        self.cr
            .get_mut(&sector)
            .expect("cr accounting")
            .add_file(size);
    }

    pub(super) fn release_reservation(&mut self, sector: SectorId, size: u64) {
        if let Some(s) = self.sectors.get_mut(&sector) {
            if s.state == SectorState::Corrupted {
                return;
            }
            s.free_cap += size;
            s.replica_count -= 1;
            self.cr
                .get_mut(&sector)
                .expect("cr accounting")
                .remove_file(size);
            self.maybe_remove_drained(sector);
        }
    }

    pub(super) fn release_reservation_indexed(
        &mut self,
        sector: SectorId,
        file: FileId,
        index: u32,
        size: u64,
    ) {
        if let Some(set) = self.sector_replicas.get_mut(&sector) {
            set.remove(&(file, index));
        }
        self.release_reservation(sector, size);
    }

    /// Releases a stored replica (same as a reservation plus index upkeep).
    pub(super) fn release_replica(
        &mut self,
        sector: SectorId,
        file: FileId,
        index: u32,
        size: u64,
    ) {
        self.release_reservation_indexed(sector, file, index, size);
    }

    /// Removes a drained disabled sector and refunds its deposit.
    pub(super) fn maybe_remove_drained(&mut self, sector: SectorId) {
        let remove = self
            .sectors
            .get(&sector)
            .map(|s| s.state == SectorState::Disabled && s.replica_count == 0)
            .unwrap_or(false);
        if remove {
            let s = self.sectors.remove(&sector).expect("checked");
            self.cr.remove(&sector);
            self.sector_replicas.remove(&sector);
            self.ledger
                .transfer(DEPOSIT_ESCROW, s.owner, s.deposit)
                .expect("escrow covers deposit");
            self.log(ProtocolEvent::SectorRemoved {
                sector,
                refunded: s.deposit,
            });
        }
    }

    /// Resolves every allocation entry touching a newly corrupted sector.
    pub(super) fn void_sector_content(&mut self, sector: SectorId) {
        let touched: Vec<(FileId, u32)> = self
            .sector_replicas
            .get(&sector)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        let now = self.now();
        for (file, index) in touched {
            let size = self.shards.file(file).map(|f| f.size).unwrap_or(0);
            let Some(e) = self.shards.entry(file, index) else {
                continue;
            };
            let (prev, next, state) = (e.prev, e.next, e.state);
            let incoming = next == Some(sector);
            let holding = prev == Some(sector);

            if incoming && holding {
                // Self-move inside the corrupted sector: everything gone.
                let e = self.shards.entry_mut(file, index).expect("entry");
                e.state = AllocState::Corrupted;
                e.next = None;
                continue;
            }
            if incoming {
                // Reservation on the dead sector; the replica (if any)
                // still lives at prev.
                let e = self.shards.entry_mut(file, index).expect("entry");
                e.next = None;
                if prev.is_some() && state != AllocState::Corrupted {
                    e.state = AllocState::Normal; // revert the move
                } else if prev.is_none() {
                    e.state = AllocState::Corrupted; // initial placement died
                }
                continue;
            }
            if holding {
                match state {
                    AllocState::Normal => {
                        let e = self.shards.entry_mut(file, index).expect("entry");
                        e.state = AllocState::Corrupted;
                    }
                    AllocState::Alloc => {
                        // Mid-refresh, source destroyed before handoff: the
                        // pending copy at `next` is unverified raw space —
                        // release it and mark the replica lost.
                        if let Some(n) = next {
                            self.release_reservation_indexed(n, file, index, size);
                        }
                        let e = self.shards.entry_mut(file, index).expect("entry");
                        e.next = None;
                        e.state = AllocState::Corrupted;
                    }
                    AllocState::Confirm => {
                        // The new sector already confirmed holding the
                        // replica: finalise the move early.
                        let e = self.shards.entry_mut(file, index).expect("entry");
                        e.prev = next;
                        e.next = None;
                        e.last = Some(now);
                        e.state = AllocState::Normal;
                        self.shards.shard_mut(file).stats.refreshes_completed += 1;
                    }
                    AllocState::Corrupted => {}
                }
            }
        }
        self.sector_replicas.remove(&sector);
    }

    /// Removes a file and releases everything it holds.
    pub(super) fn remove_file_completely(&mut self, file: FileId, reason: RemovalReason) {
        let Some(desc) = self.shards.remove_file(file) else {
            return;
        };
        self.shards.take_discard_reason(file);
        for i in 0..desc.cp {
            let Some(e) = self.shards.remove_entry(file, i) else {
                continue;
            };
            match e.state {
                AllocState::Normal => {
                    if let Some(s) = e.prev {
                        self.release_replica(s, file, i, desc.size);
                    }
                }
                AllocState::Alloc | AllocState::Confirm => {
                    if let Some(s) = e.next {
                        self.release_reservation_indexed(s, file, i, desc.size);
                    }
                    if let Some(s) = e.prev {
                        self.release_replica(s, file, i, desc.size);
                    }
                }
                AllocState::Corrupted => {}
            }
        }
        self.log(ProtocolEvent::FileRemoved { file, reason });
    }

    /// §VI-B swap-in: move a Poisson-distributed number of existing
    /// replicas into a freshly registered sector so the allocation
    /// distribution stays i.i.d. capacity-proportional.
    pub(super) fn poisson_swap_in(&mut self, sector: SectorId) {
        let capacity = self.sectors[&sector].capacity;
        let total: u64 = self.sampler.total_weight();
        if total == 0 {
            return;
        }
        // Count replicas currently placed (Normal entries only).
        let placed: Vec<(FileId, u32)> = {
            let mut v: Vec<_> = self
                .shards
                .alloc_iter()
                .filter(|(_, e)| e.state == AllocState::Normal)
                .map(|(&k, _)| k)
                .collect();
            v.sort_unstable();
            v
        };
        if placed.is_empty() {
            return;
        }
        let mean = placed.len() as f64 * capacity as f64 / total as f64;
        let count = (self.rng.sample_poisson(mean) as usize).min(placed.len());
        if count == 0 {
            return;
        }
        let chosen = self.rng.sample_distinct(placed.len(), count);
        for idx in chosen {
            let (file, i) = placed[idx];
            self.forced_refresh_to(file, i, sector);
        }
    }

    /// Starts a refresh of `(file, index)` targeted at `sector` (used by
    /// the §VI-B swap-in; ordinary refreshes sample their target).
    fn forced_refresh_to(&mut self, file: FileId, index: u32, sector: SectorId) {
        let Some(desc) = self.shards.file(file) else {
            return;
        };
        let size = desc.size;
        let ok = self.shards.entry(file, index).map(|e| e.state) == Some(AllocState::Normal)
            && self
                .sectors
                .get(&sector)
                .map(|s| s.state == SectorState::Normal && s.free_cap >= size)
                .unwrap_or(false);
        if !ok {
            return;
        }
        self.reserve(sector, size);
        self.sector_replicas
            .get_mut(&sector)
            .expect("sector index")
            .insert((file, index));
        let e = self.shards.entry_mut(file, index).expect("entry");
        let from = e.prev;
        e.next = Some(sector);
        e.state = AllocState::Alloc;
        let deadline = self.now() + self.params.transfer_window(size);
        self.schedule_task(deadline, Task::CheckRefresh(file, index));
        self.shards.shard_mut(file).stats.refreshes_started += 1;
        self.log(ProtocolEvent::ReplicaSwap {
            file,
            index,
            from,
            to: sector,
        });
    }
}
