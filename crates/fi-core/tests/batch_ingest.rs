//! Batch-ingest consensus equivalence: `Engine::apply_batch` must be
//! **bit-identical** to feeding the same ops one by one through
//! `Engine::apply` — same per-op results, same state root, same chain
//! head, same op log — at every `(shards, ingest_threads)` combination.
//! The parallel staging, the per-shard overlays, the barrier segmentation
//! and the ledger-conflict fallback are all semantically invisible; only
//! wall-clock time may differ (measured by `engine_snapshot`).

use fi_chain::account::{AccountId, TokenAmount};
use fi_core::engine::{Engine, StateView};
use fi_core::ops::Op;
use fi_core::params::ProtocolParams;
use fi_crypto::{sha256, DetRng};

const CLIENT: AccountId = AccountId(900);
const PROVIDER: AccountId = AccountId(700);
/// An account funded with a shoestring balance to force mid-batch
/// insufficient-funds flips (the staged-assumption fallback path).
const PAUPER: AccountId = AccountId(901);

fn params(shards: usize, ingest_threads: usize) -> ProtocolParams {
    ProtocolParams {
        k: 2,
        delay_per_size: 6,
        shards,
        ingest_threads,
        ..ProtocolParams::default()
    }
}

/// Builds an engine with `n` live (confirmed, finalized) size-1 files and
/// plenty of sector capacity. Deterministic: two engines built with the
/// same parameters are consensus-identical afterwards.
fn engine_with_files(p: ProtocolParams, n: u64) -> Engine {
    let min_value = p.min_value;
    let mut engine = Engine::new(p).expect("valid params");
    engine.fund(PROVIDER, TokenAmount(u128::MAX / 4));
    engine.fund(CLIENT, TokenAmount(u128::MAX / 4));
    for _ in 0..8 {
        engine
            .sector_register(PROVIDER, (4 * n).div_ceil(64).max(1) * 64)
            .expect("register");
    }
    for i in 0..n {
        let root = sha256(&i.to_be_bytes());
        let f = engine
            .file_add(CLIENT, 1, min_value, root)
            .expect("file add");
        for (idx, s) in engine.pending_confirms(f) {
            engine.file_confirm(PROVIDER, f, idx, s).expect("confirm");
        }
    }
    // One CheckAlloc bucket finalises every placement.
    engine.advance_to(engine.now() + engine.params().transfer_window(1) + 1);
    assert_eq!(engine.file_ids().len() as u64, n, "all files live");
    engine
}

/// Builds a mixed op batch from the engine's current state: large runs of
/// shard-local ops (proves, gets, confirms-that-fail, discards) crossing
/// the 64-op parallel threshold, salted with deliberate error cases and
/// split by barrier ops (funds, adds, time advances). Deterministic given
/// the seed, and state-identical engines produce identical batches.
fn build_batch(engine: &Engine, seed: u64) -> Vec<Op> {
    let mut rng = DetRng::from_seed_label(seed, "batch-ingest");
    let mut ops = Vec::new();
    let files = engine.file_ids();
    // Every held replica proves once — the bulk shard-local run.
    for &f in &files {
        let cp = engine.file(f).map(|d| d.cp).unwrap_or(0);
        for i in 0..cp {
            if let Some(s) = engine.alloc_entry(f, i).and_then(|e| e.prev) {
                let caller = engine.sector(s).map(|x| x.owner).unwrap_or(PROVIDER);
                ops.push(Op::FileProve {
                    caller,
                    file: f,
                    index: i,
                    sector: s,
                });
            }
        }
    }
    // Error cases: stale confirms, wrong-owner proves, unknown files.
    for &f in files.iter().take(20) {
        ops.push(Op::FileConfirm {
            caller: PROVIDER,
            file: f,
            index: 0,
            sector: engine.sector_ids()[0],
        });
        ops.push(Op::FileProve {
            caller: CLIENT, // not the sector owner
            file: f,
            index: 0,
            sector: engine.sector_ids()[0],
        });
    }
    ops.push(Op::FileGet {
        caller: CLIENT,
        file: fi_core::types::FileId(u64::MAX / 2),
    });
    // Reads spread over the shards.
    for _ in 0..80 {
        let f = files[rng.below(files.len() as u64) as usize];
        ops.push(Op::FileGet {
            caller: CLIENT,
            file: f,
        });
    }
    // A barrier run in the middle: new funds plus fresh file adds —
    // including an oversized one that must fail validation and a zero-size
    // one — exercising the pre-staged pure half of `File_Add` (success and
    // both error shapes) against its inline sequential twin.
    ops.push(Op::Fund {
        account: CLIENT,
        amount: TokenAmount(1_000_000),
    });
    for j in 0..4u64 {
        ops.push(Op::FileAdd {
            client: CLIENT,
            size: 1 + j % 2,
            value: engine.params().min_value,
            merkle_root: sha256(&(seed ^ j).to_be_bytes()),
        });
    }
    ops.push(Op::FileAdd {
        client: CLIENT,
        size: engine.params().size_limit + 1,
        value: engine.params().min_value,
        merkle_root: sha256(b"too-big"),
    });
    ops.push(Op::FileAdd {
        client: CLIENT,
        size: 0,
        value: engine.params().min_value,
        merkle_root: sha256(b"empty"),
    });
    // Post-barrier shard-local run: more gets and a few discards.
    for _ in 0..70 {
        let f = files[rng.below(files.len() as u64) as usize];
        ops.push(Op::FileGet {
            caller: CLIENT,
            file: f,
        });
    }
    for &f in files.iter().skip(files.len() - 5) {
        ops.push(Op::FileDiscard {
            caller: CLIENT,
            file: f,
        });
        ops.push(Op::ForceDiscard { file: f }); // idempotent re-discard
    }
    // Advance-time barrier at the end so Auto_* tasks execute too.
    ops.push(Op::AdvanceTo {
        target: engine.now() + engine.params().proof_cycle,
    });
    ops
}

fn assert_bit_identical(a: &Engine, b: &Engine, what: &str) {
    assert_eq!(a.state_root(), b.state_root(), "{what}: state roots");
    assert_eq!(
        a.chain().head_hash(),
        b.chain().head_hash(),
        "{what}: heads"
    );
    // Strategy counters (how the work was executed) legitimately differ
    // across configurations; everything consensus must not.
    assert_eq!(
        a.stats().consensus(),
        b.stats().consensus(),
        "{what}: stats"
    );
    assert_eq!(a.op_log(), b.op_log(), "{what}: op logs");
    assert_eq!(
        a.ledger().total_supply(),
        b.ledger().total_supply(),
        "{what}: supply"
    );
}

/// The tentpole invariant: randomized mixed batches through `apply_batch`
/// reproduce the single-threaded `apply` path bit for bit at every
/// `(shards, ingest_threads)` combination — including the configurations
/// where staging actually fans out (8 shards × 4 threads over 64+-op
/// segments).
#[test]
fn apply_batch_is_bit_identical_to_sequential_apply() {
    for seed in [7u64, 42] {
        // The sequential reference: 1 shard, 1 thread, op-by-op apply.
        let mut reference = engine_with_files(params(1, 1), 120);
        let ops = build_batch(&reference, seed);
        let ref_results: Vec<bool> = ops
            .iter()
            .map(|op| reference.apply(op.clone()).is_ok())
            .collect();
        assert!(
            ref_results.iter().any(|ok| !ok) && ref_results.iter().any(|ok| *ok),
            "seed {seed}: batch must mix successes and failures"
        );
        for (shards, threads) in [(1, 4), (4, 1), (4, 4), (8, 1), (8, 4)] {
            let mut batched = engine_with_files(params(shards, threads), 120);
            let ops = build_batch(&batched, seed);
            let results = batched.apply_batch(ops);
            assert_eq!(
                ref_results,
                results.iter().map(|r| r.is_ok()).collect::<Vec<_>>(),
                "seed {seed}: outcomes diverged at {shards} shards / {threads} threads"
            );
            assert_bit_identical(
                &reference,
                &batched,
                &format!("seed {seed}, {shards} shards / {threads} threads"),
            );
            // The strategy counters tell the truth about which path ran:
            // parallel staging engages exactly on multi-shard multi-thread
            // configurations (the first segment is 240+ proves, far past
            // the threshold), and never on the degenerate ones.
            let parallel_capable = shards > 1 && threads > 1;
            assert_eq!(
                batched.stats().batches_staged_parallel > 0,
                parallel_capable,
                "seed {seed}: staging strategy at {shards} shards / {threads} threads"
            );
            assert_eq!(reference.stats().batches_staged_parallel, 0);
        }
    }
}

/// Same engine configuration, chunked differently: applying the batch as
/// one call, in small chunks, or op-by-op must agree — segmentation is an
/// internal detail.
#[test]
fn batch_chunking_is_invisible() {
    let build = || engine_with_files(params(8, 4), 100);
    let mut whole = build();
    let ops = build_batch(&whole, 11);
    whole.apply_batch(ops);

    let mut chunked = build();
    let ops = build_batch(&chunked, 11);
    for chunk in ops.chunks(17) {
        chunked.apply_batch(chunk.to_vec());
    }
    assert_bit_identical(&whole, &chunked, "chunked");

    let mut one_by_one = build();
    let ops = build_batch(&one_by_one, 11);
    for op in ops {
        let _ = one_by_one.apply(op);
    }
    assert_bit_identical(&whole, &one_by_one, "op-by-op");
}

/// The ledger-conflict fallback: a caller whose balance covers only part
/// of a big same-segment op run. Staging (against the pre-segment ledger)
/// assumes every gas burn succeeds; the sequential truth is that the
/// account drains mid-segment and later ops fail with
/// `InsufficientFunds`. The commit-phase replay must catch the flip and
/// re-execute — results and state stay bit-identical.
#[test]
fn mid_batch_insolvency_falls_back_identically() {
    let gets_affordable = 10u128;
    let get_fee = 11u128; // RequestBase (10) + AllocRead (1) at default prices
    let build = |shards, threads| {
        let mut e = engine_with_files(params(shards, threads), 100);
        e.fund(PAUPER, TokenAmount(gets_affordable * get_fee));
        e
    };
    let ops_for = |e: &Engine| -> Vec<Op> {
        e.file_ids()
            .into_iter()
            .map(|f| Op::FileGet {
                caller: PAUPER,
                file: f,
            })
            .collect()
    };

    let mut reference = build(1, 1);
    let ops = ops_for(&reference);
    let ref_results: Vec<bool> = ops
        .iter()
        .map(|op| reference.apply(op.clone()).is_ok())
        .collect();
    assert_eq!(
        ref_results.iter().filter(|ok| **ok).count() as u128,
        gets_affordable,
        "exactly the affordable prefix succeeds"
    );

    for (shards, threads) in [(4, 4), (8, 4)] {
        let mut batched = build(shards, threads);
        let ops = ops_for(&batched);
        let results = batched.apply_batch(ops);
        assert_eq!(
            ref_results,
            results.iter().map(|r| r.is_ok()).collect::<Vec<_>>(),
            "fallback outcomes diverged at {shards} shards / {threads} threads"
        );
        assert_bit_identical(&reference, &batched, "insolvency fallback");
        assert_eq!(
            batched.ledger().balance(PAUPER),
            TokenAmount(0),
            "the pauper account drained exactly"
        );
        assert!(
            batched.stats().batches_fell_back_sequential > 0,
            "the insolvency flip must be visible in the fallback counter"
        );
    }
}

/// Barrier ops inside a batch split the pipeline: state after a batch
/// containing funds / adds / time advances interleaved with shard-local
/// runs equals the sequential execution, and the op log records every op
/// in submission order with monotonically increasing sequence numbers.
#[test]
fn barriers_preserve_submission_order_in_the_op_log() {
    let mut engine = engine_with_files(params(8, 4), 80);
    let ops = build_batch(&engine, 3);
    let n = ops.len();
    let before = engine.op_log().len();
    engine.apply_batch(ops);
    let log = engine.op_log();
    assert_eq!(log.len(), before + n, "every batch op logged");
    for pair in log.windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1, "seq gap in op log");
    }
    // Replay the whole log: the batch path commits replay-compatible records.
    let replayed = Engine::replay(engine.params().clone(), engine.op_log()).expect("valid params");
    assert_eq!(replayed.state_root(), engine.state_root());
    assert_eq!(replayed.chain().head_hash(), engine.chain().head_hash());
}
