//! Value-level subnetworks (paper §VI-D).
//!
//! A file of value `v` needs `k·v/minValue` replicas, so very valuable
//! files are replicated heavily. §VI-D's compromise: *"pre-divide the value
//! levels of files and establish a storage subnetwork corresponding to each
//! level. Then the clients can choose which subnetwork to store files based
//! on the value level of their files."*
//!
//! [`SubnetRouter`] manages one `Engine` per value
//! level: each level scales `minValue` by a power of `level_factor`, so a
//! high-value file lands in a subnet where its value is a *small* multiple
//! of that subnet's `minValue`, keeping its replica count near `k` instead
//! of `k·v/minValue`.

use fi_chain::account::{AccountId, TokenAmount};
use fi_chain::tasks::Time;
use fi_crypto::Hash256;

use crate::engine::{Engine, EngineError};
use crate::params::{ParamError, ProtocolParams};
use crate::types::{FileId, SectorId};

/// A file handle qualified by its subnet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubnetFileId {
    /// Which value level stores the file.
    pub level: usize,
    /// The id within that level's engine.
    pub file: FileId,
}

/// A sector handle qualified by its subnet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubnetSectorId {
    /// Which value level the sector serves.
    pub level: usize,
    /// The id within that level's engine.
    pub sector: SectorId,
}

/// Routes files to per-value-level FileInsurer subnetworks.
///
/// # Example
///
/// ```
/// use fi_core::subnet::SubnetRouter;
/// use fi_core::params::ProtocolParams;
/// use fi_chain::account::TokenAmount;
///
/// let mut base = ProtocolParams::default();
/// base.k = 4;
/// let router = SubnetRouter::new(base, 3, 10).unwrap();
/// // minValue = 1000 · 10^level:
/// assert_eq!(router.level_for_value(TokenAmount(1_000)), 0);
/// assert_eq!(router.level_for_value(TokenAmount(40_000)), 1);
/// assert_eq!(router.level_for_value(TokenAmount(5_000_000)), 2);
/// ```
#[derive(Debug)]
pub struct SubnetRouter {
    levels: Vec<Engine>,
    level_factor: u64,
    base_min_value: TokenAmount,
}

impl SubnetRouter {
    /// Creates `levels` subnets; level `i` uses
    /// `minValue = base.min_value · level_factor^i`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    pub fn new(base: ProtocolParams, levels: usize, level_factor: u64) -> Result<Self, ParamError> {
        assert!(levels > 0 && level_factor > 1, "need >=1 level, factor >1");
        let mut engines = Vec::with_capacity(levels);
        for i in 0..levels {
            let mut p = base.clone();
            p.min_value = TokenAmount(base.min_value.0 * (level_factor as u128).pow(i as u32));
            p.seed = base.seed.wrapping_add(i as u64);
            engines.push(Engine::new(p)?);
        }
        Ok(SubnetRouter {
            levels: engines,
            level_factor,
            base_min_value: base.min_value,
        })
    }

    /// Number of value levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The engine of one level.
    pub fn level(&self, level: usize) -> &Engine {
        &self.levels[level]
    }

    /// Mutable engine access (providers register per level).
    pub fn level_mut(&mut self, level: usize) -> &mut Engine {
        &mut self.levels[level]
    }

    /// The highest level whose `minValue` does not exceed `value` (values
    /// below the base `minValue` map to level 0).
    pub fn level_for_value(&self, value: TokenAmount) -> usize {
        let mut level = 0usize;
        let mut min_value = self.base_min_value.0 * self.level_factor as u128;
        while level + 1 < self.levels.len() && value.0 >= min_value {
            level += 1;
            min_value *= self.level_factor as u128;
        }
        level
    }

    /// Adds a file to its value level, rounding the value **up** to that
    /// level's `minValue` multiple (over-insuring, never under-insuring).
    ///
    /// # Errors
    ///
    /// Propagates the chosen engine's [`EngineError`]s.
    pub fn file_add(
        &mut self,
        client: AccountId,
        size: u64,
        value: TokenAmount,
        merkle_root: Hash256,
    ) -> Result<SubnetFileId, EngineError> {
        let level = self.level_for_value(value);
        let engine = &mut self.levels[level];
        let mv = engine.params().min_value.0;
        let rounded = TokenAmount(value.0.div_ceil(mv) * mv);
        let file = engine.file_add(client, size, rounded, merkle_root)?;
        Ok(SubnetFileId { level, file })
    }

    /// Advances every subnet to `target` time.
    pub fn advance_to(&mut self, target: Time) {
        for engine in &mut self.levels {
            engine.advance_to(target);
        }
    }

    /// Total replicas a value-`v` file would need **without** subnets
    /// versus **with** them — the §VI-D saving.
    pub fn replica_saving(&self, value: TokenAmount) -> (u32, u32) {
        let base_k = self.levels[0].params().k;
        let without = (value.0 / self.base_min_value.0) as u32 * base_k;
        let level = self.level_for_value(value);
        let engine = &self.levels[level];
        let mv = engine.params().min_value.0;
        let with = (value.0.div_ceil(mv) as u32) * base_k;
        (without, with)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StateView;
    use fi_crypto::sha256;

    fn router() -> SubnetRouter {
        let base = ProtocolParams {
            k: 4,
            ..ProtocolParams::default()
        };
        SubnetRouter::new(base, 3, 10).unwrap()
    }

    #[test]
    fn levels_scale_min_value() {
        let r = router();
        assert_eq!(r.level(0).params().min_value, TokenAmount(1_000));
        assert_eq!(r.level(1).params().min_value, TokenAmount(10_000));
        assert_eq!(r.level(2).params().min_value, TokenAmount(100_000));
    }

    #[test]
    fn routing_picks_highest_feasible_level() {
        let r = router();
        assert_eq!(r.level_for_value(TokenAmount(999)), 0);
        assert_eq!(r.level_for_value(TokenAmount(9_999)), 0);
        assert_eq!(r.level_for_value(TokenAmount(10_000)), 1);
        assert_eq!(r.level_for_value(TokenAmount(99_999)), 1);
        assert_eq!(r.level_for_value(TokenAmount(100_000)), 2);
        // Values past the top level stay at the top level.
        assert_eq!(r.level_for_value(TokenAmount(10_000_000)), 2);
    }

    #[test]
    fn replica_saving_matches_design() {
        let r = router();
        // A 100·minValue file: without subnets 100·k replicas; in level 2
        // it is exactly 1 × minValue(level 2) → k replicas.
        let (without, with) = r.replica_saving(TokenAmount(100_000));
        assert_eq!(without, 400);
        assert_eq!(with, 4);
    }

    #[test]
    fn file_lands_in_its_level_with_rounded_value() {
        let mut r = router();
        let provider = AccountId(50);
        let client = AccountId(51);
        // Fund and provision level 1.
        r.level_mut(1).fund(provider, TokenAmount(u128::MAX / 2));
        r.level_mut(1).fund(client, TokenAmount(1_000_000_000));
        r.level_mut(1).sector_register(provider, 6_400).unwrap();

        let id = r
            .file_add(client, 10, TokenAmount(25_000), sha256(b"subnet file"))
            .unwrap();
        assert_eq!(id.level, 1);
        let desc = r.level(1).file(id.file).unwrap();
        // 25_000 rounded up to the 10_000 multiple = 30_000 → cp = 3·k.
        assert_eq!(desc.value, TokenAmount(30_000));
        assert_eq!(desc.cp, 12);
    }

    #[test]
    fn advance_moves_all_levels() {
        let mut r = router();
        r.advance_to(500);
        for lvl in 0..r.level_count() {
            assert_eq!(r.level(lvl).now(), 500);
        }
    }
}
